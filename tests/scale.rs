//! The backend-equivalence contract of the pluggable directory
//! representations (DESIGN.md §4i).
//!
//! Three layers of pinning, from unit to full machine:
//!
//! 1. **Model equivalence** — `SharerSet` (the simulator's exact
//!    membership oracle) against a `BTreeSet<u16>` reference model
//!    under random operation sequences, and `Directory::inval_targets`
//!    against the representation semantics: targets are always a
//!    superset of the true sharers, full-map is exact, limited-pointer
//!    broadcasts once overflowed, coarse-vector covers group footprints.
//! 2. **Full-run bit-identity** — at ≤64 nodes the default backend
//!    parameters re-spend the old one-`u64` budget, so limited-pointer
//!    and coarse-vector runs must be *bit-identical* to the full-map
//!    oracle: same digest, same clocks, same ledger. Checked on the
//!    Fig-3 benchmarks at 16/32/64 nodes across all three systems.
//! 3. **Kilonode determinism and conservation** — past the old wall the
//!    backends legitimately diverge from full-map, but each must stay
//!    deterministic across worker counts (jobs 1 vs 8 at 256 and 1024
//!    nodes) and conservation-clean (per-node ledger sums equal the
//!    node clocks; the harvest sanitizer inside every run enforces the
//!    coherence invariants).

use std::collections::BTreeSet;

use lcm::apps::experiments::Benchmark;
use lcm::apps::scale_sweep::{run_scale_point, sweep_scale};
use lcm::apps::SystemKind;
use lcm::sim::mem::BlockId;
use lcm::sim::profile::CycleCat;
use lcm::sim::{DirBackend, NodeId};
use lcm::stache::{DirState, Directory, SharerSet, MAX_NODES};
use proptest::prelude::*;

/// One mutation of a sharer set, drawn by proptest.
#[derive(Clone, Debug)]
enum Op {
    Add(u16),
    Remove(u16),
    UnionSingle(u16),
    DifferenceSingle(u16),
}

fn op_strategy(nodes: u16) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nodes).prop_map(Op::Add),
        (0..nodes).prop_map(Op::Remove),
        (0..nodes).prop_map(Op::UnionSingle),
        (0..nodes).prop_map(Op::DifferenceSingle),
    ]
}

fn apply(set: &mut SharerSet, model: &mut BTreeSet<u16>, op: &Op) {
    match *op {
        Op::Add(n) => {
            set.add(NodeId(n));
            model.insert(n);
        }
        Op::Remove(n) => {
            set.remove(NodeId(n));
            model.remove(&n);
        }
        Op::UnionSingle(n) => {
            *set = set.union(SharerSet::single(NodeId(n)));
            model.insert(n);
        }
        Op::DifferenceSingle(n) => {
            *set = set.difference(SharerSet::single(NodeId(n)));
            model.remove(&n);
        }
    }
}

proptest! {
    /// `SharerSet` agrees with a `BTreeSet<u16>` model after any
    /// operation sequence, across the whole multi-word range — count,
    /// membership, emptiness, and ascending iteration order.
    #[test]
    fn sharer_set_matches_btreeset_model(
        ops in proptest::collection::vec(op_strategy(MAX_NODES as u16), 1..200),
    ) {
        let mut set = SharerSet::empty();
        let mut model = BTreeSet::new();
        for op in &ops {
            apply(&mut set, &mut model, op);
            prop_assert_eq!(set.count() as usize, model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
        }
        let via_iter: Vec<u16> = set.iter().map(|n| n.0).collect();
        let via_model: Vec<u16> = model.iter().copied().collect();
        prop_assert_eq!(via_iter, via_model);
        for n in 0..MAX_NODES as u16 {
            prop_assert_eq!(set.contains(NodeId(n)), model.contains(&n));
        }
    }

    /// The representation contract of `Directory::inval_targets`, with
    /// deliberately tiny capacities so overflow is easy to hit:
    ///
    /// * every backend's targets ⊇ the true sharers (no lost copy);
    /// * full-map is exact;
    /// * limited-pointer either is exact (within capacity, never
    ///   overflowed) or broadcasts to the whole machine;
    /// * coarse-vector covers exactly the sharers' group footprint.
    #[test]
    fn inval_targets_respect_backend_semantics(
        nodes in 2usize..128,
        ptrs in 1u16..8,
        bits in 1u16..8,
        raw in proptest::collection::vec(0u16..128, 0..32),
    ) {
        let members: BTreeSet<u16> = raw.iter().copied().filter(|&n| (n as usize) < nodes).collect();
        let mut sharers = SharerSet::empty();
        for &n in &members {
            sharers.add(NodeId(n));
        }
        let backends = [
            DirBackend::FullMap,
            DirBackend::LimitedPtr { ptrs },
            DirBackend::CoarseVec { bits },
        ];
        let block = BlockId(7);
        for backend in backends {
            let mut dir = Directory::with_backend(backend, nodes);
            if sharers.is_empty() {
                continue;
            }
            let overflowed = dir.set(block, DirState::Shared(sharers));
            let targets = dir.inval_targets(block);
            // Never a lost copy: targets cover the true sharers.
            prop_assert!(sharers.difference(targets).is_empty(), "{backend:?} lost a sharer");
            match backend {
                DirBackend::FullMap => {
                    prop_assert_eq!(targets, sharers);
                    prop_assert!(!overflowed);
                }
                DirBackend::LimitedPtr { ptrs } => {
                    if sharers.count() <= u32::from(ptrs) {
                        prop_assert_eq!(targets, sharers);
                        prop_assert!(!overflowed);
                    } else {
                        prop_assert!(overflowed);
                        prop_assert!(dir.is_overflowed(block));
                        prop_assert_eq!(targets, SharerSet::all_below(nodes));
                    }
                }
                DirBackend::CoarseVec { bits } => {
                    let group = nodes.div_ceil(usize::from(bits));
                    let mut expect = SharerSet::empty();
                    for s in sharers.iter() {
                        let base = (usize::from(s.0) / group) * group;
                        for n in base..(base + group).min(nodes) {
                            expect.add(NodeId(n as u16));
                        }
                    }
                    prop_assert_eq!(targets, expect);
                    prop_assert!(!overflowed);
                }
            }
            // Rebuilding the entry from Idle clears overflow stickiness.
            dir.set(block, DirState::Idle);
            prop_assert!(!dir.is_overflowed(block));
        }
    }
}

/// The Fig-3 benchmarks as run by the scale sweep. `scale_benchmarks`
/// covers the paper's Figure-3 set (Adaptive-dyn, Threshold,
/// Unstructured) plus both Stencil partitions.
fn fig3_like() -> [Benchmark; 3] {
    [
        Benchmark::AdaptiveDyn,
        Benchmark::Threshold,
        Benchmark::Unstructured,
    ]
}

/// Below the old 64-node wall the three backends are *bit-identical*:
/// the defaults (64 pointers, 64 group bits) re-spend the old one-word
/// budget, so no entry can overflow and every group is a single node.
/// Full-map is the oracle; the other two must match digest, clocks,
/// and ledger exactly.
#[test]
fn backends_are_bit_identical_to_full_map_oracle_up_to_64_nodes() {
    for b in fig3_like() {
        for nodes in [16, 32, 64] {
            for system in SystemKind::all() {
                let oracle = run_scale_point(b, nodes, DirBackend::FullMap, system);
                for backend in [
                    DirBackend::LimitedPtr { ptrs: 64 },
                    DirBackend::CoarseVec { bits: 64 },
                ] {
                    let run = run_scale_point(b, nodes, backend, system);
                    let ctx = format!(
                        "{}/{}/{} at {nodes} nodes",
                        b.label(),
                        system.label(),
                        backend.label()
                    );
                    assert_eq!(oracle.digest(), run.digest(), "{ctx}: digest diverged");
                    assert_eq!(oracle.clocks, run.clocks, "{ctx}: clocks diverged");
                    assert_eq!(oracle.ledger, run.ledger, "{ctx}: ledger diverged");
                    assert_eq!(
                        run.totals.dir_overflows, 0,
                        "{ctx}: overflowed below the wall"
                    );
                    assert_eq!(
                        run.totals.spurious_invals, 0,
                        "{ctx}: spurious below the wall"
                    );
                }
            }
        }
    }
}

/// Past the wall the backends diverge from full-map, but every grid
/// point must stay byte-deterministic across worker counts.
#[test]
fn kilonode_sweep_is_deterministic_across_worker_counts() {
    for nodes in [256usize, 1024] {
        let serial = sweep_scale(&[nodes], 1);
        let pooled = sweep_scale(&[nodes], 8);
        assert_eq!(serial.len(), pooled.len());
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.benchmark, b.benchmark);
            assert_eq!(a.system, b.system);
            assert_eq!(a.backend, b.backend);
            assert_eq!(
                a.result.digest(),
                b.result.digest(),
                "{}/{}/{} at {nodes} nodes: jobs=1 vs jobs=8 diverged",
                a.benchmark.label(),
                a.result.system.label(),
                a.backend.label(),
            );
        }
    }
}

/// A 1024-node machine completes on all three memory systems with
/// cycle conservation intact: each node's ledger categories sum to its
/// clock, under the backend that actually broadcasts (limited-pointer)
/// so the spurious-invalidation charges are part of the balance.
#[test]
fn kilonode_runs_conserve_cycles_on_all_systems() {
    for system in SystemKind::all() {
        let r = run_scale_point(
            Benchmark::Unstructured,
            1024,
            DirBackend::LimitedPtr { ptrs: 64 },
            system,
        );
        assert_eq!(r.clocks.len(), 1024);
        for (n, &clock) in r.clocks.iter().enumerate() {
            let charged: u64 = CycleCat::all()
                .iter()
                .map(|&cat| r.ledger.get(NodeId(n as u16), cat))
                .sum();
            assert_eq!(
                charged,
                clock,
                "{}: node {n} ledger does not balance its clock",
                r.system.label()
            );
        }
    }
}

/// The acceptance-criteria story in one assertion: at 1024 nodes the
/// limited-pointer backend has overflowed and paid for it (visible in
/// the ledger's message-overhead column), while the same program under
/// LCM-mcc keeps its marked blocks out of the directory and overflows
/// far less.
#[test]
fn overflow_costs_are_visible_in_the_ledger_past_the_wall() {
    let full = run_scale_point(
        Benchmark::Unstructured,
        256,
        DirBackend::FullMap,
        SystemKind::Stache,
    );
    let limited = run_scale_point(
        Benchmark::Unstructured,
        256,
        DirBackend::LimitedPtr { ptrs: 64 },
        SystemKind::Stache,
    );
    assert!(limited.totals.dir_overflows > 0, "no overflow at 256 nodes");
    assert!(
        limited.totals.spurious_invals > 0,
        "no spurious invals at 256 nodes"
    );
    assert_eq!(full.totals.dir_overflows, 0);
    assert_eq!(full.totals.spurious_invals, 0);
    let overhead = |r: &lcm::apps::RunResult| -> u64 {
        (0..256)
            .map(|n| r.ledger.get(NodeId(n), CycleCat::MsgOverhead))
            .sum()
    };
    assert!(
        overhead(&limited) > overhead(&full),
        "broadcast invalidations did not show up as message overhead"
    );
    let mcc = run_scale_point(
        Benchmark::Unstructured,
        256,
        DirBackend::LimitedPtr { ptrs: 64 },
        SystemKind::LcmMcc,
    );
    assert!(
        mcc.totals.dir_overflows < limited.totals.dir_overflows,
        "LCM-mcc should keep marked blocks out of the directory"
    );
}

//! The advisor's §6.3 decision procedure must agree with measurement:
//! whichever strategy it recommends for a benchmark's access summary must
//! be the faster one in the corresponding medium-scale run.

use lcm::cstar::advisor::{advise, profiles};
use lcm::cstar::Strategy;
use lcm::prelude::*;

fn faster_strategy(b: Benchmark) -> Strategy {
    let lcm = b.run(Scale::Medium, SystemKind::LcmMcc).time;
    let copying = b.run(Scale::Medium, SystemKind::Stache).time;
    if lcm <= copying {
        Strategy::LcmDirectives
    } else {
        Strategy::ExplicitCopy
    }
}

#[test]
fn advisor_matches_measured_winner_on_stencils() {
    assert_eq!(
        advise(&profiles::stencil_static()).strategy,
        faster_strategy(Benchmark::StencilStat)
    );
    assert_eq!(
        advise(&profiles::stencil_dynamic()).strategy,
        faster_strategy(Benchmark::StencilDyn)
    );
}

#[test]
fn advisor_matches_measured_winner_on_dynamic_benchmarks() {
    assert_eq!(
        advise(&profiles::adaptive()).strategy,
        faster_strategy(Benchmark::AdaptiveDyn)
    );
    assert_eq!(
        advise(&profiles::threshold()).strategy,
        faster_strategy(Benchmark::Threshold)
    );
    assert_eq!(
        advise(&profiles::unstructured()).strategy,
        faster_strategy(Benchmark::Unstructured)
    );
}

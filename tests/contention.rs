//! The contention-aware network model (DESIGN.md §4e), end to end.
//!
//! Four contracts: (1) with unlimited bandwidth the model is a no-op —
//! the fabric is never built and results are byte-identical whatever
//! the dormant knobs say; (2) with finite bandwidth every benchmark
//! still conserves cycles (the ledger sums to the clocks, node by
//! node — `harvest` runs the sanitizer, so a violation panics); (3)
//! the contention sweep obeys the §4d determinism contract across
//! worker counts; and (4) the headline result — shrinking bandwidth
//! hurts Stache's invalidation storms more than LCM-mcc's deferred
//! reconciliation on the reduction hotspot.

use lcm_apps::experiments::{Benchmark, Scale, Suite};
use lcm_apps::false_sharing::FalseSharing;
use lcm_apps::reduction::{ArraySum, ReductionSum};
use lcm_apps::stencil::Stencil;
use lcm_apps::unstructured::Unstructured;
use lcm_apps::{execute_with_cost, RunResult, SystemKind, Workload};
use lcm_bench::{SweepEngine, SweepKey};
use lcm_cstar::{Partition, RuntimeConfig};
use lcm_sim::{CostModel, CycleCat};
use proptest::prelude::*;

/// The CM-5 model with contention enabled at `bw` bytes/cycle
/// (`bw == 0` keeps it off, exactly like the default).
fn contended(bw: u64) -> CostModel {
    let mut c = CostModel::cm5();
    c.link_bandwidth_bytes_per_cycle = bw;
    c
}

fn run<W: Workload>(system: SystemKind, nodes: usize, cost: CostModel, w: &W) -> RunResult {
    execute_with_cost(system, nodes, cost, RuntimeConfig::default(), w).1
}

/// Cycles the run spent queued behind fabric serialization.
fn queued(r: &RunResult) -> u64 {
    r.ledger.totals()[CycleCat::NetContention.index()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: with `link_bandwidth_bytes_per_cycle == 0` no fabric
    /// is built, so the other contention knobs are inert — any setting
    /// of `ni_occupancy` and `contention_window` yields the digest of
    /// the stock model, no link stats, and zero contention cycles.
    #[test]
    fn unlimited_bandwidth_is_a_noop(ni in 0u64..10_000, window in 0u64..100_000) {
        let w = ReductionSum(ArraySum { len: 2048, passes: 2 });
        for system in SystemKind::all() {
            let baseline = run(system, 8, CostModel::cm5(), &w);
            let mut knobbed = CostModel::cm5();
            knobbed.ni_occupancy = ni;
            knobbed.contention_window = window;
            let r = run(system, 8, knobbed, &w);
            prop_assert_eq!(
                baseline.digest(),
                r.digest(),
                "{}: dormant knobs (ni={}, window={}) changed the run",
                system.label(),
                ni,
                window
            );
            prop_assert!(r.links.is_empty());
            prop_assert_eq!(queued(&r), 0);
        }
    }
}

/// Under the default cost model the whole smoke suite runs without the
/// fabric: no run carries link stats or net-contention cycles, so the
/// suite's CSV artifacts reduce to the pre-contention bytes pinned by
/// `tests/golden_suite.rs` and committed under `results/`.
#[test]
fn default_smoke_suite_never_builds_the_fabric() {
    let suite = Suite::run_jobs(Scale::Smoke, 2);
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            let r = suite.result(b, s);
            assert!(
                r.links.is_empty(),
                "{}/{}: fabric built under default settings",
                b.label(),
                s.label()
            );
            assert_eq!(
                queued(r),
                0,
                "{}/{}: net-contention cycles under default settings",
                b.label(),
                s.label()
            );
        }
    }
}

/// Finite bandwidth slows runs down but never breaks the books: on all
/// four sweep benchmarks, for every system, the per-category ledger
/// still sums to the node clocks (the conservation check inside
/// `harvest` panics otherwise) and contention only adds time.
#[test]
fn finite_bandwidth_conserves_cycles_on_every_benchmark() {
    fn check<W: Workload>(name: &str, nodes: usize, w: &W) {
        for system in SystemKind::all() {
            let base = run(system, nodes, CostModel::cm5(), w);
            let tight = run(system, nodes, contended(4), w);
            assert!(
                tight.time >= base.time,
                "{name}/{}: contention sped the run up ({} < {})",
                system.label(),
                tight.time,
                base.time
            );
            let charged: u64 = tight.ledger.totals().iter().sum();
            let clocked: u64 = tight.clocks.iter().sum();
            assert_eq!(
                charged,
                clocked,
                "{name}/{}: ledger does not sum to the clocks",
                system.label()
            );
        }
    }
    check(
        "reduction",
        8,
        &ReductionSum(ArraySum {
            len: 2048,
            passes: 2,
        }),
    );
    let fs = FalseSharing::small();
    check("false-sharing", fs.writers, &fs);
    check("unstructured", 8, &Unstructured::small());
    check("stencil-dyn", 8, &Stencil::small(Partition::Dynamic));
}

/// The contention grid honors the §4d determinism contract: any worker
/// count produces the serial run's keys and digests, byte for byte.
#[test]
fn contention_grid_is_identical_across_worker_counts() {
    let w = ReductionSum(ArraySum {
        len: 1024,
        passes: 2,
    });
    let grid = |jobs: usize| {
        let points: Vec<_> = SystemKind::all()
            .into_iter()
            .flat_map(|s| {
                [0u64, 16, 4].into_iter().map(move |bw| {
                    let key = SweepKey::new("Reduction", s.label(), "test").with_sensitivity(bw);
                    (key, (s, bw))
                })
            })
            .collect();
        SweepEngine::new(jobs).run(points, |_, (system, bw)| {
            run(system, 8, contended(bw), &w).digest()
        })
    };
    let serial = grid(1);
    let pooled = grid(4);
    assert_eq!(
        serial, pooled,
        "contention grid diverged across worker counts"
    );
}

/// The acceptance criterion: as link bandwidth shrinks, Stache degrades
/// faster than LCM-mcc on the reduction benchmark. Stache's shared
/// accumulator ping-pongs Exclusive ownership through the home node on
/// every update, so its recall chains funnel through one NI and queue;
/// LCM-mcc lets every node write a local copy and reconciles once at
/// the flush, so its traffic is spread and mostly bulk.
///
/// Asserted at 16 nodes: with only 4 nodes the hotspot never saturates
/// and the inequality is not expected to hold (the smoke-scale sweep in
/// `repro` shows exactly that), which is itself part of the story —
/// contention is a *scale* effect.
#[test]
fn stache_degrades_faster_than_lcm_mcc_on_reduction() {
    let w = ReductionSum(ArraySum {
        len: 4096,
        passes: 2,
    });
    let nodes = 16;
    let slowdown = |s: SystemKind| {
        let base = run(s, nodes, CostModel::cm5(), &w);
        let tight = run(s, nodes, contended(4), &w);
        assert!(queued(&tight) > 0, "{}: no contention charged", s.label());
        tight.time as f64 / base.time as f64
    };
    let stache = slowdown(SystemKind::Stache);
    let lcm = slowdown(SystemKind::LcmMcc);
    assert!(
        stache > lcm,
        "Stache should degrade faster under contention: {stache:.3}x vs LCM-mcc {lcm:.3}x"
    );
}

//! Unreliable-network robustness: under ANY deterministic fault schedule
//! (drops, duplicates, delays, barrier stalls), every memory system must
//! compute results bit-identical to the fault-free run, keep its
//! coherence invariants (the sanitizer runs inside every harvest), and
//! conserve message accounting. Faults change *costs*, never *values*.

use lcm::prelude::*;
use lcm::sim::FaultOutcome;
use lcm::tempest::MsgKind;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// A small but protocol-rich workload: a dynamic-partition stencil
/// (ping-pongs boundary blocks, exercises copy-on-write phases,
/// reconciliation, and invalidations on all three systems).
fn stencil() -> lcm::apps::stencil::Stencil {
    lcm::apps::stencil::Stencil {
        rows: 24,
        cols: 24,
        iters: 3,
        partition: Partition::Dynamic,
    }
}

/// A reduction workload: exercises the combining path and `reduce` RMWs.
fn array_sum_output(system: SystemKind, faults: FaultConfig) -> (f64, RunResult) {
    struct Sum;
    impl Workload for Sum {
        type Output = f64;
        fn run<P: MemoryProtocol>(&self, rt: &mut Runtime<P>) -> f64 {
            let a = rt.new_aggregate1::<f32>(256, Placement::Blocked, "a");
            rt.init1(a, |i| (i % 9) as f32);
            let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "total");
            rt.apply1(a, Partition::Static, |inv, i| {
                let v = inv.get(a.at(i)) as f64;
                inv.reduce_f64(total, v);
            });
            rt.peek_reduction(total)
        }
    }
    execute_with_faults(system, 4, faults, RuntimeConfig::default(), &Sum)
}

/// An arbitrary mixed fault schedule, bounded so runs stay fast.
fn fault_schedule() -> impl proptest::strategy::Strategy<Value = FaultConfig> {
    (
        0u32..=80,
        0u32..=40,
        0u32..=40,
        1u64..400,
        0u64..u64::MAX,
        0u32..=50,
        1u64..20_000,
    )
        .prop_map(
            |(drop_pm, dup_pm, delay_pm, max_delay, seed, stall_pc, stall_cycles)| FaultConfig {
                // Per-mille rates keep the combined probability under 1.
                drop_rate: drop_pm as f64 / 1000.0,
                dup_rate: dup_pm as f64 / 1000.0,
                delay_rate: delay_pm as f64 / 1000.0,
                max_delay,
                seed,
                max_retries: 40,
                stall_rate: stall_pc as f64 / 100.0,
                stall_cycles,
                crash_rate: 0.0,
                crash_seed: 0,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for every system, any fault schedule yields
    /// the bit-identical program output, the sanitizer stays silent
    /// (it runs inside harvest and panics on violation), and fault costs
    /// only ever slow the run down.
    #[test]
    fn any_fault_schedule_preserves_results(faults in fault_schedule()) {
        let w = stencil();
        for system in SystemKind::all() {
            let (clean_out, clean) =
                execute_with_faults(system, 4, FaultConfig::default(), RuntimeConfig::default(), &w);
            let (faulty_out, faulty) =
                execute_with_faults(system, 4, faults, RuntimeConfig::default(), &w);
            prop_assert_eq!(&clean_out, &faulty_out);
            prop_assert!(faulty.time >= clean.time);
            // Fault-free protocol work is unchanged: same misses, same
            // delivered first-attempt traffic shape.
            prop_assert_eq!(clean.misses(), faulty.misses());
            prop_assert_eq!(clean.totals.flushes, faulty.totals.flushes);
        }
    }

    /// Reductions (read-modify-write combining) survive faults exactly.
    #[test]
    fn reductions_are_fault_oblivious(faults in fault_schedule()) {
        for system in SystemKind::all() {
            let (clean, _) = array_sum_output(system, FaultConfig::default());
            let (faulty, r) = array_sum_output(system, faults);
            prop_assert_eq!(clean, faulty);
            prop_assert_eq!(r.net_dropped, r.totals.msgs_dropped);
        }
    }

    /// Message conservation: every delivered message is counted at both
    /// ends, dropped attempts at neither, and the network total equals
    /// the per-kind sum — no matter the schedule.
    #[test]
    fn message_accounting_is_conserved(faults in fault_schedule()) {
        let w = stencil();
        for system in SystemKind::all() {
            let (_, r) = execute_with_faults(system, 4, faults, RuntimeConfig::default(), &w);
            prop_assert_eq!(r.totals.msgs_sent, r.totals.msgs_recv);
            prop_assert_eq!(r.msgs_total(), r.totals.msgs_sent);
            prop_assert_eq!(r.totals.msgs_dropped, r.net_dropped);
            prop_assert_eq!(r.totals.msgs_duplicated, r.net_duplicated);
            // Every duplicate was nacked.
            prop_assert_eq!(r.msgs_of(MsgKind::Nack), r.net_duplicated);
        }
    }

    /// Identical `(rates, seed)` pairs reproduce identical runs — cycle
    /// counts, statistics, and fault schedules.
    #[test]
    fn identical_seeds_reproduce_identical_runs(faults in fault_schedule()) {
        let w = stencil();
        for system in SystemKind::all() {
            let (out_a, a) = execute_with_faults(system, 4, faults, RuntimeConfig::default(), &w);
            let (out_b, b) = execute_with_faults(system, 4, faults, RuntimeConfig::default(), &w);
            prop_assert_eq!(out_a, out_b);
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(&a.totals, &b.totals);
            prop_assert_eq!(&a.msg_kinds, &b.msg_kinds);
        }
    }
}

/// The acceptance sweep shape: drop rates {0, 0.001, 0.01, 0.05} on two
/// benchmarks, all three systems, bit-identical outputs throughout.
#[test]
fn acceptance_drop_rate_sweep_is_bit_identical() {
    let w = stencil();
    for system in SystemKind::all() {
        let mut reference = None;
        let mut last_time = 0u64;
        for rate in [0.0, 0.001, 0.01, 0.05] {
            let faults = FaultConfig::drops(rate, 0xC0FFEE);
            let (out, r) = execute_with_faults(system, 4, faults, RuntimeConfig::default(), &w);
            match &reference {
                None => reference = Some(out),
                Some(expected) => assert_eq!(expected, &out, "{system} at drop rate {rate}"),
            }
            assert!(r.time >= last_time, "{system}: more drops, more cycles");
            last_time = r.time;
        }

        let mut sums = std::collections::BTreeSet::new();
        for rate in [0.0, 0.001, 0.01, 0.05] {
            let (sum, _) = array_sum_output(system, FaultConfig::drops(rate, 7));
            sums.insert(sum.to_bits());
        }
        assert_eq!(
            sums.len(),
            1,
            "{system}: reduction drifted across drop rates"
        );
    }
}

/// Barrier-aligned stalls slow nodes down deterministically without
/// changing results.
#[test]
fn barrier_stalls_change_time_not_results() {
    let w = stencil();
    let stalls = FaultConfig {
        stall_rate: 0.5,
        stall_cycles: 5_000,
        seed: 3,
        ..FaultConfig::default()
    };
    for system in SystemKind::all() {
        let (clean_out, clean) = execute_with_faults(
            system,
            4,
            FaultConfig::default(),
            RuntimeConfig::default(),
            &w,
        );
        let (stalled_out, stalled) =
            execute_with_faults(system, 4, stalls, RuntimeConfig::default(), &w);
        assert_eq!(clean_out, stalled_out);
        assert!(stalled.totals.stall_cycles > 0, "{system}: stalls occurred");
        assert!(stalled.time > clean.time, "{system}: stalls cost time");
        assert_eq!(clean.misses(), stalled.misses());
    }
}

/// The structured failure path: a hopeless network (100% drops) reports
/// a cycle-stamped `DeliveryError` instead of hanging or silently
/// succeeding.
#[test]
fn hopeless_network_fails_structurally() {
    use lcm::sim::{FaultPlan, Machine};
    use lcm::tempest::Network;
    let cfg = FaultConfig {
        drop_rate: 1.0,
        max_retries: 4,
        ..FaultConfig::default()
    };
    let mut m = Machine::new(MachineConfig::new(2).with_faults(cfg));
    let mut net = Network::new();
    let err = net
        .try_send(&mut m, NodeId(0), NodeId(1), MsgKind::Flush, false)
        .expect_err("every attempt drops");
    assert_eq!(err.attempts, 5);
    assert!(
        err.to_string().contains("undeliverable after 5 attempts"),
        "{err}"
    );
    // The plan drew one outcome per attempt and nothing more.
    assert_eq!(m.faults().decisions(), 5);
    let _ = FaultPlan::disabled(); // the disabled plan is part of the public API
    let _ = FaultOutcome::Deliver;
}

//! Golden-run regression test: the smoke-scale suite, pinned byte for
//! byte.
//!
//! `tests/golden/suite_smoke.txt` holds the Table 1 rows and the §6.3
//! prose-claim verdicts of one committed run. The whole pipeline —
//! workload execution, protocol cost charges, harvest, CSV rendering —
//! is deterministic, so any diff against the fixture is a behavior
//! change that must be reviewed (and, if intended, re-pinned by running
//! with `GOLDEN_REGEN=1`).

use lcm_apps::experiments::{Scale, Suite};
use lcm_bench::report;
use std::fmt::Write as _;
use std::path::Path;

fn render(suite: &Suite) -> String {
    let mut s = String::from("# golden smoke-scale suite: table1 rows, then claim verdicts\n");
    s.push_str(&report::table1_csv(suite));
    s.push_str("claim,verdict,measured\n");
    for c in suite.claims() {
        let _ = writeln!(
            s,
            "{},{},{}",
            c.description,
            if c.holds { "PASS" } else { "FAIL" },
            c.measured
        );
    }
    s
}

#[test]
fn smoke_suite_reproduces_the_committed_fixture() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/suite_smoke.txt");
    let rendered = render(&Suite::run_jobs(Scale::Smoke, 2));
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&fixture, &rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&fixture)
        .expect("fixture missing — regenerate with GOLDEN_REGEN=1 cargo test golden");
    assert_eq!(
        expected, rendered,
        "smoke suite diverged from the golden fixture; if the change is \
         intended, re-pin with GOLDEN_REGEN=1 cargo test golden"
    );
}

//! The serve-engine contract (DESIGN.md §4k).
//!
//! Four guarantees, end to end, over real captures:
//!
//! * **Cache-key soundness** — changing any single cost-model field,
//!   the topology, or the directory backend changes the cache key, so
//!   distinct machine pricings can never alias a cached result.
//! * **Differential fidelity** — differential re-pricing is
//!   byte-identical to a full event-walk replay on every point of the
//!   explore grid (clocks, every ledger cell, stats, phases, links),
//!   for all three memory systems, including finite-bandwidth points
//!   where the contention fabric is live.
//! * **Serving determinism** — batched answers equal sequential
//!   answers byte-for-byte at any worker count, cached reruns return
//!   the shared result, and neighbor reuse only fires when it provably
//!   cannot change the answer.
//! * **Protocol robustness** — a real TCP roundtrip agrees with the
//!   in-process engine, and corrupt frames come back as named errors.

use lcm_apps::threshold::Threshold;
use lcm_apps::{SystemKind, Workload};
use lcm_bench::explore;
use lcm_cstar::RuntimeConfig;
use lcm_replay::{TraceFile, TraceHandle};
use lcm_serve::{query, CacheKey, Client, Query, QueryClass, ServeEngine, Server};
use lcm_sim::{CostModel, DirBackend, Topology};
use std::sync::Arc;

const NODES: usize = 8;
const CAPACITY: usize = 1 << 20;

fn capture<W: Workload>(benchmark: &str, system: SystemKind, w: &W) -> TraceHandle {
    Arc::new(
        explore::capture_workload(
            benchmark,
            "smoke",
            system,
            NODES,
            RuntimeConfig::default(),
            w,
            CAPACITY,
        )
        .expect("capture holds the whole stream"),
    )
}

/// One engine holding a Threshold capture per memory system.
fn engine() -> ServeEngine {
    let mut e = ServeEngine::new();
    for system in SystemKind::all() {
        e.load(
            system.label(),
            capture("Threshold", system, &Threshold::small()),
        );
    }
    e
}

/// The explore grid as serve queries against every loaded trace.
fn grid(e: &ServeEngine) -> Vec<Query> {
    let mut queries = Vec::new();
    for t in e.traces() {
        for bw in [0u64, 64, 16, 4] {
            for lat in [500u64, 3_000, 12_000] {
                queries.push(Query {
                    trace: t.name.clone(),
                    cost: explore::grid_cost(bw, lat),
                    topology: t.handle.topology,
                    backend: DirBackend::FullMap,
                });
            }
        }
    }
    queries
}

#[test]
fn any_single_cost_field_change_changes_the_key() {
    let base = query("t", CostModel::cm5());
    let key = CacheKey::new(7, &base);
    type Bump = Box<dyn Fn(&mut CostModel)>;
    let mut fields: Vec<(&str, Bump)> = Vec::new();
    macro_rules! field {
        ($name:ident) => {
            fields.push((
                stringify!($name),
                Box::new(|c: &mut CostModel| c.$name += 1),
            ));
        };
    }
    field!(cache_hit);
    field!(local_fill);
    field!(local_refill);
    field!(remote_miss);
    field!(msg_send);
    field!(msg_recv);
    field!(block_flush);
    field!(clean_copy_create);
    field!(reconcile_per_version);
    field!(barrier_base);
    field!(barrier_per_level);
    field!(invalidate);
    field!(upgrade);
    field!(retry_timeout);
    field!(msg_header_bytes);
    field!(link_bandwidth_bytes_per_cycle);
    field!(ni_occupancy);
    field!(contention_window);
    assert_eq!(fields.len(), 18, "every CostModel field must be covered");
    for (name, bump) in fields {
        let mut q = base.clone();
        bump(&mut q.cost);
        assert_ne!(
            CacheKey::new(7, &q),
            key,
            "changing {name} must change the cache key"
        );
    }
}

#[test]
fn topology_backend_and_trace_change_the_key() {
    let base = query("t", CostModel::cm5());
    let key = CacheKey::new(7, &base);
    for topology in [
        Topology::FatTree { arity: 2 },
        Topology::FatTree { arity: 8 },
        Topology::Crossbar,
        Topology::Flat,
    ] {
        let q = Query {
            topology,
            ..base.clone()
        };
        assert_ne!(CacheKey::new(7, &q), key, "topology {topology} must rekey");
    }
    for backend in [
        DirBackend::LimitedPtr { ptrs: 2 },
        DirBackend::LimitedPtr { ptrs: 4 },
        DirBackend::CoarseVec { bits: 8 },
    ] {
        let q = Query {
            backend,
            ..base.clone()
        };
        assert_ne!(
            CacheKey::new(7, &q),
            key,
            "backend {} must rekey",
            backend.label()
        );
    }
    // Same query against a different trace fingerprint.
    assert_ne!(CacheKey::new(8, &base), key, "fingerprint must rekey");
    // And the same inputs must agree with themselves.
    assert_eq!(CacheKey::new(7, &base.clone()), key);
}

#[test]
fn differential_replay_is_byte_identical_across_the_grid() {
    let e = engine();
    let queries = grid(&e);
    assert_eq!(queries.len(), 3 * 12, "three systems, twelve grid points");
    for q in &queries {
        e.verify(q).unwrap_or_else(|err| {
            panic!(
                "{} bw={} lat={}: {err}",
                q.trace, q.cost.link_bandwidth_bytes_per_cycle, q.cost.remote_miss
            )
        });
    }
}

#[test]
fn batched_equals_sequential_at_any_worker_count() {
    let queries = grid(&engine());
    let sequential = engine();
    let want: Vec<_> = queries
        .iter()
        .map(|q| sequential.query(q).expect("sequential").0)
        .collect();
    for jobs in [1usize, 2, 8] {
        let batched = engine();
        let got = batched.query_batch(jobs, &queries);
        for ((q, w), g) in queries.iter().zip(&want).zip(got) {
            let (g, _) = g.expect("batched");
            assert_eq!(
                *g, **w,
                "jobs={jobs}: batched diverges from sequential for {} bw={} lat={}",
                q.trace, q.cost.link_bandwidth_bytes_per_cycle, q.cost.remote_miss
            );
        }
    }
}

#[test]
fn cached_rerun_returns_the_shared_results() {
    let e = engine();
    let queries = grid(&e);
    let cold: Vec<_> = e
        .query_batch(2, &queries)
        .into_iter()
        .map(|r| r.expect("cold").0)
        .collect();
    for (q, first) in queries.iter().zip(&cold) {
        let (again, class) = e.query(q).expect("warm");
        assert_eq!(class, QueryClass::Cached, "{}: rerun must hit", q.trace);
        assert!(Arc::ptr_eq(first, &again), "{}: rerun must share", q.trace);
    }
}

#[test]
fn neighbor_reuse_never_changes_an_answer() {
    let e = engine();
    for q in grid(&e) {
        // Bump a price the capture may or may not exercise; whatever
        // path serves it, the answer must equal a cold full replay.
        let mut variant = q.clone();
        variant.cost.retry_timeout += 17;
        variant.cost.invalidate += 3;
        let (got, _) = e.query(&variant).expect("variant");
        assert_eq!(
            *got,
            e.query_full(&variant).expect("full"),
            "{} bw={} lat={}: served answer diverges from a cold full replay",
            variant.trace,
            variant.cost.link_bandwidth_bytes_per_cycle,
            variant.cost.remote_miss
        );
    }
}

#[test]
fn tcp_roundtrip_agrees_with_the_in_process_engine() {
    let engine = Arc::new(engine());
    let queries = grid(&engine);
    let server = Server::start("127.0.0.1:0", Arc::clone(&engine), 2).expect("bind");
    let addr = server.addr.to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let listed = client.list().expect("LIST");
    assert_eq!(listed.len(), engine.traces().len());
    for (info, t) in listed.iter().zip(engine.traces()) {
        assert_eq!(info.name, t.name);
        assert_eq!(info.nodes as usize, t.handle.nodes);
        assert_eq!(info.fingerprint, t.fingerprint);
    }

    let wire = client.query_batch(&queries).expect("QUERY");
    for (q, w) in queries.iter().zip(&wire) {
        let local = engine.query_full(q).expect("full");
        assert_eq!(w.result, local, "{}: wire result diverges", q.trace);
    }

    // Unknown traces are server-side errors, not dead connections.
    let err = client
        .query(&query("no-such-trace", CostModel::cm5()))
        .expect_err("unknown trace");
    assert!(err.contains("unknown trace"), "unexpected: {err}");

    // The connection still works after the error.
    assert_eq!(client.list().expect("LIST after error").len(), 3);

    client.shutdown().expect("SHUTDOWN");
    server.wait();
}

#[test]
fn corrupt_frames_get_named_errors_not_panics() {
    use std::io::Write as _;
    let engine = Arc::new(engine());
    let server = Server::start("127.0.0.1:0", Arc::clone(&engine), 2).expect("bind");
    let addr = server.addr.to_string();

    // All three probe connections deliberately stay open until the end
    // of the test: shutdown must complete even while idle clients hold
    // silent connections (the server polls its stop flag rather than
    // blocking forever in a read).

    // Unknown opcode.
    let mut raw1 = std::net::TcpStream::connect(&addr).expect("connect");
    raw1.write_all(&1u32.to_le_bytes()).expect("len");
    raw1.write_all(&[42u8]).expect("op");
    let frame = lcm_serve::proto::read_frame(&mut raw1)
        .expect("response")
        .expect("frame");
    let err = lcm_serve::proto::decode_query_response(&frame).expect_err("named error");
    assert!(
        err.contains("malformed request") && err.contains("unknown opcode"),
        "unexpected: {err}"
    );

    // Truncated query payload: a QUERY header promising one query with
    // no body behind it.
    let mut raw2 = std::net::TcpStream::connect(&addr).expect("connect");
    raw2.write_all(&2u32.to_le_bytes()).expect("len");
    raw2.write_all(&[lcm_serve::proto::OP_QUERY, 1])
        .expect("body");
    let frame = lcm_serve::proto::read_frame(&mut raw2)
        .expect("response")
        .expect("frame");
    let err = lcm_serve::proto::decode_query_response(&frame).expect_err("named error");
    assert!(err.contains("malformed request"), "unexpected: {err}");

    // An oversized frame length is refused without allocation; the
    // server answers with the frame-layer error and drops the
    // connection rather than trusting the stream again.
    let mut raw3 = std::net::TcpStream::connect(&addr).expect("connect");
    raw3.write_all(&u32::MAX.to_le_bytes()).expect("len");
    let frame = lcm_serve::proto::read_frame(&mut raw3)
        .expect("response")
        .expect("frame");
    let err = lcm_serve::proto::decode_query_response(&frame).expect_err("named error");
    assert!(err.contains("exceeds"), "unexpected: {err}");

    // The server survived all three: a healthy client still works, and
    // SHUTDOWN drains with raw1/raw2 still connected.
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.list().expect("LIST").len(), 3);
    client.shutdown().expect("SHUTDOWN");
    server.wait();
    drop((raw1, raw2, raw3));
}

#[test]
fn open_shares_one_decoded_handle_with_the_server() {
    let dir = std::env::temp_dir().join(format!("lcm-serve-open-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("threshold.lcmtrace");
    let file = capture("Threshold", SystemKind::LcmMcc, &Threshold::small());
    file.write_to(&path).expect("write");

    let a = TraceFile::open(&path).expect("open");
    let b = TraceFile::open(&path).expect("reopen");
    assert!(Arc::ptr_eq(&a, &b), "open must share one decoded handle");

    let mut e = ServeEngine::new();
    e.load("threshold", Arc::clone(&a));
    let (r, _) = e
        .query(&query("threshold", CostModel::cm5()))
        .expect("query");
    assert_eq!(r.nodes, NODES);
    std::fs::remove_dir_all(&dir).ok();
}

//! The byte-identity contract of the parallel sweep engine.
//!
//! Every artifact `repro` emits is assembled from independent sweep
//! points in canonical key order (DESIGN.md §4d), so running the pool
//! with any worker count must produce *exactly* the bytes of a serial
//! run. These tests pin that end to end: per-run `RunResult` digests,
//! every rendered CSV, the prose-claim verdicts, and the sensitivity
//! sweeps all compared across `jobs = 1 / 2 / 8`.

use lcm_apps::experiments::{Benchmark, Scale, Suite};
use lcm_apps::sensitivity::{sweep_nodes_jobs, sweep_remote_latency_jobs};
use lcm_apps::stencil::Stencil;
use lcm_apps::SystemKind;
use lcm_bench::report;
use lcm_cstar::Partition;

#[test]
fn suite_results_are_identical_across_worker_counts() {
    let serial = Suite::run_jobs(Scale::Smoke, 1);
    for jobs in [2, 8] {
        let pooled = Suite::run_jobs(Scale::Smoke, jobs);
        for b in Benchmark::all() {
            for s in SystemKind::all() {
                assert_eq!(
                    serial.result(b, s).digest(),
                    pooled.result(b, s).digest(),
                    "jobs={jobs}: {}/{} digest diverged",
                    b.label(),
                    s.label()
                );
            }
        }
    }
}

#[test]
fn rendered_csv_bytes_are_identical_across_worker_counts() {
    let serial = Suite::run_jobs(Scale::Smoke, 1);
    let pooled = Suite::run_jobs(Scale::Smoke, 8);
    assert_eq!(report::table1_csv(&serial), report::table1_csv(&pooled));
    assert_eq!(
        report::fig_csv(&serial.fig2()),
        report::fig_csv(&pooled.fig2())
    );
    assert_eq!(
        report::fig_csv(&serial.fig3()),
        report::fig_csv(&pooled.fig3())
    );
    assert_eq!(report::messages_csv(&serial), report::messages_csv(&pooled));
    assert_eq!(report::network_csv(&serial), report::network_csv(&pooled));
}

#[test]
fn claim_verdicts_are_identical_across_worker_counts() {
    let serial = Suite::run_jobs(Scale::Smoke, 1);
    let pooled = Suite::run_jobs(Scale::Smoke, 4);
    let render = |s: &Suite| {
        s.claims()
            .iter()
            .map(|c| format!("{} {} {}", c.holds, c.description, c.measured))
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&serial), render(&pooled));
}

#[test]
fn sensitivity_sweeps_are_identical_across_worker_counts() {
    let w = Stencil {
        rows: 64,
        cols: 64,
        iters: 3,
        partition: Partition::Dynamic,
    };
    let lat = [500, 3000, 12000];
    let serial = sweep_remote_latency_jobs(&lat, 4, &w, 1);
    let nodes_serial = sweep_nodes_jobs(&[2, 4, 8], &w, 1);
    for jobs in [2, 8] {
        let pooled = sweep_remote_latency_jobs(&lat, 4, &w, jobs);
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.x, b.x, "jobs={jobs}: sweep order changed");
            assert_eq!(a.lcm.digest(), b.lcm.digest(), "jobs={jobs}: x={}", a.x);
            assert_eq!(
                a.stache.digest(),
                b.stache.digest(),
                "jobs={jobs}: x={}",
                a.x
            );
        }
        let nodes_pooled = sweep_nodes_jobs(&[2, 4, 8], &w, jobs);
        for (a, b) in nodes_serial.iter().zip(&nodes_pooled) {
            assert_eq!((a.x, a.lcm.digest()), (b.x, b.lcm.digest()), "jobs={jobs}");
        }
    }
}

//! Byte-identity of the epoch-parallel engine (DESIGN.md §4j).
//!
//! `RuntimeConfig::sim_threads` is a pure host-side throttle: however
//! many worker threads cooperate on an epoch's shadow pass, the
//! deterministic sequential replay drives the protocol machinery in
//! exactly the order the classic `apply` loops would, so *everything* —
//! digests, per-node clocks, cycle ledgers, rendered CSV bytes, and
//! serialized `.lcmtrace` captures — must be identical byte for byte.
//! These tests pin that contract across the scale grid (five benchmarks
//! × three systems × three directory backends), at 64 and 1024 nodes,
//! under combined network faults + fail-stop crashes, and through a
//! finite-bandwidth capture.

use lcm::apps::scale_sweep::{run_scale_point_cfg, scale_benchmarks};
use lcm::prelude::*;
use lcm_bench::explore;

/// The thread counts checked against the `sim_threads = 1` baseline:
/// one below and one above any plausible host core count, so both the
/// "fewer threads than work" and "more threads than cores" schedules
/// are exercised.
const THREADS: [usize; 2] = [2, 8];

fn cfg(threads: usize) -> RuntimeConfig {
    RuntimeConfig {
        sim_threads: threads,
        ..RuntimeConfig::default()
    }
}

/// A CSV row rendered the way the repro sections render theirs: if the
/// underlying numbers are identical, so are the emitted bytes.
fn csv_row(label: &str, r: &RunResult) -> String {
    let msgs: u64 = r.msg_kinds.iter().map(|(_, c)| c).sum();
    format!(
        "{label},{},{},{},{},{:016x}\n",
        r.time,
        r.misses(),
        msgs,
        r.totals.invalidations_sent,
        r.digest()
    )
}

/// Everything observable must match, not just the digest.
fn assert_identical(base: &RunResult, par: &RunResult, what: &str) {
    assert_eq!(base.digest(), par.digest(), "{what}: digest diverged");
    assert_eq!(base.time, par.time, "{what}: completion time diverged");
    assert_eq!(base.clocks, par.clocks, "{what}: node clocks diverged");
    assert_eq!(base.ledger, par.ledger, "{what}: cycle ledger diverged");
    assert_eq!(
        base.totals, par.totals,
        "{what}: protocol counters diverged"
    );
    assert_eq!(base.phases, par.phases, "{what}: phase snapshots diverged");
    assert_eq!(
        csv_row("x", base),
        csv_row("x", par),
        "{what}: CSV bytes diverged"
    );
}

/// The full scale grid — five benchmarks × three systems × three
/// directory backends — at 64 nodes: every cell must be byte-identical
/// at sim-threads 1, 2 and 8.
#[test]
fn scale_grid_is_byte_identical_across_sim_threads_at_64_nodes() {
    for b in scale_benchmarks() {
        for system in SystemKind::all() {
            for backend in DirBackend::all() {
                let base = run_scale_point_cfg(b, 64, backend, system, cfg(1));
                for t in THREADS {
                    let par = run_scale_point_cfg(b, 64, backend, system, cfg(t));
                    assert_identical(
                        &base,
                        &par,
                        &format!(
                            "{}/{}/{}@64 sim-threads {t}",
                            b.label(),
                            system.label(),
                            backend.label()
                        ),
                    );
                }
            }
        }
    }
}

/// Kilonode spot checks: the engine's merge ordering must hold where
/// the epoch plan is a thousand entries wide, on the backends that
/// legitimately diverge from full-map up there.
#[test]
fn kilonode_points_are_byte_identical_across_sim_threads() {
    for b in [Benchmark::StencilDyn, Benchmark::Unstructured] {
        for backend in [DirBackend::FullMap, DirBackend::CoarseVec { bits: 64 }] {
            let base = run_scale_point_cfg(b, 1024, backend, SystemKind::LcmMcc, cfg(1));
            for t in THREADS {
                let par = run_scale_point_cfg(b, 1024, backend, SystemKind::LcmMcc, cfg(t));
                assert_identical(
                    &base,
                    &par,
                    &format!(
                        "{}/LCM-mcc/{}@1024 sim-threads {t}",
                        b.label(),
                        backend.label()
                    ),
                );
            }
        }
    }
}

/// Combined network faults + fail-stop crashes: retries, rollbacks and
/// re-executed phases all route through the same deterministic replay,
/// so the fault path must be as thread-count-blind as the clean path.
#[test]
fn faults_and_crashes_are_byte_identical_across_sim_threads() {
    let w = lcm::apps::stencil::Stencil {
        rows: 24,
        cols: 24,
        iters: 3,
        partition: Partition::Dynamic,
    };
    let hostile = FaultConfig {
        drop_rate: 0.02,
        dup_rate: 0.01,
        delay_rate: 0.01,
        max_delay: 64,
        seed: 0xC0FFEE,
        max_retries: 40,
        stall_rate: 0.1,
        stall_cycles: 500,
        crash_rate: 0.2,
        crash_seed: 11,
    };
    for system in SystemKind::all() {
        let run = |t: usize| {
            let config = RuntimeConfig {
                checkpoint_every: 2,
                ..cfg(t)
            };
            execute_with_faults(system, 8, hostile, config, &w)
        };
        let (out1, base) = run(1);
        for t in THREADS {
            let (out_t, par) = run(t);
            assert_eq!(out1, out_t, "{system} output diverged at sim-threads {t}");
            assert_identical(&base, &par, &format!("{system} faulty sim-threads {t}"));
        }
    }
}

/// A finite-bandwidth capture serializes byte-identically whatever the
/// thread count: the trace events are recorded during the sequential
/// replay, so the `.lcmtrace` bytes are part of the contract too.
#[test]
fn finite_bandwidth_capture_bytes_are_identical_across_sim_threads() {
    let w = lcm::apps::unstructured::Unstructured::small();
    let capture = |t: usize| {
        let mut cost = CostModel::cm5();
        cost.link_bandwidth_bytes_per_cycle = 16;
        let mc = MachineConfig::new(16).with_cost(cost);
        explore::capture_with_machine(
            "Unstructured",
            "par-test",
            SystemKind::LcmMcc,
            mc,
            cfg(t),
            &w,
            explore::CAPTURE_CAPACITY,
        )
        .expect("capture succeeds")
        .to_bytes()
    };
    let base = capture(1);
    for t in THREADS {
        assert_eq!(
            base,
            capture(t),
            ".lcmtrace bytes diverged at sim-threads {t}"
        );
    }
}

/// The engine refuses nothing: a workload whose closure cannot run in
/// the shadow pass (Adaptive's nested tree walks and allocation cursor)
/// silently takes the classic sequential path and still matches.
#[test]
fn sequential_fallback_workloads_match_at_any_thread_count() {
    let w = lcm::apps::adaptive::Adaptive::small(Partition::Dynamic);
    let (out1, base) = execute(SystemKind::LcmMcc, 8, cfg(1), &w);
    for t in THREADS {
        let (out_t, par) = execute(SystemKind::LcmMcc, 8, cfg(t), &w);
        assert_eq!(out1, out_t, "Adaptive output diverged at sim-threads {t}");
        assert_identical(&base, &par, &format!("Adaptive sim-threads {t}"));
    }
}

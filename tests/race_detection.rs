//! End-to-end §7.2/7.3: the conflict detector through the full stack,
//! including the paper's potential-vs-actual read-write distinction and
//! the word-granularity false-sharing exemption.

use lcm::apps::race::{detect_races, RaceKernel};
use lcm::prelude::*;

#[test]
fn detector_outcomes_per_kernel() {
    let ww = detect_races(RaceKernel::WriteWrite, 8);
    assert_eq!(ww.len(), 7, "8 writers of one word -> 7 conflicting pairs");
    assert!(ww
        .iter()
        .all(|c| matches!(c.kind, ConflictKind::WriteWrite)));

    let rw = detect_races(RaceKernel::ReadWrite, 8);
    assert_eq!(rw.len(), 7, "7 readers raced the writer");
    assert!(rw
        .iter()
        .all(|c| matches!(c.kind, ConflictKind::ReadWrite { .. })));

    assert!(detect_races(RaceKernel::RaceFree, 8).is_empty());
}

#[test]
fn detection_is_opt_in_per_region() {
    // The same racy program without `detect_conflicts` resolves silently
    // under C** keep-one semantics — detection is a policy, not a mode.
    let mut mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
    let a = mem.tempest_mut().alloc(4096, Placement::Interleaved, "d");
    mem.register_cow_region(a, 4096, MergePolicy::KeepOne);
    mem.begin_parallel_phase();
    mem.write_f32(NodeId(1), a, 1.0);
    mem.write_f32(NodeId(2), a, 2.0);
    mem.reconcile_copies();
    assert!(
        mem.take_conflicts().is_empty(),
        "no records without the directive"
    );
    // …but the statistics still count the overlap for diagnosis.
    assert_eq!(mem.tempest().machine.total_stats().ww_conflicts, 1);
}

#[test]
fn potential_vs_actual_read_write() {
    let mut mem = Lcm::new(MachineConfig::new(4), LcmVariant::Scc);
    let a = mem.tempest_mut().alloc(4096, Placement::Interleaved, "d");
    mem.register_detecting_region(a, 4096, MergePolicy::KeepOne);
    // Node 3 caches a copy before the phase and never touches it again:
    // a *potential* conflict. Node 2 reads during the phase: *actual*.
    mem.write_f32(NodeId(0), a, 1.0);
    assert_eq!(mem.read_f32(NodeId(3), a), 1.0);
    mem.begin_parallel_phase();
    assert_eq!(mem.read_f32(NodeId(2), a), 1.0);
    mem.write_f32(NodeId(0), a, 2.0);
    mem.reconcile_copies();
    let conflicts = mem.take_conflicts();
    let actual: Vec<_> = conflicts
        .iter()
        .filter(|c| matches!(c.kind, ConflictKind::ReadWrite { actual: true }))
        .collect();
    let potential: Vec<_> = conflicts
        .iter()
        .filter(|c| matches!(c.kind, ConflictKind::ReadWrite { actual: false }))
        .collect();
    assert_eq!(actual.len(), 1);
    assert_eq!(actual[0].loser, NodeId(2));
    assert_eq!(potential.len(), 1);
    assert_eq!(potential[0].loser, NodeId(3));
}

#[test]
fn strict_detection_upgrades_cross_phase_readers_to_actual() {
    // A reader caches a block in phase 1; a writer modifies it in phase 2
    // while the reader never re-touches it. Lazy detection can only call
    // that *potential*; strict mode flushes read-only copies at each
    // synchronization point, so the phase-2 read re-faults and phase 2's
    // report is *actual* evidence or nothing.
    let run = |strict: bool| {
        let mut mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
        mem.set_strict_detection(strict);
        let a = mem.tempest_mut().alloc(4096, Placement::Interleaved, "d");
        mem.register_detecting_region(a, 4096, MergePolicy::KeepOne);
        mem.write_f32(NodeId(0), a, 1.0);
        // Phase 1: node 2 reads; nobody writes.
        mem.begin_parallel_phase();
        assert_eq!(mem.read_f32(NodeId(2), a), 1.0);
        mem.reconcile_copies();
        let _ = mem.take_conflicts();
        // Phase 2: node 2 reads again, node 0 writes.
        mem.begin_parallel_phase();
        assert_eq!(mem.read_f32(NodeId(2), a), 1.0);
        mem.write_f32(NodeId(0), a, 2.0);
        mem.reconcile_copies();
        mem.take_conflicts()
    };
    let lazy = run(false);
    let strict = run(true);
    // Lazy: node 2's copy survives phase 1, phase-2 read hits — but the
    // detecting hit-path still records it, so both report it; the strict
    // run must classify it as actual via a real re-fault.
    let actual_in = |conflicts: &[ConflictRecord]| {
        conflicts
            .iter()
            .filter(|c| {
                matches!(c.kind, ConflictKind::ReadWrite { actual: true }) && c.loser == NodeId(2)
            })
            .count()
    };
    assert_eq!(
        actual_in(&strict),
        1,
        "strict mode observes the phase-2 read"
    );
    assert!(actual_in(&lazy) <= 1);
}

#[test]
fn strict_detection_costs_extra_misses() {
    let run = |strict: bool| {
        let mut mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
        mem.set_strict_detection(strict);
        let a = mem.tempest_mut().alloc(4096, Placement::Interleaved, "d");
        mem.register_detecting_region(a, 4096, MergePolicy::KeepOne);
        for round in 0..4 {
            mem.begin_parallel_phase();
            // Pure readers, nothing written: copies would normally persist.
            for n in 1..4u16 {
                let _ = mem.read_f32(NodeId(n), a);
            }
            let _ = round;
            mem.reconcile_copies();
        }
        mem.tempest().machine.total_stats().misses()
    };
    assert!(
        run(true) > run(false),
        "flushing read-only copies at sync points must cost misses"
    );
}

#[test]
fn conflict_records_identify_the_parties() {
    let conflicts = detect_races(RaceKernel::WriteWrite, 4);
    for c in &conflicts {
        assert_ne!(c.winner, c.loser);
        assert_eq!(c.word, Some(0));
        let text = c.to_string();
        assert!(text.contains("write-write"), "{text}");
    }
}

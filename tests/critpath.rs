//! The critical-path analyzer's contract (DESIGN.md §4h).
//!
//! Three guarantees, end to end:
//!
//! * **Path identity** — the extracted critical path's length equals the
//!   capture's makespan bit-for-bit, on every Figure-3 benchmark on all
//!   three memory systems, including a finite-bandwidth capture and a
//!   faulty (message-dropping) capture; and the analyzer's per-category
//!   totals equal the replay engine's cycle ledger exactly.
//! * **Edge reality** — every message edge the analyzer matched points
//!   at a genuinely recorded `MsgSend`/`MsgRecv` pair in the stream,
//!   never at an invented dependency.
//! * **Causal what-ifs** — the exactly-checkable projection (zeroing
//!   `net_contention`) equals a genuine replay at unlimited bandwidth,
//!   and the tolerance-checked projection (doubling the remote-stall
//!   categories) lands within 10% of a genuine replay with
//!   `remote_miss` doubled.

use lcm_apps::adaptive::Adaptive;
use lcm_apps::stencil::Stencil;
use lcm_apps::threshold::Threshold;
use lcm_apps::unstructured::Unstructured;
use lcm_apps::{SystemKind, Workload};
use lcm_bench::explore;
use lcm_cstar::{Partition, RuntimeConfig};
use lcm_replay::{analyze, replay, validate, CritPath, TraceFile};
use lcm_sim::{CostModel, CycleCat, Event, FaultConfig, MachineConfig, NodeId};

const NODES: usize = 8;
const CAPACITY: usize = 1 << 20;

fn capture<W: Workload>(benchmark: &str, system: SystemKind, w: &W) -> TraceFile {
    explore::capture_workload(
        benchmark,
        "smoke",
        system,
        NODES,
        RuntimeConfig::default(),
        w,
        CAPACITY,
    )
    .expect("capture holds the whole stream")
}

/// Path length == makespan, and the analyzer's category totals ==
/// the replay engine's ledger, summed over nodes.
fn assert_path_identity(file: &TraceFile, what: &str) -> CritPath {
    let r = validate(file).unwrap_or_else(|e| panic!("{what}: {e}"));
    let cp = analyze(file);
    assert_eq!(cp.makespan, r.time, "{what}: analyzer makespan");
    assert_eq!(
        cp.path_length(),
        cp.makespan,
        "{what}: path length != makespan"
    );
    let totals = cp.total_by_cat();
    for cat in CycleCat::all() {
        let ledger: u64 = (0..file.nodes)
            .map(|n| r.ledger.get(NodeId(n as u16), cat))
            .sum();
        assert_eq!(
            totals[cat.index()],
            ledger,
            "{what}: {} total diverges from the replay ledger",
            cat.label()
        );
    }
    // On-path cycles are a subset of the totals, category by category.
    for (on, total) in cp.on_path_by_cat().iter().zip(&totals) {
        assert!(on <= total, "{what}: on-path exceeds total");
    }
    cp
}

#[test]
fn path_equals_makespan_on_every_benchmark_and_system() {
    for system in SystemKind::all() {
        assert_path_identity(
            &capture("Stencil-dyn", system, &Stencil::small(Partition::Dynamic)),
            &format!("Stencil-dyn/{system}"),
        );
        assert_path_identity(
            &capture("Adaptive-dyn", system, &Adaptive::small(Partition::Dynamic)),
            &format!("Adaptive-dyn/{system}"),
        );
        assert_path_identity(
            &capture("Threshold", system, &Threshold::small()),
            &format!("Threshold/{system}"),
        );
        assert_path_identity(
            &capture("Unstructured", system, &Unstructured::small()),
            &format!("Unstructured/{system}"),
        );
    }
}

#[test]
fn path_holds_under_finite_bandwidth_and_whatif_is_exact() {
    let mut cost = CostModel::cm5();
    cost.link_bandwidth_bytes_per_cycle = 8;
    for system in SystemKind::all() {
        let file = explore::capture_with_machine(
            "Stencil-dyn",
            "smoke",
            system,
            MachineConfig::new(NODES).with_cost(cost),
            RuntimeConfig::default(),
            &Stencil::small(Partition::Dynamic),
            CAPACITY,
        )
        .expect("capture holds the whole stream");
        let cp = assert_path_identity(&file, &format!("Stencil-dyn/{system} @ 8 B/cycle"));
        let nc = cp.total_by_cat()[CycleCat::NetContention.index()];
        assert!(
            nc > 0,
            "{system}: the 8 B/cycle capture must see contention"
        );
        // Zeroing net_contention is exactly checkable: no other charge in
        // the stream depends on the link model, so the projection must
        // equal a genuine replay of the trace at unlimited bandwidth.
        let mut bw0 = file.cost;
        bw0.link_bandwidth_bytes_per_cycle = 0;
        let r0 = replay(&file, &bw0, file.topology);
        assert_eq!(
            cp.whatif(&[CycleCat::NetContention], 0),
            r0.time,
            "{system}: net_contention x0% projection vs zero-bandwidth replay"
        );
        // Leaving every category alone projects the makespan itself.
        assert_eq!(
            cp.whatif(&[CycleCat::NetContention], 100),
            cp.makespan,
            "{system}: x100% is the identity projection"
        );
    }
}

#[test]
fn path_holds_on_a_faulty_capture() {
    // Message drops trigger timeouts and retries; the retry charges land
    // in the stream like any other, so the path identity must survive.
    let file = explore::capture_with_machine(
        "Threshold",
        "smoke",
        SystemKind::LcmMcc,
        MachineConfig::new(NODES).with_faults(FaultConfig::drops(0.05, 42)),
        RuntimeConfig::default(),
        &Threshold::small(),
        CAPACITY,
    )
    .expect("capture holds the whole stream");
    let cp = assert_path_identity(&file, "Threshold/LCM-mcc @ 5% drops");
    assert!(
        cp.total_by_cat()[CycleCat::RetryBackoff.index()] > 0,
        "the faulty capture must have retried"
    );
    // Only successful deliveries record send/recv pairs (a lost attempt
    // charges retry cycles without an event), so even a faulty stream
    // matches cleanly — nothing is invented and nothing dangles.
    assert!(
        file.totals.msgs_dropped > 0,
        "the fault plan must have dropped messages"
    );
    assert_eq!(cp.unmatched_sends, 0, "faulty capture still matches FIFO");
    assert_eq!(cp.unmatched_recvs, 0, "faulty capture still matches FIFO");
}

#[test]
fn path_edges_are_real_recorded_dependencies() {
    let file = capture("Unstructured", SystemKind::LcmMcc, &Unstructured::small());
    let cp = analyze(&file);
    assert!(!cp.edges.is_empty(), "Unstructured must exchange messages");
    // The stream is in seq order; look each edge endpoint up by its seq
    // stamp and demand a genuinely recorded event of the right shape.
    for edge in &cp.edges {
        let send = file
            .events
            .binary_search_by_key(&edge.send_seq, |e| e.seq)
            .map(|i| &file.events[i])
            .unwrap_or_else(|_| panic!("send seq {} not in the stream", edge.send_seq));
        match send.event {
            Event::MsgSend {
                from,
                to,
                kind,
                bytes,
            } => {
                assert_eq!((from, to), (edge.from, edge.to), "send endpoints");
                assert_eq!(kind, edge.kind, "send kind");
                assert_eq!(bytes, edge.bytes, "send bytes");
                assert_eq!(send.cycle, edge.send_cycle, "send cycle stamp");
            }
            ref other => panic!("edge send seq {} is {other:?}", edge.send_seq),
        }
        let recv = file
            .events
            .binary_search_by_key(&edge.recv_seq, |e| e.seq)
            .map(|i| &file.events[i])
            .unwrap_or_else(|_| panic!("recv seq {} not in the stream", edge.recv_seq));
        match recv.event {
            Event::MsgRecv {
                node, from, kind, ..
            } => {
                assert_eq!((from, node), (edge.from, edge.to), "recv endpoints");
                assert_eq!(kind, edge.kind, "recv kind");
                assert_eq!(recv.cycle, edge.recv_cycle, "recv cycle stamp");
            }
            ref other => panic!("edge recv seq {} is {other:?}", edge.recv_seq),
        }
        assert!(edge.send_seq < edge.recv_seq, "sends precede their recvs");
    }
}

#[test]
fn analysis_is_identical_for_capture_and_disk_round_trip() {
    let file = capture("Threshold", SystemKind::LcmScc, &Threshold::small());
    let dir = std::env::temp_dir().join(format!("lcm-critpath-test-{}", std::process::id()));
    let path = dir.join("threshold.lcmtrace");
    file.write_to(&path).expect("writes");
    let back = TraceFile::read_from(&path).expect("reads");
    std::fs::remove_dir_all(&dir).ok();
    let a = analyze(&file);
    let b = analyze(&back);
    // CritPath is pure data; Debug formatting covers every field.
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "capture vs disk");
}

#[test]
fn remote_stall_whatif_tracks_genuine_replay_within_tolerance() {
    // Doubling the remote-stall categories approximates a replay with
    // remote_miss doubled. They diverge only where the engine prices a
    // charge by `remote_miss - msg_send` (§4h documents the limit), so
    // the projection must land within 10% on every system.
    for (name, file) in [
        (
            "Stencil-dyn",
            capture(
                "Stencil-dyn",
                SystemKind::Stache,
                &Stencil::small(Partition::Dynamic),
            ),
        ),
        (
            "Threshold",
            capture("Threshold", SystemKind::LcmMcc, &Threshold::small()),
        ),
        (
            "Unstructured",
            capture("Unstructured", SystemKind::LcmScc, &Unstructured::small()),
        ),
    ] {
        let cp = analyze(&file);
        let pred = cp.whatif(
            &[CycleCat::ReadStallRemote, CycleCat::WriteStallRemote],
            200,
        );
        let mut rm2 = file.cost;
        rm2.remote_miss *= 2;
        let r2 = replay(&file, &rm2, file.topology);
        let err = 100.0 * (pred as f64 - r2.time as f64) / r2.time as f64;
        assert!(
            err.abs() <= 10.0,
            "{name}: remote_stalls x200% projects {pred}, genuine replay says {} ({err:+.2}%)",
            r2.time
        );
    }
}

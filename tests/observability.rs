//! Observability invariants: the cycle ledger conserves every simulated
//! cycle (per-node category sums equal the node clocks, on every
//! benchmark and every system), and the structured event stream
//! reconciles *exactly* with the `NodeStats` counters — tracing is a
//! view of the same execution, never a second bookkeeping system that
//! can drift.

use lcm::prelude::*;
use lcm::sim::Event;

/// A protocol-rich workload: dynamic-partition stencil (copy-on-write
/// phases, reconciliation, boundary ping-pong on all three systems).
fn stencil() -> lcm::apps::stencil::Stencil {
    lcm::apps::stencil::Stencil {
        rows: 24,
        cols: 24,
        iters: 3,
        partition: Partition::Dynamic,
    }
}

/// Asserts the conservation invariant directly on a harvested result:
/// every cycle of every node's clock is attributed to exactly one
/// category.
fn assert_conserved(label: &str, r: &RunResult) {
    assert_eq!(r.clocks.len(), r.ledger.nodes(), "{label}: node count");
    for (n, &clock) in r.clocks.iter().enumerate() {
        let node = NodeId(n as u16);
        let sum: u64 = CycleCat::all().iter().map(|&c| r.ledger.get(node, c)).sum();
        assert_eq!(
            sum, clock,
            "{label}: node {n} categories sum to {sum}, clock reads {clock}"
        );
        assert_eq!(r.ledger.node_total(node), clock, "{label}: node_total");
    }
}

/// Every benchmark of the suite, on every system, conserves cycles.
/// (The sanitizer asserts this inside every harvest too; this test makes
/// the invariant visible and keeps it covered even if the sanitizer's
/// harvest wiring changes.)
#[test]
fn cycle_ledger_conserves_on_every_benchmark() {
    let suite = Suite::run(Scale::Smoke);
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            let r = suite.result(b, s);
            assert_conserved(&format!("{}/{}", b.label(), s.label()), r);
            let grand: u64 = r.ledger.totals().iter().sum();
            assert_eq!(grand, r.clocks.iter().sum::<u64>(), "machine-wide sum");
        }
    }
}

/// Conservation must survive an unreliable network: retry/backoff stalls
/// land in their own category, not in a rounding gap.
#[test]
fn cycle_ledger_conserves_under_faults() {
    let w = stencil();
    for s in SystemKind::all() {
        let faults = FaultConfig::drops(0.02, 0xC0FFEE);
        let (_, r) = execute_with_faults(s, 4, faults, RuntimeConfig::default(), &w);
        assert_conserved(&format!("faulty/{}", s.label()), &r);
        assert!(
            r.ledger.cat_total(CycleCat::RetryBackoff) > 0,
            "{}: dropped messages must surface as retry/backoff cycles",
            s.label()
        );
    }
}

/// The event stream reconciles exactly with the `NodeStats` counters for
/// a small Stencil run on all three protocols: every counted miss,
/// upgrade, mark, flush, invalidation, message, and barrier has exactly
/// one trace event, and nothing was dropped.
#[test]
fn trace_events_reconcile_with_node_stats() {
    let w = stencil();
    for s in SystemKind::all() {
        let mc = MachineConfig::new(4).with_trace(1 << 22);
        let (_, r, events) = execute_traced(s, mc, RuntimeConfig::default(), &w);
        let label = s.label();
        assert_eq!(r.trace_dropped, 0, "{label}: buffer must hold the run");
        assert_eq!(r.trace_events, events.len(), "{label}: event count");

        // Sequence numbers are the recording order, gap-free.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "{label}: seq gap at {i}");
        }

        let count =
            |f: &dyn Fn(&Event) -> bool| events.iter().filter(|e| f(&e.event)).count() as u64;
        let t = &r.totals;
        assert_eq!(
            count(&|e| matches!(e, Event::ReadMiss { .. })),
            t.read_miss_local + t.read_miss_remote,
            "{label}: read misses"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::WriteMiss { .. })),
            t.write_miss_local + t.write_miss_remote,
            "{label}: write misses"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::ReadMiss { remote: true, .. })),
            t.read_miss_remote,
            "{label}: remote read misses"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::Upgrade { .. })),
            t.upgrades,
            "{label}: upgrades"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::Mark { .. })),
            t.marks,
            "{label}: marks"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::CleanCopy { .. })),
            t.clean_copies,
            "{label}: clean copies"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::Flush { .. })),
            t.flushes,
            "{label}: flushes"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::Invalidate { .. })),
            t.invalidations_sent,
            "{label}: invalidations"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::MsgSend { .. })),
            t.msgs_sent,
            "{label}: message sends"
        );
        assert_eq!(
            count(&|e| matches!(e, Event::MsgRecv { .. })),
            t.msgs_recv,
            "{label}: message receipts"
        );
        // One Barrier event per global barrier; stats count per node.
        assert_eq!(
            count(&|e| matches!(e, Event::Barrier { .. })) * 4,
            t.barriers,
            "{label}: barriers"
        );
        // Wire-byte accounting: send and receive sides agree, and the
        // per-kind histogram carried by the result sums to the totals.
        assert_eq!(t.bytes_sent, t.bytes_recv, "{label}: byte conservation");
        let per_kind: u64 = r.msg_bytes.iter().map(|&(_, b)| b).sum();
        assert_eq!(per_kind, t.bytes_sent, "{label}: per-kind byte sum");
        let event_bytes: u64 = events
            .iter()
            .filter_map(|e| match e.event {
                Event::MsgSend { bytes, .. } => Some(bytes),
                _ => None,
            })
            .sum();
        assert_eq!(event_bytes, t.bytes_sent, "{label}: event byte sum");

        // Span events are balanced and cycle stamps never run backwards.
        let begins = count(&|e| matches!(e, Event::SpanBegin { .. }));
        let ends = count(&|e| matches!(e, Event::SpanEnd { .. }));
        assert_eq!(begins, ends, "{label}: span balance");
        // Phase boundaries were stamped: one init plus one per step.
        assert!(!r.phases.is_empty(), "{label}: phases recorded");
        assert_eq!(r.phases[0].label, "init", "{label}: first phase");
        assert_eq!(
            r.phases.iter().filter(|p| p.label == "apply").count(),
            3,
            "{label}: one apply phase per iteration"
        );
        for w in r.phases.windows(2) {
            assert!(w[0].at <= w[1].at, "{label}: phase cycles monotonic");
        }
    }
}

/// Tracing off (the default) records nothing and drops nothing — the
/// zero-cost-when-off contract, checked through the public path.
#[test]
fn tracing_off_records_nothing() {
    let (_, r) = execute(SystemKind::LcmMcc, 4, RuntimeConfig::default(), &stencil());
    assert_eq!(r.trace_events, 0);
    assert_eq!(r.trace_dropped, 0);
    // The ledger and phases still work with tracing off.
    assert_conserved("untraced", &r);
    assert!(!r.phases.is_empty());
}

//! Cross-stack semantic equivalence: the same C\*\* program must compute
//! identical results under every memory system and compilation strategy,
//! on randomized programs — the reproduction's core correctness property.

use lcm::prelude::*;
use proptest::prelude::*;
// Explicit import wins over the two globs (proptest also exports `Strategy`);
// proptest's trait stays usable anonymously for its methods.
use lcm::cstar::Strategy;
use proptest::strategy::Strategy as _;

const N: usize = 12;

/// A random "gather" pattern: each cell's new value is a function of up
/// to three random cells of the old state — exercising reads far outside
/// the writer's partition, cross-block merges, and copy_through.
#[derive(Clone, Debug)]
struct GatherProgram {
    sources: Vec<[(usize, usize); 3]>,
    iters: usize,
}

fn gather_program() -> impl proptest::strategy::Strategy<Value = GatherProgram> {
    (
        proptest::collection::vec(
            proptest::array::uniform3((0usize..N, 0usize..N)),
            N * N..=N * N,
        ),
        1usize..4,
    )
        .prop_map(|(sources, iters)| GatherProgram { sources, iters })
}

fn run_gather<P: MemoryProtocol>(rt: &mut Runtime<P>, prog: &GatherProgram) -> Vec<u32> {
    let m = rt.new_aggregate2::<i32>(N, N, Placement::Blocked, "m");
    rt.init2(m, |r, c| (r * 31 + c * 7) as i32);
    for _ in 0..prog.iters {
        rt.apply2(m, Partition::Static, |inv, r, c| {
            let srcs = prog.sources[r * N + c];
            let a = inv.get(m.at(srcs[0].0, srcs[0].1));
            let b = inv.get(m.at(srcs[1].0, srcs[1].1));
            let d = inv.get(m.at(srcs[2].0, srcs[2].1));
            let v = a.wrapping_mul(3).wrapping_add(b).wrapping_sub(d);
            if v % 3 == 0 {
                inv.set(m.at(r, c), v);
            } else {
                let old = inv.get(m.at(r, c));
                inv.copy_through(m.at(r, c), old);
            }
        });
    }
    (0..N * N)
        .map(|i| rt.peek2(m, i / N, i % N) as u32)
        .collect()
}

/// A host-side reference interpreter of the same program, with strict
/// read-old/write-new semantics.
fn reference(prog: &GatherProgram) -> Vec<u32> {
    let mut old: Vec<i32> = (0..N * N)
        .map(|i| ((i / N) * 31 + (i % N) * 7) as i32)
        .collect();
    for _ in 0..prog.iters {
        let mut new = old.clone();
        for r in 0..N {
            for c in 0..N {
                let srcs = prog.sources[r * N + c];
                let a = old[srcs[0].0 * N + srcs[0].1];
                let b = old[srcs[1].0 * N + srcs[1].1];
                let d = old[srcs[2].0 * N + srcs[2].1];
                let v = a.wrapping_mul(3).wrapping_add(b).wrapping_sub(d);
                if v % 3 == 0 {
                    new[r * N + c] = v;
                }
            }
        }
        old = new;
    }
    old.into_iter().map(|v| v as u32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All four memory-system/strategy combinations match the reference
    /// interpreter exactly.
    #[test]
    fn every_system_matches_the_reference(prog in gather_program()) {
        let expect = reference(&prog);

        let mut rt = Runtime::new(Stache::new(MachineConfig::new(4)), Strategy::ExplicitCopy);
        prop_assert_eq!(run_gather(&mut rt, &prog), expect.clone(), "stache+copying");

        let mut rt = Runtime::new(
            Lcm::new(MachineConfig::new(4), LcmVariant::Scc),
            Strategy::LcmDirectives,
        );
        prop_assert_eq!(run_gather(&mut rt, &prog), expect.clone(), "lcm-scc");

        let mut rt = Runtime::new(
            Lcm::new(MachineConfig::new(4), LcmVariant::Mcc),
            Strategy::LcmDirectives,
        );
        prop_assert_eq!(run_gather(&mut rt, &prog), expect.clone(), "lcm-mcc");

        // LCM protocol driven through the explicit-copying strategy also
        // works (the strategies are independent of the protocol).
        let mut rt = Runtime::new(
            Lcm::new(MachineConfig::new(4), LcmVariant::Mcc),
            Strategy::ExplicitCopy,
        );
        prop_assert_eq!(run_gather(&mut rt, &prog), expect, "lcm+copying");
    }

    /// Dynamic partitioning changes *where* invocations run, never what
    /// they compute.
    #[test]
    fn dynamic_partitioning_is_semantically_invisible(prog in gather_program()) {
        let run_dynamic = |mem_seed: u64| {
            let cfg = RuntimeConfig { seed: mem_seed, ..RuntimeConfig::default() };
            let mut rt = Runtime::with_config(
                Lcm::new(MachineConfig::new(4), LcmVariant::Mcc),
                Strategy::LcmDirectives,
                cfg,
            );
            let m = rt.new_aggregate2::<i32>(N, N, Placement::Blocked, "m");
            rt.init2(m, |r, c| (r * 31 + c * 7) as i32);
            for _ in 0..prog.iters {
                rt.apply2(m, Partition::Dynamic, |inv, r, c| {
                    let srcs = prog.sources[r * N + c];
                    let a = inv.get(m.at(srcs[0].0, srcs[0].1));
                    let b = inv.get(m.at(srcs[1].0, srcs[1].1));
                    let d = inv.get(m.at(srcs[2].0, srcs[2].1));
                    inv.set(m.at(r, c), a.wrapping_mul(3).wrapping_add(b).wrapping_sub(d));
                });
            }
            (0..N * N).map(|i| rt.peek2(m, i / N, i % N)).collect::<Vec<_>>()
        };
        // Different schedule seeds, identical results.
        prop_assert_eq!(run_dynamic(1), run_dynamic(99));
    }
}

/// C\*\*'s guarantee in one deterministic scenario: an in-place shift
/// where naive execution order would corrupt the result.
#[test]
fn simultaneous_semantics_shift() {
    for strategy in [Strategy::LcmDirectives, Strategy::ExplicitCopy] {
        let results: Vec<i32> = match strategy {
            Strategy::LcmDirectives => {
                let mut rt =
                    Runtime::new(Lcm::new(MachineConfig::new(4), LcmVariant::Mcc), strategy);
                shift(&mut rt)
            }
            Strategy::ExplicitCopy => {
                let mut rt = Runtime::new(Stache::new(MachineConfig::new(4)), strategy);
                shift(&mut rt)
            }
        };
        let expect: Vec<i32> = (1..32).chain([31]).collect();
        assert_eq!(results, expect, "{strategy:?}");
    }
}

fn shift<P: MemoryProtocol>(rt: &mut Runtime<P>) -> Vec<i32> {
    let a = rt.new_aggregate1::<i32>(32, Placement::Blocked, "v");
    rt.init1(a, |i| i as i32);
    rt.apply1(a, Partition::Static, |inv, i| {
        let next = inv.get(a.at((i + 1).min(31)));
        inv.set(a.at(i), next);
    });
    (0..32).map(|i| rt.peek1(a, i)).collect()
}

//! Fail-stop crash recovery: under ANY deterministic crash schedule —
//! alone or combined with every existing network-fault class (drops,
//! duplicates, delays, barrier stalls) — every memory system must
//! compute results bit-identical to the clean run. A crash costs
//! checkpoint, rollback and re-execution cycles (ledger-conserved,
//! sanitizer-checked inside every harvest) but never changes a value:
//! the §4d contract extended from an unreliable network to mortal nodes.

use lcm::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// The protocol-rich stencil of `tests/faults.rs`: ping-pongs boundary
/// blocks, exercises copy-on-write phases, reconciliation and
/// invalidations on all three systems.
fn stencil() -> lcm::apps::stencil::Stencil {
    lcm::apps::stencil::Stencil {
        rows: 24,
        cols: 24,
        iters: 3,
        partition: Partition::Dynamic,
    }
}

/// Runs the stencil with both a network-fault schedule and a crash plan
/// (wired from the config's `crash_rate`/`crash_seed` fields).
fn run_with_recovery(
    system: SystemKind,
    faults: FaultConfig,
    checkpoint_every: u64,
) -> (u64, RunResult) {
    let cfg = RuntimeConfig {
        checkpoint_every,
        ..RuntimeConfig::default()
    };
    execute_with_faults(system, 4, faults, cfg, &stencil())
}

/// A mixed schedule: every network-fault class active at once, plus
/// fail-stop crashes.
fn crash_schedule() -> impl proptest::strategy::Strategy<Value = FaultConfig> {
    (
        (0u32..=60, 0u32..=30, 0u32..=30, 1u64..400, 0u64..u64::MAX),
        (0u32..=40, 1u64..20_000, 1u32..=400, 0u64..u64::MAX),
    )
        .prop_map(
            |(
                (drop_pm, dup_pm, delay_pm, max_delay, seed),
                (stall_pc, stall_cycles, crash_pm, crash_seed),
            )| {
                FaultConfig {
                    drop_rate: drop_pm as f64 / 1000.0,
                    dup_rate: dup_pm as f64 / 1000.0,
                    delay_rate: delay_pm as f64 / 1000.0,
                    max_delay,
                    seed,
                    max_retries: 40,
                    stall_rate: stall_pc as f64 / 100.0,
                    stall_cycles,
                    crash_rate: crash_pm as f64 / 1000.0,
                    crash_seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The headline property: crashes layered on top of any network-fault
    /// schedule still yield the bit-identical program output on every
    /// system, only ever cost cycles, and keep the ledger conserved (the
    /// sanitizer runs inside every harvest).
    #[test]
    fn crashes_with_any_fault_schedule_preserve_results(faults in crash_schedule()) {
        for system in SystemKind::all() {
            let (clean_out, clean) =
                run_with_recovery(system, FaultConfig::default(), 1);
            let (faulty_out, faulty) = run_with_recovery(system, faults, 1);
            prop_assert_eq!(&clean_out, &faulty_out);
            prop_assert!(faulty.time >= clean.time);
            // A clean run never checkpoints and never crashes.
            prop_assert_eq!(clean.totals.checkpoints, 0);
            prop_assert_eq!(clean.totals.crashes, 0);
        }
    }

    /// Checkpoint granularity is a pure cost axis: coarser checkpoints
    /// under the same crash-and-fault schedule change cycles only.
    #[test]
    fn checkpoint_granularity_never_changes_results(faults in crash_schedule()) {
        for system in SystemKind::all() {
            let (out_1, _) = run_with_recovery(system, faults, 1);
            let (out_2, _) = run_with_recovery(system, faults, 2);
            let (out_8, _) = run_with_recovery(system, faults, 8);
            prop_assert_eq!(&out_1, &out_2);
            prop_assert_eq!(&out_1, &out_8);
        }
    }

    /// Identical `(schedule, crash seed)` pairs reproduce identical runs:
    /// cycle counts, crash counts, checkpoint bytes and all.
    #[test]
    fn identical_crash_seeds_reproduce_identical_runs(faults in crash_schedule()) {
        for system in SystemKind::all() {
            let (out_a, a) = run_with_recovery(system, faults, 1);
            let (out_b, b) = run_with_recovery(system, faults, 1);
            prop_assert_eq!(out_a, out_b);
            prop_assert_eq!(a.time, b.time);
            prop_assert_eq!(&a.totals, &b.totals);
        }
    }

    /// Message conservation survives crashes: detection is charged in
    /// cycles, not messages, so every delivered message is still counted
    /// at both ends and the per-kind sum still matches the network total.
    #[test]
    fn message_accounting_is_conserved_under_crashes(faults in crash_schedule()) {
        for system in SystemKind::all() {
            let (_, r) = run_with_recovery(system, faults, 1);
            prop_assert_eq!(r.totals.msgs_sent, r.totals.msgs_recv);
            prop_assert_eq!(r.msgs_total(), r.totals.msgs_sent);
            prop_assert_eq!(r.totals.msgs_dropped, r.net_dropped);
            prop_assert_eq!(r.totals.msgs_duplicated, r.net_duplicated);
        }
    }
}

/// A node that crashes while the network is ALSO dropping its retries and
/// stalling its barriers — the nastiest interaction the model allows —
/// still recovers to byte-identical output, and the crash machinery
/// demonstrably engaged.
#[test]
fn crash_during_retry_storm_and_barrier_stalls_recovers() {
    let hostile = FaultConfig {
        drop_rate: 0.05,
        dup_rate: 0.02,
        delay_rate: 0.02,
        max_delay: 200,
        seed: 11,
        max_retries: 40,
        stall_rate: 0.5,
        stall_cycles: 5_000,
        crash_rate: 0.5,
        crash_seed: 0xDEAD,
    };
    for system in SystemKind::all() {
        let (clean_out, clean) = run_with_recovery(system, FaultConfig::default(), 1);
        let (out, r) = run_with_recovery(system, hostile, 1);
        assert_eq!(clean_out, out, "{system}: recovery changed the answer");
        assert!(r.totals.crashes > 0, "{system}: the schedule crashed nodes");
        assert!(
            r.totals.checkpoints > 0,
            "{system}: active crash plans checkpoint at phase boundaries"
        );
        assert!(
            r.totals.checkpoint_bytes > 0,
            "{system}: checkpoints captured state"
        );
        assert!(r.time > clean.time, "{system}: recovery costs cycles");
        // Cycles moved into the recovery categories and nowhere else
        // broke: per-node conservation was already checked by the
        // sanitizer inside harvest; the totals must show the work.
        let cats = r.ledger.totals();
        assert!(cats[CycleCat::Checkpoint.index()] > 0, "{system}");
        assert!(cats[CycleCat::Rollback.index()] > 0, "{system}");
        assert!(cats[CycleCat::CrashDetect.index()] > 0, "{system}");
    }
}

/// Crash-free runs are bit-identical to a build without the crash
/// subsystem: an inactive plan draws nothing, checkpoints nothing, and
/// charges nothing.
#[test]
fn inactive_crash_plan_is_invisible() {
    for system in SystemKind::all() {
        let (out_a, a) = run_with_recovery(system, FaultConfig::default(), 1);
        // Same run through the plain (non-fault) path.
        let (out_b, b) = execute(system, 4, RuntimeConfig::default(), &stencil());
        assert_eq!(out_a, out_b);
        assert_eq!(a.time, b.time, "{system}: dormant recovery cost cycles");
        let cats = a.ledger.totals();
        assert_eq!(cats[CycleCat::Checkpoint.index()], 0);
        assert_eq!(cats[CycleCat::Rollback.index()], 0);
        assert_eq!(cats[CycleCat::CrashDetect.index()], 0);
    }
}

/// The acceptance sweep shape: crash rates {0, 0.1, 0.3, 0.6} × both
/// checkpoint granularities, all three systems, bit-identical outputs
/// throughout — and the checkpoint-size asymmetry: LCM's incremental
/// unreconciled-word checkpoints are strictly smaller than Stache's
/// dirty-line + directory captures.
#[test]
fn acceptance_crash_rate_sweep_is_bit_identical() {
    for system in SystemKind::all() {
        let mut reference = None;
        for rate in [0.0, 0.1, 0.3, 0.6] {
            for every in [1, 4] {
                let faults = FaultConfig::crashes(rate, 0xC0FFEE);
                let (out, _) = run_with_recovery(system, faults, every);
                match &reference {
                    None => reference = Some(out),
                    Some(expected) => {
                        assert_eq!(
                            expected, &out,
                            "{system} at crash rate {rate} every {every}"
                        )
                    }
                }
            }
        }
    }
    let bytes = |system: SystemKind| {
        let (_, r) = run_with_recovery(system, FaultConfig::crashes(0.3, 7), 1);
        r.totals.checkpoint_bytes
    };
    let (mcc, stache) = (bytes(SystemKind::LcmMcc), bytes(SystemKind::Stache));
    assert!(
        mcc < stache,
        "LCM-mcc checkpoints {mcc} bytes, Stache {stache}: the asymmetry is the result"
    );
}

/// Reductions (read-modify-write combining) survive crash recovery
/// exactly: the combined sum's bits never drift.
#[test]
fn reductions_survive_crashes_exactly() {
    struct Sum;
    impl Workload for Sum {
        type Output = f64;
        fn run<P: MemoryProtocol>(&self, rt: &mut Runtime<P>) -> f64 {
            let a = rt.new_aggregate1::<f32>(256, lcm::tempest::Placement::Blocked, "a");
            rt.init1(a, |i| (i % 9) as f32);
            let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "total");
            rt.apply1(a, Partition::Static, |inv, i| {
                let v = inv.get(a.at(i)) as f64;
                inv.reduce_f64(total, v);
            });
            rt.peek_reduction(total)
        }
    }
    let mut sums = std::collections::BTreeSet::new();
    for system in SystemKind::all() {
        for rate in [0.0, 0.2, 0.6] {
            let cfg = RuntimeConfig::default();
            let (sum, _) = execute_with_faults(system, 4, FaultConfig::crashes(rate, 3), cfg, &Sum);
            sums.insert((system.label(), sum.to_bits()));
        }
    }
    // One distinct sum per system (systems may differ in rounding order,
    // crash rates within a system may not).
    assert_eq!(
        sums.len(),
        SystemKind::all().len(),
        "a reduction drifted across crash rates: {sums:?}"
    );
}

/// A sweep grid containing an unrunnable point must not lose the
/// healthy points, and the failure report must carry both the sweep key
/// and the panic site (`file:line`) so the offending configuration is
/// identifiable from stderr alone. This drives a *real* simulator panic
/// (an invalid crash rate rejected inside `FaultPlan::new`) through the
/// same `try_par_map` + key-tagging contract the scale and bench sweep
/// drivers use.
#[test]
fn sweep_failures_carry_sweep_key_and_panic_location() {
    let mut points: Vec<FaultConfig> = [0.0, 0.1, 0.4]
        .into_iter()
        .map(|rate| FaultConfig::crashes(rate, 9))
        .collect();
    // crash_rate 2.0 fails fault-plan validation inside the run itself.
    points.push(FaultConfig::crashes(2.0, 9));
    let keys: Vec<String> = points
        .iter()
        .map(|f| format!("stencil/LCM-mcc/crash-rate={}", f.crash_rate))
        .collect();
    let baseline = run_with_recovery(SystemKind::LcmMcc, points[0], 2)
        .1
        .digest();
    for jobs in [1, 4] {
        let results = lcm::sim::try_par_map(jobs, points.clone(), |_, faults| {
            run_with_recovery(SystemKind::LcmMcc, faults, 2).1.digest()
        });
        let mut failures = Vec::new();
        for (key, r) in keys.iter().zip(&results) {
            match r {
                Ok(digest) => {
                    if key.ends_with("crash-rate=0") {
                        assert_eq!(*digest, baseline, "jobs={jobs}: healthy point drifted");
                    }
                }
                Err(e) => failures.push(format!("{key}: {e}")),
            }
        }
        assert_eq!(failures.len(), 1, "jobs={jobs}: {failures:?}");
        let report = &failures[0];
        assert!(
            report.starts_with("stencil/LCM-mcc/crash-rate=2:"),
            "jobs={jobs}: sweep key missing: {report}"
        );
        assert!(
            report.contains("fault.rs:"),
            "jobs={jobs}: panic location missing: {report}"
        );
        assert!(
            report.ends_with("crash_rate 2 outside [0, 1]"),
            "jobs={jobs}: panic message lost: {report}"
        );
    }
}

//! The trace-capture / replay contract (DESIGN.md §4f).
//!
//! Three guarantees, end to end:
//!
//! * **Round-trip fidelity** — serializing a capture to `.lcmtrace`
//!   bytes and parsing them back reproduces the identical event stream,
//!   machine configuration and footer.
//! * **Exact replay** — replaying a capture under its own cost model
//!   rebuilds every per-node clock and every cycle-ledger cell of the
//!   execution-driven run, for all four Figure-3 benchmarks on all
//!   three memory systems, including a capture taken under finite link
//!   bandwidth (so contention charges replay exactly too).
//! * **Explorer determinism and speed** — the design-space explorer
//!   produces byte-identical CSV at any worker count, and re-pricing a
//!   grid by replay beats re-executing it.

use lcm_apps::adaptive::Adaptive;
use lcm_apps::stencil::Stencil;
use lcm_apps::threshold::Threshold;
use lcm_apps::unstructured::Unstructured;
use lcm_apps::{SystemKind, Workload};
use lcm_bench::explore;
use lcm_cstar::{Partition, RuntimeConfig};
use lcm_replay::{replay, validate, TraceFile};
use lcm_sim::{CostModel, CycleCat, MachineConfig, NodeId};

const NODES: usize = 8;
const CAPACITY: usize = 1 << 20;

fn capture<W: Workload>(benchmark: &str, system: SystemKind, w: &W) -> TraceFile {
    explore::capture_workload(
        benchmark,
        "smoke",
        system,
        NODES,
        RuntimeConfig::default(),
        w,
        CAPACITY,
    )
    .expect("capture holds the whole stream")
}

/// Validates one capture and cross-checks the replayed clocks/ledger
/// against the execution-driven footer (validate() already does this;
/// the explicit re-check here keeps the test meaningful if validate()
/// ever weakens).
fn assert_exact(file: &TraceFile, what: &str) {
    let r = validate(file).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert_eq!(r.clocks, file.clocks, "{what}: clocks");
    assert_eq!(
        r.time,
        file.clocks.iter().copied().max().unwrap(),
        "{what}: time"
    );
    for n in 0..file.nodes {
        for cat in CycleCat::all() {
            assert_eq!(
                r.ledger.get(NodeId(n as u16), cat),
                file.ledger.get(NodeId(n as u16), cat),
                "{what}: node {n} {}",
                cat.label()
            );
        }
    }
}

#[test]
fn replay_reproduces_execution_on_every_benchmark_and_system() {
    for system in SystemKind::all() {
        assert_exact(
            &capture("Stencil-dyn", system, &Stencil::small(Partition::Dynamic)),
            &format!("Stencil-dyn/{system}"),
        );
        assert_exact(
            &capture("Adaptive-dyn", system, &Adaptive::small(Partition::Dynamic)),
            &format!("Adaptive-dyn/{system}"),
        );
        assert_exact(
            &capture("Threshold", system, &Threshold::small()),
            &format!("Threshold/{system}"),
        );
        assert_exact(
            &capture("Unstructured", system, &Unstructured::small()),
            &format!("Unstructured/{system}"),
        );
    }
}

#[test]
fn replay_is_exact_under_a_finite_bandwidth_capture() {
    let mut cost = CostModel::cm5();
    cost.link_bandwidth_bytes_per_cycle = 8;
    for system in SystemKind::all() {
        let file = explore::capture_with_machine(
            "Stencil-dyn",
            "smoke",
            system,
            MachineConfig::new(NODES).with_cost(cost),
            RuntimeConfig::default(),
            &Stencil::small(Partition::Dynamic),
            CAPACITY,
        )
        .expect("capture holds the whole stream");
        let contention: u64 = (0..file.nodes)
            .map(|n| file.ledger.get(NodeId(n as u16), CycleCat::NetContention))
            .sum();
        assert!(
            contention > 0,
            "{system}: the 8 B/cycle capture must have seen contention"
        );
        assert_exact(&file, &format!("Stencil-dyn/{system} @ 8 B/cycle"));
    }
}

#[test]
fn trace_files_round_trip_through_bytes() {
    let file = capture("Threshold", SystemKind::LcmMcc, &Threshold::small());
    let bytes = file.to_bytes();
    let parsed = TraceFile::from_bytes(&bytes).expect("parses");
    assert_eq!(file.events, parsed.events, "event stream");
    assert_eq!(file.clocks, parsed.clocks, "clocks");
    assert_eq!(file.cost, parsed.cost, "cost model");
    assert_eq!(file.topology, parsed.topology, "topology");
    assert_eq!(file.metadata, parsed.metadata, "metadata");
    assert_eq!(file.phase_index, parsed.phase_index, "phase index");
    assert_eq!(file.totals, parsed.totals, "totals");
    assert_eq!(file.fingerprint(), parsed.fingerprint(), "fingerprint");
    assert_eq!(bytes, parsed.to_bytes(), "re-serialization is stable");
    // The parsed file passes validation too: nothing was lost in transit.
    validate(&parsed).expect("parsed file validates");
}

#[test]
fn trace_files_survive_disk() {
    let file = capture("Threshold", SystemKind::LcmScc, &Threshold::small());
    let dir = std::env::temp_dir().join(format!("lcmtrace-test-{}", std::process::id()));
    let path = dir.join("threshold.lcmtrace");
    file.write_to(&path).expect("writes");
    let back = TraceFile::read_from(&path).expect("reads");
    assert_eq!(file.events, back.events);
    std::fs::remove_dir_all(&dir).ok();
    // Missing files name the path in the error.
    let err = TraceFile::read_from(&path).expect_err("gone");
    assert!(
        err.contains("threshold.lcmtrace"),
        "error names the path: {err}"
    );
}

#[test]
fn explorer_is_deterministic_across_worker_counts() {
    let files: Vec<lcm_replay::TraceHandle> = SystemKind::all()
        .into_iter()
        .map(|s| std::sync::Arc::new(capture("Threshold", s, &Threshold::small())))
        .collect();
    let bandwidths = [0, 16, 4];
    let latencies = [500, 3000, 12000];
    let serial = explore::explore_grid(&files, &bandwidths, &latencies, 1);
    for jobs in [2, 4, 8] {
        let pooled = explore::explore_grid(&files, &bandwidths, &latencies, jobs);
        assert_eq!(serial, pooled, "jobs={jobs}: explorer rows diverged");
        assert_eq!(
            explore::explore_csv(&serial),
            explore::explore_csv(&pooled),
            "jobs={jobs}: CSV bytes diverged"
        );
    }
}

#[test]
fn replaying_a_grid_beats_reexecuting_it() {
    let w = Stencil::small(Partition::Dynamic);
    let system = SystemKind::LcmMcc;
    let bandwidths = [0, 16, 4];
    let latencies = [500, 3000, 12000];

    let reexec_start = std::time::Instant::now();
    let reexec = explore::reexecute_grid(
        "Stencil-dyn",
        system,
        NODES,
        RuntimeConfig::default(),
        &w,
        &bandwidths,
        &latencies,
    );
    let reexec_time = reexec_start.elapsed();

    let file = std::sync::Arc::new(capture("Stencil-dyn", system, &w));
    let replay_start = std::time::Instant::now();
    let replayed = explore::explore_grid(std::slice::from_ref(&file), &bandwidths, &latencies, 1);
    let replay_time = replay_start.elapsed();

    assert_eq!(reexec.len(), replayed.len());
    // The capture-model point must agree exactly with re-execution; the
    // remaining points re-price the same fixed control flow.
    let baseline = replayed
        .iter()
        .zip(&reexec)
        .find(|(r, _)| r.bandwidth == 0 && r.latency == file.cost.remote_miss);
    if let Some((r, x)) = baseline {
        assert_eq!(r.time, x.time, "capture-model grid point");
    }
    assert!(
        replay_time < reexec_time,
        "replaying the grid ({replay_time:?}) must beat re-executing it ({reexec_time:?})"
    );
}

#[test]
fn replay_repricing_matches_reexecution_without_contention() {
    // Under unlimited bandwidth the simulator's control flow is
    // cost-model independent, so replay under a *different* model must
    // equal a genuine re-execution under that model.
    let w = Threshold::small();
    for system in SystemKind::all() {
        let file = capture("Threshold", system, &w);
        for &lat in &[500u64, 12000] {
            let cost = explore::grid_cost(0, lat);
            let r = replay(&file, &cost, file.topology);
            let mc = MachineConfig::new(NODES).with_cost(cost);
            let exec = lcm_apps::execute_with_machine(system, mc, RuntimeConfig::default(), &w).1;
            assert_eq!(
                r.time, exec.time,
                "{system} @ latency {lat}: replay vs re-execution"
            );
            assert_eq!(r.clocks, exec.clocks, "{system} @ latency {lat}: clocks");
        }
    }
}

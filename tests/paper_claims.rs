//! End-to-end reproduction check: every §6.3 prose claim of the paper
//! must hold on a medium-scale run of the full benchmark suite.
//!
//! `Scale::Medium` shrinks problem sizes (256² meshes, fewer iterations,
//! 16 processors) while preserving all of the paper's orderings; the
//! paper-scale numbers are produced by
//! `cargo run -p lcm-bench --release --bin repro -- --scale paper`.

use lcm::prelude::*;

#[test]
fn all_section_6_3_claims_hold_at_medium_scale() {
    let suite = Suite::run(Scale::Medium);
    let claims = suite.claims();
    assert_eq!(claims.len(), 11);
    let failing: Vec<String> = claims
        .iter()
        .filter(|c| !c.holds)
        .map(|c| {
            format!(
                "{} (paper {}, measured {})",
                c.description, c.paper, c.measured
            )
        })
        .collect();
    assert!(
        failing.is_empty(),
        "claims failing at medium scale:\n{}",
        failing.join("\n")
    );

    // Table 1 shape checks on the same runs.
    for (b, misses, clean) in suite.table1() {
        assert!(misses.iter().all(|&m| m > 0), "{b}: all systems miss");
        assert!(
            clean[0] > 0 && clean[1] > 0,
            "{b}: LCM variants make clean copies"
        );
        assert!(
            clean[1] >= clean[0],
            "{b}: mcc makes at least as many clean copies as scc"
        );
    }

    // Figure 2/3 rows exist for every benchmark × system.
    assert_eq!(suite.fig2().len(), 6);
    assert_eq!(suite.fig3().len(), 12);
    assert!(suite.fig2().iter().all(|&(_, _, t)| t > 0));
    assert!(suite.fig3().iter().all(|&(_, _, t)| t > 0));
}

#[test]
fn stencil_table1_orderings() {
    use Benchmark::*;
    use SystemKind::*;
    // The three central Table 1 relations, checked directly:
    // 1. mcc has far fewer misses than scc (prose: ~8x);
    let scc = StencilStat.run(Scale::Medium, LcmScc);
    let mcc = StencilStat.run(Scale::Medium, LcmMcc);
    assert!(scc.misses() > 3 * mcc.misses());
    // 2. dynamic scheduling wrecks the copying baseline's miss rate;
    let cp_stat = StencilStat.run(Scale::Medium, Stache);
    let cp_dyn = StencilDyn.run(Scale::Medium, Stache);
    assert!(cp_dyn.misses() > 3 * cp_stat.misses());
    // 3. mcc's clean copies exceed scc's (per-node vs home-only copies).
    assert!(mcc.clean_copies() > scc.clean_copies());
}

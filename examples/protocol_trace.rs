//! Watching the protocol work: event traces of one parallel call.
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```
//!
//! Runs a tiny stencil step under LCM-mcc with event tracing enabled and
//! prints the raw event stream of one invocation plus an aggregate
//! summary — useful for understanding (or debugging) what `mark` /
//! `flush` / `reconcile` actually do to the memory system.

use lcm::prelude::*;

fn main() {
    let config = MachineConfig::new(2).with_trace(100_000);
    let mut mem = Lcm::new(config, LcmVariant::Mcc);
    let a = mem.tempest_mut().alloc(4096, Placement::Blocked, "mesh");
    mem.register_cow_region(a, 4096, MergePolicy::KeepOne);

    // Initialize a few words, then run one tiny "parallel call" by hand.
    for w in 0..4 {
        mem.write_f32(NodeId(0), a.offset(w * 4), w as f32);
    }
    mem.tempest_mut().machine.reset_measurements(); // trace only the call

    mem.begin_parallel_phase();
    // Node 1's "invocation": read a neighbor, write its own cell.
    let left = mem.read_f32(NodeId(1), a);
    mem.mark_modification(NodeId(1), a.offset(4));
    mem.write_f32(NodeId(1), a.offset(4), left + 10.0);
    mem.flush_copies(NodeId(1));
    // Node 0's "invocation" reads clean data meanwhile.
    let still_clean = mem.read_f32(NodeId(0), a.offset(4));
    assert_eq!(
        still_clean, 1.0,
        "modifications stay private until reconcile"
    );
    mem.reconcile_copies();
    assert_eq!(mem.read_f32(NodeId(0), a.offset(4)), 10.0);

    println!("event stream of one LCM parallel call (2 nodes):\n");
    for e in mem.tempest().machine.trace().events() {
        println!("  {e:?}");
    }
    println!("\nsummary:\n{}", mem.tempest().machine.trace().summarize());
}

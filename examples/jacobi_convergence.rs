//! A Jacobi solver driven by a C\*\* reduction: parallel phases
//! alternating with scalar convergence checks.
//!
//! ```text
//! cargo run --release --example jacobi_convergence
//! ```

use lcm::apps::jacobi::Jacobi;
use lcm::prelude::*;

fn main() {
    let w = Jacobi::default_size();
    println!(
        "solving Laplace on a {0}x{0} mesh until the summed squared residual < {1}\n",
        w.size, w.tolerance
    );
    for sys in SystemKind::all() {
        let ((iters, residual_bits, _), r) = execute(sys, 8, RuntimeConfig::default(), &w);
        println!(
            "  {:8} converged in {:>3} iterations (residual {:.3}) — {:>12} cycles, {:>7} misses",
            sys.label(),
            iters,
            f64::from_bits(residual_bits),
            r.time,
            r.misses()
        );
    }
    println!("\nEvery invocation both relaxes its cell (keep-one reconciliation)");
    println!("and contributes `%+=` its squared residual (reduction");
    println!("reconciliation) in the same parallel call. Note the Stache");
    println!("baseline paying for the shared accumulator on every invocation");
    println!("(the §7.1 ping-pong), on top of the copying traffic.");
}

//! The paper's headline workload: a dynamically-refined adaptive mesh
//! (paper §6.2), where LCM's fine-grain copy-on-write beats conservative
//! whole-structure copying.
//!
//! ```text
//! cargo run --release --example adaptive_mesh
//! ```

use lcm::apps::adaptive::Adaptive;
use lcm::prelude::*;

fn main() {
    println!("Adaptive mesh (64x64 base, quad-trees to depth 4), 16 processors\n");
    let w = Adaptive {
        size: 64,
        iters: 40,
        ..Adaptive::paper(Partition::Dynamic)
    };
    let cfg = RuntimeConfig::default();

    println!("dynamic partitioning (a load-balancing runtime's schedule):");
    let mut baseline = 0u64;
    for sys in SystemKind::all() {
        let ((_, quads), r) = execute(sys, 16, cfg, &w);
        if sys == SystemKind::LcmScc {
            baseline = r.time;
        }
        println!(
            "  {:8} {:>12} cycles ({:>5.2}x vs LCM-scc)  misses={:<8} quad nodes allocated={}",
            sys.label(),
            r.time,
            r.time as f64 / baseline as f64,
            r.misses(),
            quads
        );
    }

    let w = Adaptive {
        partition: Partition::Static,
        ..w
    };
    println!("\nstatic partitioning (repeatable schedule):");
    for sys in SystemKind::all() {
        let (_, r) = execute(sys, 16, cfg, &w);
        println!(
            "  {:8} {:>12} cycles  misses={}",
            sys.label(),
            r.time,
            r.misses()
        );
    }

    println!("\nWith dynamic behavior a compiler cannot tell which parts of the");
    println!("mesh will change, so the copying baseline carries the whole");
    println!("quad-tree structure between iterations; LCM copies only the");
    println!("blocks that are actually modified (paper §6.2).");
}

//! N-body with stale far-field positions (paper §7.5's motivating case).
//!
//! ```text
//! cargo run --release --example nbody
//! ```
//!
//! Prints the accuracy/traffic trade: the RMS trajectory deviation from
//! the exact (coherent) run against the miss count, per refresh interval.

use lcm::apps::nbody::{rms_error, run_nbody, NBody, NBodySystem, POSITION_SCALE};

fn main() {
    let base = NBody::default_size();
    println!(
        "{} bodies, {} steps, 8 processors\n",
        base.bodies, base.steps
    );
    let (reference, coherent) = run_nbody(NBodySystem::Coherent, 8, &base);
    println!(
        "  {:<18} {:>12} cycles  {:>7} misses   rms error 0",
        "coherent",
        coherent.time,
        coherent.misses()
    );
    for k in [2usize, 4, 8, 16] {
        let w = NBody {
            refresh_every: k,
            ..base
        };
        let (pos, run) = run_nbody(NBodySystem::StaleRegion, 8, &w);
        let err = rms_error(&reference, &pos);
        println!(
            "  {:<18} {:>12} cycles  {:>7} misses   rms error {:.4} ({:.2}% of box)",
            format!("refresh every {k}"),
            run.time,
            run.misses(),
            err,
            100.0 * err / POSITION_SCALE
        );
    }
    println!("\nDistant bodies move slowly relative to the force they exert, so");
    println!("aged positions barely perturb trajectories while the coherence");
    println!("traffic falls with the refresh interval (paper §7.5).");
}

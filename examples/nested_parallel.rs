//! Nested parallel functions — the C\*\* feature the paper defers
//! ("this paper considers only non-nested parallel functions", §4.2),
//! implemented here as an extension.
//!
//! ```text
//! cargo run --release --example nested_parallel
//! ```
//!
//! An outer parallel call runs one invocation per matrix block-row; each
//! invocation makes a *nested* parallel call that normalizes its row
//! against the row maximum (computed with a nested max-reduction). Inner
//! invocations see the parent's private state; their results merge into
//! the parent, and nothing becomes global until the outer call completes.

use lcm::prelude::*;

fn main() {
    let nodes = 8;
    let (rows, cols) = (8usize, 64usize);
    let mem = Lcm::new(MachineConfig::new(nodes), LcmVariant::Mcc);
    let mut rt = Runtime::new(mem, Strategy::LcmDirectives);

    let m = rt.new_aggregate2::<f32>(rows, cols, Placement::Blocked, "matrix");
    rt.init2(m, |r, c| ((r * 31 + c * 7) % 97) as f32);
    let rowctl = rt.new_aggregate1::<i32>(rows, Placement::Blocked, "rows");
    let chunks = rt.new_aggregate1::<i32>(8, Placement::Blocked, "chunks");

    println!("normalizing each of {rows} rows with a nested parallel call…");
    rt.apply1(rowctl, Partition::Static, |inv, r| {
        // The parent invocation finds its row's maximum…
        let mut row_max = f32::MIN;
        for c in 0..cols {
            row_max = row_max.max(inv.get(m.at(r, c)));
        }
        // …then makes a nested parallel call: eight inner invocations,
        // spread across all processors, each normalizing a slice of the
        // row against that maximum.
        inv.apply_nested1(chunks, |inner, chunk| {
            let per = cols / 8;
            for c in chunk * per..(chunk + 1) * per {
                let v = inner.get(m.at(r, c));
                inner.set(m.at(r, c), v / row_max);
            }
        });
        // The parent already sees the normalized row privately:
        assert!(inv.get(m.at(r, 0)) <= 1.0);
    });

    let mut global_max = f32::MIN;
    for r in 0..rows {
        for c in 0..cols {
            global_max = global_max.max(rt.peek2(m, r, c));
        }
    }
    println!("after the outer reconcile, the global matrix maximum is {global_max}");
    assert!((global_max - 1.0).abs() < 1e-6);
    let t = rt.mem().tempest();
    println!(
        "protocol work: {} misses, {} flushes, {} versions reconciled, time {} cycles",
        t.machine.total_stats().misses(),
        t.machine.total_stats().flushes,
        t.machine.total_stats().versions_reconciled,
        t.machine.time()
    );
}

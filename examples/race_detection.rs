//! Run-time detection of conflicting side effects (paper §7.2/7.3).
//!
//! ```text
//! cargo run --release --example race_detection
//! ```
//!
//! LCM detects semantic violations without per-location access histories:
//! reconciliation flags words claimed by multiple writers and blocks
//! modified while read-only copies were outstanding. False sharing —
//! distinct words of one block — is *not* flagged, thanks to
//! word-granularity dirty masks.

use lcm::apps::race::{detect_races, RaceKernel};

fn main() {
    for kernel in RaceKernel::all() {
        println!("kernel {:?}:", kernel);
        let conflicts = detect_races(kernel, 4);
        if conflicts.is_empty() {
            println!("  no conflicts (as expected for a race-free program)");
        }
        for c in conflicts {
            println!("  {c}");
        }
        println!();
    }
}

//! Parallel reductions three ways (paper §7.1).
//!
//! ```text
//! cargo run --release --example reductions
//! ```
//!
//! Sums an array with (a) a shared accumulator on coherent memory —
//! ownership ping-pongs on every update; (b) the hand-optimized rewrite
//! into per-processor partials; (c) a C\*\* reduction assignment on LCM,
//! where contributions accumulate in private copies and the RSM
//! reconciliation combines them with the location's initial value.

use lcm::apps::reduction::{run_reduction, ArraySum, ReductionMethod};

fn main() {
    let w = ArraySum {
        len: 1 << 16,
        passes: 2,
    };
    println!("summing {} floats, 2 passes, 16 processors\n", w.len);
    let mut baseline = 0;
    for method in ReductionMethod::all() {
        let (sum, r) = run_reduction(method, 16, &w);
        if baseline == 0 {
            baseline = r.time;
        }
        println!(
            "  {:<15} {:>12} cycles ({:>6.2}x vs shared)  misses={:<8} sum={}",
            method.label(),
            r.time,
            baseline as f64 / r.time as f64,
            r.misses(),
            sum
        );
    }
    println!("\nThe RSM version needs no compiler rewrite: the same `total %+= v`");
    println!("source compiles to local accumulation plus message-based");
    println!("reconciliation (paper §7.1).");
}

//! Stale-data regions (paper §7.5): trading freshness for misses.
//!
//! ```text
//! cargo run --release --example stale_data
//! ```
//!
//! An N-body-style producer/consumer kernel: one node updates a field
//! every iteration; the others sweep it. Coherent memory refetches after
//! every update; an RSM stale-data region lets consumers keep snapshots
//! and refresh every `k` iterations, dividing the miss traffic by `k` at
//! the cost of bounded staleness.

use lcm::apps::stale_data::{run_stale, StaleData, StaleSystem};

fn main() {
    let base = StaleData {
        field_words: 512,
        iters: 40,
        refresh_every: 1,
    };
    println!("512-word field, 40 iterations, 8 processors\n");
    let (_, coherent) = run_stale(StaleSystem::Coherent, 8, &base);
    println!(
        "  {:<18} {:>12} cycles  {:>7} misses   staleness 0",
        "coherent",
        coherent.time,
        coherent.misses()
    );
    for k in [2usize, 4, 8, 16] {
        let w = StaleData {
            refresh_every: k,
            ..base
        };
        let (lag, r) = run_stale(StaleSystem::StaleRegion, 8, &w);
        println!(
            "  {:<18} {:>12} cycles  {:>7} misses   staleness {:.0}",
            format!("refresh every {k}"),
            r.time,
            r.misses(),
            lag
        );
    }
    println!("\nLonger refresh intervals cut misses (and time) proportionally;");
    println!("the consumer's view ages by a bounded amount it chose (paper §7.5).");
}

//! Quickstart: the same C\*\* stencil program on all three memory systems.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small heat-diffusion stencil with the C\*\* runtime, runs it
//! under LCM-scc, LCM-mcc, and the Stache/explicit-copying baseline, and
//! prints the execution time and protocol event counts of each — the
//! smallest end-to-end tour of the reproduction.

use lcm::prelude::*;

/// One C** program: 10 relaxation steps over a 64×64 mesh.
fn stencil<P: MemoryProtocol>(rt: &mut Runtime<P>) -> f32 {
    let n = 64;
    let mesh = rt.new_aggregate2::<f32>(n, n, Placement::Blocked, "mesh");
    rt.init2(mesh, |r, _| if r == 0 { 100.0 } else { 0.0 });
    for _ in 0..10 {
        rt.apply2(mesh, Partition::Static, |inv, r, c| {
            if r > 0 && r + 1 < n && c > 0 && c + 1 < n {
                let s = inv.get(mesh.at(r - 1, c))
                    + inv.get(mesh.at(r + 1, c))
                    + inv.get(mesh.at(r, c - 1))
                    + inv.get(mesh.at(r, c + 1));
                inv.set(mesh.at(r, c), s * 0.25);
            } else {
                let v = inv.get(mesh.at(r, c));
                inv.copy_through(mesh.at(r, c), v);
            }
        });
    }
    rt.peek2(mesh, 1, n / 2)
}

fn main() {
    println!("C** stencil, 64x64, 10 iterations, 8 processors\n");
    let nodes = 8;

    for label in ["LCM-scc", "LCM-mcc", "Stache+copying"] {
        let (value, machine_time, stats) = match label {
            "LCM-scc" => {
                let mem = Lcm::new(MachineConfig::new(nodes), LcmVariant::Scc);
                let mut rt = Runtime::new(mem, Strategy::LcmDirectives);
                let v = stencil(&mut rt);
                let m = &rt.mem().tempest().machine;
                (v, m.time(), m.total_stats())
            }
            "LCM-mcc" => {
                let mem = Lcm::new(MachineConfig::new(nodes), LcmVariant::Mcc);
                let mut rt = Runtime::new(mem, Strategy::LcmDirectives);
                let v = stencil(&mut rt);
                let m = &rt.mem().tempest().machine;
                (v, m.time(), m.total_stats())
            }
            _ => {
                let mem = Stache::new(MachineConfig::new(nodes));
                let mut rt = Runtime::new(mem, Strategy::ExplicitCopy);
                let v = stencil(&mut rt);
                let m = &rt.mem().tempest().machine;
                (v, m.time(), m.total_stats())
            }
        };
        println!("{label:>15}: {machine_time:>10} cycles, {:>7} misses, {:>7} clean copies, mesh[1][32]={value:.3}",
            stats.misses(), stats.clean_copies);
    }

    println!("\nAll three compute the same mesh — the memory system, not the");
    println!("program, implements C**'s atomic-and-simultaneous semantics.");
}

//! # lcm — Loosely Coherent Memory: a reproduction
//!
//! A full reproduction of *Larus, Richards & Viswanathan, "LCM: Memory
//! System Support for Parallel Language Implementation"* (University of
//! Wisconsin–Madison TR #1237, 1994 — the Wisconsin Wind Tunnel project's
//! ASPLOS-era work on compiler-controlled memory coherence), as a Rust
//! workspace. See `README.md` for a tour and `DESIGN.md` for the mapping
//! from the paper's systems to crates.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`sim`] — deterministic execution-driven machine simulation
//!   (clocks, cost model, statistics);
//! * [`tempest`] — Tempest-like fine-grain DSM mechanisms (access tags,
//!   home placement, messaging);
//! * [`rsm`] — the Reconcilable Shared Memory model (request and
//!   reconciliation policies, the `MemoryProtocol` trait);
//! * [`stache`] — the sequentially-consistent Stache baseline protocol;
//! * [`core`] — LCM itself (copy-on-write phases, scc/mcc clean copies,
//!   reconciliation, conflict detection, stale data);
//! * [`cstar`] — the C\*\*-style data-parallel runtime (aggregates,
//!   parallel functions, reduction assignments, explicit-copy baseline);
//! * [`apps`] — the paper's benchmarks and the experiment suite.
//!
//! ## Quickstart
//!
//! ```
//! use lcm::prelude::*;
//!
//! // A 4-processor machine running LCM-mcc, driven by the C** runtime.
//! let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
//! let mut rt = Runtime::new(mem, Strategy::LcmDirectives);
//!
//! let mesh = rt.new_aggregate2::<f32>(8, 8, Placement::Blocked, "mesh");
//! rt.init2(mesh, |r, _| if r == 0 { 100.0 } else { 0.0 });
//!
//! // One data-parallel relaxation step: every invocation reads only
//! // pre-call values — C**'s "atomic and simultaneous" semantics.
//! rt.apply2(mesh, Partition::Static, |inv, r, c| {
//!     if r > 0 && r < 7 && c > 0 && c < 7 {
//!         let s = inv.get(mesh.at(r - 1, c)) + inv.get(mesh.at(r + 1, c))
//!               + inv.get(mesh.at(r, c - 1)) + inv.get(mesh.at(r, c + 1));
//!         inv.set(mesh.at(r, c), s * 0.25);
//!     }
//! });
//! assert_eq!(rt.peek2(mesh, 1, 3), 25.0);
//! ```

#![warn(missing_docs)]

pub use lcm_apps as apps;
pub use lcm_core as core;
pub use lcm_cstar as cstar;
pub use lcm_rsm as rsm;
pub use lcm_sim as sim;
pub use lcm_stache as stache;
pub use lcm_tempest as tempest;

/// The names most programs need, in one import.
pub mod prelude {
    pub use lcm_apps::{
        execute, execute_all, execute_traced, execute_with_cost, execute_with_faults, Benchmark,
        RunResult, Scale, Suite, SystemKind, Workload,
    };
    pub use lcm_core::{Lcm, LcmVariant};
    pub use lcm_cstar::{
        Agg1, Agg2, Cell, FlushPolicy, Invocation, Partition, ReduceVar, Runtime, RuntimeConfig,
        Strategy,
    };
    pub use lcm_rsm::{
        CoherenceKind, ConflictKind, ConflictRecord, KeepOrder, MemoryProtocol, MergePolicy,
        NestedProtocol, PolicyTable, ReduceOp, RegionPolicy,
    };
    pub use lcm_sim::{
        Addr, BlockId, CostModel, CrashPlan, CycleCat, CycleLedger, DeliveryError, DirBackend,
        FaultConfig, Machine, MachineConfig, NodeId, NodeStats, Pcg32, PhaseSnapshot, Stamped,
        TraceSummary,
    };
    pub use lcm_stache::Stache;
    pub use lcm_tempest::{Placement, Tag, Tempest};
}

//! A minimal, dependency-free property-testing harness.
//!
//! This vendored crate implements exactly the subset of the `proptest`
//! API that the workspace's tests use, so the build works with no
//! network access to a crate registry. Generation is purely random
//! (deterministically seeded per test); there is no shrinking — a
//! failing case reports the generated inputs instead, which together
//! with the fixed seed makes every failure reproducible.

pub mod test_runner {
    //! Test configuration, the deterministic RNG, and case outcomes.

    /// Run configuration: how many random cases each property executes.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases (mirrors proptest's API).
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the whole property fails.
        Fail(String),
    }

    /// SplitMix64: tiny, fast, and plenty uniform for test generation.
    /// Seeded from the test's module path + name, so every run of a
    /// given test binary sees the same schedule.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for the named test (FNV-1a of the name).
        pub fn for_test(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// An RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        /// Uniform in `[0, n)`; returns 0 for `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the combinators built on it.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + Debug;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Clone + Debug,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Boxes a strategy as a trait object (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V: Clone + Debug> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Clone + Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (see `prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V: Clone + Debug> OneOf<V> {
        /// A strategy choosing uniformly among `options`.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            OneOf { options }
        }
    }

    impl<V: Clone + Debug> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Types with a uniform sampler over a range — the backing for range
    /// strategies like `0u16..8`, `0u8..`, and `lo..=hi`.
    pub trait UniformSample: Copy + Clone + Debug + PartialOrd + 'static {
        /// The maximum value of the type.
        const MAX_VALUE: Self;
        /// Uniform in `[lo, hi)`; requires `lo < hi`.
        fn sample_below(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
        /// Uniform in `[lo, hi]`; requires `lo <= hi`.
        fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_uniform_unsigned {
        ($($t:ty),*) => {$(
            impl UniformSample for $t {
                const MAX_VALUE: $t = <$t>::MAX;
                fn sample_below(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                    assert!(lo < hi, "empty range strategy");
                    lo + rng.below((hi - lo) as u64) as $t
                }
                fn sample_inclusive(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo + rng.below(span + 1) as $t
                    }
                }
            }
        )*};
    }
    impl_uniform_unsigned!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_signed {
        ($($t:ty),*) => {$(
            impl UniformSample for $t {
                const MAX_VALUE: $t = <$t>::MAX;
                fn sample_below(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
                fn sample_inclusive(rng: &mut TestRng, lo: $t, hi: $t) -> $t {
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        (lo as i128 + rng.below(span + 1) as i128) as $t
                    }
                }
            }
        )*};
    }
    impl_uniform_signed!(i8, i16, i32, i64, isize);

    impl<T: UniformSample> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_below(rng, self.start, self.end)
        }
    }

    impl<T: UniformSample> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    impl<T: UniformSample> Strategy for RangeFrom<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(rng, self.start, T::MAX_VALUE)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
                self.4.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
        for (A, B, C, D, E, F)
    {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
                self.4.generate(rng),
                self.5.generate(rng),
            )
        }
    }

    impl<
            A: Strategy,
            B: Strategy,
            C: Strategy,
            D: Strategy,
            E: Strategy,
            F: Strategy,
            G: Strategy,
        > Strategy for (A, B, C, D, E, F, G)
    {
        type Value = (
            A::Value,
            B::Value,
            C::Value,
            D::Value,
            E::Value,
            F::Value,
            G::Value,
        );
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
                self.4.generate(rng),
                self.5.generate(rng),
                self.6.generate(rng),
            )
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` over the primitive types the tests use.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Clone + Debug {
        /// Draws an unconstrained random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// The full-range strategy for `T` (proptest's `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u32())
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size band for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies (`uniform3`, `uniform8`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An `[S::Value; N]` with each element drawn independently.
    #[derive(Clone, Debug)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// Three independent draws of `element`.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
        UniformArray { element }
    }

    /// Eight independent draws of `element`.
    pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
        UniformArray { element }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::ToString::to_string(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
                    l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`: {}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_cases!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        let mut inputs = ::std::string::String::new();
                        $(inputs.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), $arg
                        ));)+
                        panic!(
                            "property `{}` failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name), case + 1, config.cases, msg, inputs
                        );
                    }
                }
            }
        }
    )*};
}

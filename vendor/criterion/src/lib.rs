//! A minimal, dependency-free benchmark harness.
//!
//! This vendored crate implements the subset of the `criterion` API the
//! workspace's `harness = false` benches use, so the build works with no
//! network access to a crate registry. Each `bench_function` runs a
//! configurable number of wall-clock samples and prints min/median/max
//! per-iteration times. Under `cargo test` (detected via the `--test`
//! flag cargo passes to bench targets) every benchmark body runs exactly
//! once as a smoke test.

use std::time::{Duration, Instant};

/// Re-export for bench code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// The top-level harness handle passed to every benchmark function.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line filters are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, self.test_mode, f);
        self
    }

    /// Accepted for API compatibility; no report is produced.
    pub fn final_summary(&self) {}
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`, labelled `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, self.test_mode, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iterations` calls of `f`, keeping results live.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, test_mode: bool, mut f: F) {
    if test_mode {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "{label:<48} time: [{:>10.3?} {:>10.3?} {:>10.3?}]  ({} samples)",
        times[0],
        median,
        times[times.len() - 1],
        times.len()
    );
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

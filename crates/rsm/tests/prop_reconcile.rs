//! Property tests for reconciliation operators and the policy table.

use lcm_rsm::{MergePolicy, PolicyTable, ReduceOp, RegionPolicy, ValueWidth};
use lcm_sim::mem::BlockId;
use proptest::prelude::*;

const INT_OPS: [ReduceOp; 6] = [
    ReduceOp::SumI32,
    ReduceOp::MinI32,
    ReduceOp::MaxI32,
    ReduceOp::AndU32,
    ReduceOp::OrU32,
    ReduceOp::XorU32,
];

const ALL_OPS: [ReduceOp; 12] = [
    ReduceOp::SumF32,
    ReduceOp::SumF64,
    ReduceOp::SumI32,
    ReduceOp::ProdF32,
    ReduceOp::ProdF64,
    ReduceOp::MinF32,
    ReduceOp::MaxF32,
    ReduceOp::MinI32,
    ReduceOp::MaxI32,
    ReduceOp::AndU32,
    ReduceOp::OrU32,
    ReduceOp::XorU32,
];

/// Masks an operand to the operator's width so both argument orders see
/// identical bit patterns.
fn fit(op: ReduceOp, bits: u64) -> u64 {
    match op.width() {
        ValueWidth::W4 => bits as u32 as u64,
        ValueWidth::W8 => bits,
    }
}

proptest! {
    /// The identity is neutral on both sides for every operator, for any
    /// operand (NaN payloads excepted — compare bitwise only for
    /// non-NaN floats).
    #[test]
    fn identity_is_neutral(raw in any::<u64>(), idx in 0usize..ALL_OPS.len()) {
        let op = ALL_OPS[idx];
        let x = fit(op, raw);
        let is_float_nan = match op {
            ReduceOp::SumF32 | ReduceOp::ProdF32 | ReduceOp::MinF32 | ReduceOp::MaxF32 =>
                f32::from_bits(x as u32).is_nan(),
            ReduceOp::SumF64 | ReduceOp::ProdF64 => f64::from_bits(x).is_nan(),
            _ => false,
        };
        prop_assume!(!is_float_nan);
        prop_assert_eq!(op.combine_bits(op.identity_bits(), x), x);
        prop_assert_eq!(op.combine_bits(x, op.identity_bits()), x);
    }

    /// Integer and bitwise operators are exactly associative and
    /// commutative (the reconciler may combine contributions in any
    /// arrival order).
    #[test]
    fn int_ops_associative_commutative(a in any::<u32>(), b in any::<u32>(), c in any::<u32>(), idx in 0usize..INT_OPS.len()) {
        let op = INT_OPS[idx];
        let (a, b, c) = (a as u64, b as u64, c as u64);
        prop_assert_eq!(
            op.combine_bits(op.combine_bits(a, b), c),
            op.combine_bits(a, op.combine_bits(b, c))
        );
        prop_assert_eq!(op.combine_bits(a, b), op.combine_bits(b, a));
    }

    /// Min/max results are one of the operands.
    #[test]
    fn minmax_select_an_operand(a in any::<i32>(), b in any::<i32>()) {
        for op in [ReduceOp::MinI32, ReduceOp::MaxI32] {
            let r = op.combine_bits(a as u32 as u64, b as u32 as u64) as u32 as i32;
            prop_assert!(r == a || r == b);
        }
    }

    /// Policy lookups agree with a naive reference over random disjoint
    /// ranges.
    #[test]
    fn policy_table_matches_reference(
        starts in proptest::collection::vec(0u64..1000, 0..8),
        probe in 0u64..1100,
    ) {
        // Build disjoint ranges [10k, 10k+5) from sorted, deduped starts.
        let mut table = PolicyTable::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut ks: Vec<u64> = starts.iter().map(|s| s / 10).collect();
        ks.sort_unstable();
        ks.dedup();
        for k in ks {
            let (a, b) = (k * 10, k * 10 + 5);
            table.set(BlockId(a), BlockId(b), RegionPolicy::copy_on_write(MergePolicy::KeepOne));
            reference.push((a, b));
        }
        let expect_cow = reference.iter().any(|&(a, b)| probe >= a && probe < b);
        let got_cow = table.get(BlockId(probe)).coherence == lcm_rsm::CoherenceKind::CopyOnWrite;
        prop_assert_eq!(got_cow, expect_cow);
    }
}

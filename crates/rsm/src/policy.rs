//! Region policies: the RSM program/compiler interface.
//!
//! RSM exposes two points of control — the response to a copy *request*
//! and the *reconciliation* of returned copies — selected per region of
//! memory through directives. A [`PolicyTable`] maps block ranges to
//! [`RegionPolicy`] values; the C\*\* compiler registers its aggregates as
//! copy-on-write regions, its reduction targets as reduction regions, and
//! leaves everything else under the default coherent policy.

use crate::reconcile::MergePolicy;
use lcm_sim::mem::BlockId;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How requests for blocks of a region are served.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum CoherenceKind {
    /// Ordinary sequentially-consistent cache coherence (the Stache
    /// default): single writer, many readers, eager invalidation.
    #[default]
    Coherent,
    /// LCM copy-on-write: `mark_modification` creates private writable
    /// copies; plain reads see the pre-phase (clean) value until
    /// `reconcile_copies`.
    CopyOnWrite,
    /// Stale-data (§7.5): read-only copies are allowed to age; consumers
    /// refresh explicitly. Writes behave as `Coherent`.
    Stale,
}

/// The full policy of one region.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct RegionPolicy {
    /// Request-side behavior.
    pub coherence: CoherenceKind,
    /// Reconcile-side behavior.
    pub merge: MergePolicy,
    /// When set, reconciliation records write-write and read-write
    /// conflicts (§7.2/7.3) instead of silently keeping one value.
    pub detect_conflicts: bool,
}

impl RegionPolicy {
    /// The default coherent, keep-one, non-detecting policy.
    pub fn coherent() -> RegionPolicy {
        RegionPolicy::default()
    }

    /// A copy-on-write policy with the given merge behavior.
    pub fn copy_on_write(merge: MergePolicy) -> RegionPolicy {
        RegionPolicy {
            coherence: CoherenceKind::CopyOnWrite,
            merge,
            detect_conflicts: false,
        }
    }

    /// A stale-data policy.
    pub fn stale() -> RegionPolicy {
        RegionPolicy {
            coherence: CoherenceKind::Stale,
            ..RegionPolicy::default()
        }
    }

    /// Returns this policy with conflict detection enabled.
    pub fn detecting(mut self) -> RegionPolicy {
        self.detect_conflicts = true;
        self
    }
}

/// A block range with an associated policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Entry {
    first: BlockId,
    end: BlockId, // exclusive
    policy: RegionPolicy,
}

/// Maps block ranges to policies; unmapped blocks are [`RegionPolicy::coherent`].
///
/// Ranges may not overlap (a block has exactly one policy); re-registering
/// an identical range replaces its policy, which is how the C\*\* runtime
/// flips an aggregate between phases.
///
/// ```
/// use lcm_rsm::{PolicyTable, RegionPolicy, MergePolicy, CoherenceKind};
/// use lcm_sim::mem::BlockId;
///
/// let mut t = PolicyTable::new();
/// t.set(BlockId(10), BlockId(20), RegionPolicy::copy_on_write(MergePolicy::KeepOne));
/// assert_eq!(t.get(BlockId(15)).coherence, CoherenceKind::CopyOnWrite);
/// assert_eq!(t.get(BlockId(20)).coherence, CoherenceKind::Coherent); // end is exclusive
/// ```
#[derive(Debug, Default)]
pub struct PolicyTable {
    entries: Vec<Entry>, // sorted by `first`
    /// One-entry lookaside for [`PolicyTable::find`]. Pure memo — it can
    /// never change a lookup's result — so relaxed atomics suffice, and
    /// shared (`&self`) lookups from the epoch engine's shadow workers
    /// are sound and deterministic.
    last_hit: AtomicUsize,
}

impl Clone for PolicyTable {
    fn clone(&self) -> PolicyTable {
        PolicyTable {
            entries: self.entries.clone(),
            last_hit: AtomicUsize::new(self.last_hit.load(Ordering::Relaxed)),
        }
    }
}

impl PolicyTable {
    /// An empty table (everything coherent).
    pub fn new() -> PolicyTable {
        PolicyTable::default()
    }

    /// Registers `policy` for blocks `first..end`.
    ///
    /// # Panics
    /// Panics if the range is empty or overlaps an existing range other
    /// than exactly (which replaces).
    pub fn set(&mut self, first: BlockId, end: BlockId, policy: RegionPolicy) {
        assert!(first < end, "empty policy range");
        match self.find(first) {
            Some(i) => {
                let e = &mut self.entries[i];
                assert!(
                    e.first == first && e.end == end,
                    "policy range {:?}..{:?} overlaps existing {:?}..{:?}",
                    first,
                    end,
                    e.first,
                    e.end
                );
                e.policy = policy;
            }
            None => {
                let pos = self.entries.partition_point(|e| e.first < first);
                if let Some(next) = self.entries.get(pos) {
                    assert!(end <= next.first, "policy range overlaps a later range");
                }
                self.entries.insert(pos, Entry { first, end, policy });
            }
        }
    }

    /// Removes the policy registered at exactly `first..end`, restoring the
    /// default for those blocks.
    ///
    /// # Panics
    /// Panics if no such exact range is registered.
    pub fn remove(&mut self, first: BlockId, end: BlockId) {
        let i = self.find(first).expect("no policy registered for range");
        assert!(
            self.entries[i].first == first && self.entries[i].end == end,
            "range mismatch on remove"
        );
        self.entries.remove(i);
        self.last_hit.store(0, Ordering::Relaxed);
    }

    /// The policy of `block` (default coherent when unmapped).
    #[inline]
    pub fn get(&self, block: BlockId) -> RegionPolicy {
        const DEFAULT: RegionPolicy = RegionPolicy {
            coherence: CoherenceKind::Coherent,
            merge: MergePolicy::KeepOne,
            detect_conflicts: false,
        };
        match self.find(block) {
            Some(i) => self.entries[i].policy,
            None => DEFAULT,
        }
    }

    /// Index of the entry containing `block`, with a one-entry lookaside.
    fn find(&self, block: BlockId) -> Option<usize> {
        let hint = self.last_hit.load(Ordering::Relaxed);
        if let Some(e) = self.entries.get(hint) {
            if block >= e.first && block < e.end {
                return Some(hint);
            }
        }
        let pos = self.entries.partition_point(|e| e.end <= block);
        let e = self.entries.get(pos)?;
        if block >= e.first && block < e.end {
            self.last_hit.store(pos, Ordering::Relaxed);
            Some(pos)
        } else {
            None
        }
    }

    /// Number of registered ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no range is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconcile::ReduceOp;

    #[test]
    fn default_policy_is_coherent_keep_one() {
        let t = PolicyTable::new();
        let p = t.get(BlockId(123));
        assert_eq!(p.coherence, CoherenceKind::Coherent);
        assert_eq!(p.merge, MergePolicy::KeepOne);
        assert!(!p.detect_conflicts);
        assert!(t.is_empty());
    }

    #[test]
    fn ranges_are_half_open() {
        let mut t = PolicyTable::new();
        t.set(
            BlockId(10),
            BlockId(20),
            RegionPolicy::copy_on_write(MergePolicy::KeepOne),
        );
        assert_eq!(t.get(BlockId(9)).coherence, CoherenceKind::Coherent);
        assert_eq!(t.get(BlockId(10)).coherence, CoherenceKind::CopyOnWrite);
        assert_eq!(t.get(BlockId(19)).coherence, CoherenceKind::CopyOnWrite);
        assert_eq!(t.get(BlockId(20)).coherence, CoherenceKind::Coherent);
    }

    #[test]
    fn multiple_disjoint_ranges() {
        let mut t = PolicyTable::new();
        t.set(BlockId(0), BlockId(5), RegionPolicy::stale());
        t.set(
            BlockId(100),
            BlockId(200),
            RegionPolicy::copy_on_write(MergePolicy::Reduce(ReduceOp::SumF32)),
        );
        t.set(
            BlockId(10),
            BlockId(20),
            RegionPolicy::coherent().detecting(),
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(BlockId(3)).coherence, CoherenceKind::Stale);
        assert!(t.get(BlockId(15)).detect_conflicts);
        assert_eq!(
            t.get(BlockId(150)).merge.reduce_op(),
            Some(ReduceOp::SumF32)
        );
        assert_eq!(t.get(BlockId(50)).coherence, CoherenceKind::Coherent);
    }

    #[test]
    fn exact_replace_updates_policy() {
        let mut t = PolicyTable::new();
        t.set(BlockId(10), BlockId(20), RegionPolicy::coherent());
        t.set(BlockId(10), BlockId(20), RegionPolicy::stale());
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(BlockId(12)).coherence, CoherenceKind::Stale);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_ranges_rejected() {
        let mut t = PolicyTable::new();
        t.set(BlockId(10), BlockId(20), RegionPolicy::coherent());
        t.set(BlockId(15), BlockId(25), RegionPolicy::stale());
    }

    #[test]
    #[should_panic(expected = "overlaps a later range")]
    fn overlap_from_below_rejected() {
        let mut t = PolicyTable::new();
        t.set(BlockId(10), BlockId(20), RegionPolicy::coherent());
        t.set(BlockId(5), BlockId(15), RegionPolicy::stale());
    }

    #[test]
    #[should_panic(expected = "empty policy range")]
    fn empty_range_rejected() {
        PolicyTable::new().set(BlockId(5), BlockId(5), RegionPolicy::coherent());
    }

    #[test]
    fn remove_restores_default() {
        let mut t = PolicyTable::new();
        t.set(BlockId(10), BlockId(20), RegionPolicy::stale());
        t.remove(BlockId(10), BlockId(20));
        assert_eq!(t.get(BlockId(15)).coherence, CoherenceKind::Coherent);
        assert!(t.is_empty());
    }

    #[test]
    fn lookaside_survives_alternating_lookups() {
        let mut t = PolicyTable::new();
        t.set(BlockId(0), BlockId(10), RegionPolicy::stale());
        t.set(
            BlockId(20),
            BlockId(30),
            RegionPolicy::coherent().detecting(),
        );
        for _ in 0..10 {
            assert_eq!(t.get(BlockId(5)).coherence, CoherenceKind::Stale);
            assert!(t.get(BlockId(25)).detect_conflicts);
            assert_eq!(t.get(BlockId(15)).coherence, CoherenceKind::Coherent);
        }
    }

    #[test]
    fn builders_compose() {
        let p = RegionPolicy::copy_on_write(MergePolicy::KeepOne).detecting();
        assert_eq!(p.coherence, CoherenceKind::CopyOnWrite);
        assert!(p.detect_conflicts);
    }
}

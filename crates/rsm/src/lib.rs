//! # lcm-rsm — the Reconcilable Shared Memory model
//!
//! Section 3 of the paper defines **Reconcilable Shared Memory (RSM)**: a
//! family of memory systems distinguished by two program-controllable
//! policies — the action taken when a processor *requests* a copy of a
//! block, and the way multiple outstanding copies are *reconciled* when
//! they return home. Conventional sequentially-consistent shared memory is
//! the degenerate instance (exclusive requests, overwrite reconciliation,
//! null reconciliation of identical read-only copies); LCM is the
//! interesting one.
//!
//! This crate captures the model as code shared by both protocols:
//!
//! * [`ReduceOp`] / [`MergePolicy`] / [`KeepOrder`]: reconciliation
//!   operators, from C\*\* keep-one semantics to reduction assignments;
//! * [`CoherenceKind`] / [`RegionPolicy`] / [`PolicyTable`]: the
//!   directive surface a compiler uses to select policies per region;
//! * [`ConflictKind`] / [`ConflictRecord`]: semantic-violation and
//!   data-race reports (paper §7.2/7.3);
//! * [`MemoryProtocol`]: the trait the Stache baseline and LCM both
//!   implement, so programs relink between memory systems.

#![warn(missing_docs)]

pub mod conflict;
pub mod nested;
pub mod policy;
pub mod protocol;
pub mod reconcile;
pub mod sanitizer;

pub use conflict::{ConflictKind, ConflictRecord};
pub use nested::NestedProtocol;
pub use policy::{CoherenceKind, PolicyTable, RegionPolicy};
pub use protocol::{CheckpointImage, MemoryProtocol};
pub use reconcile::{KeepOrder, MergePolicy, ReduceOp, ValueWidth};
pub use sanitizer::Violation;

//! Nested parallel phases — C\*\*'s deferred feature.
//!
//! C\*\* "allows nested parallel functions (i.e., parallel calls from
//! within parallel functions), but this paper considers only non-nested
//! parallel functions" (§4.2). This trait captures the memory-system
//! support a nested call needs, implemented by LCM in `lcm-core`:
//!
//! * the inner call's invocations must see the *parent invocation's*
//!   private state layered over the pre-call global state;
//! * their own modifications stay private to each inner invocation;
//! * when the inner call completes, its merged modifications become part
//!   of the parent invocation's private state — *not* of global memory,
//!   which remains untouched until the outer `reconcile_copies`.
//!
//! One level of nesting is supported, matching the language's common use;
//! protocol state for deeper levels would stack the same way.

use crate::protocol::MemoryProtocol;
use lcm_sim::NodeId;

/// A memory system supporting one level of nested parallel phases.
pub trait NestedProtocol: MemoryProtocol {
    /// Opens a nested phase inside the current parallel phase. The inner
    /// call's invocations observe `parent`'s private modifications as
    /// their pre-call state.
    ///
    /// # Panics
    /// Implementations panic if no outer phase is open or a nested phase
    /// already is.
    fn begin_nested_phase(&mut self, parent: NodeId);

    /// Closes the nested phase: all inner versions reconcile into the
    /// parent invocation's private state.
    ///
    /// # Panics
    /// Implementations panic if no nested phase is open.
    fn reconcile_nested(&mut self);

    /// True while a nested phase is open.
    fn in_nested_phase(&self) -> bool;
}

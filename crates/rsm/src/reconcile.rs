//! Reconciliation operators.
//!
//! RSM generalizes a coherence protocol's *merge* step: when multiple
//! outstanding copies of a block return home, an application-chosen
//! function reconciles them into one value. The paper uses two families:
//!
//! * **keep-one** — C\*\*'s default: of the values written into a location
//!   by different invocations, exactly one survives (we implement both
//!   first- and last-arrival orders, at word granularity);
//! * **reductions** — C\*\*'s reduction assignments (`%+=` etc.): values
//!   written into a location combine under a binary associative operator
//!   with the location's initial value.

use std::fmt;

/// Whether an operand is one 4-byte word or an aligned 8-byte pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ValueWidth {
    /// One 32-bit word.
    W4,
    /// Two consecutive 32-bit words (an `f64`).
    W8,
}

/// A binary, associative reduction operator over one memory location.
///
/// Operands and results are raw bit patterns (`u64`; only the low 32 bits
/// are meaningful for `W4` operators) so the reconciler can stay untyped.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `f32` addition.
    SumF32,
    /// `f64` addition.
    SumF64,
    /// Wrapping `i32` addition.
    SumI32,
    /// `f32` multiplication.
    ProdF32,
    /// `f64` multiplication.
    ProdF64,
    /// `f32` minimum.
    MinF32,
    /// `f32` maximum.
    MaxF32,
    /// `i32` minimum.
    MinI32,
    /// `i32` maximum.
    MaxI32,
    /// Bitwise and.
    AndU32,
    /// Bitwise or.
    OrU32,
    /// Bitwise exclusive-or.
    XorU32,
}

impl ReduceOp {
    /// The operand width.
    pub fn width(self) -> ValueWidth {
        match self {
            ReduceOp::SumF64 | ReduceOp::ProdF64 => ValueWidth::W8,
            _ => ValueWidth::W4,
        }
    }

    /// The operator's identity element, as raw bits.
    ///
    /// A private accumulator copy starts at the identity so that
    /// reconciliation can combine each node's *contribution* with the
    /// location's initial value, per the paper's reduction semantics.
    pub fn identity_bits(self) -> u64 {
        match self {
            ReduceOp::SumF32 => f32::to_bits(0.0) as u64,
            ReduceOp::SumF64 => f64::to_bits(0.0),
            ReduceOp::SumI32 => 0,
            ReduceOp::ProdF32 => f32::to_bits(1.0) as u64,
            ReduceOp::ProdF64 => f64::to_bits(1.0),
            ReduceOp::MinF32 => f32::to_bits(f32::INFINITY) as u64,
            ReduceOp::MaxF32 => f32::to_bits(f32::NEG_INFINITY) as u64,
            ReduceOp::MinI32 => i32::MAX as u32 as u64,
            ReduceOp::MaxI32 => i32::MIN as u32 as u64,
            ReduceOp::AndU32 => u32::MAX as u64,
            ReduceOp::OrU32 => 0,
            ReduceOp::XorU32 => 0,
        }
    }

    /// Combines two operands (raw bits) under the operator.
    pub fn combine_bits(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::SumF32 => {
                f32::to_bits(f32::from_bits(a as u32) + f32::from_bits(b as u32)) as u64
            }
            ReduceOp::SumF64 => f64::to_bits(f64::from_bits(a) + f64::from_bits(b)),
            ReduceOp::SumI32 => (a as u32).wrapping_add(b as u32) as u64,
            ReduceOp::ProdF32 => {
                f32::to_bits(f32::from_bits(a as u32) * f32::from_bits(b as u32)) as u64
            }
            ReduceOp::ProdF64 => f64::to_bits(f64::from_bits(a) * f64::from_bits(b)),
            ReduceOp::MinF32 => {
                f32::to_bits(f32::from_bits(a as u32).min(f32::from_bits(b as u32))) as u64
            }
            ReduceOp::MaxF32 => {
                f32::to_bits(f32::from_bits(a as u32).max(f32::from_bits(b as u32))) as u64
            }
            ReduceOp::MinI32 => (a as u32 as i32).min(b as u32 as i32) as u32 as u64,
            ReduceOp::MaxI32 => (a as u32 as i32).max(b as u32 as i32) as u32 as u64,
            ReduceOp::AndU32 => ((a as u32) & (b as u32)) as u64,
            ReduceOp::OrU32 => ((a as u32) | (b as u32)) as u64,
            ReduceOp::XorU32 => ((a as u32) ^ (b as u32)) as u64,
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReduceOp::SumF32 => "sum:f32",
            ReduceOp::SumF64 => "sum:f64",
            ReduceOp::SumI32 => "sum:i32",
            ReduceOp::ProdF32 => "prod:f32",
            ReduceOp::ProdF64 => "prod:f64",
            ReduceOp::MinF32 => "min:f32",
            ReduceOp::MaxF32 => "max:f32",
            ReduceOp::MinI32 => "min:i32",
            ReduceOp::MaxI32 => "max:i32",
            ReduceOp::AndU32 => "and:u32",
            ReduceOp::OrU32 => "or:u32",
            ReduceOp::XorU32 => "xor:u32",
        };
        f.write_str(name)
    }
}

/// Which arriving version's words win under keep-one reconciliation.
///
/// C\*\* only promises that *exactly one* modified value survives; the
/// order is an implementation artifact. Both orders are provided so tests
/// can demonstrate the semantics is insensitive to it for race-free
/// programs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum KeepOrder {
    /// The last version to arrive home supplies the word.
    #[default]
    LastWins,
    /// The first version to arrive home supplies the word.
    FirstWins,
}

/// How multiple modified copies of a block's word reconcile.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Keep-one: a single written value survives (C\*\* default).
    #[default]
    KeepOne,
    /// Keep-one with explicit arrival order.
    KeepOneOrdered(KeepOrder),
    /// Combine contributions under a reduction operator.
    Reduce(ReduceOp),
}

impl MergePolicy {
    /// The keep order in force (reductions have none).
    pub fn keep_order(self) -> KeepOrder {
        match self {
            MergePolicy::KeepOne => KeepOrder::LastWins,
            MergePolicy::KeepOneOrdered(o) => o,
            MergePolicy::Reduce(_) => KeepOrder::LastWins,
        }
    }

    /// The reduction operator, if this policy is a reduction.
    pub fn reduce_op(self) -> Option<ReduceOp> {
        match self {
            MergePolicy::Reduce(op) => Some(op),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_OPS: [ReduceOp; 12] = [
        ReduceOp::SumF32,
        ReduceOp::SumF64,
        ReduceOp::SumI32,
        ReduceOp::ProdF32,
        ReduceOp::ProdF64,
        ReduceOp::MinF32,
        ReduceOp::MaxF32,
        ReduceOp::MinI32,
        ReduceOp::MaxI32,
        ReduceOp::AndU32,
        ReduceOp::OrU32,
        ReduceOp::XorU32,
    ];

    #[test]
    fn identities_are_neutral() {
        // For a representative operand, id ∘ x == x.
        for op in ALL_OPS {
            let x: u64 = match op.width() {
                ValueWidth::W4 => match op {
                    ReduceOp::SumF32 | ReduceOp::ProdF32 | ReduceOp::MinF32 | ReduceOp::MaxF32 => {
                        f32::to_bits(3.5) as u64
                    }
                    ReduceOp::SumI32 | ReduceOp::MinI32 | ReduceOp::MaxI32 => {
                        (-17i32) as u32 as u64
                    }
                    _ => 0x5a5a5a5a,
                },
                ValueWidth::W8 => f64::to_bits(3.5),
            };
            assert_eq!(op.combine_bits(op.identity_bits(), x), x, "{op} identity");
            assert_eq!(
                op.combine_bits(x, op.identity_bits()),
                x,
                "{op} identity (rhs)"
            );
        }
    }

    #[test]
    fn sums_add() {
        let a = f32::to_bits(1.5) as u64;
        let b = f32::to_bits(2.0) as u64;
        assert_eq!(
            ReduceOp::SumF32.combine_bits(a, b),
            f32::to_bits(3.5) as u64
        );
        let a = f64::to_bits(1e10);
        let b = f64::to_bits(2e10);
        assert_eq!(ReduceOp::SumF64.combine_bits(a, b), f64::to_bits(3e10));
        assert_eq!(
            ReduceOp::SumI32.combine_bits(5, (-3i32) as u32 as u64) as u32 as i32,
            2
        );
    }

    #[test]
    fn sum_i32_wraps() {
        let a = i32::MAX as u32 as u64;
        let r = ReduceOp::SumI32.combine_bits(a, 1) as u32 as i32;
        assert_eq!(r, i32::MIN);
    }

    #[test]
    fn min_max_pick_extremes() {
        let a = f32::to_bits(-1.0) as u64;
        let b = f32::to_bits(2.0) as u64;
        assert_eq!(ReduceOp::MinF32.combine_bits(a, b), a);
        assert_eq!(ReduceOp::MaxF32.combine_bits(a, b), b);
        assert_eq!(
            ReduceOp::MinI32.combine_bits((-5i32) as u32 as u64, 3) as u32 as i32,
            -5
        );
        assert_eq!(
            ReduceOp::MaxI32.combine_bits((-5i32) as u32 as u64, 3) as u32 as i32,
            3
        );
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(ReduceOp::AndU32.combine_bits(0b1100, 0b1010), 0b1000);
        assert_eq!(ReduceOp::OrU32.combine_bits(0b1100, 0b1010), 0b1110);
        assert_eq!(ReduceOp::XorU32.combine_bits(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn widths_are_correct() {
        for op in ALL_OPS {
            match op {
                ReduceOp::SumF64 | ReduceOp::ProdF64 => assert_eq!(op.width(), ValueWidth::W8),
                _ => assert_eq!(op.width(), ValueWidth::W4),
            }
        }
    }

    #[test]
    fn associativity_spot_check() {
        // (a ∘ b) ∘ c == a ∘ (b ∘ c) for integer/bitwise ops (exact).
        for op in [
            ReduceOp::SumI32,
            ReduceOp::MinI32,
            ReduceOp::MaxI32,
            ReduceOp::AndU32,
            ReduceOp::OrU32,
            ReduceOp::XorU32,
        ] {
            let (a, b, c) = (17u64, 0xfffe_0001u64, 5u64);
            assert_eq!(
                op.combine_bits(op.combine_bits(a, b), c),
                op.combine_bits(a, op.combine_bits(b, c)),
                "{op} associativity"
            );
        }
    }

    #[test]
    fn merge_policy_accessors() {
        assert_eq!(MergePolicy::KeepOne.keep_order(), KeepOrder::LastWins);
        assert_eq!(
            MergePolicy::KeepOneOrdered(KeepOrder::FirstWins).keep_order(),
            KeepOrder::FirstWins
        );
        assert_eq!(
            MergePolicy::Reduce(ReduceOp::SumF32).reduce_op(),
            Some(ReduceOp::SumF32)
        );
        assert_eq!(MergePolicy::KeepOne.reduce_op(), None);
        assert_eq!(MergePolicy::default(), MergePolicy::KeepOne);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ReduceOp::SumF64.to_string(), "sum:f64");
        assert_eq!(ReduceOp::XorU32.to_string(), "xor:u32");
    }
}

//! Conflict (semantic-violation and data-race) records.
//!
//! Sections 7.2/7.3 of the paper show how RSM reconciliation can detect
//! programs with conflicting side effects without per-location access
//! histories: if reconciliation finds a word modified by more than one
//! processor, a write-write conflict occurred; if a modified block also
//! had outstanding read-only copies during the phase, a (potential)
//! read-write conflict occurred. Protocols report these as
//! [`ConflictRecord`]s.

use lcm_sim::mem::BlockId;
use lcm_sim::NodeId;
use std::fmt;

/// The kind of detected conflict.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two processors' versions both modified the same word.
    WriteWrite,
    /// A block was modified while read-only copies were outstanding.
    /// `actual` distinguishes a copy *used* during the phase from one
    /// merely left in a cache from an earlier phase (the paper's
    /// potential-vs-actual distinction, §7.2).
    ReadWrite {
        /// True when the read-only copy was referenced during the phase.
        actual: bool,
    },
}

/// One detected conflict.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ConflictRecord {
    /// The block involved.
    pub block: BlockId,
    /// The word within the block for write-write conflicts; `None` for
    /// read-write conflicts (which are detected at block granularity).
    pub word: Option<u8>,
    /// The kind of conflict.
    pub kind: ConflictKind,
    /// The node whose claim was kept (writer for WW, writer for RW).
    pub winner: NodeId,
    /// The node whose claim was discarded (writer for WW, reader for RW).
    pub loser: NodeId,
}

impl fmt::Display for ConflictRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ConflictKind::WriteWrite => write!(
                f,
                "write-write conflict on {:?} word {} between {} and {}",
                self.block,
                self.word.map(i32::from).unwrap_or(-1),
                self.winner,
                self.loser
            ),
            ConflictKind::ReadWrite { actual } => write!(
                f,
                "{} read-write conflict on {:?}: {} wrote while {} held a read-only copy",
                if actual { "actual" } else { "potential" },
                self.block,
                self.winner,
                self.loser
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parties() {
        let r = ConflictRecord {
            block: BlockId(9),
            word: Some(3),
            kind: ConflictKind::WriteWrite,
            winner: NodeId(1),
            loser: NodeId(2),
        };
        let s = r.to_string();
        assert!(s.contains("write-write"));
        assert!(s.contains("node 1") && s.contains("node 2"));

        let r = ConflictRecord {
            block: BlockId(9),
            word: None,
            kind: ConflictKind::ReadWrite { actual: false },
            winner: NodeId(0),
            loser: NodeId(3),
        };
        assert!(r.to_string().contains("potential read-write"));
    }
}

//! Coherence-invariant sanitizer.
//!
//! Fault injection (drops, duplicates, delays — see `lcm_sim::fault`) is
//! only trustworthy if we can show the protocols' *state* survived it,
//! not just that the final answers look right. The sanitizer turns each
//! protocol's invariant walk ([`MemoryProtocol::sanity_check`]) into a
//! cycle-stamped diagnostic: when a check fails, the [`Violation`]
//! records the simulated time, barrier count, and the tail of the event
//! trace, so a violation can be replayed precisely (fault schedules are
//! deterministic in the seed).
//!
//! The invariants protocols check through this hook:
//!
//! * **single writer** — a block writable at one node is valid nowhere
//!   else (Stache directory `Exclusive`);
//! * **sharer-list agreement** — every valid tag is backed by a directory
//!   entry naming the node, and vice versa;
//! * **no stale clean copy past reconciliation** — LCM phase state
//!   (private copies, clean copies, ordering logs) is empty outside a
//!   phase and consistent inside one;
//! * **cycle-ledger conservation** — on every node the per-category
//!   cycle attributions ([`lcm_sim::CycleLedger`]) sum exactly to the
//!   node's clock, so the profiler's breakdown accounts for every
//!   simulated cycle. Because the check ranges over *all* categories,
//!   cycles charged by the contention-aware network model
//!   (`net_contention`, nonzero only under finite link bandwidth) are
//!   covered by construction: a transfer that queued on a fat-tree
//!   link but failed to advance the receiver's clock — or vice versa —
//!   breaks the sum.

use crate::protocol::MemoryProtocol;
use std::fmt;

/// How many trailing trace events a [`Violation`] captures.
const TRACE_TAIL: usize = 16;

/// A failed coherence-invariant check, stamped with enough simulation
/// context to replay it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The protocol that failed its check ("stache", "lcm-scc", ...).
    pub system: &'static str,
    /// Simulated cycle (max over node clocks) when the check ran.
    pub at_cycle: u64,
    /// Global barriers completed when the check ran.
    pub barriers: u64,
    /// The invariant violated, as reported by the protocol.
    pub detail: String,
    /// The last few protocol events before the check (empty when the
    /// machine ran without tracing).
    pub trace_tail: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coherence violation in {} at cycle {} (after {} barriers): {}",
            self.system, self.at_cycle, self.barriers, self.detail
        )?;
        if !self.trace_tail.is_empty() {
            write!(f, "\nlast {} events:", self.trace_tail.len())?;
            for e in &self.trace_tail {
                write!(f, "\n  {e}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// Runs `protocol`'s invariant walk, wrapping any failure in a
/// cycle-stamped [`Violation`].
pub fn check<P: MemoryProtocol + ?Sized>(protocol: &P) -> Result<(), Violation> {
    protocol
        .sanity_check()
        .and_then(|()| protocol.tempest().machine.verify_ledger())
        .map_err(|detail| {
            let m = &protocol.tempest().machine;
            let events = m.trace().events();
            let tail_start = events.len().saturating_sub(TRACE_TAIL);
            Violation {
                system: protocol.name(),
                at_cycle: m.time(),
                barriers: m.barriers(),
                detail,
                trace_tail: events
                    .iter()
                    .skip(tail_start)
                    .map(|e| format!("{e:?}"))
                    .collect(),
            }
        })
}

/// [`check`], panicking with the full diagnostic on violation. The shape
/// used by benchmark sweeps, where a violation must abort the run.
pub fn enforce<P: MemoryProtocol + ?Sized>(protocol: &P) {
    if let Err(v) = check(protocol) {
        panic!("{v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyTable;
    use lcm_sim::mem::Addr;
    use lcm_sim::{MachineConfig, NodeId};
    use lcm_tempest::Tempest;

    /// A protocol whose check fails on demand.
    struct Flaky {
        tempest: Tempest,
        policies: PolicyTable,
        broken: bool,
    }

    impl Flaky {
        fn new(broken: bool) -> Flaky {
            Flaky {
                tempest: Tempest::new(MachineConfig::new(2).with_trace(8)),
                policies: PolicyTable::new(),
                broken,
            }
        }
    }

    impl MemoryProtocol for Flaky {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn tempest(&self) -> &Tempest {
            &self.tempest
        }
        fn tempest_mut(&mut self) -> &mut Tempest {
            &mut self.tempest
        }
        fn policies(&self) -> &PolicyTable {
            &self.policies
        }
        fn policies_mut(&mut self) -> &mut PolicyTable {
            &mut self.policies
        }
        fn read_word(&mut self, _node: NodeId, _addr: Addr) -> u32 {
            0
        }
        fn write_word(&mut self, _node: NodeId, _addr: Addr, _bits: u32) {}
        fn sanity_check(&self) -> Result<(), String> {
            if self.broken {
                Err("two writers of block 7".into())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn healthy_protocol_passes() {
        let p = Flaky::new(false);
        check(&p).expect("nothing to report");
        enforce(&p);
    }

    #[test]
    fn check_verifies_the_cycle_ledger() {
        // Clock activity routed through advance/barrier conserves by
        // construction; the harvest-path check must accept it.
        let mut p = Flaky::new(false);
        p.tempest_mut().machine.advance(NodeId(1), 777);
        p.tempest_mut().machine.barrier();
        check(&p).expect("a conserving ledger passes");
    }

    #[test]
    fn violation_is_cycle_stamped_with_trace_tail() {
        let mut p = Flaky::new(true);
        p.tempest_mut().machine.advance(NodeId(0), 12345);
        p.tempest_mut().machine.barrier();
        let v = check(&p).expect_err("the check is broken");
        assert_eq!(v.system, "flaky");
        assert!(v.at_cycle >= 12345);
        assert_eq!(v.barriers, 1);
        assert!(v.detail.contains("two writers"));
        assert!(!v.trace_tail.is_empty(), "barrier event captured");
        let text = v.to_string();
        assert!(text.contains("coherence violation in flaky"), "{text}");
        assert!(text.contains("after 1 barriers"), "{text}");
        assert!(text.contains("last"), "{text}");
    }

    #[test]
    #[should_panic(expected = "coherence violation in flaky")]
    fn enforce_panics_with_the_diagnostic() {
        enforce(&Flaky::new(true));
    }

    #[test]
    fn default_sanity_check_is_silent() {
        // The trait default has nothing to check, so any protocol that
        // doesn't override it sanitizes clean.
        struct Plain(Tempest, PolicyTable);
        impl MemoryProtocol for Plain {
            fn name(&self) -> &'static str {
                "plain"
            }
            fn tempest(&self) -> &Tempest {
                &self.0
            }
            fn tempest_mut(&mut self) -> &mut Tempest {
                &mut self.0
            }
            fn policies(&self) -> &PolicyTable {
                &self.1
            }
            fn policies_mut(&mut self) -> &mut PolicyTable {
                &mut self.1
            }
            fn read_word(&mut self, _node: NodeId, _addr: Addr) -> u32 {
                0
            }
            fn write_word(&mut self, _node: NodeId, _addr: Addr, _bits: u32) {}
        }
        let p = Plain(Tempest::new(MachineConfig::new(1)), PolicyTable::new());
        check(&p).expect("default check never fires");
    }
}

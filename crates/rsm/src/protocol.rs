//! The protocol interface shared by Stache and LCM.
//!
//! The C\*\* runtime (and every application) is written against
//! [`MemoryProtocol`], so a program can be relinked against either memory
//! system — the paper's point that "a compiler can make this choice … by
//! selecting the libraries linked with a program". The RSM directives
//! (`mark_modification`, `flush_copies`, `reconcile_copies`) are part of
//! the trait with conservative defaults, making conventional coherent
//! memory (Stache) a trivial instance of the RSM family.

use crate::conflict::ConflictRecord;
use crate::policy::PolicyTable;
use crate::reconcile::{ReduceOp, ValueWidth};
use lcm_sim::mem::{Addr, WORD_BYTES};
use lcm_sim::NodeId;
use lcm_tempest::Tempest;

/// What one phase checkpoint had to capture, per protocol.
///
/// A fail-stop crash is repaired by rolling the dead node back to the
/// last phase boundary and re-executing, so each boundary must persist
/// enough protocol and memory state to restart from. How *much* state
/// that is differs sharply by memory system — LCM checkpoints only the
/// words reconciled since the previous boundary (its phase discipline
/// already funnels modifications through the home), while an
/// invalidation directory must capture dirty exclusive lines and the
/// directory itself — and that asymmetry is exactly what the recovery
/// sweep measures. The image carries byte counts only; capture and
/// restore *cycles* are charged by the runtime, centrally, so protocols
/// that never checkpoint stay byte-identical to older builds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Bytes captured at each node (index = node id).
    pub per_node: Vec<u64>,
    /// Dirty (exclusive) cache lines captured, at 32 bytes each.
    pub dirty_blocks: u64,
    /// Directory entries captured, at 8 bytes each.
    pub dir_entries: u64,
    /// Unreconciled data words captured, at 4 bytes each.
    pub words: u64,
}

impl CheckpointImage {
    /// Bytes to persist one directory entry: a 64-bit word packing the
    /// state discriminant with the sharer bitmap or owner id.
    pub const DIR_ENTRY_BYTES: u64 = 8;

    /// An empty image for a `nodes`-processor machine.
    pub fn empty(nodes: usize) -> CheckpointImage {
        CheckpointImage {
            per_node: vec![0; nodes],
            dirty_blocks: 0,
            dir_entries: 0,
            words: 0,
        }
    }

    /// Total bytes captured across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.per_node.iter().sum()
    }
}

/// A user-level memory system over the Tempest mechanisms.
///
/// Word accesses are the protocol-visible unit (the CM-5's single-
/// precision float); `f64` conveniences issue two word accesses, which is
/// also how the 32-bit-word Blizzard-E handles doubles.
///
/// `Sync` is a supertrait so the epoch-parallel engine can hand shared
/// protocol references to its shadow workers; protocols hold no interior
/// mutability beyond relaxed-atomic lookaside memos, so shared reads are
/// deterministic.
pub trait MemoryProtocol: Sync {
    /// A short, stable system name ("stache", "lcm-scc", "lcm-mcc").
    fn name(&self) -> &'static str;

    /// Shared access to the underlying mechanisms.
    fn tempest(&self) -> &Tempest;

    /// Exclusive access to the underlying mechanisms.
    fn tempest_mut(&mut self) -> &mut Tempest;

    /// The region policy table.
    fn policies(&self) -> &PolicyTable;

    /// Mutable access to the region policy table (directive registration).
    fn policies_mut(&mut self) -> &mut PolicyTable;

    /// Loads the word at `addr` on `node`, faulting into the protocol as
    /// needed. `addr` must be word-aligned.
    fn read_word(&mut self, node: NodeId, addr: Addr) -> u32;

    /// Stores `bits` to the word at `addr` on `node`, faulting into the
    /// protocol as needed. `addr` must be word-aligned.
    fn write_word(&mut self, node: NodeId, addr: Addr, bits: u32);

    /// RSM directive: create an inconsistent, writable private copy of the
    /// block containing `addr` (no-op for protocols without copy-on-write
    /// support, i.e. plain coherent memory).
    fn mark_modification(&mut self, node: NodeId, addr: Addr) {
        let _ = (node, addr);
    }

    /// RSM directive: return `node`'s modified private copies to their
    /// homes for (partial) reconciliation. No-op by default.
    fn flush_copies(&mut self, node: NodeId) {
        let _ = node;
    }

    /// RSM directive: global barrier + full reconciliation, returning
    /// memory to a consistent state. Defaults to a plain barrier.
    fn reconcile_copies(&mut self) {
        self.barrier();
    }

    /// Begins a parallel phase (C\*\* parallel call). Protocols with
    /// copy-on-write semantics switch their marked regions into
    /// private-copy mode; plain coherent memory needs nothing.
    fn begin_parallel_phase(&mut self) {}

    /// True while a parallel phase is open.
    fn in_parallel_phase(&self) -> bool {
        false
    }

    /// A reduction assignment: combine `bits` into the location at `addr`
    /// under `op` (C\*\*'s `%+=` family). The default is a plain
    /// read-modify-write through coherent memory — the expensive shared
    /// accumulator of §7.1 that RSM's message-based reconciliation beats.
    fn reduce(&mut self, node: NodeId, addr: Addr, op: ReduceOp, bits: u64) {
        match op.width() {
            ValueWidth::W4 => {
                let cur = self.read_word(node, addr) as u64;
                self.write_word(node, addr, op.combine_bits(cur, bits) as u32);
            }
            ValueWidth::W8 => {
                let lo = self.read_word(node, addr) as u64;
                let hi = self.read_word(node, addr.offset(WORD_BYTES as u64)) as u64;
                let cur = lo | (hi << 32);
                let new = op.combine_bits(cur, bits);
                self.write_word(node, addr, new as u32);
                self.write_word(node, addr.offset(WORD_BYTES as u64), (new >> 32) as u32);
            }
        }
    }

    /// Stale-data directive (§7.5): drop `node`'s aged copy of the block
    /// containing `addr` so the next read fetches the producer's latest
    /// value. No-op for protocols without stale-data support.
    fn refresh_stale(&mut self, node: NodeId, addr: Addr) {
        let _ = (node, addr);
    }

    /// Captures a phase checkpoint, returning the bytes each node had to
    /// persist. Implementations may also *normalize* their state (e.g.
    /// write dirty lines back to their homes) so that later checkpoints
    /// are incremental — but must never change program-visible values.
    /// The default captures nothing, which is correct for any protocol
    /// whose home memory is always current.
    fn checkpoint(&mut self) -> CheckpointImage {
        CheckpointImage::empty(self.tempest().machine.nodes())
    }

    /// A global barrier with no reconciliation semantics.
    fn barrier(&mut self) {
        self.tempest_mut().machine.barrier();
    }

    /// Conflicts detected since the last call (for regions with
    /// `detect_conflicts`). Defaults to none.
    fn take_conflicts(&mut self) -> Vec<ConflictRecord> {
        Vec::new()
    }

    /// Checks the protocol's internal coherence invariants, returning a
    /// description of the first violation found. Protocols with real
    /// directory or phase state override this (Stache: single writer,
    /// sharer-list/directory agreement; LCM: phase-copy bookkeeping);
    /// the default has nothing to check.
    ///
    /// This is the hook behind [`crate::sanitizer`]: the fault sweeps run
    /// it after every benchmark to prove injected faults never corrupted
    /// protocol state. Implementations must be read-only and callable at
    /// any quiescent point (i.e. between top-level protocol operations).
    fn sanity_check(&self) -> Result<(), String> {
        Ok(())
    }

    // --- provided conveniences -------------------------------------------

    /// Charges `cycles` of local compute to `node`.
    fn compute(&mut self, node: NodeId, cycles: u64) {
        self.tempest_mut().machine.advance(node, cycles);
    }

    /// Loads the `f32` at `addr`.
    fn read_f32(&mut self, node: NodeId, addr: Addr) -> f32 {
        f32::from_bits(self.read_word(node, addr))
    }

    /// Stores the `f32` `v` at `addr`.
    fn write_f32(&mut self, node: NodeId, addr: Addr, v: f32) {
        self.write_word(node, addr, v.to_bits());
    }

    /// Loads the `u32` at `addr`.
    fn read_u32(&mut self, node: NodeId, addr: Addr) -> u32 {
        self.read_word(node, addr)
    }

    /// Stores the `u32` `v` at `addr`.
    fn write_u32(&mut self, node: NodeId, addr: Addr, v: u32) {
        self.write_word(node, addr, v);
    }

    /// Loads the `i32` at `addr`.
    fn read_i32(&mut self, node: NodeId, addr: Addr) -> i32 {
        self.read_word(node, addr) as i32
    }

    /// Stores the `i32` `v` at `addr`.
    fn write_i32(&mut self, node: NodeId, addr: Addr, v: i32) {
        self.write_word(node, addr, v as u32);
    }

    /// Loads the `f64` spanning the two words at `addr` (two accesses).
    fn read_f64(&mut self, node: NodeId, addr: Addr) -> f64 {
        let lo = self.read_word(node, addr) as u64;
        let hi = self.read_word(node, addr.offset(WORD_BYTES as u64)) as u64;
        f64::from_bits(lo | (hi << 32))
    }

    /// Stores the `f64` `v` at `addr` (two accesses).
    fn write_f64(&mut self, node: NodeId, addr: Addr, v: f64) {
        let bits = v.to_bits();
        self.write_word(node, addr, bits as u32);
        self.write_word(node, addr.offset(WORD_BYTES as u64), (bits >> 32) as u32);
    }

    /// Typed [`MemoryProtocol::reduce`] over an `f32` location.
    ///
    /// # Panics
    /// Panics if `op` is not an `f32`-width operator.
    fn reduce_f32(&mut self, node: NodeId, addr: Addr, op: ReduceOp, v: f32) {
        assert_eq!(op.width(), ValueWidth::W4, "{op} is not a 4-byte operator");
        self.reduce(node, addr, op, v.to_bits() as u64);
    }

    /// Typed [`MemoryProtocol::reduce`] over an `f64` location.
    ///
    /// # Panics
    /// Panics if `op` is not an `f64`-width operator.
    fn reduce_f64(&mut self, node: NodeId, addr: Addr, op: ReduceOp, v: f64) {
        assert_eq!(op.width(), ValueWidth::W8, "{op} is not an 8-byte operator");
        self.reduce(node, addr, op, v.to_bits());
    }

    /// Typed [`MemoryProtocol::reduce`] over an `i32` location.
    ///
    /// # Panics
    /// Panics if `op` is not a 4-byte operator.
    fn reduce_i32(&mut self, node: NodeId, addr: Addr, op: ReduceOp, v: i32) {
        assert_eq!(op.width(), ValueWidth::W4, "{op} is not a 4-byte operator");
        self.reduce(node, addr, op, v as u32 as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyTable;
    use lcm_sim::MachineConfig;

    /// A protocol that accesses home memory directly with no coherence —
    /// just enough to exercise the trait's provided methods.
    struct RawMemory {
        tempest: Tempest,
        policies: PolicyTable,
    }

    impl RawMemory {
        fn new() -> RawMemory {
            RawMemory {
                tempest: Tempest::new(MachineConfig::new(2)),
                policies: PolicyTable::new(),
            }
        }
    }

    impl MemoryProtocol for RawMemory {
        fn name(&self) -> &'static str {
            "raw"
        }
        fn tempest(&self) -> &Tempest {
            &self.tempest
        }
        fn tempest_mut(&mut self) -> &mut Tempest {
            &mut self.tempest
        }
        fn policies(&self) -> &PolicyTable {
            &self.policies
        }
        fn policies_mut(&mut self) -> &mut PolicyTable {
            &mut self.policies
        }
        fn read_word(&mut self, _node: NodeId, addr: Addr) -> u32 {
            self.tempest.mem.read_word(addr)
        }
        fn write_word(&mut self, _node: NodeId, addr: Addr, bits: u32) {
            self.tempest.mem.write_word(addr, bits);
        }
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut p = RawMemory::new();
        let n = NodeId(0);
        p.write_f32(n, Addr(0x1000), 2.5);
        assert_eq!(p.read_f32(n, Addr(0x1000)), 2.5);
        p.write_i32(n, Addr(0x1004), -9);
        assert_eq!(p.read_i32(n, Addr(0x1004)), -9);
        p.write_u32(n, Addr(0x1008), 77);
        assert_eq!(p.read_u32(n, Addr(0x1008)), 77);
        p.write_f64(n, Addr(0x1010), 6.02e23);
        assert_eq!(p.read_f64(n, Addr(0x1010)), 6.02e23);
    }

    #[test]
    fn default_directives_are_noops() {
        let mut p = RawMemory::new();
        p.mark_modification(NodeId(0), Addr(0x1000));
        p.flush_copies(NodeId(0));
        assert!(p.take_conflicts().is_empty());
        p.reconcile_copies(); // default = barrier
        assert_eq!(p.tempest().machine.barriers(), 1);
    }

    #[test]
    fn compute_advances_the_clock() {
        let mut p = RawMemory::new();
        p.compute(NodeId(1), 123);
        assert_eq!(p.tempest().machine.clock(NodeId(1)), 123);
    }

    #[test]
    fn default_reduce_is_read_modify_write() {
        use crate::reconcile::ReduceOp;
        let mut p = RawMemory::new();
        let n = NodeId(0);
        p.write_f64(n, Addr(0x1000), 10.0);
        p.reduce_f64(n, Addr(0x1000), ReduceOp::SumF64, 2.5);
        p.reduce_f64(n, Addr(0x1000), ReduceOp::SumF64, 2.5);
        assert_eq!(p.read_f64(n, Addr(0x1000)), 15.0);

        p.write_f32(n, Addr(0x1010), 4.0);
        p.reduce_f32(n, Addr(0x1010), ReduceOp::MaxF32, 9.0);
        assert_eq!(p.read_f32(n, Addr(0x1010)), 9.0);

        p.write_i32(n, Addr(0x1014), 7);
        p.reduce_i32(n, Addr(0x1014), ReduceOp::SumI32, -2);
        assert_eq!(p.read_i32(n, Addr(0x1014)), 5);
    }

    #[test]
    #[should_panic(expected = "not an 8-byte operator")]
    fn reduce_f64_rejects_w4_ops() {
        use crate::reconcile::ReduceOp;
        let mut p = RawMemory::new();
        p.reduce_f64(NodeId(0), Addr(0x1000), ReduceOp::SumF32, 1.0);
    }

    #[test]
    fn default_checkpoint_is_empty() {
        let mut p = RawMemory::new();
        let img = p.checkpoint();
        assert_eq!(img, CheckpointImage::empty(2));
        assert_eq!(img.total_bytes(), 0);
        assert_eq!(img.per_node.len(), 2);
    }

    #[test]
    fn phase_defaults() {
        let mut p = RawMemory::new();
        assert!(!p.in_parallel_phase());
        p.begin_parallel_phase(); // no-op
        p.refresh_stale(NodeId(0), Addr(0x1000)); // no-op
        assert!(!p.in_parallel_phase());
    }
}

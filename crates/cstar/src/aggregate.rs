//! Aggregates: the C\*\* data collections parallel functions apply to.
//!
//! An aggregate "looks and behaves like a C++ array" and is the basis for
//! parallelism: applying a parallel function to an aggregate creates one
//! invocation per element. Handles ([`Agg1`], [`Agg2`]) are small `Copy`
//! tokens; the backing storage lives in the simulated global address
//! space, registered with the runtime so that the *compilation strategy*
//! (LCM directives vs. explicit double-buffering) can be switched without
//! touching application code.

use crate::scalar::Scalar;
use lcm_sim::mem::Addr;
use std::marker::PhantomData;

/// Runtime-internal record of one aggregate's storage.
#[derive(Clone, Debug)]
pub(crate) struct AggInfo {
    /// Primary storage.
    pub base: Addr,
    /// Shadow storage for the explicit-copying strategy (`None` under LCM).
    pub back: Option<Addr>,
    /// When true, reads map to `back` and writes to `base` (buffers
    /// swapped an odd number of times).
    pub swapped: bool,
    /// Total elements.
    pub len: usize,
    /// Row length for 2-D aggregates (`cols == len` for 1-D).
    pub cols: usize,
    /// Debug name (kept for traces and future diagnostics).
    #[allow(dead_code)]
    pub name: String,
}

impl AggInfo {
    /// Address of element `idx` in the buffer reads come from.
    #[inline]
    pub fn read_addr(&self, idx: usize) -> Addr {
        debug_assert!(idx < self.len, "aggregate index {idx} out of bounds");
        let base = match (self.back, self.swapped) {
            (Some(back), true) => back,
            _ => self.base,
        };
        base.offset(idx as u64 * 4)
    }

    /// Address of element `idx` in the buffer writes go to.
    #[inline]
    pub fn write_addr(&self, idx: usize) -> Addr {
        debug_assert!(idx < self.len, "aggregate index {idx} out of bounds");
        let base = match (self.back, self.swapped) {
            (Some(back), false) => back,
            _ => self.base,
        };
        base.offset(idx as u64 * 4)
    }

    /// Flips the read/write buffers (no-op without a back buffer).
    pub fn swap(&mut self) {
        if self.back.is_some() {
            self.swapped = !self.swapped;
        }
    }
}

/// A reference to one element of an aggregate, as produced by
/// [`Agg1::at`] / [`Agg2::at`] and consumed by the invocation context.
pub struct Cell<T> {
    pub(crate) id: usize,
    pub(crate) idx: usize,
    pub(crate) _elem: PhantomData<T>,
}

impl<T> Clone for Cell<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Cell<T> {}

impl<T> std::fmt::Debug for Cell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Cell(#{}, [{}])", self.id, self.idx)
    }
}

/// Handle to a one-dimensional aggregate of `T`.
pub struct Agg1<T> {
    pub(crate) id: usize,
    /// Number of elements.
    pub len: usize,
    pub(crate) _elem: PhantomData<T>,
}

impl<T> Clone for Agg1<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Agg1<T> {}

impl<T: Scalar> Agg1<T> {
    pub(crate) fn new(id: usize, len: usize) -> Agg1<T> {
        Agg1 {
            id,
            len,
            _elem: PhantomData,
        }
    }

    /// The element at index `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn at(&self, i: usize) -> Cell<T> {
        assert!(
            i < self.len,
            "index {i} out of aggregate length {}",
            self.len
        );
        Cell {
            id: self.id,
            idx: i,
            _elem: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Agg1<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Agg1(#{}, len {})", self.id, self.len)
    }
}

/// Handle to a two-dimensional (row-major) aggregate of `T`.
pub struct Agg2<T> {
    pub(crate) id: usize,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    pub(crate) _elem: PhantomData<T>,
}

impl<T> Clone for Agg2<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Agg2<T> {}

impl<T: Scalar> Agg2<T> {
    pub(crate) fn new(id: usize, rows: usize, cols: usize) -> Agg2<T> {
        Agg2 {
            id,
            rows,
            cols,
            _elem: PhantomData,
        }
    }

    /// Linear element index of `(r, c)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn index(&self, r: usize, c: usize) -> usize {
        assert!(
            r < self.rows && c < self.cols,
            "({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        r * self.cols + c
    }

    /// The element at `(r, c)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Cell<T> {
        Cell {
            id: self.id,
            idx: self.index(r, c),
            _elem: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Agg2<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Agg2(#{}, {}x{})", self.id, self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(back: bool) -> AggInfo {
        AggInfo {
            base: Addr(0x1000),
            back: back.then_some(Addr(0x2000)),
            swapped: false,
            len: 16,
            cols: 4,
            name: "t".to_string(),
        }
    }

    #[test]
    fn single_buffer_reads_and_writes_same_storage() {
        let i = info(false);
        assert_eq!(i.read_addr(3), Addr(0x100c));
        assert_eq!(i.write_addr(3), Addr(0x100c));
    }

    #[test]
    fn double_buffer_splits_reads_and_writes() {
        let mut i = info(true);
        assert_eq!(i.read_addr(0), Addr(0x1000));
        assert_eq!(i.write_addr(0), Addr(0x2000));
        i.swap();
        assert_eq!(i.read_addr(0), Addr(0x2000));
        assert_eq!(i.write_addr(0), Addr(0x1000));
        i.swap();
        assert_eq!(i.read_addr(0), Addr(0x1000));
    }

    #[test]
    fn swap_without_back_buffer_is_noop() {
        let mut i = info(false);
        i.swap();
        assert_eq!(i.read_addr(0), Addr(0x1000));
        assert_eq!(i.write_addr(0), Addr(0x1000));
    }

    #[test]
    fn agg2_index_is_row_major() {
        let a: Agg2<f32> = Agg2::new(0, 4, 8);
        assert_eq!(a.index(0, 0), 0);
        assert_eq!(a.index(1, 0), 8);
        assert_eq!(a.index(3, 7), 31);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn agg2_index_bounds_checked() {
        let a: Agg2<f32> = Agg2::new(0, 4, 8);
        a.index(4, 0);
    }

    #[test]
    fn handles_are_copy() {
        let a: Agg1<i32> = Agg1::new(1, 10);
        let b = a;
        assert_eq!(a.len, b.len); // both usable: Copy
        assert!(format!("{a:?}").contains("len 10"));
    }
}

//! Element types storable in C\*\* aggregates.
//!
//! The protocol-visible access unit is the 4-byte word (the CM-5's
//! single-precision float), so aggregate elements are the word-sized
//! scalars. Reduction variables additionally support `f64` through the
//! dedicated reduction API (`%+=` on a `double` in the paper's example).

/// A word-sized value storable in an aggregate.
///
/// This trait is sealed in spirit: the set of element types is fixed by
/// the memory system's word size, and implementations exist only for
/// `f32`, `i32`, and `u32`.
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + Default {
    /// The value as raw word bits.
    fn to_bits(self) -> u32;
    /// A value from raw word bits.
    fn from_bits(bits: u32) -> Self;
}

impl Scalar for f32 {
    #[inline]
    fn to_bits(self) -> u32 {
        f32::to_bits(self)
    }
    #[inline]
    fn from_bits(bits: u32) -> f32 {
        f32::from_bits(bits)
    }
}

impl Scalar for i32 {
    #[inline]
    fn to_bits(self) -> u32 {
        self as u32
    }
    #[inline]
    fn from_bits(bits: u32) -> i32 {
        bits as i32
    }
}

impl Scalar for u32 {
    #[inline]
    fn to_bits(self) -> u32 {
        self
    }
    #[inline]
    fn from_bits(bits: u32) -> u32 {
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        assert_eq!(f32::from_bits(Scalar::to_bits(-1.5f32)), -1.5);
        assert_eq!(<i32 as Scalar>::from_bits(Scalar::to_bits(-7i32)), -7);
        assert_eq!(
            <u32 as Scalar>::from_bits(Scalar::to_bits(0xdead_beefu32)),
            0xdead_beef
        );
    }

    #[test]
    fn nan_bits_preserved() {
        let bits = 0x7fc0_1234u32;
        let v = <f32 as Scalar>::from_bits(bits);
        assert!(v.is_nan());
        assert_eq!(Scalar::to_bits(v), bits);
    }
}

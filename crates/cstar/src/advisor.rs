//! The compiler's memory-system choice, as a decision procedure.
//!
//! The paper closes §6.3 observing that "a compiler should not rely
//! exclusively on LCM … one of the virtues of user-level shared memory is
//! that a compiler can make this choice (or even use both in a program)
//! by selecting the libraries linked with a program." This module encodes
//! that choice: given what compiler analysis learned about a parallel
//! function ([`AccessSummary`]), [`advise`] picks the compilation
//! [`Strategy`] and [`FlushPolicy`], with the paper-derived rationale.

use crate::runtime::{FlushPolicy, Strategy};

/// What analysis proved about a parallel function's writes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WriteFootprint {
    /// Every invocation writes locations no other invocation accesses.
    DisjointLocations,
    /// Writes may touch locations other invocations read or write.
    MayConflict,
}

/// What analysis proved about a parallel function's reads.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReadPattern {
    /// Invocations read only their own element.
    OwnElement,
    /// Invocations read a statically-known neighborhood (stencils).
    StaticNeighbors,
    /// Reads chase pointers or indices computed at run time.
    Irregular,
}

/// Whether the data structure changes shape during execution.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Structure {
    /// Fixed shape the compiler can enumerate (arrays).
    Static,
    /// Dynamically built or refined (the adaptive mesh's quad-trees).
    Dynamic,
}

/// How invocations are scheduled onto processors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// The same partition every call (ownership stays put).
    Repeatable,
    /// Re-partitioned per call by a load balancer.
    LoadBalanced,
}

/// How much of the data each call modifies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum UpdateDensity {
    /// Essentially every element is written (stencils).
    Full,
    /// Few elements change (Threshold's 2%).
    Sparse,
}

/// The facts the "compiler" feeds the advisor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessSummary {
    /// Write-footprint analysis result.
    pub writes: WriteFootprint,
    /// Read-pattern analysis result.
    pub reads: ReadPattern,
    /// Data-structure shape.
    pub structure: Structure,
    /// Scheduling regime.
    pub schedule: Schedule,
    /// Update density.
    pub updates: UpdateDensity,
}

/// The advisor's decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    /// Which compilation strategy to link.
    pub strategy: Strategy,
    /// Where to emit flush directives (meaningful under LCM).
    pub flush: FlushPolicy,
    /// Paper-derived reasons, most significant first.
    pub rationale: Vec<&'static str>,
}

/// Chooses a compilation strategy for a parallel function.
///
/// The rules transcribe the paper's §6 findings:
///
/// * dynamic structures ⇒ LCM (conservative copying must copy the whole
///   structure every call);
/// * sparse updates ⇒ LCM (explicit copying still carries every element);
/// * load-balanced schedules ⇒ LCM (ownership never settles, so the
///   copying baseline's locality advantage evaporates);
/// * otherwise — static, repeatable, densely-updated data — explicit
///   copying on plain coherent memory wins ("LCM has little to offer").
///
/// Under LCM, flushes move to reconcile time when the write footprint is
/// disjoint and reads are own-element only (§5.1).
pub fn advise(summary: &AccessSummary) -> Plan {
    let mut rationale = Vec::new();
    let mut lcm = false;
    if summary.structure == Structure::Dynamic {
        lcm = true;
        rationale.push(
            "dynamic structure: a compiler cannot tell which parts will be modified, so \
             explicit copying must conservatively copy the whole structure each call (§6.2)",
        );
    }
    if summary.updates == UpdateDensity::Sparse {
        lcm = true;
        rationale.push(
            "sparse updates: copy-on-write moves only modified blocks, while the copying \
             code writes every element every call (Threshold, §6.3)",
        );
    }
    if summary.schedule == Schedule::LoadBalanced {
        lcm = true;
        rationale.push(
            "load-balanced schedule: chunk ownership moves every call, so the coherent \
             baseline refetches whole chunks anyway (Stencil-dyn, §6.3)",
        );
    }
    if summary.reads == ReadPattern::Irregular {
        lcm = true;
        rationale.push(
            "irregular reads: cross-processor blocks ping-pong under single-writer \
             coherence; word-granular reconciliation absorbs them (Unstructured, §6.3)",
        );
    }
    if !lcm {
        rationale.push(
            "static data, repeatable schedule, dense updates: double-buffering keeps every \
             chunk resident and communicates only boundaries — LCM has little to offer here \
             (Stencil-stat, §6.3)",
        );
        return Plan {
            strategy: Strategy::ExplicitCopy,
            flush: FlushPolicy::PerInvocation,
            rationale,
        };
    }
    let flush = if summary.writes == WriteFootprint::DisjointLocations
        && summary.reads == ReadPattern::OwnElement
    {
        rationale.push(
            "invocations provably touch distinct locations: flushes between invocations \
             are unnecessary and move to reconcile time (§5.1)",
        );
        FlushPolicy::AtReconcile
    } else {
        FlushPolicy::PerInvocation
    };
    Plan {
        strategy: Strategy::LcmDirectives,
        flush,
        rationale,
    }
}

/// Canonical summaries of the paper's benchmarks, for tests and docs.
pub mod profiles {
    use super::*;

    /// Stencil with a static partition.
    pub fn stencil_static() -> AccessSummary {
        AccessSummary {
            writes: WriteFootprint::MayConflict, // writes blocks its neighbors read
            reads: ReadPattern::StaticNeighbors,
            structure: Structure::Static,
            schedule: Schedule::Repeatable,
            updates: UpdateDensity::Full,
        }
    }

    /// Stencil under a load-balancing scheduler.
    pub fn stencil_dynamic() -> AccessSummary {
        AccessSummary {
            schedule: Schedule::LoadBalanced,
            ..stencil_static()
        }
    }

    /// The adaptive quad-tree mesh.
    pub fn adaptive() -> AccessSummary {
        AccessSummary {
            structure: Structure::Dynamic,
            ..stencil_static()
        }
    }

    /// Threshold: a stencil that updates ~2% of cells.
    pub fn threshold() -> AccessSummary {
        AccessSummary {
            updates: UpdateDensity::Sparse,
            ..stencil_static()
        }
    }

    /// Unstructured-mesh relaxation.
    pub fn unstructured() -> AccessSummary {
        AccessSummary {
            reads: ReadPattern::Irregular,
            ..stencil_static()
        }
    }

    /// A pure per-element map.
    pub fn independent_map() -> AccessSummary {
        AccessSummary {
            writes: WriteFootprint::DisjointLocations,
            reads: ReadPattern::OwnElement,
            structure: Structure::Static,
            schedule: Schedule::Repeatable,
            updates: UpdateDensity::Full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::profiles::*;
    use super::*;

    #[test]
    fn stencil_static_gets_explicit_copying() {
        let plan = advise(&stencil_static());
        assert_eq!(plan.strategy, Strategy::ExplicitCopy);
        assert!(!plan.rationale.is_empty());
    }

    #[test]
    fn dynamic_cases_get_lcm() {
        for (name, s) in [
            ("stencil-dyn", stencil_dynamic()),
            ("adaptive", adaptive()),
            ("threshold", threshold()),
            ("unstructured", unstructured()),
        ] {
            let plan = advise(&s);
            assert_eq!(plan.strategy, Strategy::LcmDirectives, "{name}");
            assert_eq!(plan.flush, FlushPolicy::PerInvocation, "{name}");
        }
    }

    #[test]
    fn independent_map_under_lcm_elides_flushes() {
        // A pure map on a repeatable static schedule would pick copying;
        // force LCM by making the schedule dynamic and check the §5.1
        // elision kicks in.
        let s = AccessSummary {
            schedule: Schedule::LoadBalanced,
            ..independent_map()
        };
        let plan = advise(&s);
        assert_eq!(plan.strategy, Strategy::LcmDirectives);
        assert_eq!(plan.flush, FlushPolicy::AtReconcile);
        assert!(plan
            .rationale
            .iter()
            .any(|r| r.contains("distinct locations")));
    }

    #[test]
    fn independent_map_on_repeatable_schedule_prefers_copying() {
        assert_eq!(advise(&independent_map()).strategy, Strategy::ExplicitCopy);
    }

    #[test]
    fn rationale_cites_each_trigger() {
        let s = AccessSummary {
            structure: Structure::Dynamic,
            updates: UpdateDensity::Sparse,
            schedule: Schedule::LoadBalanced,
            ..stencil_static()
        };
        let plan = advise(&s);
        assert!(
            plan.rationale.len() >= 3,
            "each trigger contributes a reason"
        );
    }
}

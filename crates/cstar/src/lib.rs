//! # lcm-cstar — a C\*\*-style data-parallel runtime
//!
//! C\*\* (Larus 1992) is a large-grain data-parallel extension of C++:
//! applying a *parallel function* to an *aggregate* creates one
//! asynchronous invocation per element, and every invocation executes
//! "atomically and simultaneously" — it sees the pre-call global state
//! plus its own writes, and all modifications merge into a new global
//! state when the call completes.
//!
//! This crate is the runtime the paper's compiler targets, as an embedded
//! Rust DSL. The same application code runs under either compilation
//! [`Strategy`]:
//!
//! * **`LcmDirectives`** — aggregates become LCM copy-on-write regions;
//!   the runtime opens a parallel phase per call, flushes modified copies
//!   between invocations, and reconciles at the end;
//! * **`ExplicitCopy`** — aggregates are double-buffered on conventional
//!   coherent memory (the Stache baseline): reads from the front copy,
//!   writes to the back copy, swap after the call.
//!
//! ```
//! use lcm_cstar::{Runtime, Strategy, Partition};
//! use lcm_stache::Stache;
//! use lcm_sim::MachineConfig;
//! use lcm_tempest::Placement;
//!
//! // The same stencil code runs on the Stache/explicit-copy baseline…
//! let mut rt = Runtime::new(Stache::new(MachineConfig::new(8)), Strategy::ExplicitCopy);
//! let m = rt.new_aggregate2::<f32>(16, 16, Placement::Blocked, "mesh");
//! rt.init2(m, |r, c| if r == 0 { 100.0 } else { (c % 3) as f32 });
//! rt.apply2(m, Partition::Static, |inv, r, c| {
//!     if r > 0 && r < 15 && c > 0 && c < 15 {
//!         let s = inv.get(m.at(r - 1, c)) + inv.get(m.at(r + 1, c))
//!               + inv.get(m.at(r, c - 1)) + inv.get(m.at(r, c + 1));
//!         inv.set(m.at(r, c), s * 0.25);
//!     } else {
//!         let v = inv.get(m.at(r, c));
//!         inv.copy_through(m.at(r, c), v);
//!     }
//! });
//! assert!(rt.peek2(m, 1, 1) > 0.0);
//! ```

#![warn(missing_docs)]

pub mod advisor;
pub mod aggregate;
pub mod parallel;
pub mod runtime;
pub mod scalar;

pub use advisor::{advise, AccessSummary, Plan};
pub use aggregate::{Agg1, Agg2, Cell};
pub use parallel::{Invocation, Partition};
pub use runtime::{FlushPolicy, ReduceVar, Runtime, RuntimeConfig, Strategy};
pub use scalar::Scalar;

//! The C\*\* runtime: aggregates, reduction variables, and the
//! compilation strategy.
//!
//! The paper's C\*\* compiler emits one of two code shapes per program:
//! LCM directives (`mark_modification` / `flush_copies` /
//! `reconcile_copies`, with the memory system catching unmarked stores),
//! or conservative *explicit copying* on a conventional memory system
//! (double-buffered aggregates swapped after each parallel call). This
//! runtime realizes both as a [`Strategy`], so the same application code
//! runs under either — the paper's point that "a compiler can make this
//! choice by selecting the libraries linked with a program".

use crate::aggregate::{Agg1, Agg2, AggInfo};
use crate::scalar::Scalar;
use lcm_rsm::{MemoryProtocol, MergePolicy, ReduceOp, RegionPolicy, ValueWidth};
use lcm_sim::mem::{Addr, BlockId, BLOCK_BYTES};
use lcm_sim::{CrashPlan, CycleCat, Knob, NodeId, Pcg32};
use lcm_tempest::{DeathEvidence, Placement};
use std::ops::Range;

/// How the "compiler" implements C\*\* semantics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Emit LCM directives; aggregates are copy-on-write regions and a
    /// parallel call is a phase ended by `reconcile_copies`.
    LcmDirectives,
    /// Conservative explicit copying on coherent memory: aggregates are
    /// double-buffered; reads come from the front copy, writes go to the
    /// back copy, and buffers swap after the parallel call.
    ExplicitCopy,
}

/// When the "compiler" emits `flush_copies` directives (paper §5.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// After every invocation that modified data — the conservative
    /// default, required whenever the compiler cannot prove that
    /// consecutive invocations on one processor touch distinct locations.
    #[default]
    PerInvocation,
    /// Only at the end of the parallel call. **Sound only when compiler
    /// analysis shows every invocation reads and writes locations no
    /// other invocation of the call accesses** (each invocation then
    /// cannot observe a predecessor's modifications, because there are
    /// none it would touch). The C\*\* compiler's §5.1 optimization.
    AtReconcile,
}

/// Tunables of the runtime.
#[derive(Copy, Clone, Debug)]
pub struct RuntimeConfig {
    /// Cycles charged per parallel-function invocation (call, scheduling
    /// and index arithmetic — work the protocol does not see).
    pub invocation_overhead: u64,
    /// Seed for the dynamic-partition schedule shuffle.
    pub seed: u64,
    /// Register aggregates with conflict detection (paper §7.2/7.3).
    pub detect_conflicts: bool,
    /// Flush-directive placement (see [`FlushPolicy`]).
    pub flush: FlushPolicy,
    /// Fail-stop crash schedule (disabled by default). An active plan
    /// makes the runtime checkpoint at phase boundaries and roll crashed
    /// nodes back to the last checkpoint; an inactive plan changes
    /// nothing, cycle for cycle. Crashes are cost-only: deterministic
    /// re-execution reproduces the dead node's exact values, so program
    /// outputs stay byte-identical at any crash rate.
    pub crash: CrashPlan,
    /// Checkpoint every N-th phase boundary (`>= 1`; only meaningful
    /// while [`RuntimeConfig::crash`] is active). Coarser checkpoints
    /// capture state less often but lose more re-executed work per
    /// crash — the granularity axis of the recovery sweep.
    pub checkpoint_every: u64,
    /// Host threads executing *one* simulation's parallel calls (the
    /// `--sim-threads` knob, orthogonal to `--jobs` which spreads
    /// *independent* sweep points). With `1` (the default) parallel
    /// calls run on the classic sequential path; with more, the
    /// epoch-parallel engine shadows invocations across a persistent
    /// worker pool and replays them deterministically — outputs are
    /// byte-identical either way (see `DESIGN.md` §4j).
    pub sim_threads: usize,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            invocation_overhead: 50,
            seed: 0x5eed,
            detect_conflicts: false,
            flush: FlushPolicy::PerInvocation,
            crash: CrashPlan::disabled(),
            checkpoint_every: 1,
            sim_threads: 1,
        }
    }
}

/// A reduction variable (C\*\*'s `%+=` family targets): an `f64` location
/// with an associated reconciliation operator.
#[derive(Copy, Clone, Debug)]
pub struct ReduceVar {
    pub(crate) addr: Addr,
    pub(crate) op: ReduceOp,
}

impl ReduceVar {
    /// The reduction operator.
    pub fn op(&self) -> ReduceOp {
        self.op
    }
}

/// The C\*\* runtime over a memory protocol `P`.
///
/// ```
/// use lcm_cstar::{Runtime, Strategy, Partition};
/// use lcm_core::{Lcm, LcmVariant};
/// use lcm_sim::MachineConfig;
/// use lcm_tempest::Placement;
///
/// let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
/// let mut rt = Runtime::new(mem, Strategy::LcmDirectives);
/// let a = rt.new_aggregate2::<f32>(8, 8, Placement::Blocked, "m");
/// rt.init2(a, |r, c| (r + c) as f32);
/// rt.apply2(a, Partition::Static, |inv, r, c| {
///     let v = inv.get(a.at(r, c));
///     inv.set(a.at(r, c), v + 1.0);
/// });
/// assert_eq!(rt.peek2(a, 3, 4), 8.0);
/// ```
#[derive(Debug)]
pub struct Runtime<P> {
    pub(crate) mem: P,
    pub(crate) strategy: Strategy,
    pub(crate) aggs: Vec<AggInfo>,
    pub(crate) written: Vec<bool>,
    pub(crate) rng: Pcg32,
    pub(crate) overhead: u64,
    pub(crate) flush: FlushPolicy,
    detect_conflicts: bool,
    crash: CrashPlan,
    checkpoint_every: u64,
    /// Phase boundaries crossed so far (init and apply alike); the
    /// crash schedule draws per `(node, phase)` from this counter.
    phase: u64,
    /// Each node's clock at its last checkpoint — the restart point a
    /// crashed node rolls back to.
    ckpt_clocks: Vec<u64>,
    /// Bytes each node persisted at its last checkpoint — the state a
    /// crashed node must re-read to restart.
    ckpt_bytes: Vec<u64>,
    /// Host threads for the epoch-parallel engine (>= 1).
    pub(crate) sim_threads: usize,
    /// The persistent worker pool, created on the first parallel call
    /// that wants it. Host-side machinery only: it never touches
    /// simulated state, so it has no bearing on determinism.
    pub(crate) pool: Option<lcm_sim::SimPool>,
    /// Epochs whose shadow pass completed (no bailout): host-side
    /// bookkeeping the byte-identity tests use to prove the engine
    /// engaged instead of silently falling back to the classic path.
    pub(crate) shadow_epochs: u64,
}

impl<P: MemoryProtocol> Runtime<P> {
    /// A runtime with default configuration.
    pub fn new(mem: P, strategy: Strategy) -> Runtime<P> {
        Runtime::with_config(mem, strategy, RuntimeConfig::default())
    }

    /// A runtime with explicit configuration.
    ///
    /// # Panics
    /// Panics if `config.checkpoint_every == 0`.
    pub fn with_config(mem: P, strategy: Strategy, config: RuntimeConfig) -> Runtime<P> {
        assert!(
            config.checkpoint_every >= 1,
            "checkpoint_every must be at least 1"
        );
        let nodes = mem.tempest().nodes();
        Runtime {
            mem,
            strategy,
            aggs: Vec::new(),
            written: Vec::new(),
            rng: Pcg32::new(config.seed, 0xC5),
            overhead: config.invocation_overhead,
            flush: config.flush,
            detect_conflicts: config.detect_conflicts,
            crash: config.crash,
            checkpoint_every: config.checkpoint_every,
            phase: 0,
            ckpt_clocks: vec![0; nodes],
            ckpt_bytes: vec![0; nodes],
            sim_threads: config.sim_threads.max(1),
            pool: None,
            shadow_epochs: 0,
        }
    }

    /// The compilation strategy in force.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The memory system.
    pub fn mem(&self) -> &P {
        &self.mem
    }

    /// Mutable access to the memory system.
    pub fn mem_mut(&mut self) -> &mut P {
        &mut self.mem
    }

    /// Consumes the runtime, returning the memory system (for final
    /// statistics harvesting).
    pub fn into_mem(self) -> P {
        self.mem
    }

    /// Number of processors.
    pub fn nodes(&self) -> usize {
        self.mem.tempest().nodes()
    }

    /// Current simulated time (max node clock), in cycles.
    pub fn time(&self) -> u64 {
        self.mem.tempest().machine.time()
    }

    /// Phase boundaries crossed so far (init and apply alike).
    pub fn phases(&self) -> u64 {
        self.phase
    }

    /// The crash schedule in force.
    pub fn crash_plan(&self) -> CrashPlan {
        self.crash
    }

    /// Host threads the epoch-parallel engine may use (>= 1).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Epochs the epoch-parallel engine actually shadowed (as opposed to
    /// running through the classic sequential path). Host-side telemetry:
    /// it lets tests assert the engine engaged; it never affects the
    /// simulation.
    pub fn shadow_epochs(&self) -> u64 {
        self.shadow_epochs
    }

    /// Closes a profiler phase and, when a crash schedule is active,
    /// captures a checkpoint every `checkpoint_every`-th boundary.
    /// With the default (inactive) plan this is exactly the old
    /// `mark_phase` call — no draw, no charge, no state change.
    pub(crate) fn phase_boundary(&mut self, label: &'static str) {
        self.mem.tempest_mut().machine.mark_phase(label);
        self.phase += 1;
        if self.crash.is_active() && self.phase.is_multiple_of(self.checkpoint_every) {
            self.take_checkpoint();
        }
    }

    /// Captures a phase checkpoint and charges its capture cost: each
    /// node persists its share of the image at block-flush bandwidth
    /// under [`CycleCat::Checkpoint`].
    fn take_checkpoint(&mut self) {
        let img = self.mem.checkpoint();
        let t = self.mem.tempest_mut();
        for (i, &bytes) in img.per_node.iter().enumerate() {
            let node = NodeId(i as u16);
            let blocks = bytes.div_ceil(BLOCK_BYTES as u64);
            t.machine
                .charge(node, CycleCat::Checkpoint, Knob::BlockFlush, blocks);
            let s = t.machine.stats_mut(node);
            s.checkpoints += 1;
            s.checkpoint_bytes += bytes;
            self.ckpt_bytes[i] = bytes;
            self.ckpt_clocks[i] = t.machine.clock(node);
        }
    }

    /// Processes the crash schedule for the phase that just completed.
    ///
    /// Runs *after* the phase's reconciliation, so the merged global
    /// state is already identical to the crash-free run's — the fail-stop
    /// model is cost-only: the crashed node's private copies are gone,
    /// but its deterministic re-execution from the last checkpoint
    /// produces the very same versions, so only cycles and statistics
    /// move. Each crash charges:
    ///
    /// * the victim: the re-executed work (the crash point's fraction of
    ///   its work since the last checkpoint) plus a refill of its
    ///   checkpointed bytes, under [`CycleCat::Rollback`];
    /// * every survivor: one retry-timeout detection window under
    ///   [`CycleCat::CrashDetect`];
    ///
    /// then posts the death verdict to the membership log and
    /// resynchronizes with a barrier (survivors wait for the restart).
    pub(crate) fn process_crashes(&mut self) {
        if !self.crash.is_active() {
            return;
        }
        let nodes = self.nodes();
        let scheduled = self.crash.scheduled(nodes, self.phase);
        if scheduled.is_empty() {
            return;
        }
        for (node, point) in scheduled {
            let t = self.mem.tempest_mut();
            let at = t.machine.clock(node);
            t.net
                .membership_mut()
                .record(node, DeathEvidence::Scheduled { phase: self.phase }, at);
            t.machine.stats_mut(node).crashes += 1;
            for i in 0..nodes {
                let peer = NodeId(i as u16);
                if peer != node {
                    t.machine
                        .charge(peer, CycleCat::CrashDetect, Knob::RetryTimeout, 1);
                }
            }
            let work = at.saturating_sub(self.ckpt_clocks[node.index()]);
            let lost = work * point.frac_permille / 1000;
            t.machine.advance_as(node, lost, CycleCat::Rollback);
            let blocks = self.ckpt_bytes[node.index()].div_ceil(BLOCK_BYTES as u64);
            t.machine
                .charge(node, CycleCat::Rollback, Knob::LocalRefill, blocks);
        }
        self.mem.barrier();
    }

    fn register(&mut self, base: Addr, bytes: u64, merge: MergePolicy) {
        if self.strategy != Strategy::LcmDirectives {
            return;
        }
        let first = base.block();
        let end = BlockId(base.offset(bytes - 1).block().0 + 1);
        let mut policy = RegionPolicy::copy_on_write(merge);
        if self.detect_conflicts {
            policy = policy.detecting();
        }
        self.mem.policies_mut().set(first, end, policy);
    }

    fn new_storage(&mut self, len: usize, placement: Placement, name: &str) -> AggInfo {
        assert!(len > 0, "empty aggregate");
        let bytes = (len * 4) as u64;
        let base = self.mem.tempest_mut().alloc(bytes, placement, name);
        let back = match self.strategy {
            Strategy::ExplicitCopy => Some(self.mem.tempest_mut().alloc(
                bytes,
                placement,
                &format!("{name}.back"),
            )),
            Strategy::LcmDirectives => None,
        };
        self.register(base, bytes, MergePolicy::KeepOne);
        AggInfo {
            base,
            back,
            swapped: false,
            len,
            cols: len,
            name: name.to_string(),
        }
    }

    /// Allocates a one-dimensional aggregate of `len` elements.
    ///
    /// # Panics
    /// Panics if `len == 0`.
    pub fn new_aggregate1<T: Scalar>(
        &mut self,
        len: usize,
        placement: Placement,
        name: &str,
    ) -> Agg1<T> {
        let info = self.new_storage(len, placement, name);
        let id = self.aggs.len();
        self.aggs.push(info);
        self.written.push(false);
        Agg1::new(id, len)
    }

    /// Allocates a `rows × cols` row-major aggregate.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new_aggregate2<T: Scalar>(
        &mut self,
        rows: usize,
        cols: usize,
        placement: Placement,
        name: &str,
    ) -> Agg2<T> {
        assert!(rows > 0 && cols > 0, "empty aggregate");
        let mut info = self.new_storage(rows * cols, placement, name);
        info.cols = cols;
        let id = self.aggs.len();
        self.aggs.push(info);
        self.written.push(false);
        Agg2::new(id, rows, cols)
    }

    /// Allocates an `f64` reduction variable with the given operator and
    /// initial value (homed on node 0, like a C\*\* global).
    ///
    /// # Panics
    /// Panics if `op` is not an 8-byte operator.
    pub fn new_reduction_f64(&mut self, op: ReduceOp, init: f64, name: &str) -> ReduceVar {
        assert_eq!(op.width(), ValueWidth::W8, "{op} is not an f64 operator");
        let addr = self
            .mem
            .tempest_mut()
            .alloc(8, Placement::OnNode(NodeId(0)), name);
        self.register(addr, 8, MergePolicy::Reduce(op));
        self.mem.write_f64(NodeId(0), addr, init);
        ReduceVar { addr, op }
    }

    /// Re-initializes a reduction variable (outside any parallel phase).
    pub fn set_reduction(&mut self, var: ReduceVar, value: f64) {
        self.mem.write_f64(NodeId(0), var.addr, value);
    }

    /// Reads a reduction variable without disturbing protocol state.
    pub fn peek_reduction(&self, var: ReduceVar) -> f64 {
        self.mem.tempest().mem.read_f64(var.addr)
    }

    /// Initializes a 1-D aggregate in parallel, each element written by
    /// its static owner (warming ownership the way a real program's
    /// initialization loop does). Writes both buffers under
    /// [`Strategy::ExplicitCopy`]. Ends with a barrier.
    pub fn init1<T: Scalar, F: FnMut(usize) -> T>(&mut self, agg: Agg1<T>, mut f: F) {
        for (node, range) in chunk_plan(agg.len, self.nodes()) {
            for i in range {
                self.init_element(agg.id, node, i, f(i).to_bits());
            }
        }
        self.mem.barrier();
        self.phase_boundary("init");
    }

    /// Initializes a 2-D aggregate in parallel by static row owner.
    /// Writes both buffers under [`Strategy::ExplicitCopy`]. Ends with a
    /// barrier.
    pub fn init2<T: Scalar, F: FnMut(usize, usize) -> T>(&mut self, agg: Agg2<T>, mut f: F) {
        for (node, rows) in chunk_plan(agg.rows, self.nodes()) {
            for r in rows {
                for c in 0..agg.cols {
                    self.init_element(agg.id, node, r * agg.cols + c, f(r, c).to_bits());
                }
            }
        }
        self.mem.barrier();
        self.phase_boundary("init");
    }

    fn init_element(&mut self, id: usize, node: NodeId, idx: usize, bits: u32) {
        let (front, back) = {
            let info = &self.aggs[id];
            (info.read_addr(idx), info.back.map(|_| info.write_addr(idx)))
        };
        self.mem.write_word(node, front, bits);
        if let Some(b) = back {
            if b != front {
                self.mem.write_word(node, b, bits);
            }
        }
    }

    /// Reads an element of a 1-D aggregate directly from home memory —
    /// zero cost, no protocol state disturbed. Intended for verification
    /// *between* parallel phases (during a phase, pending modifications
    /// are not yet visible here).
    pub fn peek1<T: Scalar>(&self, agg: Agg1<T>, i: usize) -> T {
        let addr = self.aggs[agg.id].read_addr(i);
        T::from_bits(self.mem.tempest().mem.read_word(addr))
    }

    /// Reads an element of a 2-D aggregate directly from home memory
    /// (see [`Runtime::peek1`]).
    pub fn peek2<T: Scalar>(&self, agg: Agg2<T>, r: usize, c: usize) -> T {
        let addr = self.aggs[agg.id].read_addr(agg.index(r, c));
        T::from_bits(self.mem.tempest().mem.read_word(addr))
    }
}

/// Splits `len` items into `nodes` contiguous chunks (the static
/// partition): chunk `k` goes to node `k`. Trailing chunks may be empty
/// when `len < nodes`.
pub(crate) fn chunk_plan(len: usize, nodes: usize) -> Vec<(NodeId, Range<usize>)> {
    let mut plan = Vec::with_capacity(nodes);
    for k in 0..nodes {
        let start = len * k / nodes;
        let end = len * (k + 1) / nodes;
        plan.push((NodeId(k as u16), start..end));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_core::{Lcm, LcmVariant};
    use lcm_sim::MachineConfig;
    use lcm_stache::Stache;

    fn lcm_rt() -> Runtime<Lcm> {
        Runtime::new(
            Lcm::new(MachineConfig::new(4), LcmVariant::Mcc),
            Strategy::LcmDirectives,
        )
    }

    fn copy_rt() -> Runtime<Stache> {
        Runtime::new(Stache::new(MachineConfig::new(4)), Strategy::ExplicitCopy)
    }

    #[test]
    fn chunk_plan_covers_everything_contiguously() {
        for (len, nodes) in [(10, 3), (3, 8), (32, 32), (1000, 7)] {
            let plan = chunk_plan(len, nodes);
            assert_eq!(plan.len(), nodes);
            let mut next = 0;
            for (_, r) in &plan {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    fn lcm_strategy_allocates_single_buffer() {
        let mut rt = lcm_rt();
        let a = rt.new_aggregate2::<f32>(4, 4, Placement::Blocked, "m");
        assert!(rt.aggs[a.id].back.is_none());
    }

    #[test]
    fn copying_strategy_allocates_double_buffer() {
        let mut rt = copy_rt();
        let a = rt.new_aggregate2::<f32>(4, 4, Placement::Blocked, "m");
        assert!(rt.aggs[a.id].back.is_some());
    }

    #[test]
    fn init_and_peek_roundtrip() {
        let mut rt = lcm_rt();
        let a = rt.new_aggregate2::<i32>(8, 8, Placement::Blocked, "m");
        rt.init2(a, |r, c| (r * 100 + c) as i32);
        assert_eq!(rt.peek2(a, 3, 5), 305);
        let b = rt.new_aggregate1::<f32>(10, Placement::Interleaved, "v");
        rt.init1(b, |i| i as f32 * 0.5);
        assert_eq!(rt.peek1(b, 7), 3.5);
    }

    #[test]
    fn init_writes_both_buffers_under_copying() {
        let mut rt = copy_rt();
        let a = rt.new_aggregate1::<i32>(4, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32 + 1);
        let info = &rt.aggs[a.id];
        let t = rt.mem().tempest();
        assert_eq!(t.mem.read_word(info.read_addr(2)), 3);
        assert_eq!(t.mem.read_word(info.write_addr(2)), 3);
        assert_ne!(info.read_addr(2), info.write_addr(2));
    }

    #[test]
    fn reduction_variable_roundtrip() {
        let mut rt = lcm_rt();
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 10.0, "total");
        assert_eq!(rt.peek_reduction(total), 10.0);
        rt.set_reduction(total, -1.0);
        assert_eq!(rt.peek_reduction(total), -1.0);
    }

    #[test]
    #[should_panic(expected = "not an f64 operator")]
    fn f32_op_rejected_for_reduction_var() {
        lcm_rt().new_reduction_f64(ReduceOp::SumF32, 0.0, "t");
    }

    #[test]
    #[should_panic(expected = "empty aggregate")]
    fn empty_aggregate_rejected() {
        lcm_rt().new_aggregate1::<f32>(0, Placement::Blocked, "v");
    }
}

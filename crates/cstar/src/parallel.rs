//! Parallel function application.
//!
//! `apply1`/`apply2` realize a C\*\* parallel call: one invocation per
//! aggregate element, invocations partitioned across processors, and the
//! semantics of "atomic and simultaneous" execution enforced by the
//! strategy in force — LCM directives (flush between invocations,
//! reconcile at the end) or explicit double-buffering (reads from the
//! front copy, writes to the back copy, swap at the end).
//!
//! The simulation executes invocations sequentially, one processor's
//! chunk at a time, with all costs charged to per-node logical clocks.
//! C\*\* semantics make the order unobservable: invocations cannot see
//! each other's modifications.
//!
//! ## The epoch-parallel engine (`par_apply1` / `par_apply2`)
//!
//! With `RuntimeConfig::sim_threads > 1`, [`Runtime::par_apply1`] and
//! [`Runtime::par_apply2`] execute one parallel call (one barrier
//! epoch) in two passes:
//!
//! 1. **Shadow** (host-parallel): each plan entry (one simulated node's
//!    chunk) runs on a persistent [`SimPool`] worker against a purely
//!    functional view of memory — reads come from the node's private
//!    write-set, falling back to home memory (stable for the addresses
//!    an invocation may read until the epoch merges); writes go only
//!    into the write-set. Every operation is recorded in a per-node op
//!    log. No protocol state, clock, ledger or trace is touched.
//! 2. **Replay** (sequential): the logs are replayed slot-major — the
//!    exact interleaving the classic path uses — issuing the identical
//!    `read_word`/`write_word`/`reduce`/`compute`/`flush_copies` call
//!    sequence into the unmodified protocol machinery. Clocks, ledger
//!    cells, stats, digests and traces are therefore byte-identical to
//!    `sim_threads == 1` *by construction*, under faults, crashes,
//!    finite bandwidth and every directory backend.
//!
//! The C\*\* contract is what makes the shadow sound: invocations read
//! pre-call global state plus their own (per-node) modifications, so a
//! write-set over stable home memory reproduces live visibility. Where
//! the shadow cannot model a construct — a nested parallel call, or a
//! read of a location that was the target of a reduction this phase —
//! it bails out with a quiet panic and the epoch reruns on the classic
//! sequential path (the shadow made no protocol mutations, so state is
//! pristine; genuine user panics then resurface exactly as they would
//! have at `sim_threads == 1`).

use crate::aggregate::Cell;
use crate::runtime::{chunk_plan, FlushPolicy, ReduceVar, Runtime, Strategy};
use crate::scalar::Scalar;
use lcm_rsm::{MemoryProtocol, ReduceOp};
use lcm_sim::hash::FastMap;
use lcm_sim::mem::{Addr, BlockId};
use lcm_sim::{NodeId, QuietPanic, SimPool};
use std::cell::UnsafeCell;
use std::ops::Range;

/// How invocation chunks map to processors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Partition {
    /// Chunk `k` always runs on node `k` — the repeatable schedule that
    /// lets Stache keep each chunk's interior resident forever
    /// (Stencil-stat).
    Static,
    /// Chunks are reassigned (shuffled) at the start of every parallel
    /// call — the paper's dynamically-partitioned variant, typical of
    /// load-balancing runtimes (Stencil-dyn).
    Dynamic,
}

/// One operation recorded by a shadow invocation, replayed verbatim
/// through the protocol on the sequential merge pass.
#[derive(Copy, Clone, Debug)]
enum Op {
    /// `read_word` at this address; the value carried along is what the
    /// shadow observed, cross-checked against the live read in debug
    /// builds (a mismatch means the shadow visibility rules diverged).
    Read(Addr, u32),
    /// `write_word`: owning aggregate (for the written flag), address,
    /// value bits.
    Write(usize, Addr, u32),
    /// A reduction assignment.
    Reduce(Addr, ReduceOp, u64),
    /// Extra application compute.
    Compute(u64),
}

/// Per-invocation shadow record: how many ops it logged, and whether it
/// modified data (drives the per-invocation flush on replay).
#[derive(Copy, Clone, Debug)]
struct InvRec {
    ops: u32,
    dirty: bool,
}

/// One plan entry's (simulated node's) shadow log for an epoch.
#[derive(Default)]
struct NodeLog {
    ops: Vec<Op>,
    invs: Vec<InvRec>,
}

/// Lock-free output slot for the shadow pass: each pool task index is
/// claimed exactly once, so cell accesses are disjoint, and the pool's
/// job-completion handshake orders them before the collecting read.
struct LogCell(UnsafeCell<NodeLog>);

// SAFETY: see above — index-disjoint, handshake-ordered.
unsafe impl Sync for LogCell {}

/// The shadow invocation's functional view of memory.
struct Shadow<'a, P> {
    rt: &'a Runtime<P>,
    /// This node's private modifications (live: its priv copies / back
    /// buffer), keyed by the address actually written.
    writes: &'a mut FastMap<Addr, u32>,
    ops: &'a mut Vec<Op>,
    /// Blocks targeted by a reduction this phase: their live contents
    /// depend on protocol internals the shadow does not model, so a
    /// read of one bails out to the sequential path.
    reduced: &'a mut Vec<BlockId>,
}

impl<P: MemoryProtocol> Shadow<'_, P> {
    fn read(&mut self, addr: Addr) -> u32 {
        if self.reduced.contains(&addr.block()) {
            std::panic::panic_any(QuietPanic);
        }
        let v = match self.writes.get(&addr) {
            Some(v) => *v,
            None => self.rt.mem.tempest().mem.read_word(addr),
        };
        self.ops.push(Op::Read(addr, v));
        v
    }

    fn write(&mut self, id: usize, addr: Addr, bits: u32) {
        self.writes.insert(addr, bits);
        self.ops.push(Op::Write(id, addr, bits));
    }

    fn reduce(&mut self, addr: Addr, op: ReduceOp, bits: u64) {
        let b = addr.block();
        if !self.reduced.contains(&b) {
            self.reduced.push(b);
        }
        self.ops.push(Op::Reduce(addr, op, bits));
    }
}

/// What an [`Invocation`] is backed by: the real runtime (classic
/// sequential execution and the replay pass), or a shadow view (the
/// epoch engine's parallel first pass).
enum Inner<'a, P> {
    Live(&'a mut Runtime<P>),
    Shadow(Shadow<'a, P>),
}

/// The context handed to each parallel-function invocation.
///
/// Provides the element accessors (reads see the pre-call global state
/// plus the invocation's own writes; writes are private until the call
/// completes) and the reduction assignments.
pub struct Invocation<'a, P> {
    inner: Inner<'a, P>,
    node: NodeId,
    dirty: bool,
}

impl<P: MemoryProtocol> Invocation<'_, P> {
    /// The processor running this invocation.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Reads an aggregate element.
    pub fn get<T: Scalar>(&mut self, cell: Cell<T>) -> T {
        match &mut self.inner {
            Inner::Live(rt) => {
                let addr = rt.aggs[cell.id].read_addr(cell.idx);
                T::from_bits(rt.mem.read_word(self.node, addr))
            }
            Inner::Shadow(sh) => {
                let addr = sh.rt.aggs[cell.id].read_addr(cell.idx);
                T::from_bits(sh.read(addr))
            }
        }
    }

    /// Writes an aggregate element. Private to this invocation until the
    /// parallel call completes.
    pub fn set<T: Scalar>(&mut self, cell: Cell<T>, v: T) {
        self.dirty = true;
        match &mut self.inner {
            Inner::Live(rt) => {
                rt.written[cell.id] = true;
                let addr = rt.aggs[cell.id].write_addr(cell.idx);
                rt.mem.write_word(self.node, addr, v.to_bits());
            }
            Inner::Shadow(sh) => {
                let addr = sh.rt.aggs[cell.id].write_addr(cell.idx);
                sh.write(cell.id, addr, v.to_bits());
            }
        }
    }

    /// The write the *explicit-copying* compilation must perform to carry
    /// an unmodified value into the new global state (Threshold's
    /// "program itself copies values that are not updated"). A no-op
    /// under LCM, where unmodified locations simply keep their value.
    pub fn copy_through<T: Scalar>(&mut self, cell: Cell<T>, v: T) {
        let strategy = match &self.inner {
            Inner::Live(rt) => rt.strategy,
            Inner::Shadow(sh) => sh.rt.strategy,
        };
        if strategy == Strategy::ExplicitCopy {
            self.set(cell, v);
        }
    }

    /// A reduction assignment (`total %op= v`).
    pub fn reduce_f64(&mut self, var: ReduceVar, v: f64) {
        self.dirty = true;
        match &mut self.inner {
            Inner::Live(rt) => rt.mem.reduce(self.node, var.addr, var.op, v.to_bits()),
            Inner::Shadow(sh) => sh.reduce(var.addr, var.op, v.to_bits()),
        }
    }

    /// Charges extra application compute (beyond the per-invocation
    /// overhead) to this invocation's processor.
    pub fn compute(&mut self, cycles: u64) {
        match &mut self.inner {
            Inner::Live(rt) => rt.mem.compute(self.node, cycles),
            Inner::Shadow(sh) => sh.ops.push(Op::Compute(cycles)),
        }
    }
}

impl<P: MemoryProtocol + lcm_rsm::NestedProtocol> Invocation<'_, P> {
    /// A nested parallel call (C\*\*'s parallel-call-from-parallel-call):
    /// applies `f` to every element of `agg`, with inner invocations
    /// spread round-robin across all processors. Inner invocations see
    /// this invocation's private modifications as their pre-call state;
    /// their merged modifications become part of this invocation's
    /// private state when the call returns — global memory is untouched
    /// until the *outer* call reconciles.
    ///
    /// Only the LCM-directive strategy supports nesting (the paper's
    /// explicit-copying compilation was never defined for it).
    ///
    /// # Panics
    /// Panics under [`Strategy::ExplicitCopy`], or if a nested phase is
    /// already open (one level of nesting is supported).
    pub fn apply_nested1<T: Scalar, F>(&mut self, agg: crate::aggregate::Agg1<T>, mut f: F)
    where
        F: FnMut(&mut Invocation<'_, P>, usize),
    {
        // The shadow pass cannot model a nested phase (inner invocations
        // observe the parent's private copies through the protocol);
        // bail out so the epoch reruns on the classic sequential path.
        let rt: &mut Runtime<P> = match &mut self.inner {
            Inner::Live(rt) => rt,
            Inner::Shadow(_) => std::panic::panic_any(QuietPanic),
        };
        assert_eq!(
            rt.strategy,
            Strategy::LcmDirectives,
            "nested parallel calls require the LCM-directive strategy"
        );
        let per_invocation_flush = rt.flush == FlushPolicy::PerInvocation;
        let overhead = rt.overhead;
        let nodes = rt.nodes();
        rt.mem.begin_nested_phase(self.node);
        let plan = chunk_plan(agg.len, nodes);
        let longest = plan.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        for s in 0..longest {
            for (node, range) in &plan {
                let i = range.start + s;
                if i >= range.end {
                    continue;
                }
                rt.mem.compute(*node, overhead);
                let mut inv = Invocation {
                    inner: Inner::Live(&mut *rt),
                    node: *node,
                    dirty: false,
                };
                f(&mut inv, i);
                let dirty = inv.dirty;
                if dirty && per_invocation_flush {
                    rt.mem.flush_copies(*node);
                }
            }
        }
        rt.mem.reconcile_nested();
        // The parent invocation now carries the inner call's modifications.
        self.dirty = true;
    }
}

impl<P: MemoryProtocol> Runtime<P> {
    /// Builds the chunk→node plan for this call.
    fn plan(&mut self, len: usize, partition: Partition) -> Vec<(NodeId, Range<usize>)> {
        let mut plan = chunk_plan(len, self.nodes());
        if partition == Partition::Dynamic {
            // Reassign chunks to nodes: shuffle the node column.
            let mut nodes: Vec<NodeId> = plan.iter().map(|(n, _)| *n).collect();
            self.rng.shuffle(&mut nodes);
            for (slot, node) in plan.iter_mut().zip(nodes) {
                slot.0 = node;
            }
        }
        plan
    }

    fn begin_apply(&mut self) {
        for w in &mut self.written {
            *w = false;
        }
        if self.strategy == Strategy::LcmDirectives {
            self.mem.begin_parallel_phase();
        }
    }

    fn end_apply(&mut self) {
        match self.strategy {
            Strategy::LcmDirectives => self.mem.reconcile_copies(),
            Strategy::ExplicitCopy => {
                self.mem.barrier();
                for (id, written) in self.written.iter().enumerate() {
                    if *written {
                        self.aggs[id].swap();
                    }
                }
            }
        }
        // Crashes strike after the merge: the global state is already
        // the crash-free run's, so rollback and re-execution only move
        // cycles and statistics (see `Runtime::process_crashes`).
        self.process_crashes();
        // One profiler phase per parallel step (barrier epoch).
        self.phase_boundary("apply");
    }

    #[inline]
    fn run_invocation<F: FnOnce(&mut Invocation<'_, P>)>(&mut self, node: NodeId, f: F) {
        self.mem.compute(node, self.overhead);
        let mut inv = Invocation {
            inner: Inner::Live(self),
            node,
            dirty: false,
        };
        f(&mut inv);
        let dirty = inv.dirty;
        if dirty
            && self.strategy == Strategy::LcmDirectives
            && self.flush == FlushPolicy::PerInvocation
        {
            // The compiler cannot in general prove that consecutive
            // invocations on one processor touch distinct locations, so it
            // flushes modified copies between invocations (paper §5.1).
            // Under FlushPolicy::AtReconcile that proof exists and the
            // directive is elided.
            self.mem.flush_copies(node);
        }
    }

    /// Applies a parallel function to every element of a 1-D aggregate.
    /// The closure receives the invocation context and the element index
    /// (the pseudo-variable `#0`).
    ///
    /// Invocations are interleaved round-robin across processors,
    /// simulating concurrent progress: invocation `k` of every chunk runs
    /// before invocation `k + 1` of any chunk. C\*\* semantics make the
    /// order unobservable to the program, but it matters for the cost of
    /// *contended* baselines (a shared accumulator ping-pongs).
    pub fn apply1<T: Scalar, F>(
        &mut self,
        agg: crate::aggregate::Agg1<T>,
        partition: Partition,
        mut f: F,
    ) where
        F: FnMut(&mut Invocation<'_, P>, usize),
    {
        let plan = self.plan(agg.len, partition);
        self.begin_apply();
        self.seq_epoch1(&plan, &mut f);
        self.end_apply();
    }

    /// Applies a parallel function to every element of a 2-D aggregate,
    /// partitioned by rows. The closure receives the invocation context
    /// and the element coordinates (`#0`, `#1`). Invocations interleave
    /// round-robin across processors (see [`Runtime::apply1`]).
    pub fn apply2<T: Scalar, F>(
        &mut self,
        agg: crate::aggregate::Agg2<T>,
        partition: Partition,
        mut f: F,
    ) where
        F: FnMut(&mut Invocation<'_, P>, usize, usize),
    {
        let cols = agg.cols;
        let plan = self.plan(agg.rows, partition);
        self.begin_apply();
        self.seq_epoch2(&plan, cols, &mut f);
        self.end_apply();
    }

    /// The classic sequential epoch body of [`Runtime::apply1`].
    fn seq_epoch1<F>(&mut self, plan: &[(NodeId, Range<usize>)], f: &mut F)
    where
        F: FnMut(&mut Invocation<'_, P>, usize),
    {
        let longest = plan.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        for s in 0..longest {
            for (node, range) in plan {
                let i = range.start + s;
                if i < range.end {
                    self.run_invocation(*node, |inv| f(inv, i));
                }
            }
        }
    }

    /// The classic sequential epoch body of [`Runtime::apply2`].
    fn seq_epoch2<F>(&mut self, plan: &[(NodeId, Range<usize>)], cols: usize, f: &mut F)
    where
        F: FnMut(&mut Invocation<'_, P>, usize, usize),
    {
        let longest = plan.iter().map(|(_, r)| r.len() * cols).max().unwrap_or(0);
        for s in 0..longest {
            for (node, rows) in plan {
                if s < rows.len() * cols {
                    let r = rows.start + s / cols;
                    let c = s % cols;
                    self.run_invocation(*node, |inv| f(inv, r, c));
                }
            }
        }
    }

    /// [`Runtime::apply1`] through the epoch-parallel engine: identical
    /// semantics and byte-identical outputs, but with
    /// `RuntimeConfig::sim_threads > 1` the invocations execute on a
    /// persistent host worker pool (shadow pass) before a deterministic
    /// sequential replay merges them (see the module docs). Requires a
    /// shareable closure; workloads whose closures need `FnMut` state
    /// (e.g. Adaptive's allocation cursor) stay on [`Runtime::apply1`].
    pub fn par_apply1<T: Scalar, F>(
        &mut self,
        agg: crate::aggregate::Agg1<T>,
        partition: Partition,
        mut f: F,
    ) where
        F: Fn(&mut Invocation<'_, P>, usize) + Sync,
        P: Sync,
    {
        let plan = self.plan(agg.len, partition);
        self.begin_apply();
        let slots = |r: &Range<usize>| r.len();
        let mut shadowed = false;
        if self.sim_threads > 1 {
            let call =
                |inv: &mut Invocation<'_, P>, pi: usize, s: usize| f(inv, plan[pi].1.start + s);
            if let Some(logs) = self.epoch_shadow(&plan, &slots, &call) {
                self.epoch_replay(&plan, &slots, &logs);
                shadowed = true;
            }
        }
        if !shadowed {
            self.seq_epoch1(&plan, &mut f);
        }
        self.end_apply();
    }

    /// [`Runtime::apply2`] through the epoch-parallel engine (see
    /// [`Runtime::par_apply1`]).
    pub fn par_apply2<T: Scalar, F>(
        &mut self,
        agg: crate::aggregate::Agg2<T>,
        partition: Partition,
        f: F,
    ) where
        F: Fn(&mut Invocation<'_, P>, usize, usize) + Sync,
        P: Sync,
    {
        let cols = agg.cols;
        let plan = self.plan(agg.rows, partition);
        self.begin_apply();
        let slots = move |r: &Range<usize>| r.len() * cols;
        let mut shadowed = false;
        if self.sim_threads > 1 {
            let call = |inv: &mut Invocation<'_, P>, pi: usize, s: usize| {
                let rows = &plan[pi].1;
                f(inv, rows.start + s / cols, s % cols)
            };
            if let Some(logs) = self.epoch_shadow(&plan, &slots, &call) {
                self.epoch_replay(&plan, &slots, &logs);
                shadowed = true;
            }
        }
        if !shadowed {
            let mut g = |inv: &mut Invocation<'_, P>, r: usize, c: usize| f(inv, r, c);
            self.seq_epoch2(&plan, cols, &mut g);
        }
        self.end_apply();
    }

    /// The parallel first pass: runs every plan entry's invocations (in
    /// local slot order) against shadow memory on the worker pool,
    /// producing per-node op logs. Returns `None` if any shadow
    /// invocation bailed out or panicked — nothing was mutated, so the
    /// caller falls back to the sequential path.
    ///
    /// `slots(range)` is the entry's local slot count and
    /// `call(inv, pi, s)` dispatches slot `s` of plan entry `pi`.
    fn epoch_shadow<F>(
        &mut self,
        plan: &[(NodeId, Range<usize>)],
        slots: &(dyn Fn(&Range<usize>) -> usize + Sync),
        call: &F,
    ) -> Option<Vec<NodeLog>>
    where
        F: Fn(&mut Invocation<'_, P>, usize, usize) + Sync,
        P: Sync,
    {
        let pool = self
            .pool
            .take()
            .unwrap_or_else(|| SimPool::new(self.sim_threads));
        let cells: Vec<LogCell> = plan
            .iter()
            .map(|_| LogCell(UnsafeCell::new(NodeLog::default())))
            .collect();
        let rt: &Runtime<P> = self;
        let per_inv_flush =
            rt.strategy == Strategy::LcmDirectives && rt.flush == FlushPolicy::PerInvocation;
        let outcome = pool.run(plan.len(), &|pi| {
            let (node, range) = &plan[pi];
            let mut log = NodeLog::default();
            let mut writes: FastMap<Addr, u32> = FastMap::default();
            let mut reduced: Vec<BlockId> = Vec::new();
            for s in 0..slots(range) {
                let before = log.ops.len();
                let mut inv = Invocation {
                    inner: Inner::Shadow(Shadow {
                        rt,
                        writes: &mut writes,
                        ops: &mut log.ops,
                        reduced: &mut reduced,
                    }),
                    node: *node,
                    dirty: false,
                };
                call(&mut inv, pi, s);
                let dirty = inv.dirty;
                log.invs.push(InvRec {
                    ops: (log.ops.len() - before) as u32,
                    dirty,
                });
                if dirty && per_inv_flush {
                    // Live, the per-invocation flush ships this node's
                    // private copies home: later invocations on the node
                    // see pre-phase values again.
                    writes.clear();
                }
            }
            // SAFETY: pool claim discipline — `pi` is handled by exactly
            // one participant, and `run` returns only after all of them
            // finish.
            unsafe { *cells[pi].0.get() = log };
        });
        self.pool = Some(pool);
        match outcome {
            Ok(()) => {
                self.shadow_epochs += 1;
                Some(cells.into_iter().map(|c| c.0.into_inner()).collect())
            }
            Err(_) => None,
        }
    }

    /// The sequential merge pass: replays the shadow logs slot-major —
    /// invocation `s` of every chunk before invocation `s + 1` of any —
    /// issuing the byte-identical protocol call sequence the classic
    /// path would have issued.
    fn epoch_replay(
        &mut self,
        plan: &[(NodeId, Range<usize>)],
        slots: &(dyn Fn(&Range<usize>) -> usize + Sync),
        logs: &[NodeLog],
    ) {
        let per_inv_flush =
            self.strategy == Strategy::LcmDirectives && self.flush == FlushPolicy::PerInvocation;
        let longest = plan.iter().map(|(_, r)| slots(r)).max().unwrap_or(0);
        let mut op_at = vec![0usize; plan.len()];
        let mut inv_at = vec![0usize; plan.len()];
        for s in 0..longest {
            for (pi, (node, range)) in plan.iter().enumerate() {
                if s >= slots(range) {
                    continue;
                }
                let rec = logs[pi].invs[inv_at[pi]];
                inv_at[pi] += 1;
                self.mem.compute(*node, self.overhead);
                let end = op_at[pi] + rec.ops as usize;
                for op in &logs[pi].ops[op_at[pi]..end] {
                    match *op {
                        Op::Read(addr, shadow_v) => {
                            let live_v = self.mem.read_word(*node, addr);
                            debug_assert_eq!(
                                live_v, shadow_v,
                                "shadow/live visibility divergence at {addr:?} on node {}",
                                node.0
                            );
                            let _ = live_v;
                        }
                        Op::Write(id, addr, bits) => {
                            self.written[id] = true;
                            self.mem.write_word(*node, addr, bits);
                        }
                        Op::Reduce(addr, op, bits) => self.mem.reduce(*node, addr, op, bits),
                        Op::Compute(cycles) => self.mem.compute(*node, cycles),
                    }
                }
                op_at[pi] = end;
                if rec.dirty && per_inv_flush {
                    self.mem.flush_copies(*node);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig, Strategy};
    use lcm_core::{Lcm, LcmVariant};
    use lcm_rsm::ReduceOp;
    use lcm_sim::MachineConfig;
    use lcm_stache::Stache;
    use lcm_tempest::Placement;

    fn lcm_rt(nodes: usize) -> Runtime<Lcm> {
        Runtime::new(
            Lcm::new(MachineConfig::new(nodes), LcmVariant::Mcc),
            Strategy::LcmDirectives,
        )
    }

    fn copy_rt(nodes: usize) -> Runtime<Stache> {
        Runtime::new(
            Stache::new(MachineConfig::new(nodes)),
            Strategy::ExplicitCopy,
        )
    }

    /// One relaxation step must read only pre-call values — the defining
    /// C** property — under both strategies.
    fn shift_left_is_simultaneous<P: MemoryProtocol>(rt: &mut Runtime<P>) {
        let a = rt.new_aggregate1::<i32>(16, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32);
        rt.apply1(a, Partition::Static, |inv, i| {
            let next = if i + 1 < 16 { inv.get(a.at(i + 1)) } else { 0 };
            inv.set(a.at(i), next);
        });
        for i in 0..15 {
            assert_eq!(rt.peek1(a, i), i as i32 + 1, "element {i}");
        }
        assert_eq!(rt.peek1(a, 15), 0);
    }

    #[test]
    fn lcm_strategy_reads_pre_call_state() {
        shift_left_is_simultaneous(&mut lcm_rt(4));
    }

    #[test]
    fn copying_strategy_reads_pre_call_state() {
        shift_left_is_simultaneous(&mut copy_rt(4));
    }

    #[test]
    fn strategies_compute_identical_results_over_many_iterations() {
        let run = |mut rt: Runtime<Lcm>, strat2: Runtime<Stache>| {
            let mut rt2 = strat2;
            let a1 = rt.new_aggregate2::<f32>(12, 12, Placement::Blocked, "m");
            let a2 = rt2.new_aggregate2::<f32>(12, 12, Placement::Blocked, "m");
            rt.init2(a1, |r, c| (r * 17 + c * 3) as f32);
            rt2.init2(a2, |r, c| (r * 17 + c * 3) as f32);
            for _ in 0..5 {
                rt.apply2(a1, Partition::Static, |inv, r, c| {
                    if r > 0 && r < 11 && c > 0 && c < 11 {
                        let s = inv.get(a1.at(r - 1, c))
                            + inv.get(a1.at(r + 1, c))
                            + inv.get(a1.at(r, c - 1))
                            + inv.get(a1.at(r, c + 1));
                        inv.set(a1.at(r, c), s * 0.25);
                    }
                });
                rt2.apply2(a2, Partition::Static, |inv, r, c| {
                    if r > 0 && r < 11 && c > 0 && c < 11 {
                        let s = inv.get(a2.at(r - 1, c))
                            + inv.get(a2.at(r + 1, c))
                            + inv.get(a2.at(r, c - 1))
                            + inv.get(a2.at(r, c + 1));
                        inv.set(a2.at(r, c), s * 0.25);
                    } else {
                        let v = inv.get(a2.at(r, c));
                        inv.copy_through(a2.at(r, c), v);
                    }
                });
            }
            for r in 0..12 {
                for c in 0..12 {
                    assert_eq!(rt.peek2(a1, r, c), rt2.peek2(a2, r, c), "({r},{c})");
                }
            }
        };
        run(lcm_rt(4), copy_rt(4));
    }

    #[test]
    fn dynamic_partition_moves_chunks_static_does_not() {
        let mut rt = lcm_rt(8);
        let p1 = rt.plan(64, Partition::Static);
        let p2 = rt.plan(64, Partition::Static);
        assert_eq!(p1, p2);
        // Dynamic: over several draws, at least one differs from static.
        let mut moved = false;
        for _ in 0..5 {
            let p = rt.plan(64, Partition::Dynamic);
            let nodes: Vec<_> = p.iter().map(|(n, _)| n.0).collect();
            let mut sorted = nodes.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "a permutation of nodes");
            if nodes != (0..8).collect::<Vec<_>>() {
                moved = true;
            }
        }
        assert!(moved, "dynamic schedules should shuffle");
    }

    #[test]
    fn reduction_assignment_sums_across_invocations() {
        let mut rt = lcm_rt(4);
        let a = rt.new_aggregate1::<i32>(100, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32);
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "total");
        rt.apply1(a, Partition::Static, |inv, i| {
            let v = inv.get(a.at(i));
            inv.reduce_f64(total, v as f64);
        });
        assert_eq!(rt.peek_reduction(total), (99 * 100 / 2) as f64);
    }

    #[test]
    fn reduction_under_copying_strategy_matches() {
        let mut rt = copy_rt(4);
        let a = rt.new_aggregate1::<i32>(100, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32);
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "total");
        rt.apply1(a, Partition::Static, |inv, i| {
            let v = inv.get(a.at(i));
            inv.reduce_f64(total, v as f64);
        });
        assert_eq!(rt.peek_reduction(total), 4950.0);
    }

    #[test]
    fn copy_through_is_noop_under_lcm() {
        let mut rt = lcm_rt(2);
        let a = rt.new_aggregate1::<i32>(8, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32);
        let flushes_before = rt.mem().tempest().machine.total_stats().flushes;
        rt.apply1(a, Partition::Static, |inv, i| {
            let v = inv.get(a.at(i));
            inv.copy_through(a.at(i), v);
        });
        assert_eq!(
            rt.mem().tempest().machine.total_stats().flushes,
            flushes_before,
            "nothing was modified, nothing flushed"
        );
        assert_eq!(rt.peek1(a, 5), 5);
    }

    #[test]
    fn invocation_overhead_is_charged() {
        let cfg = RuntimeConfig {
            invocation_overhead: 1000,
            ..RuntimeConfig::default()
        };
        let mem = Lcm::new(MachineConfig::new(1), LcmVariant::Mcc);
        let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
        let a = rt.new_aggregate1::<i32>(10, Placement::Blocked, "v");
        let before = rt.time();
        rt.apply1(a, Partition::Static, |_inv, _i| {});
        assert!(rt.time() - before >= 10_000, "10 invocations x 1000 cycles");
    }

    #[test]
    fn phase_is_closed_after_apply() {
        let mut rt = lcm_rt(2);
        let a = rt.new_aggregate1::<i32>(4, Placement::Blocked, "v");
        rt.apply1(a, Partition::Static, |inv, i| inv.set(a.at(i), 1));
        assert!(!rt.mem().in_parallel_phase());
        assert_eq!(rt.mem().live_cow_entries(), 0);
    }

    #[test]
    fn invocations_interleave_round_robin() {
        let mut rt = lcm_rt(4);
        let a = rt.new_aggregate1::<i32>(16, Placement::Blocked, "v");
        let mut seen = Vec::new();
        rt.apply1(a, Partition::Static, |inv, i| seen.push((i, inv.node().0)));
        assert_eq!(seen.len(), 16);
        // Slot 0 of every chunk runs before slot 1 of any chunk.
        assert_eq!(&seen[0..4], &[(0, 0), (4, 1), (8, 2), (12, 3)]);
        assert_eq!(seen[4], (1, 0));
        // Every element ran on its static owner.
        for (i, n) in seen {
            assert_eq!(n as usize, i / 4, "element {i}");
        }
    }

    #[test]
    fn nested_apply_merges_into_the_parent_invocation() {
        // Outer call over a 4-element control aggregate: invocation 0
        // makes a nested call that increments every element of `data`.
        let mut rt = lcm_rt(4);
        let control = rt.new_aggregate1::<i32>(4, Placement::Blocked, "ctl");
        let data = rt.new_aggregate1::<i32>(32, Placement::Blocked, "data");
        rt.init1(data, |i| i as i32);
        rt.apply1(control, Partition::Static, |inv, k| {
            if k == 0 {
                inv.apply_nested1(data, |inner, i| {
                    let v = inner.get(data.at(i));
                    inner.set(data.at(i), v + 100);
                });
                // The parent sees the nested call's results immediately…
                assert_eq!(inv.get(data.at(5)), 105);
            } else if k == 3 {
                // …while sibling outer invocations still see the
                // pre-call state (round-robin runs k==3 after the
                // nested call completed on k==0's slot).
                let v = inv.get(data.at(5));
                assert!(v == 5 || v == 105, "got {v}"); // 5 unless k==0 ran first
            }
        });
        // After the outer reconcile the increments are global.
        for i in 0..32 {
            assert_eq!(rt.peek1(data, i), i as i32 + 100, "element {i}");
        }
    }

    #[test]
    fn nested_apply_with_reduction() {
        let mut rt = lcm_rt(4);
        let control = rt.new_aggregate1::<i32>(1, Placement::Blocked, "ctl");
        let data = rt.new_aggregate1::<i32>(64, Placement::Blocked, "data");
        rt.init1(data, |i| (i % 10) as i32);
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 1000.0, "total");
        rt.apply1(control, Partition::Static, |inv, _| {
            inv.apply_nested1(data, |inner, i| {
                let v = inner.get(data.at(i)) as f64;
                inner.reduce_f64(total, v);
            });
        });
        let expect: f64 = 1000.0 + (0..64).map(|i| (i % 10) as f64).sum::<f64>();
        assert_eq!(rt.peek_reduction(total), expect);
    }

    #[test]
    #[should_panic(expected = "require the LCM-directive strategy")]
    fn nested_apply_rejected_under_copying() {
        let mem = lcm_core::Lcm::new(MachineConfig::new(2), LcmVariant::Mcc);
        let mut rt = Runtime::new(mem, Strategy::ExplicitCopy);
        let a = rt.new_aggregate1::<i32>(4, Placement::Blocked, "a");
        rt.apply1(a, Partition::Static, |inv, _| {
            inv.apply_nested1(a, |_, _| {});
        });
    }

    #[test]
    fn crashes_move_cycles_and_stats_but_never_values() {
        let run = |rate: f64| {
            let cfg = RuntimeConfig {
                crash: lcm_sim::CrashPlan::new(rate, 42),
                ..RuntimeConfig::default()
            };
            let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
            let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
            let a = rt.new_aggregate1::<i32>(32, Placement::Blocked, "v");
            rt.init1(a, |i| i as i32);
            for _ in 0..6 {
                rt.apply1(a, Partition::Static, |inv, i| {
                    let v = inv.get(a.at(i));
                    inv.set(a.at(i), v + 1);
                });
            }
            let vals: Vec<i32> = (0..32).map(|i| rt.peek1(a, i)).collect();
            let time = rt.time();
            (vals, time, rt.into_mem())
        };
        let (v0, t0, m0) = run(0.0);
        let (v1, t1, m1) = run(0.6);
        assert_eq!(v0, v1, "outputs are byte-identical at any crash rate");
        let s0 = m0.tempest().machine.total_stats();
        let s1 = m1.tempest().machine.total_stats();
        assert_eq!(
            (s0.crashes, s0.checkpoints),
            (0, 0),
            "inactive plan is silent"
        );
        assert!(s1.crashes > 0, "rate 0.6 over 4x7 phases crashes someone");
        assert!(s1.checkpoints > 0 && s1.checkpoint_bytes > 0);
        assert!(t1 > t0, "recovery costs cycles");
        // The death log carries one Scheduled verdict per crash.
        let deaths = m1.tempest().net.membership().deaths();
        assert_eq!(deaths.len() as u64, s1.crashes);
        assert!(deaths
            .iter()
            .all(|d| matches!(d.evidence, lcm_tempest::DeathEvidence::Scheduled { .. })));
        // New categories stay conservation-checked.
        m1.tempest()
            .machine
            .verify_ledger()
            .expect("ledger conserves");
        lcm_rsm::sanitizer::check(&m1).expect("sanitizer accepts the crashed run");
    }

    #[test]
    fn checkpoint_granularity_trades_capture_for_lost_work() {
        let run = |every: u64| {
            let cfg = RuntimeConfig {
                crash: lcm_sim::CrashPlan::new(0.4, 7),
                checkpoint_every: every,
                ..RuntimeConfig::default()
            };
            let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
            let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
            let a = rt.new_aggregate1::<i32>(64, Placement::Blocked, "v");
            rt.init1(a, |i| i as i32);
            for _ in 0..8 {
                rt.apply1(a, Partition::Static, |inv, i| {
                    let v = inv.get(a.at(i));
                    inv.set(a.at(i), v.wrapping_mul(3) + 1);
                });
            }
            let vals: Vec<i32> = (0..64).map(|i| rt.peek1(a, i)).collect();
            (vals, rt.into_mem())
        };
        let (v1, m1) = run(1);
        let (v4, m4) = run(4);
        assert_eq!(v1, v4, "granularity never changes outputs");
        let s1 = m1.tempest().machine.total_stats();
        let s4 = m4.tempest().machine.total_stats();
        assert!(
            s1.checkpoints > s4.checkpoints,
            "coarser grain captures less often"
        );
        for m in [&m1, &m4] {
            m.tempest()
                .machine
                .verify_ledger()
                .expect("ledger conserves");
        }
    }

    /// Everything observable about a finished run: values are checked by
    /// the callers; this adds time, per-node clocks and the aggregated
    /// protocol counters.
    fn machine_digest<P: MemoryProtocol>(rt: &Runtime<P>) -> String {
        let m = &rt.mem().tempest().machine;
        let clocks: Vec<u64> = (0..rt.nodes()).map(|i| m.clock(NodeId(i as u16))).collect();
        format!(
            "t={} clocks={:?} stats={:?}",
            rt.time(),
            clocks,
            m.total_stats()
        )
    }

    #[test]
    fn par_apply_is_byte_identical_under_lcm() {
        let run = |threads: usize, par: bool| {
            let cfg = RuntimeConfig {
                sim_threads: threads,
                ..RuntimeConfig::default()
            };
            let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
            let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
            let a = rt.new_aggregate2::<f32>(12, 12, Placement::Blocked, "m");
            rt.init2(a, |r, c| (r * 17 + c * 3) as f32);
            let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "t");
            for _ in 0..4 {
                let body = |inv: &mut Invocation<'_, Lcm>, r: usize, c: usize| {
                    if r > 0 && r < 11 && c > 0 && c < 11 {
                        let s = inv.get(a.at(r - 1, c))
                            + inv.get(a.at(r + 1, c))
                            + inv.get(a.at(r, c - 1))
                            + inv.get(a.at(r, c + 1));
                        inv.set(a.at(r, c), s * 0.25);
                        inv.reduce_f64(total, s as f64);
                    }
                };
                if par {
                    rt.par_apply2(a, Partition::Dynamic, body);
                } else {
                    rt.apply2(a, Partition::Dynamic, body);
                }
            }
            let mut vals = Vec::new();
            for r in 0..12 {
                for c in 0..12 {
                    vals.push(rt.peek2(a, r, c).to_bits());
                }
            }
            // Byte-identity is only meaningful if the engine actually
            // ran: all four epochs must have taken the shadow path when
            // more than one sim thread was configured.
            let expect = if par && threads > 1 { 4 } else { 0 };
            assert_eq!(
                rt.shadow_epochs(),
                expect,
                "engagement at {threads} threads"
            );
            (vals, rt.peek_reduction(total), machine_digest(&rt))
        };
        let base = run(1, false);
        for threads in [1, 2, 8] {
            assert_eq!(run(threads, true), base, "sim_threads={threads}");
        }
    }

    #[test]
    fn par_apply_is_byte_identical_under_explicit_copy() {
        let run = |threads: usize, par: bool| {
            let cfg = RuntimeConfig {
                sim_threads: threads,
                ..RuntimeConfig::default()
            };
            let mut rt = Runtime::with_config(
                Stache::new(MachineConfig::new(4)),
                Strategy::ExplicitCopy,
                cfg,
            );
            let a = rt.new_aggregate1::<i32>(50, Placement::Blocked, "v");
            rt.init1(a, |i| i as i32);
            let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "t");
            for _ in 0..3 {
                let body = |inv: &mut Invocation<'_, Stache>, i: usize| {
                    let v = inv.get(a.at(i));
                    if i.is_multiple_of(2) {
                        inv.set(a.at(i), v.wrapping_mul(3) + 1);
                    } else {
                        inv.copy_through(a.at(i), v);
                    }
                    inv.reduce_f64(total, v as f64);
                };
                if par {
                    rt.par_apply1(a, Partition::Static, body);
                } else {
                    rt.apply1(a, Partition::Static, body);
                }
            }
            let vals: Vec<i32> = (0..50).map(|i| rt.peek1(a, i)).collect();
            let expect = if par && threads > 1 { 3 } else { 0 };
            assert_eq!(
                rt.shadow_epochs(),
                expect,
                "engagement at {threads} threads"
            );
            (vals, rt.peek_reduction(total), machine_digest(&rt))
        };
        let base = run(1, false);
        for threads in [1, 2, 8] {
            assert_eq!(run(threads, true), base, "sim_threads={threads}");
        }
    }

    #[test]
    fn par_apply_with_crashes_and_at_reconcile_matches() {
        let run = |threads: usize, par: bool| {
            let cfg = RuntimeConfig {
                sim_threads: threads,
                flush: FlushPolicy::AtReconcile,
                crash: lcm_sim::CrashPlan::new(0.5, 11),
                ..RuntimeConfig::default()
            };
            let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Scc);
            let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
            let a = rt.new_aggregate1::<i32>(32, Placement::Blocked, "v");
            rt.init1(a, |i| i as i32);
            for _ in 0..5 {
                let body = |inv: &mut Invocation<'_, Lcm>, i: usize| {
                    let v = inv.get(a.at(i));
                    inv.set(a.at(i), v + 7);
                };
                if par {
                    rt.par_apply1(a, Partition::Static, body);
                } else {
                    rt.apply1(a, Partition::Static, body);
                }
            }
            let vals: Vec<i32> = (0..32).map(|i| rt.peek1(a, i)).collect();
            if par && threads > 1 {
                assert!(
                    rt.shadow_epochs() > 0,
                    "engine never engaged at {threads} threads"
                );
            } else {
                assert_eq!(rt.shadow_epochs(), 0);
            }
            (vals, machine_digest(&rt))
        };
        let base = run(1, false);
        for threads in [1, 2, 8] {
            assert_eq!(run(threads, true), base, "sim_threads={threads}");
        }
    }

    #[test]
    fn par_apply_falls_back_for_nested_calls_and_still_matches() {
        let run = |threads: usize, par: bool| {
            let cfg = RuntimeConfig {
                sim_threads: threads,
                ..RuntimeConfig::default()
            };
            let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
            let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
            let control = rt.new_aggregate1::<i32>(4, Placement::Blocked, "ctl");
            let data = rt.new_aggregate1::<i32>(32, Placement::Blocked, "data");
            rt.init1(data, |i| i as i32);
            let body = |inv: &mut Invocation<'_, Lcm>, k: usize| {
                if k == 0 {
                    inv.apply_nested1(data, |inner, i| {
                        let v = inner.get(data.at(i));
                        inner.set(data.at(i), v + 100);
                    });
                }
            };
            if par {
                rt.par_apply1(control, Partition::Static, body);
            } else {
                rt.apply1(control, Partition::Static, body);
            }
            let vals: Vec<i32> = (0..32).map(|i| rt.peek1(data, i)).collect();
            // The nested call bails the shadow pass out, so the epoch
            // must never count as shadow-executed at any thread count.
            assert_eq!(rt.shadow_epochs(), 0, "fallback epoch counted as shadowed");
            (vals, machine_digest(&rt))
        };
        let base = run(1, false);
        for threads in [1, 2, 8] {
            // The shadow pass bails out on the nested call; the epoch
            // reruns sequentially and remains byte-identical.
            assert_eq!(run(threads, true), base, "sim_threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "user assert fired")]
    fn user_panics_resurface_identically_through_the_fallback() {
        let cfg = RuntimeConfig {
            sim_threads: 2,
            ..RuntimeConfig::default()
        };
        let mem = Lcm::new(MachineConfig::new(2), LcmVariant::Mcc);
        let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
        let a = rt.new_aggregate1::<i32>(8, Placement::Blocked, "v");
        rt.par_apply1(a, Partition::Static, |_inv, i| {
            assert!(i != 5, "user assert fired");
        });
    }

    #[test]
    fn uneven_chunks_are_fully_covered() {
        let mut rt = lcm_rt(4);
        let a = rt.new_aggregate1::<i32>(10, Placement::Blocked, "v");
        let mut seen: Vec<usize> = Vec::new();
        rt.apply1(a, Partition::Static, |_inv, i| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}

//! Parallel function application.
//!
//! `apply1`/`apply2` realize a C\*\* parallel call: one invocation per
//! aggregate element, invocations partitioned across processors, and the
//! semantics of "atomic and simultaneous" execution enforced by the
//! strategy in force — LCM directives (flush between invocations,
//! reconcile at the end) or explicit double-buffering (reads from the
//! front copy, writes to the back copy, swap at the end).
//!
//! The simulation executes invocations sequentially, one processor's
//! chunk at a time, with all costs charged to per-node logical clocks.
//! C\*\* semantics make the order unobservable: invocations cannot see
//! each other's modifications.

use crate::aggregate::Cell;
use crate::runtime::{chunk_plan, FlushPolicy, ReduceVar, Runtime, Strategy};
use crate::scalar::Scalar;
use lcm_rsm::MemoryProtocol;
use lcm_sim::NodeId;
use std::ops::Range;

/// How invocation chunks map to processors.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Partition {
    /// Chunk `k` always runs on node `k` — the repeatable schedule that
    /// lets Stache keep each chunk's interior resident forever
    /// (Stencil-stat).
    Static,
    /// Chunks are reassigned (shuffled) at the start of every parallel
    /// call — the paper's dynamically-partitioned variant, typical of
    /// load-balancing runtimes (Stencil-dyn).
    Dynamic,
}

/// The context handed to each parallel-function invocation.
///
/// Provides the element accessors (reads see the pre-call global state
/// plus the invocation's own writes; writes are private until the call
/// completes) and the reduction assignments.
pub struct Invocation<'a, P> {
    rt: &'a mut Runtime<P>,
    node: NodeId,
    dirty: bool,
}

impl<P: MemoryProtocol> Invocation<'_, P> {
    /// The processor running this invocation.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Reads an aggregate element.
    pub fn get<T: Scalar>(&mut self, cell: Cell<T>) -> T {
        let addr = self.rt.aggs[cell.id].read_addr(cell.idx);
        T::from_bits(self.rt.mem.read_word(self.node, addr))
    }

    /// Writes an aggregate element. Private to this invocation until the
    /// parallel call completes.
    pub fn set<T: Scalar>(&mut self, cell: Cell<T>, v: T) {
        self.dirty = true;
        self.rt.written[cell.id] = true;
        let addr = self.rt.aggs[cell.id].write_addr(cell.idx);
        self.rt.mem.write_word(self.node, addr, v.to_bits());
    }

    /// The write the *explicit-copying* compilation must perform to carry
    /// an unmodified value into the new global state (Threshold's
    /// "program itself copies values that are not updated"). A no-op
    /// under LCM, where unmodified locations simply keep their value.
    pub fn copy_through<T: Scalar>(&mut self, cell: Cell<T>, v: T) {
        if self.rt.strategy == Strategy::ExplicitCopy {
            self.set(cell, v);
        }
    }

    /// A reduction assignment (`total %op= v`).
    pub fn reduce_f64(&mut self, var: ReduceVar, v: f64) {
        self.dirty = true;
        self.rt.mem.reduce(self.node, var.addr, var.op, v.to_bits());
    }

    /// Charges extra application compute (beyond the per-invocation
    /// overhead) to this invocation's processor.
    pub fn compute(&mut self, cycles: u64) {
        self.rt.mem.compute(self.node, cycles);
    }
}

impl<P: MemoryProtocol + lcm_rsm::NestedProtocol> Invocation<'_, P> {
    /// A nested parallel call (C\*\*'s parallel-call-from-parallel-call):
    /// applies `f` to every element of `agg`, with inner invocations
    /// spread round-robin across all processors. Inner invocations see
    /// this invocation's private modifications as their pre-call state;
    /// their merged modifications become part of this invocation's
    /// private state when the call returns — global memory is untouched
    /// until the *outer* call reconciles.
    ///
    /// Only the LCM-directive strategy supports nesting (the paper's
    /// explicit-copying compilation was never defined for it).
    ///
    /// # Panics
    /// Panics under [`Strategy::ExplicitCopy`], or if a nested phase is
    /// already open (one level of nesting is supported).
    pub fn apply_nested1<T: Scalar, F>(&mut self, agg: crate::aggregate::Agg1<T>, mut f: F)
    where
        F: FnMut(&mut Invocation<'_, P>, usize),
    {
        assert_eq!(
            self.rt.strategy,
            Strategy::LcmDirectives,
            "nested parallel calls require the LCM-directive strategy"
        );
        let per_invocation_flush = self.rt.flush == FlushPolicy::PerInvocation;
        let overhead = self.rt.overhead;
        let nodes = self.rt.nodes();
        self.rt.mem.begin_nested_phase(self.node);
        let plan = chunk_plan(agg.len, nodes);
        let longest = plan.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        for s in 0..longest {
            for (node, range) in &plan {
                let i = range.start + s;
                if i >= range.end {
                    continue;
                }
                self.rt.mem.compute(*node, overhead);
                let mut inv = Invocation {
                    rt: &mut *self.rt,
                    node: *node,
                    dirty: false,
                };
                f(&mut inv, i);
                let dirty = inv.dirty;
                if dirty && per_invocation_flush {
                    self.rt.mem.flush_copies(*node);
                }
            }
        }
        self.rt.mem.reconcile_nested();
        // The parent invocation now carries the inner call's modifications.
        self.dirty = true;
    }
}

impl<P: MemoryProtocol> Runtime<P> {
    /// Builds the chunk→node plan for this call.
    fn plan(&mut self, len: usize, partition: Partition) -> Vec<(NodeId, Range<usize>)> {
        let mut plan = chunk_plan(len, self.nodes());
        if partition == Partition::Dynamic {
            // Reassign chunks to nodes: shuffle the node column.
            let mut nodes: Vec<NodeId> = plan.iter().map(|(n, _)| *n).collect();
            self.rng.shuffle(&mut nodes);
            for (slot, node) in plan.iter_mut().zip(nodes) {
                slot.0 = node;
            }
        }
        plan
    }

    fn begin_apply(&mut self) {
        for w in &mut self.written {
            *w = false;
        }
        if self.strategy == Strategy::LcmDirectives {
            self.mem.begin_parallel_phase();
        }
    }

    fn end_apply(&mut self) {
        match self.strategy {
            Strategy::LcmDirectives => self.mem.reconcile_copies(),
            Strategy::ExplicitCopy => {
                self.mem.barrier();
                for (id, written) in self.written.iter().enumerate() {
                    if *written {
                        self.aggs[id].swap();
                    }
                }
            }
        }
        // Crashes strike after the merge: the global state is already
        // the crash-free run's, so rollback and re-execution only move
        // cycles and statistics (see `Runtime::process_crashes`).
        self.process_crashes();
        // One profiler phase per parallel step (barrier epoch).
        self.phase_boundary("apply");
    }

    #[inline]
    fn run_invocation<F: FnOnce(&mut Invocation<'_, P>)>(&mut self, node: NodeId, f: F) {
        self.mem.compute(node, self.overhead);
        let mut inv = Invocation {
            rt: self,
            node,
            dirty: false,
        };
        f(&mut inv);
        let dirty = inv.dirty;
        if dirty
            && self.strategy == Strategy::LcmDirectives
            && self.flush == FlushPolicy::PerInvocation
        {
            // The compiler cannot in general prove that consecutive
            // invocations on one processor touch distinct locations, so it
            // flushes modified copies between invocations (paper §5.1).
            // Under FlushPolicy::AtReconcile that proof exists and the
            // directive is elided.
            self.mem.flush_copies(node);
        }
    }

    /// Applies a parallel function to every element of a 1-D aggregate.
    /// The closure receives the invocation context and the element index
    /// (the pseudo-variable `#0`).
    ///
    /// Invocations are interleaved round-robin across processors,
    /// simulating concurrent progress: invocation `k` of every chunk runs
    /// before invocation `k + 1` of any chunk. C\*\* semantics make the
    /// order unobservable to the program, but it matters for the cost of
    /// *contended* baselines (a shared accumulator ping-pongs).
    pub fn apply1<T: Scalar, F>(
        &mut self,
        agg: crate::aggregate::Agg1<T>,
        partition: Partition,
        mut f: F,
    ) where
        F: FnMut(&mut Invocation<'_, P>, usize),
    {
        let plan = self.plan(agg.len, partition);
        self.begin_apply();
        let longest = plan.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
        for s in 0..longest {
            for (node, range) in &plan {
                let i = range.start + s;
                if i < range.end {
                    self.run_invocation(*node, |inv| f(inv, i));
                }
            }
        }
        self.end_apply();
    }

    /// Applies a parallel function to every element of a 2-D aggregate,
    /// partitioned by rows. The closure receives the invocation context
    /// and the element coordinates (`#0`, `#1`). Invocations interleave
    /// round-robin across processors (see [`Runtime::apply1`]).
    pub fn apply2<T: Scalar, F>(
        &mut self,
        agg: crate::aggregate::Agg2<T>,
        partition: Partition,
        mut f: F,
    ) where
        F: FnMut(&mut Invocation<'_, P>, usize, usize),
    {
        let cols = agg.cols;
        let plan = self.plan(agg.rows, partition);
        self.begin_apply();
        let longest = plan.iter().map(|(_, r)| r.len() * cols).max().unwrap_or(0);
        for s in 0..longest {
            for (node, rows) in &plan {
                if s < rows.len() * cols {
                    let r = rows.start + s / cols;
                    let c = s % cols;
                    self.run_invocation(*node, |inv| f(inv, r, c));
                }
            }
        }
        self.end_apply();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Runtime, RuntimeConfig, Strategy};
    use lcm_core::{Lcm, LcmVariant};
    use lcm_rsm::ReduceOp;
    use lcm_sim::MachineConfig;
    use lcm_stache::Stache;
    use lcm_tempest::Placement;

    fn lcm_rt(nodes: usize) -> Runtime<Lcm> {
        Runtime::new(
            Lcm::new(MachineConfig::new(nodes), LcmVariant::Mcc),
            Strategy::LcmDirectives,
        )
    }

    fn copy_rt(nodes: usize) -> Runtime<Stache> {
        Runtime::new(
            Stache::new(MachineConfig::new(nodes)),
            Strategy::ExplicitCopy,
        )
    }

    /// One relaxation step must read only pre-call values — the defining
    /// C** property — under both strategies.
    fn shift_left_is_simultaneous<P: MemoryProtocol>(rt: &mut Runtime<P>) {
        let a = rt.new_aggregate1::<i32>(16, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32);
        rt.apply1(a, Partition::Static, |inv, i| {
            let next = if i + 1 < 16 { inv.get(a.at(i + 1)) } else { 0 };
            inv.set(a.at(i), next);
        });
        for i in 0..15 {
            assert_eq!(rt.peek1(a, i), i as i32 + 1, "element {i}");
        }
        assert_eq!(rt.peek1(a, 15), 0);
    }

    #[test]
    fn lcm_strategy_reads_pre_call_state() {
        shift_left_is_simultaneous(&mut lcm_rt(4));
    }

    #[test]
    fn copying_strategy_reads_pre_call_state() {
        shift_left_is_simultaneous(&mut copy_rt(4));
    }

    #[test]
    fn strategies_compute_identical_results_over_many_iterations() {
        let run = |mut rt: Runtime<Lcm>, strat2: Runtime<Stache>| {
            let mut rt2 = strat2;
            let a1 = rt.new_aggregate2::<f32>(12, 12, Placement::Blocked, "m");
            let a2 = rt2.new_aggregate2::<f32>(12, 12, Placement::Blocked, "m");
            rt.init2(a1, |r, c| (r * 17 + c * 3) as f32);
            rt2.init2(a2, |r, c| (r * 17 + c * 3) as f32);
            for _ in 0..5 {
                rt.apply2(a1, Partition::Static, |inv, r, c| {
                    if r > 0 && r < 11 && c > 0 && c < 11 {
                        let s = inv.get(a1.at(r - 1, c))
                            + inv.get(a1.at(r + 1, c))
                            + inv.get(a1.at(r, c - 1))
                            + inv.get(a1.at(r, c + 1));
                        inv.set(a1.at(r, c), s * 0.25);
                    }
                });
                rt2.apply2(a2, Partition::Static, |inv, r, c| {
                    if r > 0 && r < 11 && c > 0 && c < 11 {
                        let s = inv.get(a2.at(r - 1, c))
                            + inv.get(a2.at(r + 1, c))
                            + inv.get(a2.at(r, c - 1))
                            + inv.get(a2.at(r, c + 1));
                        inv.set(a2.at(r, c), s * 0.25);
                    } else {
                        let v = inv.get(a2.at(r, c));
                        inv.copy_through(a2.at(r, c), v);
                    }
                });
            }
            for r in 0..12 {
                for c in 0..12 {
                    assert_eq!(rt.peek2(a1, r, c), rt2.peek2(a2, r, c), "({r},{c})");
                }
            }
        };
        run(lcm_rt(4), copy_rt(4));
    }

    #[test]
    fn dynamic_partition_moves_chunks_static_does_not() {
        let mut rt = lcm_rt(8);
        let p1 = rt.plan(64, Partition::Static);
        let p2 = rt.plan(64, Partition::Static);
        assert_eq!(p1, p2);
        // Dynamic: over several draws, at least one differs from static.
        let mut moved = false;
        for _ in 0..5 {
            let p = rt.plan(64, Partition::Dynamic);
            let nodes: Vec<_> = p.iter().map(|(n, _)| n.0).collect();
            let mut sorted = nodes.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "a permutation of nodes");
            if nodes != (0..8).collect::<Vec<_>>() {
                moved = true;
            }
        }
        assert!(moved, "dynamic schedules should shuffle");
    }

    #[test]
    fn reduction_assignment_sums_across_invocations() {
        let mut rt = lcm_rt(4);
        let a = rt.new_aggregate1::<i32>(100, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32);
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "total");
        rt.apply1(a, Partition::Static, |inv, i| {
            let v = inv.get(a.at(i));
            inv.reduce_f64(total, v as f64);
        });
        assert_eq!(rt.peek_reduction(total), (99 * 100 / 2) as f64);
    }

    #[test]
    fn reduction_under_copying_strategy_matches() {
        let mut rt = copy_rt(4);
        let a = rt.new_aggregate1::<i32>(100, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32);
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "total");
        rt.apply1(a, Partition::Static, |inv, i| {
            let v = inv.get(a.at(i));
            inv.reduce_f64(total, v as f64);
        });
        assert_eq!(rt.peek_reduction(total), 4950.0);
    }

    #[test]
    fn copy_through_is_noop_under_lcm() {
        let mut rt = lcm_rt(2);
        let a = rt.new_aggregate1::<i32>(8, Placement::Blocked, "v");
        rt.init1(a, |i| i as i32);
        let flushes_before = rt.mem().tempest().machine.total_stats().flushes;
        rt.apply1(a, Partition::Static, |inv, i| {
            let v = inv.get(a.at(i));
            inv.copy_through(a.at(i), v);
        });
        assert_eq!(
            rt.mem().tempest().machine.total_stats().flushes,
            flushes_before,
            "nothing was modified, nothing flushed"
        );
        assert_eq!(rt.peek1(a, 5), 5);
    }

    #[test]
    fn invocation_overhead_is_charged() {
        let cfg = RuntimeConfig {
            invocation_overhead: 1000,
            ..RuntimeConfig::default()
        };
        let mem = Lcm::new(MachineConfig::new(1), LcmVariant::Mcc);
        let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
        let a = rt.new_aggregate1::<i32>(10, Placement::Blocked, "v");
        let before = rt.time();
        rt.apply1(a, Partition::Static, |_inv, _i| {});
        assert!(rt.time() - before >= 10_000, "10 invocations x 1000 cycles");
    }

    #[test]
    fn phase_is_closed_after_apply() {
        let mut rt = lcm_rt(2);
        let a = rt.new_aggregate1::<i32>(4, Placement::Blocked, "v");
        rt.apply1(a, Partition::Static, |inv, i| inv.set(a.at(i), 1));
        assert!(!rt.mem().in_parallel_phase());
        assert_eq!(rt.mem().live_cow_entries(), 0);
    }

    #[test]
    fn invocations_interleave_round_robin() {
        let mut rt = lcm_rt(4);
        let a = rt.new_aggregate1::<i32>(16, Placement::Blocked, "v");
        let mut seen = Vec::new();
        rt.apply1(a, Partition::Static, |inv, i| seen.push((i, inv.node().0)));
        assert_eq!(seen.len(), 16);
        // Slot 0 of every chunk runs before slot 1 of any chunk.
        assert_eq!(&seen[0..4], &[(0, 0), (4, 1), (8, 2), (12, 3)]);
        assert_eq!(seen[4], (1, 0));
        // Every element ran on its static owner.
        for (i, n) in seen {
            assert_eq!(n as usize, i / 4, "element {i}");
        }
    }

    #[test]
    fn nested_apply_merges_into_the_parent_invocation() {
        // Outer call over a 4-element control aggregate: invocation 0
        // makes a nested call that increments every element of `data`.
        let mut rt = lcm_rt(4);
        let control = rt.new_aggregate1::<i32>(4, Placement::Blocked, "ctl");
        let data = rt.new_aggregate1::<i32>(32, Placement::Blocked, "data");
        rt.init1(data, |i| i as i32);
        rt.apply1(control, Partition::Static, |inv, k| {
            if k == 0 {
                inv.apply_nested1(data, |inner, i| {
                    let v = inner.get(data.at(i));
                    inner.set(data.at(i), v + 100);
                });
                // The parent sees the nested call's results immediately…
                assert_eq!(inv.get(data.at(5)), 105);
            } else if k == 3 {
                // …while sibling outer invocations still see the
                // pre-call state (round-robin runs k==3 after the
                // nested call completed on k==0's slot).
                let v = inv.get(data.at(5));
                assert!(v == 5 || v == 105, "got {v}"); // 5 unless k==0 ran first
            }
        });
        // After the outer reconcile the increments are global.
        for i in 0..32 {
            assert_eq!(rt.peek1(data, i), i as i32 + 100, "element {i}");
        }
    }

    #[test]
    fn nested_apply_with_reduction() {
        let mut rt = lcm_rt(4);
        let control = rt.new_aggregate1::<i32>(1, Placement::Blocked, "ctl");
        let data = rt.new_aggregate1::<i32>(64, Placement::Blocked, "data");
        rt.init1(data, |i| (i % 10) as i32);
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 1000.0, "total");
        rt.apply1(control, Partition::Static, |inv, _| {
            inv.apply_nested1(data, |inner, i| {
                let v = inner.get(data.at(i)) as f64;
                inner.reduce_f64(total, v);
            });
        });
        let expect: f64 = 1000.0 + (0..64).map(|i| (i % 10) as f64).sum::<f64>();
        assert_eq!(rt.peek_reduction(total), expect);
    }

    #[test]
    #[should_panic(expected = "require the LCM-directive strategy")]
    fn nested_apply_rejected_under_copying() {
        let mem = lcm_core::Lcm::new(MachineConfig::new(2), LcmVariant::Mcc);
        let mut rt = Runtime::new(mem, Strategy::ExplicitCopy);
        let a = rt.new_aggregate1::<i32>(4, Placement::Blocked, "a");
        rt.apply1(a, Partition::Static, |inv, _| {
            inv.apply_nested1(a, |_, _| {});
        });
    }

    #[test]
    fn crashes_move_cycles_and_stats_but_never_values() {
        let run = |rate: f64| {
            let cfg = RuntimeConfig {
                crash: lcm_sim::CrashPlan::new(rate, 42),
                ..RuntimeConfig::default()
            };
            let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
            let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
            let a = rt.new_aggregate1::<i32>(32, Placement::Blocked, "v");
            rt.init1(a, |i| i as i32);
            for _ in 0..6 {
                rt.apply1(a, Partition::Static, |inv, i| {
                    let v = inv.get(a.at(i));
                    inv.set(a.at(i), v + 1);
                });
            }
            let vals: Vec<i32> = (0..32).map(|i| rt.peek1(a, i)).collect();
            let time = rt.time();
            (vals, time, rt.into_mem())
        };
        let (v0, t0, m0) = run(0.0);
        let (v1, t1, m1) = run(0.6);
        assert_eq!(v0, v1, "outputs are byte-identical at any crash rate");
        let s0 = m0.tempest().machine.total_stats();
        let s1 = m1.tempest().machine.total_stats();
        assert_eq!(
            (s0.crashes, s0.checkpoints),
            (0, 0),
            "inactive plan is silent"
        );
        assert!(s1.crashes > 0, "rate 0.6 over 4x7 phases crashes someone");
        assert!(s1.checkpoints > 0 && s1.checkpoint_bytes > 0);
        assert!(t1 > t0, "recovery costs cycles");
        // The death log carries one Scheduled verdict per crash.
        let deaths = m1.tempest().net.membership().deaths();
        assert_eq!(deaths.len() as u64, s1.crashes);
        assert!(deaths
            .iter()
            .all(|d| matches!(d.evidence, lcm_tempest::DeathEvidence::Scheduled { .. })));
        // New categories stay conservation-checked.
        m1.tempest()
            .machine
            .verify_ledger()
            .expect("ledger conserves");
        lcm_rsm::sanitizer::check(&m1).expect("sanitizer accepts the crashed run");
    }

    #[test]
    fn checkpoint_granularity_trades_capture_for_lost_work() {
        let run = |every: u64| {
            let cfg = RuntimeConfig {
                crash: lcm_sim::CrashPlan::new(0.4, 7),
                checkpoint_every: every,
                ..RuntimeConfig::default()
            };
            let mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
            let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
            let a = rt.new_aggregate1::<i32>(64, Placement::Blocked, "v");
            rt.init1(a, |i| i as i32);
            for _ in 0..8 {
                rt.apply1(a, Partition::Static, |inv, i| {
                    let v = inv.get(a.at(i));
                    inv.set(a.at(i), v.wrapping_mul(3) + 1);
                });
            }
            let vals: Vec<i32> = (0..64).map(|i| rt.peek1(a, i)).collect();
            (vals, rt.into_mem())
        };
        let (v1, m1) = run(1);
        let (v4, m4) = run(4);
        assert_eq!(v1, v4, "granularity never changes outputs");
        let s1 = m1.tempest().machine.total_stats();
        let s4 = m4.tempest().machine.total_stats();
        assert!(
            s1.checkpoints > s4.checkpoints,
            "coarser grain captures less often"
        );
        for m in [&m1, &m4] {
            m.tempest()
                .machine
                .verify_ledger()
                .expect("ledger conserves");
        }
    }

    #[test]
    fn uneven_chunks_are_fully_covered() {
        let mut rt = lcm_rt(4);
        let a = rt.new_aggregate1::<i32>(10, Placement::Blocked, "v");
        let mut seen: Vec<usize> = Vec::new();
        rt.apply1(a, Partition::Static, |_inv, i| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}

//! Deterministic network fault injection.
//!
//! The paper's protocols run over Blizzard-E's messaging on a CM-5, where
//! the *runtime* — not the hardware — must tolerate lost, duplicated, and
//! delayed protocol messages. A [`FaultPlan`] schedules a per-message
//! [`FaultOutcome`] from a seeded [`Pcg32`] stream, so a given
//! `(rates, seed)` pair reproduces the identical fault schedule on every
//! run. The delivery layer (`lcm-tempest`'s `Network`) consults the plan
//! on each message attempt and turns drops into timeout/retry cycles;
//! injected faults therefore change *costs and statistics only*, never
//! the values a program computes.
//!
//! An inactive plan (all rates zero — the default) draws nothing from the
//! RNG and adds no overhead, so fault-free runs are bit-identical to a
//! build without this module.

use crate::machine::NodeId;
use crate::rng::Pcg32;
use std::fmt;

/// How many doublings the exponential retry backoff applies before
/// saturating (caps the per-retry wait at `retry_timeout << 6`).
pub const BACKOFF_DOUBLING_CAP: u32 = 6;

/// Fault rates and knobs for one run. All rates are probabilities in
/// `[0, 1]` applied independently per message attempt.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that a message attempt is lost in transit.
    pub drop_rate: f64,
    /// Probability that a delivered message arrives twice (the transport
    /// detects the duplicate by sequence number and nacks it).
    pub dup_rate: f64,
    /// Probability that a delivered message is delayed.
    pub delay_rate: f64,
    /// Upper bound, in cycles, of an injected delivery delay.
    pub max_delay: u64,
    /// Seed of the fault schedule; identical seeds reproduce identical
    /// schedules and cycle counts.
    pub seed: u64,
    /// Retransmissions attempted before delivery fails structurally.
    pub max_retries: u32,
    /// Probability that a node stalls at a barrier (per node, per barrier).
    pub stall_rate: f64,
    /// Cycles a stalled node falls behind before recovering.
    pub stall_cycles: u64,
}

impl Default for FaultConfig {
    /// A reliable network: every rate zero, nothing drawn from the RNG.
    fn default() -> FaultConfig {
        FaultConfig {
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 400,
            seed: 0,
            max_retries: 10,
            stall_rate: 0.0,
            stall_cycles: 0,
        }
    }
}

impl FaultConfig {
    /// A drop-only plan — the `--faults <rate>:<seed>` sweep shape.
    pub fn drops(drop_rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            drop_rate,
            seed,
            ..FaultConfig::default()
        }
    }

    /// True when any fault can actually occur.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || (self.stall_rate > 0.0 && self.stall_cycles > 0)
    }

    /// Validates the rates.
    ///
    /// # Panics
    /// Panics if any rate is outside `[0, 1]`, NaN, or the combined
    /// per-message rate exceeds 1.
    pub fn validate(&self) {
        for (name, r) in [
            ("drop_rate", self.drop_rate),
            ("dup_rate", self.dup_rate),
            ("delay_rate", self.delay_rate),
            ("stall_rate", self.stall_rate),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} {r} outside [0, 1]");
        }
        assert!(
            self.drop_rate + self.dup_rate + self.delay_rate <= 1.0,
            "combined per-message fault rate exceeds 1"
        );
    }
}

/// The scheduled fate of one message attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The message arrives normally.
    Deliver,
    /// The message is lost; the sender will time out and retransmit.
    Drop,
    /// The message arrives twice; the receiver detects and nacks the
    /// duplicate.
    Duplicate,
    /// The message arrives late by the given number of cycles.
    Delay(u64),
}

/// A deterministic per-message fault schedule.
///
/// One outcome is drawn per delivery attempt, in attempt order, so the
/// schedule is a pure function of `(config, message sequence)` — the
/// property the reproducibility tests assert.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: Pcg32,
    active: bool,
    decisions: u64,
}

/// Distinct PCG stream for fault scheduling, so a workload's own seeded
/// RNG never collides with the fault stream.
const FAULT_STREAM: u64 = 0xFA17;

impl FaultPlan {
    /// A plan that never injects anything (and never touches its RNG).
    pub fn disabled() -> FaultPlan {
        FaultPlan::new(FaultConfig::default())
    }

    /// A plan drawing outcomes from `config`'s seed.
    pub fn new(config: FaultConfig) -> FaultPlan {
        config.validate();
        FaultPlan {
            active: config.is_active(),
            rng: Pcg32::new(config.seed, FAULT_STREAM),
            config,
            decisions: 0,
        }
    }

    /// True when this plan can inject faults.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of outcomes drawn so far (diagnostic; equals the number of
    /// message attempts plus barrier stall draws under an active plan).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Draws the outcome of the next message attempt. Inactive plans
    /// return [`FaultOutcome::Deliver`] without consuming randomness.
    pub fn next_outcome(&mut self) -> FaultOutcome {
        if !self.active {
            return FaultOutcome::Deliver;
        }
        self.decisions += 1;
        let r = self.rng.next_f64();
        let c = &self.config;
        if r < c.drop_rate {
            FaultOutcome::Drop
        } else if r < c.drop_rate + c.dup_rate {
            FaultOutcome::Duplicate
        } else if r < c.drop_rate + c.dup_rate + c.delay_rate {
            self.decisions += 1;
            FaultOutcome::Delay(1 + self.rng.below(self.config.max_delay.max(1)))
        } else {
            FaultOutcome::Deliver
        }
    }

    /// Draws the barrier-aligned stall for one node: `Some(cycles)` when
    /// the node stalls and recovers `cycles` late, `None` otherwise.
    /// Inactive plans (or zero stall settings) consume no randomness.
    pub fn barrier_stall(&mut self) -> Option<u64> {
        if !self.active || self.config.stall_rate <= 0.0 || self.config.stall_cycles == 0 {
            return None;
        }
        self.decisions += 1;
        if self.rng.next_f64() < self.config.stall_rate {
            Some(self.config.stall_cycles)
        } else {
            None
        }
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::disabled()
    }
}

/// A message delivery that exhausted its retransmission budget.
///
/// Carried as a structured error (instead of silently succeeding or
/// aborting) so the delivery layer can surface a cycle-stamped diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryError {
    /// The sending node.
    pub from: NodeId,
    /// The intended receiver.
    pub to: NodeId,
    /// The message kind's label (e.g. `"GetShared"`).
    pub kind: &'static str,
    /// Delivery attempts made (first try plus retransmissions).
    pub attempts: u32,
    /// The sender's clock when delivery was abandoned.
    pub at_cycle: u64,
}

impl fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} message {} -> {} undeliverable after {} attempts (sender cycle {})",
            self.kind, self.from, self.to, self.attempts, self.at_cycle
        )
    }
}

impl std::error::Error for DeliveryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_delivers_without_randomness() {
        let mut p = FaultPlan::disabled();
        for _ in 0..100 {
            assert_eq!(p.next_outcome(), FaultOutcome::Deliver);
        }
        assert_eq!(p.barrier_stall(), None);
        assert_eq!(p.decisions(), 0);
        assert!(!p.is_active());
    }

    #[test]
    fn identical_seeds_reproduce_identical_schedules() {
        let cfg = FaultConfig {
            drop_rate: 0.2,
            dup_rate: 0.1,
            delay_rate: 0.1,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        let sa: Vec<_> = (0..500).map(|_| a.next_outcome()).collect();
        let sb: Vec<_> = (0..500).map(|_| b.next_outcome()).collect();
        assert_eq!(sa, sb);
        assert!(sa.contains(&FaultOutcome::Drop));
        assert!(sa.contains(&FaultOutcome::Duplicate));
        assert!(sa.iter().any(|o| matches!(o, FaultOutcome::Delay(_))));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(FaultConfig::drops(0.3, 1));
        let mut b = FaultPlan::new(FaultConfig::drops(0.3, 2));
        let sa: Vec<_> = (0..200).map(|_| a.next_outcome()).collect();
        let sb: Vec<_> = (0..200).map(|_| b.next_outcome()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let mut p = FaultPlan::new(FaultConfig::drops(0.25, 7));
        let drops = (0..4000)
            .filter(|_| p.next_outcome() == FaultOutcome::Drop)
            .count();
        let rate = drops as f64 / 4000.0;
        assert!((0.20..0.30).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn delays_stay_in_bounds() {
        let cfg = FaultConfig {
            delay_rate: 1.0,
            max_delay: 50,
            ..FaultConfig::default()
        };
        let mut p = FaultPlan::new(cfg);
        for _ in 0..200 {
            match p.next_outcome() {
                FaultOutcome::Delay(k) => assert!((1..=50).contains(&k)),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn barrier_stalls_draw_deterministically() {
        let cfg = FaultConfig {
            stall_rate: 0.5,
            stall_cycles: 1234,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        let sa: Vec<_> = (0..100).map(|_| a.barrier_stall()).collect();
        let sb: Vec<_> = (0..100).map(|_| b.barrier_stall()).collect();
        assert_eq!(sa, sb);
        assert!(sa.contains(&Some(1234)));
        assert!(sa.iter().any(|s| s.is_none()));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rate_rejected() {
        FaultPlan::new(FaultConfig::drops(1.5, 0));
    }

    #[test]
    fn delivery_error_is_cycle_stamped() {
        let e = DeliveryError {
            from: NodeId(1),
            to: NodeId(2),
            kind: "GetShared",
            attempts: 11,
            at_cycle: 98765,
        };
        let text = e.to_string();
        assert!(text.contains("GetShared"), "{text}");
        assert!(text.contains("11 attempts"), "{text}");
        assert!(text.contains("98765"), "{text}");
    }
}

//! Deterministic network fault injection.
//!
//! The paper's protocols run over Blizzard-E's messaging on a CM-5, where
//! the *runtime* — not the hardware — must tolerate lost, duplicated, and
//! delayed protocol messages. A [`FaultPlan`] schedules a per-message
//! [`FaultOutcome`] from a seeded [`Pcg32`] stream, so a given
//! `(rates, seed)` pair reproduces the identical fault schedule on every
//! run. The delivery layer (`lcm-tempest`'s `Network`) consults the plan
//! on each message attempt and turns drops into timeout/retry cycles;
//! injected faults therefore change *costs and statistics only*, never
//! the values a program computes.
//!
//! An inactive plan (all rates zero — the default) draws nothing from the
//! RNG and adds no overhead, so fault-free runs are bit-identical to a
//! build without this module.

use crate::machine::NodeId;
use crate::rng::Pcg32;
use std::fmt;

/// How many doublings the exponential retry backoff applies before
/// saturating (caps the per-retry wait at `retry_timeout << 6`).
pub const BACKOFF_DOUBLING_CAP: u32 = 6;

/// Fault rates and knobs for one run. All rates are probabilities in
/// `[0, 1]` applied independently per message attempt.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that a message attempt is lost in transit.
    pub drop_rate: f64,
    /// Probability that a delivered message arrives twice (the transport
    /// detects the duplicate by sequence number and nacks it).
    pub dup_rate: f64,
    /// Probability that a delivered message is delayed.
    pub delay_rate: f64,
    /// Upper bound, in cycles, of an injected delivery delay.
    pub max_delay: u64,
    /// Seed of the fault schedule; identical seeds reproduce identical
    /// schedules and cycle counts.
    pub seed: u64,
    /// Retransmissions attempted before delivery fails structurally.
    pub max_retries: u32,
    /// Probability that a node stalls at a barrier (per node, per barrier).
    pub stall_rate: f64,
    /// Cycles a stalled node falls behind before recovering.
    pub stall_cycles: u64,
    /// Probability that a node fail-stop crashes during a parallel phase
    /// (per node, per phase). Crashes are scheduled by [`CrashPlan`] from
    /// `crash_seed`, independent of the per-message stream.
    pub crash_rate: f64,
    /// Seed of the crash schedule (distinct from `seed` so crash sweeps
    /// never perturb the message-fault schedule).
    pub crash_seed: u64,
}

impl Default for FaultConfig {
    /// A reliable network: every rate zero, nothing drawn from the RNG.
    fn default() -> FaultConfig {
        FaultConfig {
            drop_rate: 0.0,
            dup_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 400,
            seed: 0,
            max_retries: 10,
            stall_rate: 0.0,
            stall_cycles: 0,
            crash_rate: 0.0,
            crash_seed: 0,
        }
    }
}

impl FaultConfig {
    /// A drop-only plan — the `--faults <rate>:<seed>` sweep shape.
    pub fn drops(drop_rate: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            drop_rate,
            seed,
            ..FaultConfig::default()
        }
    }

    /// A crash-only plan — the `--crash <rate>:<seed>` sweep shape.
    pub fn crashes(crash_rate: f64, crash_seed: u64) -> FaultConfig {
        FaultConfig {
            crash_rate,
            crash_seed,
            ..FaultConfig::default()
        }
    }

    /// True when any *network* fault can actually occur (crashes are
    /// scheduled separately; see [`FaultConfig::crashes_active`]).
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.dup_rate > 0.0
            || self.delay_rate > 0.0
            || (self.stall_rate > 0.0 && self.stall_cycles > 0)
    }

    /// True when the crash schedule can fire.
    pub fn crashes_active(&self) -> bool {
        self.crash_rate > 0.0
    }

    /// Validates the rates, naming the first offending field.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (name, r) in [
            ("drop_rate", self.drop_rate),
            ("dup_rate", self.dup_rate),
            ("delay_rate", self.delay_rate),
            ("stall_rate", self.stall_rate),
            ("crash_rate", self.crash_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(FaultConfigError {
                    message: format!("{name} {r} outside [0, 1]"),
                });
            }
        }
        let combined = self.drop_rate + self.dup_rate + self.delay_rate;
        if combined.is_nan() || combined > 1.0 {
            return Err(FaultConfigError {
                message: "combined per-message fault rate exceeds 1".into(),
            });
        }
        Ok(())
    }
}

/// An invalid [`FaultConfig`]: a rate outside `[0, 1]` (or NaN), or a
/// combined per-message rate above 1. Carried as a value so the CLI can
/// surface it as a named error instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfigError {
    message: String,
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault config: {}", self.message)
    }
}

impl std::error::Error for FaultConfigError {}

/// The scheduled fate of one message attempt.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The message arrives normally.
    Deliver,
    /// The message is lost; the sender will time out and retransmit.
    Drop,
    /// The message arrives twice; the receiver detects and nacks the
    /// duplicate.
    Duplicate,
    /// The message arrives late by the given number of cycles.
    Delay(u64),
}

/// A deterministic per-message fault schedule.
///
/// One outcome is drawn per delivery attempt, in attempt order, so the
/// schedule is a pure function of `(config, message sequence)` — the
/// property the reproducibility tests assert.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: Pcg32,
    active: bool,
    decisions: u64,
}

/// Distinct PCG stream for fault scheduling, so a workload's own seeded
/// RNG never collides with the fault stream.
const FAULT_STREAM: u64 = 0xFA17;

impl FaultPlan {
    /// A plan that never injects anything (and never touches its RNG).
    pub fn disabled() -> FaultPlan {
        FaultPlan::new(FaultConfig::default())
    }

    /// A plan drawing outcomes from `config`'s seed.
    ///
    /// # Panics
    /// Panics on an invalid config; use [`FaultPlan::try_new`] to handle
    /// the error.
    pub fn new(config: FaultConfig) -> FaultPlan {
        match FaultPlan::try_new(config) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// A plan drawing outcomes from `config`'s seed, rejecting invalid
    /// configs as a value instead of a panic.
    pub fn try_new(config: FaultConfig) -> Result<FaultPlan, FaultConfigError> {
        config.validate()?;
        Ok(FaultPlan {
            active: config.is_active(),
            rng: Pcg32::new(config.seed, FAULT_STREAM),
            config,
            decisions: 0,
        })
    }

    /// True when this plan can inject faults.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Number of outcomes drawn so far (diagnostic; equals the number of
    /// message attempts plus barrier stall draws under an active plan).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Draws the outcome of the next message attempt. Inactive plans
    /// return [`FaultOutcome::Deliver`] without consuming randomness.
    pub fn next_outcome(&mut self) -> FaultOutcome {
        if !self.active {
            return FaultOutcome::Deliver;
        }
        self.decisions += 1;
        let r = self.rng.next_f64();
        let c = &self.config;
        if r < c.drop_rate {
            FaultOutcome::Drop
        } else if r < c.drop_rate + c.dup_rate {
            FaultOutcome::Duplicate
        } else if r < c.drop_rate + c.dup_rate + c.delay_rate {
            self.decisions += 1;
            FaultOutcome::Delay(1 + self.rng.below(self.config.max_delay.max(1)))
        } else {
            FaultOutcome::Deliver
        }
    }

    /// Draws the barrier-aligned stall for one node: `Some(cycles)` when
    /// the node stalls and recovers `cycles` late, `None` otherwise.
    /// Inactive plans (or zero stall settings) consume no randomness.
    pub fn barrier_stall(&mut self) -> Option<u64> {
        if !self.active || self.config.stall_rate <= 0.0 || self.config.stall_cycles == 0 {
            return None;
        }
        self.decisions += 1;
        if self.rng.next_f64() < self.config.stall_rate {
            Some(self.config.stall_cycles)
        } else {
            None
        }
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::disabled()
    }
}

/// Distinct PCG stream for crash scheduling, so crash draws never collide
/// with the per-message fault stream or a workload's own RNG.
const CRASH_STREAM: u64 = 0xDEAD;

/// Where in a phase a scheduled fail-stop crash strikes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// Fraction of the phase's work (in permille, `1..=999`) the node
    /// completed before failing — the work lost to rollback.
    pub frac_permille: u64,
}

/// A deterministic per-node, per-phase fail-stop crash schedule.
///
/// Each `(node, phase)` pair draws from its own generator seeded by
/// `(crash_seed, node, phase)`, so the schedule is a pure function of the
/// config — independent of query order, of how many messages the run
/// sent, and of every other fault stream. An inactive plan (rate zero)
/// performs no draws, so crash-free runs are bit-identical to a build
/// without this type.
#[derive(Copy, Clone, Debug)]
pub struct CrashPlan {
    rate: f64,
    seed: u64,
    active: bool,
}

impl CrashPlan {
    /// A plan under which no node ever crashes.
    pub fn disabled() -> CrashPlan {
        CrashPlan {
            rate: 0.0,
            seed: 0,
            active: false,
        }
    }

    /// A plan crashing each node in each phase with probability `rate`,
    /// scheduled from `seed`.
    ///
    /// # Panics
    /// Panics if `rate` is outside `[0, 1]` or NaN.
    pub fn new(rate: f64, seed: u64) -> CrashPlan {
        assert!(
            (0.0..=1.0).contains(&rate),
            "crash_rate {rate} outside [0, 1]"
        );
        CrashPlan {
            rate,
            seed,
            active: rate > 0.0,
        }
    }

    /// The schedule carried by a [`FaultConfig`].
    pub fn from_config(config: &FaultConfig) -> CrashPlan {
        CrashPlan::new(config.crash_rate, config.crash_seed)
    }

    /// True when this plan can crash anything.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The per-node, per-phase crash probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Whether (and where) `node` crashes in `phase`. Inactive plans
    /// return `None` without constructing a generator.
    pub fn crash_point(&self, node: NodeId, phase: u64) -> Option<CrashPoint> {
        if !self.active {
            return None;
        }
        // One generator per (node, phase), mixed with distinct odd
        // multipliers so nearby pairs land on unrelated streams.
        let mixed = self
            .seed
            .wrapping_add(phase.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((node.0 as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        let mut rng = Pcg32::new(mixed, CRASH_STREAM);
        if rng.next_f64() < self.rate {
            Some(CrashPoint {
                frac_permille: 1 + rng.below(999),
            })
        } else {
            None
        }
    }

    /// All crashes scheduled for `phase` on a `nodes`-processor machine,
    /// in node order.
    pub fn scheduled(&self, nodes: usize, phase: u64) -> Vec<(NodeId, CrashPoint)> {
        if !self.active {
            return Vec::new();
        }
        (0..nodes)
            .filter_map(|i| {
                let node = NodeId(i as u16);
                self.crash_point(node, phase).map(|p| (node, p))
            })
            .collect()
    }
}

impl Default for CrashPlan {
    fn default() -> CrashPlan {
        CrashPlan::disabled()
    }
}

/// A message delivery that exhausted its retransmission budget.
///
/// Carried as a structured error (instead of silently succeeding or
/// aborting) so the delivery layer can surface a cycle-stamped diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeliveryError {
    /// The sending node.
    pub from: NodeId,
    /// The intended receiver.
    pub to: NodeId,
    /// The message kind's label (e.g. `"GetShared"`).
    pub kind: &'static str,
    /// Delivery attempts made (first try plus retransmissions).
    pub attempts: u32,
    /// The sender's clock when delivery was abandoned.
    pub at_cycle: u64,
}

impl fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} message {} -> {} undeliverable after {} attempts (sender cycle {})",
            self.kind, self.from, self.to, self.attempts, self.at_cycle
        )
    }
}

impl std::error::Error for DeliveryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_delivers_without_randomness() {
        let mut p = FaultPlan::disabled();
        for _ in 0..100 {
            assert_eq!(p.next_outcome(), FaultOutcome::Deliver);
        }
        assert_eq!(p.barrier_stall(), None);
        assert_eq!(p.decisions(), 0);
        assert!(!p.is_active());
    }

    #[test]
    fn identical_seeds_reproduce_identical_schedules() {
        let cfg = FaultConfig {
            drop_rate: 0.2,
            dup_rate: 0.1,
            delay_rate: 0.1,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        let sa: Vec<_> = (0..500).map(|_| a.next_outcome()).collect();
        let sb: Vec<_> = (0..500).map(|_| b.next_outcome()).collect();
        assert_eq!(sa, sb);
        assert!(sa.contains(&FaultOutcome::Drop));
        assert!(sa.contains(&FaultOutcome::Duplicate));
        assert!(sa.iter().any(|o| matches!(o, FaultOutcome::Delay(_))));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(FaultConfig::drops(0.3, 1));
        let mut b = FaultPlan::new(FaultConfig::drops(0.3, 2));
        let sa: Vec<_> = (0..200).map(|_| a.next_outcome()).collect();
        let sb: Vec<_> = (0..200).map(|_| b.next_outcome()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn drop_rate_is_roughly_respected() {
        let mut p = FaultPlan::new(FaultConfig::drops(0.25, 7));
        let drops = (0..4000)
            .filter(|_| p.next_outcome() == FaultOutcome::Drop)
            .count();
        let rate = drops as f64 / 4000.0;
        assert!((0.20..0.30).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn delays_stay_in_bounds() {
        let cfg = FaultConfig {
            delay_rate: 1.0,
            max_delay: 50,
            ..FaultConfig::default()
        };
        let mut p = FaultPlan::new(cfg);
        for _ in 0..200 {
            match p.next_outcome() {
                FaultOutcome::Delay(k) => assert!((1..=50).contains(&k)),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn barrier_stalls_draw_deterministically() {
        let cfg = FaultConfig {
            stall_rate: 0.5,
            stall_cycles: 1234,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        let sa: Vec<_> = (0..100).map(|_| a.barrier_stall()).collect();
        let sb: Vec<_> = (0..100).map(|_| b.barrier_stall()).collect();
        assert_eq!(sa, sb);
        assert!(sa.contains(&Some(1234)));
        assert!(sa.iter().any(|s| s.is_none()));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rate_rejected() {
        FaultPlan::new(FaultConfig::drops(1.5, 0));
    }

    #[test]
    fn try_new_surfaces_named_errors() {
        let e = FaultPlan::try_new(FaultConfig::drops(1.5, 0)).expect_err("rate over 1");
        let text = e.to_string();
        assert!(text.contains("drop_rate 1.5 outside [0, 1]"), "{text}");

        let nan = FaultConfig {
            stall_rate: f64::NAN,
            ..FaultConfig::default()
        };
        assert!(FaultPlan::try_new(nan).is_err(), "NaN rates are rejected");

        let over = FaultConfig {
            drop_rate: 0.5,
            dup_rate: 0.4,
            delay_rate: 0.3,
            ..FaultConfig::default()
        };
        let e = FaultPlan::try_new(over).expect_err("combined rate over 1");
        assert!(e.to_string().contains("combined per-message"), "{e}");

        let bad_crash = FaultConfig::crashes(-0.1, 0);
        let e = FaultPlan::try_new(bad_crash).expect_err("negative crash rate");
        assert!(e.to_string().contains("crash_rate"), "{e}");

        assert!(FaultPlan::try_new(FaultConfig::default()).is_ok());
    }

    #[test]
    fn crash_plan_is_order_independent_and_seeded() {
        let p = CrashPlan::new(0.3, 42);
        // Same (node, phase) always draws the same fate, in any order.
        let a = p.crash_point(NodeId(3), 7);
        let _ = p.crash_point(NodeId(0), 0);
        let b = p.crash_point(NodeId(3), 7);
        assert_eq!(a, b);

        // The full 8-node × 64-phase grid is reproducible and non-trivial.
        let grid: Vec<_> = (0..64).map(|ph| p.scheduled(8, ph)).collect();
        let again: Vec<_> = (0..64).map(|ph| p.scheduled(8, ph)).collect();
        assert_eq!(grid, again);
        let total: usize = grid.iter().map(|v| v.len()).sum();
        assert!(total > 0, "a 30% rate crashes someone in 512 draws");
        assert!(total < 512, "and spares someone");
        for (_, point) in grid.iter().flatten() {
            assert!((1..=999).contains(&point.frac_permille));
        }

        // A different seed gives a different schedule.
        let q = CrashPlan::new(0.3, 43);
        let other: Vec<_> = (0..64).map(|ph| q.scheduled(8, ph)).collect();
        assert_ne!(grid, other);
    }

    #[test]
    fn inactive_crash_plan_never_fires() {
        let p = CrashPlan::disabled();
        assert!(!p.is_active());
        for ph in 0..32 {
            assert!(p.scheduled(64, ph).is_empty());
        }
        let cfg = FaultConfig::default();
        assert!(!cfg.crashes_active());
        assert!(!CrashPlan::from_config(&cfg).is_active());
        let crashy = FaultConfig::crashes(0.5, 9);
        assert!(crashy.crashes_active());
        assert!(!crashy.is_active(), "crashes are not network faults");
        assert!(CrashPlan::from_config(&crashy).is_active());
        assert_eq!(CrashPlan::from_config(&crashy).rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "crash_rate 2 outside [0, 1]")]
    fn crash_plan_rejects_bad_rates() {
        CrashPlan::new(2.0, 0);
    }

    #[test]
    fn delivery_error_is_cycle_stamped() {
        let e = DeliveryError {
            from: NodeId(1),
            to: NodeId(2),
            kind: "GetShared",
            attempts: 11,
            at_cycle: 98765,
        };
        let text = e.to_string();
        assert!(text.contains("GetShared"), "{text}");
        assert!(text.contains("11 attempts"), "{text}");
        assert!(text.contains("98765"), "{text}");
    }
}

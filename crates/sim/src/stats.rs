//! Protocol event counters.
//!
//! Every node accumulates a [`NodeStats`]; the paper's Table 1 columns
//! ("cache misses", "clean copies") are derived from these counters, as are
//! the message and reconciliation counts used by the Section 7 ablations.

/// Per-node protocol event counters.
///
/// All counters are plain event counts; cycle-weighted time lives in the
/// machine clocks, not here. `misses()` is the paper's "cache misses"
/// metric: the number of accesses that required protocol action.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Loads that hit a valid readable block.
    pub read_hits: u64,
    /// Stores that hit a writable block.
    pub write_hits: u64,
    /// Loads that missed and were filled from a remote home node.
    pub read_miss_remote: u64,
    /// Loads that missed and were filled from node-local storage
    /// (the Stache or a local clean copy).
    pub read_miss_local: u64,
    /// Stores that missed entirely (block absent) and required a remote fill.
    pub write_miss_remote: u64,
    /// Stores that missed and were filled from node-local storage.
    pub write_miss_local: u64,
    /// Stores that hit a ReadOnly copy and required an ownership upgrade.
    pub upgrades: u64,
    /// Protocol messages sent by this node.
    pub msgs_sent: u64,
    /// Protocol messages handled by this node.
    pub msgs_recv: u64,
    /// Whole blocks of data shipped by this node (fills, flushes).
    pub blocks_sent: u64,
    /// Invalidation requests issued by this node (as home).
    pub invalidations_sent: u64,
    /// Invalidation requests processed by this node (as sharer).
    pub invalidations_recv: u64,
    /// Clean copies created on behalf of this node's marks (Table 1 metric).
    pub clean_copies: u64,
    /// `mark_modification` directives executed.
    pub marks: u64,
    /// Modified blocks flushed home by `flush_copies`.
    pub flushes: u64,
    /// Block versions reconciled at this node (as home).
    pub versions_reconciled: u64,
    /// Write-write conflicts detected at reconciliation (as home).
    pub ww_conflicts: u64,
    /// Read-write conflicts detected at reconciliation (as home).
    pub rw_conflicts: u64,
    /// Stale-data refreshes (self-invalidations) performed.
    pub stale_refreshes: u64,
    /// Blocks evicted for capacity (limited-cache configurations only).
    pub evictions: u64,
    /// Global barriers this node participated in.
    pub barriers: u64,
    /// Retransmissions this node performed after a delivery timeout
    /// (fault injection only).
    pub retries: u64,
    /// Delivery timeouts this node suffered waiting on a lost message
    /// (fault injection only).
    pub timeouts: u64,
    /// Message attempts by this node that the network dropped
    /// (fault injection only; dropped attempts are *not* in `msgs_sent`).
    pub msgs_dropped: u64,
    /// Duplicate deliveries this node detected and nacked as a receiver
    /// (fault injection only; duplicates are *not* in `msgs_recv`).
    pub msgs_duplicated: u64,
    /// Cycles this node lost to injected barrier-aligned stalls
    /// (fault injection only).
    pub stall_cycles: u64,
    /// Wire bytes this node put on the network (delivered messages only:
    /// header per message plus the 32-byte payload of each block shipped).
    pub bytes_sent: u64,
    /// Wire bytes this node accepted off the network (delivered messages
    /// only; duplicates and drops carry no accepted bytes).
    pub bytes_recv: u64,
    /// Phase-boundary checkpoints this node captured (crash schedules
    /// only).
    pub checkpoints: u64,
    /// Bytes this node persisted across all its checkpoints (crash
    /// schedules only).
    pub checkpoint_bytes: u64,
    /// Fail-stop crashes this node suffered and recovered from (crash
    /// schedules only).
    pub crashes: u64,
    /// Directory entries at this home whose sharer-set representation
    /// overflowed to broadcast (limited-pointer backends only; counted
    /// once per entry per overflow episode).
    pub dir_overflows: u64,
    /// Invalidations this home sent to nodes that held no copy, because
    /// an imprecise sharer representation (broadcast overflow or coarse
    /// grouping) could not target more narrowly.
    pub spurious_invals: u64,
}

impl NodeStats {
    /// Creates a zeroed counter set. Identical to `Default::default()`.
    pub fn new() -> NodeStats {
        NodeStats::default()
    }

    /// Total accesses that required protocol action — the paper's
    /// "cache misses" column.
    pub fn misses(&self) -> u64 {
        self.read_miss_remote
            + self.read_miss_local
            + self.write_miss_remote
            + self.write_miss_local
            + self.upgrades
    }

    /// Misses that crossed the network.
    pub fn remote_misses(&self) -> u64 {
        self.read_miss_remote + self.write_miss_remote + self.upgrades
    }

    /// Total loads and stores issued.
    pub fn accesses(&self) -> u64 {
        self.read_hits
            + self.write_hits
            + self.read_miss_remote
            + self.read_miss_local
            + self.write_miss_remote
            + self.write_miss_local
            + self.upgrades
    }

    /// Total conflicts of either kind detected at this node.
    pub fn conflicts(&self) -> u64 {
        self.ww_conflicts + self.rw_conflicts
    }

    /// Adds every counter of `other` into `self`.
    pub fn add(&mut self, other: &NodeStats) {
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.read_miss_remote += other.read_miss_remote;
        self.read_miss_local += other.read_miss_local;
        self.write_miss_remote += other.write_miss_remote;
        self.write_miss_local += other.write_miss_local;
        self.upgrades += other.upgrades;
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.blocks_sent += other.blocks_sent;
        self.invalidations_sent += other.invalidations_sent;
        self.invalidations_recv += other.invalidations_recv;
        self.clean_copies += other.clean_copies;
        self.marks += other.marks;
        self.flushes += other.flushes;
        self.versions_reconciled += other.versions_reconciled;
        self.ww_conflicts += other.ww_conflicts;
        self.rw_conflicts += other.rw_conflicts;
        self.stale_refreshes += other.stale_refreshes;
        self.evictions += other.evictions;
        self.barriers += other.barriers;
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.msgs_dropped += other.msgs_dropped;
        self.msgs_duplicated += other.msgs_duplicated;
        self.stall_cycles += other.stall_cycles;
        self.bytes_sent += other.bytes_sent;
        self.bytes_recv += other.bytes_recv;
        self.checkpoints += other.checkpoints;
        self.checkpoint_bytes += other.checkpoint_bytes;
        self.crashes += other.crashes;
        self.dir_overflows += other.dir_overflows;
        self.spurious_invals += other.spurious_invals;
    }

    /// Total injected-fault events observed by this node (retries,
    /// timeouts, drops, duplicates). Zero on a reliable network.
    pub fn fault_events(&self) -> u64 {
        self.retries + self.timeouts + self.msgs_dropped + self.msgs_duplicated
    }

    /// Number of counters in [`NodeStats::as_array`] order.
    pub const FIELDS: usize = 33;

    /// The counters flattened into a fixed declaration-order array — the
    /// serialization form used by the `.lcmtrace` footer. Inverse of
    /// [`NodeStats::from_array`]; appending a counter must extend the
    /// *end* of this array (the trace format versions on its length).
    pub fn as_array(&self) -> [u64; NodeStats::FIELDS] {
        [
            self.read_hits,
            self.write_hits,
            self.read_miss_remote,
            self.read_miss_local,
            self.write_miss_remote,
            self.write_miss_local,
            self.upgrades,
            self.msgs_sent,
            self.msgs_recv,
            self.blocks_sent,
            self.invalidations_sent,
            self.invalidations_recv,
            self.clean_copies,
            self.marks,
            self.flushes,
            self.versions_reconciled,
            self.ww_conflicts,
            self.rw_conflicts,
            self.stale_refreshes,
            self.evictions,
            self.barriers,
            self.retries,
            self.timeouts,
            self.msgs_dropped,
            self.msgs_duplicated,
            self.stall_cycles,
            self.bytes_sent,
            self.bytes_recv,
            self.checkpoints,
            self.checkpoint_bytes,
            self.crashes,
            self.dir_overflows,
            self.spurious_invals,
        ]
    }

    /// Rebuilds the counters from an [`NodeStats::as_array`] flattening.
    pub fn from_array(a: [u64; NodeStats::FIELDS]) -> NodeStats {
        NodeStats {
            read_hits: a[0],
            write_hits: a[1],
            read_miss_remote: a[2],
            read_miss_local: a[3],
            write_miss_remote: a[4],
            write_miss_local: a[5],
            upgrades: a[6],
            msgs_sent: a[7],
            msgs_recv: a[8],
            blocks_sent: a[9],
            invalidations_sent: a[10],
            invalidations_recv: a[11],
            clean_copies: a[12],
            marks: a[13],
            flushes: a[14],
            versions_reconciled: a[15],
            ww_conflicts: a[16],
            rw_conflicts: a[17],
            stale_refreshes: a[18],
            evictions: a[19],
            barriers: a[20],
            retries: a[21],
            timeouts: a[22],
            msgs_dropped: a[23],
            msgs_duplicated: a[24],
            stall_cycles: a[25],
            bytes_sent: a[26],
            bytes_recv: a[27],
            checkpoints: a[28],
            checkpoint_bytes: a[29],
            crashes: a[30],
            dir_overflows: a[31],
            spurious_invals: a[32],
        }
    }
}

impl std::fmt::Display for NodeStats {
    /// A compact multi-line report of the non-zero counters.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "accesses: {} ({} hits, {} misses: {}r/{}w remote, {}r/{}w local, {} upgrades)",
            self.accesses(),
            self.read_hits + self.write_hits,
            self.misses(),
            self.read_miss_remote,
            self.write_miss_remote,
            self.read_miss_local,
            self.write_miss_local,
            self.upgrades
        )?;
        writeln!(
            f,
            "messages: {} sent / {} received ({} blocks, {}/{} bytes); invalidations {} sent / {} received",
            self.msgs_sent,
            self.msgs_recv,
            self.blocks_sent,
            self.bytes_sent,
            self.bytes_recv,
            self.invalidations_sent,
            self.invalidations_recv
        )?;
        write!(
            f,
            "lcm: {} marks, {} clean copies, {} flushes, {} versions reconciled, {} conflicts; \
             {} stale refreshes, {} evictions, {} barriers",
            self.marks,
            self.clean_copies,
            self.flushes,
            self.versions_reconciled,
            self.conflicts(),
            self.stale_refreshes,
            self.evictions,
            self.barriers
        )?;
        if self.fault_events() > 0 || self.stall_cycles > 0 {
            write!(
                f,
                "\nfaults: {} dropped, {} duplicated, {} timeouts, {} retries, {} stall cycles",
                self.msgs_dropped,
                self.msgs_duplicated,
                self.timeouts,
                self.retries,
                self.stall_cycles
            )?;
        }
        if self.checkpoints > 0 || self.crashes > 0 {
            write!(
                f,
                "\nrecovery: {} checkpoints ({} bytes), {} crashes",
                self.checkpoints, self.checkpoint_bytes, self.crashes
            )?;
        }
        if self.dir_overflows > 0 || self.spurious_invals > 0 {
            write!(
                f,
                "\ndirectory: {} overflows to broadcast, {} spurious invalidations",
                self.dir_overflows, self.spurious_invals
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_sums_all_miss_kinds() {
        let s = NodeStats {
            read_miss_remote: 1,
            read_miss_local: 2,
            write_miss_remote: 3,
            write_miss_local: 4,
            upgrades: 5,
            read_hits: 100,
            ..NodeStats::default()
        };
        assert_eq!(s.misses(), 15);
        assert_eq!(s.remote_misses(), 9);
        assert_eq!(s.accesses(), 115);
    }

    #[test]
    fn add_accumulates_every_field() {
        let mut a = NodeStats::default();
        let b = NodeStats {
            read_hits: 1,
            write_hits: 2,
            read_miss_remote: 3,
            read_miss_local: 4,
            write_miss_remote: 5,
            write_miss_local: 6,
            upgrades: 7,
            msgs_sent: 8,
            msgs_recv: 9,
            blocks_sent: 10,
            invalidations_sent: 11,
            invalidations_recv: 12,
            clean_copies: 13,
            marks: 14,
            flushes: 15,
            versions_reconciled: 16,
            ww_conflicts: 17,
            rw_conflicts: 18,
            stale_refreshes: 19,
            evictions: 21,
            barriers: 20,
            retries: 22,
            timeouts: 23,
            msgs_dropped: 24,
            msgs_duplicated: 25,
            stall_cycles: 26,
            bytes_sent: 27,
            bytes_recv: 28,
            checkpoints: 29,
            checkpoint_bytes: 30,
            crashes: 31,
            dir_overflows: 32,
            spurious_invals: 33,
        };
        a.add(&b);
        a.add(&b);
        assert_eq!(a.read_hits, 2);
        assert_eq!(a.barriers, 40);
        assert_eq!(a.evictions, 42);
        assert_eq!(a.conflicts(), 2 * (17 + 18));
        assert_eq!(a.retries, 44);
        assert_eq!(a.timeouts, 46);
        assert_eq!(a.msgs_dropped, 48);
        assert_eq!(a.msgs_duplicated, 50);
        assert_eq!(a.stall_cycles, 52);
        assert_eq!(a.bytes_sent, 54);
        assert_eq!(a.bytes_recv, 56);
        assert_eq!(a.checkpoints, 58);
        assert_eq!(a.checkpoint_bytes, 60);
        assert_eq!(a.crashes, 62);
        assert_eq!(a.dir_overflows, 64);
        assert_eq!(a.spurious_invals, 66);
        assert_eq!(a.fault_events(), 44 + 46 + 48 + 50);
    }

    #[test]
    fn array_round_trip_covers_every_field() {
        // The `b` fixture above assigns a distinct value to every field;
        // a round trip through the serialization array must preserve all
        // of them (a field missed by as_array/from_array would zero out).
        let b = NodeStats {
            read_hits: 1,
            write_hits: 2,
            read_miss_remote: 3,
            read_miss_local: 4,
            write_miss_remote: 5,
            write_miss_local: 6,
            upgrades: 7,
            msgs_sent: 8,
            msgs_recv: 9,
            blocks_sent: 10,
            invalidations_sent: 11,
            invalidations_recv: 12,
            clean_copies: 13,
            marks: 14,
            flushes: 15,
            versions_reconciled: 16,
            ww_conflicts: 17,
            rw_conflicts: 18,
            stale_refreshes: 19,
            evictions: 21,
            barriers: 20,
            retries: 22,
            timeouts: 23,
            msgs_dropped: 24,
            msgs_duplicated: 25,
            stall_cycles: 26,
            bytes_sent: 27,
            bytes_recv: 28,
            checkpoints: 29,
            checkpoint_bytes: 30,
            crashes: 31,
            dir_overflows: 32,
            spurious_invals: 33,
        };
        let a = b.as_array();
        let distinct: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(distinct.len(), NodeStats::FIELDS, "every field captured");
        assert_eq!(NodeStats::from_array(a), b);
    }

    #[test]
    fn default_is_zeroed() {
        let s = NodeStats::new();
        assert_eq!(s.accesses(), 0);
        assert_eq!(s.misses(), 0);
    }

    #[test]
    fn display_reports_the_headline_numbers() {
        let s = NodeStats {
            read_hits: 90,
            read_miss_remote: 10,
            marks: 3,
            ..NodeStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("accesses: 100"), "{text}");
        assert!(text.contains("10 misses"), "{text}");
        assert!(text.contains("3 marks"), "{text}");
    }
}

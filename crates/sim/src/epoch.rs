//! Persistent worker pool for epoch-parallel simulation.
//!
//! One big simulation advances through thousands of barrier epochs, and
//! each epoch's node-local work fans out as many short batch tasks. A
//! `std::thread::scope` per epoch (what [`crate::par_map`] does per
//! sweep point) would pay thread spawn/join on every epoch, so the
//! epoch engine keeps a [`SimPool`]: workers spawn once, park on a
//! condvar between jobs, and claim task indices from an atomic counter
//! with lock-free slot discipline (see `crate::par`'s `SlotCell`
//! contract — each index is claimed by exactly one participant).
//!
//! A job is a borrowed closure `&(dyn Fn(usize) + Sync)`; the submitter
//! erases its lifetime to hand it across threads, which is sound
//! because [`SimPool::run`] does not return until *every* participant
//! (the caller included) has finished the job — no worker can observe
//! the closure after `run` returns. Worker panics are caught per index
//! with the same location-capturing machinery as `try_par_map`, and the
//! lowest panicking index is reported deterministically.

use crate::par::call_caught;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A worker panic surfaced from a [`SimPool`] job: the lowest panicking
/// task index and its `file:line`-prefixed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPanic {
    /// The lowest task index whose closure panicked.
    pub index: usize,
    /// The report, `file.rs:line: message` when the hook saw the panic.
    pub message: String,
}

impl fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task {}: {}", self.index, self.message)
    }
}

/// The current job, lifetime-erased. Only dereferenced while the
/// submitting `run` call is blocked (see module docs).
#[derive(Copy, Clone)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` and outlives every dereference (the
// submitter blocks in `run` until all participants finish the job).
unsafe impl Send for JobPtr {}

struct State {
    job: Option<JobPtr>,
    /// Number of task indices in the current job.
    n: usize,
    /// Bumped once per published job; workers watch it to detect work.
    epoch: u64,
    /// Spawned workers that have not yet finished the current job.
    remaining: usize,
    shutdown: bool,
    /// Lowest panicking index of the current job, with its message.
    first_panic: Option<(usize, String)>,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new job published, or shutdown.
    work: Condvar,
    /// Signals the submitter: all workers finished the job.
    done: Condvar,
    /// The task claim counter, reset before each job is published.
    next: AtomicUsize,
}

/// A persistent pool of `threads - 1` parked workers; the caller of
/// [`SimPool::run`] is the remaining participant. `SimPool::new(1)`
/// spawns nothing and runs every job inline — the zero-overhead
/// single-thread fallback.
pub struct SimPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl fmt::Debug for SimPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl SimPool {
    /// A pool with `threads` total participants (at least 1): the
    /// submitting thread plus `threads - 1` spawned workers.
    pub fn new(threads: usize) -> SimPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                n: 0,
                epoch: 0,
                remaining: 0,
                shutdown: false,
                first_panic: None,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let handles = (1..threads)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        SimPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total participants (submitter + spawned workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one job: `f(i)` for every `i in 0..n`, spread over all
    /// participants. Returns when every index has been processed and
    /// every worker has quiesced; a panicking index does not stop the
    /// others, and the lowest one is reported as `Err`.
    pub fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) -> Result<(), PoolPanic> {
        // SAFETY (lifetime erasure): `f` stays borrowed for the whole
        // call, and no participant touches the pointer after `remaining`
        // hits 0 below — which this call waits for before returning.
        let job = JobPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            assert_eq!(st.remaining, 0, "SimPool::run is not reentrant");
            self.shared.next.store(0, Ordering::Relaxed);
            st.job = Some(job);
            st.n = n;
            st.epoch += 1;
            st.remaining = self.handles.len();
            st.first_panic = None;
            self.shared.work.notify_all();
        }
        // The submitter participates in its own job.
        run_slice(&self.shared, job, n);
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining != 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        match st.first_panic.take() {
            None => Ok(()),
            Some((index, message)) => Err(PoolPanic { index, message }),
        }
    }
}

impl Drop for SimPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claims and runs task indices until the counter is exhausted,
/// recording the lowest panicking index.
fn run_slice(shared: &Shared, job: JobPtr, n: usize) {
    loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        // SAFETY: see `JobPtr` — the closure is alive for the whole job.
        let f = unsafe { &*job.0 };
        if let Err(caught) = call_caught(|| f(i)) {
            let msg = caught.message();
            let mut st = shared.state.lock().unwrap();
            match &st.first_panic {
                Some((j, _)) if *j <= i => {}
                _ => st.first_panic = Some((i, msg)),
            }
        }
    }
}

/// The spawned-worker loop: park until a new epoch (or shutdown) is
/// published, run the job, report completion.
fn worker_loop(shared: &Shared) {
    let mut last_epoch = 0u64;
    loop {
        let (job, n) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    last_epoch = st.epoch;
                    break (st.job.expect("a published epoch carries a job"), st.n);
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        run_slice(shared, job, n);
        let mut st = shared.state.lock().unwrap();
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_index_runs_exactly_once_and_the_pool_is_reusable() {
        let pool = SimPool::new(4);
        for round in 0..3 {
            let n = 100 + round;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "round {round}"
            );
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = SimPool::new(1);
        assert_eq!(pool.threads(), 1);
        let sum = AtomicUsize::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn empty_jobs_complete() {
        let pool = SimPool::new(3);
        pool.run(0, &|_| unreachable!()).unwrap();
        pool.run(0, &|_| unreachable!()).unwrap();
    }

    #[test]
    fn lowest_panicking_index_is_reported_and_the_pool_survives() {
        let pool = SimPool::new(3);
        let err = pool
            .run(10, &|i| {
                if i % 4 == 2 {
                    panic!("bad task {i}");
                }
            })
            .unwrap_err();
        assert_eq!(err.index, 2, "{err}");
        assert!(err.message.ends_with("bad task 2"), "{err}");
        assert!(err.message.contains("epoch.rs:"), "{err}");
        // Non-panicking indices all still ran, and the pool is reusable.
        let ok = AtomicUsize::new(0);
        pool.run(8, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ok.load(Ordering::Relaxed), 8);
    }
}

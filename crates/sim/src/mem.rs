//! Memory geometry: addresses, blocks, pages, words, and block buffers.
//!
//! The whole reproduction uses the geometry of the paper's CM-5/Blizzard-E
//! platform: a coherence *block* is 32 bytes ("a cache block holds eight
//! single-precision floats"), a *word* is 4 bytes, and protocol bookkeeping
//! is organized in 4 KB *pages* of 128 blocks, mirroring Blizzard's
//! page-grained local-memory allocation with block-grained access tags.

use std::fmt;

/// Size of a coherence block in bytes (eight single-precision floats).
pub const BLOCK_BYTES: usize = 32;
/// Size of a word in bytes. All protocol merging happens at word granularity.
pub const WORD_BYTES: usize = 4;
/// Number of words in a block.
pub const WORDS_PER_BLOCK: usize = BLOCK_BYTES / WORD_BYTES;
/// Number of blocks in a page.
pub const BLOCKS_PER_PAGE: usize = 128;
/// Size of a page in bytes.
pub const PAGE_BYTES: usize = BLOCK_BYTES * BLOCKS_PER_PAGE;

const BLOCK_SHIFT: u64 = 5; // log2(BLOCK_BYTES)
const PAGE_BLOCK_SHIFT: u64 = 7; // log2(BLOCKS_PER_PAGE)

/// A byte address in the simulated global address space.
///
/// Addresses are plain integers handed out by the allocator in
/// [`lcm-tempest`](https://docs.rs/lcm-tempest); they never alias host
/// memory. The newtype keeps them from being confused with sizes or
/// indices.
///
/// ```
/// use lcm_sim::mem::{Addr, BLOCK_BYTES};
/// let a = Addr(3 * BLOCK_BYTES as u64 + 12);
/// assert_eq!(a.block().0, 3);
/// assert_eq!(a.word_in_block(), 3);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The block containing this address.
    #[inline]
    pub fn block(self) -> BlockId {
        BlockId(self.0 >> BLOCK_SHIFT)
    }

    /// Byte offset of this address within its block.
    #[inline]
    pub fn offset_in_block(self) -> usize {
        (self.0 & (BLOCK_BYTES as u64 - 1)) as usize
    }

    /// Word index of this address within its block.
    ///
    /// The low two bits (sub-word offset) are ignored; protocol-visible
    /// accesses are word-aligned.
    #[inline]
    pub fn word_in_block(self) -> usize {
        self.offset_in_block() / WORD_BYTES
    }

    /// Returns the address `delta` bytes past this one.
    #[inline]
    pub fn offset(self, delta: u64) -> Addr {
        Addr(self.0 + delta)
    }

    /// True when the address is word (4-byte) aligned.
    #[inline]
    pub fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_BYTES as u64)
    }

    /// True when the address is block (32-byte) aligned.
    #[inline]
    pub fn is_block_aligned(self) -> bool {
        self.0.is_multiple_of(BLOCK_BYTES as u64)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Identifier of a coherence block: the address shifted right by
/// `log2(BLOCK_BYTES)`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u64);

impl BlockId {
    /// Address of the first byte of the block.
    #[inline]
    pub fn base_addr(self) -> Addr {
        Addr(self.0 << BLOCK_SHIFT)
    }

    /// The page containing this block.
    #[inline]
    pub fn page(self) -> PageId {
        PageId(self.0 >> PAGE_BLOCK_SHIFT)
    }

    /// Index of this block within its page (`0..BLOCKS_PER_PAGE`).
    #[inline]
    pub fn index_in_page(self) -> usize {
        (self.0 & (BLOCKS_PER_PAGE as u64 - 1)) as usize
    }

    /// Address of word `w` (`0..WORDS_PER_BLOCK`) of this block.
    ///
    /// # Panics
    /// Panics if `w >= WORDS_PER_BLOCK`.
    #[inline]
    pub fn word_addr(self, w: usize) -> Addr {
        assert!(w < WORDS_PER_BLOCK, "word index {w} out of range");
        Addr((self.0 << BLOCK_SHIFT) + (w * WORD_BYTES) as u64)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockId({:#x})", self.0)
    }
}

/// Identifier of a 4 KB page of 128 blocks.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct PageId(pub u64);

impl PageId {
    /// First block of the page.
    #[inline]
    pub fn first_block(self) -> BlockId {
        BlockId(self.0 << PAGE_BLOCK_SHIFT)
    }
}

/// A bitmask over the eight words of one block.
///
/// LCM records, per private copy, which words have been stored to; the
/// reconciliation at the home node merges exactly these words and detects
/// conflicting claims on the same word.
///
/// ```
/// use lcm_sim::mem::WordMask;
/// let mut m = WordMask::empty();
/// m.set(0);
/// m.set(7);
/// assert_eq!(m.count(), 2);
/// assert!(m.get(7) && !m.get(3));
/// assert!(m.overlaps(WordMask::single(7)));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct WordMask(pub u8);

impl WordMask {
    /// No words set.
    #[inline]
    pub fn empty() -> WordMask {
        WordMask(0)
    }

    /// All eight words set.
    #[inline]
    pub fn full() -> WordMask {
        WordMask(0xff)
    }

    /// A mask with only word `w` set.
    ///
    /// # Panics
    /// Panics if `w >= WORDS_PER_BLOCK`.
    #[inline]
    pub fn single(w: usize) -> WordMask {
        assert!(w < WORDS_PER_BLOCK, "word index {w} out of range");
        WordMask(1 << w)
    }

    /// Marks word `w`.
    #[inline]
    pub fn set(&mut self, w: usize) {
        debug_assert!(w < WORDS_PER_BLOCK);
        self.0 |= 1 << w;
    }

    /// True when word `w` is marked.
    #[inline]
    pub fn get(self, w: usize) -> bool {
        debug_assert!(w < WORDS_PER_BLOCK);
        self.0 & (1 << w) != 0
    }

    /// True when no word is marked.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of marked words.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Union of two masks.
    #[inline]
    pub fn union(self, other: WordMask) -> WordMask {
        WordMask(self.0 | other.0)
    }

    /// Intersection of two masks.
    #[inline]
    pub fn intersect(self, other: WordMask) -> WordMask {
        WordMask(self.0 & other.0)
    }

    /// True when the two masks mark at least one common word.
    #[inline]
    pub fn overlaps(self, other: WordMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Words in `self` but not in `other`.
    #[inline]
    pub fn minus(self, other: WordMask) -> WordMask {
        WordMask(self.0 & !other.0)
    }

    /// Iterates over the indices of marked words, ascending.
    pub fn iter_set(self) -> impl Iterator<Item = usize> {
        (0..WORDS_PER_BLOCK).filter(move |&w| self.get(w))
    }
}

impl fmt::Debug for WordMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WordMask({:#010b})", self.0)
    }
}

/// An owned copy of one block's data.
///
/// `BlockBuf` is the unit of transfer and of protocol-private storage
/// (clean copies, private modified copies, merge buffers). Words may be
/// viewed as raw `u32` bits or as `f32`/`f64` values; `f64` values occupy
/// an even-aligned pair of words.
#[derive(Copy, Clone, PartialEq, Eq)]
pub struct BlockBuf {
    bytes: [u8; BLOCK_BYTES],
}

impl BlockBuf {
    /// A block of all-zero bytes.
    #[inline]
    pub fn zeroed() -> BlockBuf {
        BlockBuf {
            bytes: [0; BLOCK_BYTES],
        }
    }

    /// Builds a block from raw bytes.
    #[inline]
    pub fn from_bytes(bytes: [u8; BLOCK_BYTES]) -> BlockBuf {
        BlockBuf { bytes }
    }

    /// Raw byte view.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; BLOCK_BYTES] {
        &self.bytes
    }

    /// Raw bit pattern of word `w`.
    #[inline]
    pub fn word(&self, w: usize) -> u32 {
        let o = w * WORD_BYTES;
        u32::from_le_bytes([
            self.bytes[o],
            self.bytes[o + 1],
            self.bytes[o + 2],
            self.bytes[o + 3],
        ])
    }

    /// Stores raw bit pattern `v` into word `w`.
    #[inline]
    pub fn set_word(&mut self, w: usize, v: u32) {
        let o = w * WORD_BYTES;
        self.bytes[o..o + WORD_BYTES].copy_from_slice(&v.to_le_bytes());
    }

    /// Word `w` viewed as an `f32`.
    #[inline]
    pub fn f32(&self, w: usize) -> f32 {
        f32::from_bits(self.word(w))
    }

    /// Stores `v` into word `w` as an `f32`.
    #[inline]
    pub fn set_f32(&mut self, w: usize, v: f32) {
        self.set_word(w, v.to_bits());
    }

    /// Words `w, w+1` viewed as an `f64`.
    ///
    /// # Panics
    /// Panics if `w` is odd or `w + 1 >= WORDS_PER_BLOCK`.
    #[inline]
    pub fn f64(&self, w: usize) -> f64 {
        assert!(
            w.is_multiple_of(2) && w + 1 < WORDS_PER_BLOCK,
            "f64 word index {w} invalid"
        );
        let lo = self.word(w) as u64;
        let hi = self.word(w + 1) as u64;
        f64::from_bits(lo | (hi << 32))
    }

    /// Stores `v` into words `w, w+1` as an `f64`.
    ///
    /// # Panics
    /// Panics if `w` is odd or `w + 1 >= WORDS_PER_BLOCK`.
    #[inline]
    pub fn set_f64(&mut self, w: usize, v: f64) {
        assert!(
            w.is_multiple_of(2) && w + 1 < WORDS_PER_BLOCK,
            "f64 word index {w} invalid"
        );
        let bits = v.to_bits();
        self.set_word(w, bits as u32);
        self.set_word(w + 1, (bits >> 32) as u32);
    }

    /// Copies the words selected by `mask` from `src` into `self`.
    #[inline]
    pub fn merge_words(&mut self, src: &BlockBuf, mask: WordMask) {
        for w in mask.iter_set() {
            self.set_word(w, src.word(w));
        }
    }
}

impl Default for BlockBuf {
    fn default() -> BlockBuf {
        BlockBuf::zeroed()
    }
}

impl fmt::Debug for BlockBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockBuf[")?;
        for w in 0..WORDS_PER_BLOCK {
            if w > 0 {
                write!(f, " ")?;
            }
            write!(f, "{:08x}", self.word(w))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_block_mapping() {
        let a = Addr(0);
        assert_eq!(a.block(), BlockId(0));
        assert_eq!(a.word_in_block(), 0);
        let b = Addr(31);
        assert_eq!(b.block(), BlockId(0));
        assert_eq!(b.word_in_block(), 7);
        let c = Addr(32);
        assert_eq!(c.block(), BlockId(1));
        assert_eq!(c.word_in_block(), 0);
    }

    #[test]
    fn addr_alignment_predicates() {
        assert!(Addr(0).is_block_aligned());
        assert!(Addr(64).is_block_aligned());
        assert!(!Addr(4).is_block_aligned());
        assert!(Addr(4).is_word_aligned());
        assert!(!Addr(5).is_word_aligned());
    }

    #[test]
    fn block_page_mapping() {
        let b = BlockId(127);
        assert_eq!(b.page(), PageId(0));
        assert_eq!(b.index_in_page(), 127);
        let b = BlockId(128);
        assert_eq!(b.page(), PageId(1));
        assert_eq!(b.index_in_page(), 0);
        assert_eq!(PageId(1).first_block(), BlockId(128));
    }

    #[test]
    fn block_word_addr_roundtrip() {
        let b = BlockId(10);
        for w in 0..WORDS_PER_BLOCK {
            let a = b.word_addr(w);
            assert_eq!(a.block(), b);
            assert_eq!(a.word_in_block(), w);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_word_addr_out_of_range_panics() {
        BlockId(0).word_addr(8);
    }

    #[test]
    fn word_mask_basics() {
        let mut m = WordMask::empty();
        assert!(m.is_empty());
        m.set(3);
        m.set(5);
        assert_eq!(m.count(), 2);
        assert!(m.get(3));
        assert!(!m.get(4));
        assert_eq!(m.iter_set().collect::<Vec<_>>(), vec![3, 5]);
        assert!(m.overlaps(WordMask::single(5)));
        assert!(!m.overlaps(WordMask::single(4)));
        assert_eq!(m.union(WordMask::single(4)).count(), 3);
        assert_eq!(m.intersect(WordMask::single(3)), WordMask::single(3));
        assert_eq!(m.minus(WordMask::single(3)), WordMask::single(5));
        assert_eq!(WordMask::full().minus(WordMask::full()), WordMask::empty());
        assert_eq!(WordMask::full().count(), 8);
    }

    #[test]
    fn block_buf_words_and_floats() {
        let mut b = BlockBuf::zeroed();
        b.set_word(0, 0xdeadbeef);
        assert_eq!(b.word(0), 0xdeadbeef);
        b.set_f32(3, 1.5);
        assert_eq!(b.f32(3), 1.5);
        b.set_f64(4, -2.25);
        assert_eq!(b.f64(4), -2.25);
        // f64 occupies words 4 and 5; word 6 untouched.
        assert_eq!(b.word(6), 0);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn block_buf_f64_odd_word_panics() {
        BlockBuf::zeroed().f64(3);
    }

    #[test]
    fn block_buf_merge_words() {
        let mut dst = BlockBuf::zeroed();
        let mut src = BlockBuf::zeroed();
        for w in 0..WORDS_PER_BLOCK {
            src.set_word(w, (w as u32 + 1) * 100);
        }
        let mut mask = WordMask::empty();
        mask.set(1);
        mask.set(6);
        dst.merge_words(&src, mask);
        assert_eq!(dst.word(1), 200);
        assert_eq!(dst.word(6), 700);
        assert_eq!(dst.word(0), 0);
        assert_eq!(dst.word(7), 0);
    }

    #[test]
    fn debug_impls_are_nonempty() {
        assert!(!format!("{:?}", Addr(4)).is_empty());
        assert!(!format!("{:?}", BlockId(4)).is_empty());
        assert!(!format!("{:?}", WordMask::single(2)).is_empty());
        assert!(!format!("{:?}", BlockBuf::zeroed()).is_empty());
    }
}

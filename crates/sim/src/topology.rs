//! Network topology and the link-contention model.
//!
//! The paper's numbers come from a real CM-5, whose data network is a
//! 4-ary fat tree: processors sit at the leaves, link bandwidth doubles
//! at each level toward the roots, and messages climb to the lowest
//! common ancestor of source and destination before descending. Under
//! load, latency on that fabric grows — messages serialize onto finite
//! links and queue behind traffic already in flight — which is exactly
//! the regime hotspot-heavy benchmarks (reductions, invalidation
//! storms) exercise.
//!
//! This module adds that regime to the simulation:
//!
//! * a [`Topology`] maps node pairs onto a path of links —
//!   [`Topology::FatTree`] (CM-5-shaped, the default), plus
//!   [`Topology::Crossbar`] and [`Topology::Flat`] ablation variants;
//! * a [`Fabric`] tracks per-link occupancy as a *backlog*: cycles of
//!   serialization work accepted but not yet drained. A message pays
//!   *serialization* — `bytes / link_bandwidth`, once, at its narrowest
//!   (most serialized) hop, wormhole style — plus *queueing*: at each
//!   hop it waits out the link's current backlog, then deposits its own
//!   serialization onto it. Each node's network interface is a pair of
//!   pseudo-links (tx/rx) paying `bytes / bandwidth` at width 1 plus a
//!   fixed [`CostModel::ni_occupancy`] handling charge per message, so
//!   an NI is a contention point even on an otherwise uncontended path.
//!
//! The model is **off by default**: with
//! [`CostModel::link_bandwidth_bytes_per_cycle`] `== 0` (unlimited
//! bandwidth, the [`CostModel::cm5`] default) no [`Fabric`] is built,
//! no cycles are charged, and delivery costs are byte-identical to the
//! flat per-message model. When enabled, contention cycles are charged
//! to the receiving node under [`crate::CycleCat::NetContention`], so
//! the ledger conservation invariant covers them by construction.
//!
//! Node clocks are only loosely synchronized (they drift apart between
//! barriers), so timestamps from different nodes are not directly
//! comparable. The backlog formulation is robust to that skew: a link
//! drains `t_new - t_last` cycles of backlog whenever a message carries
//! a *later* timestamp than the last one seen, and a message whose
//! clock lags simply neither drains nor pays for the skew — it queues
//! behind the accumulated serialization work only. The
//! [`CostModel::contention_window`] additionally caps the backlog any
//! single message can observe at one hop, bounding worst-case queueing.

use crate::cost::CostModel;
use crate::machine::NodeId;
use std::fmt;

/// Longest possible route: NI-tx, then up/down a binary tree over
/// [`crate::MAX_NODES`] nodes (`ceil(log2(MAX_NODES))` levels each
/// way), then NI-rx. Derived from the machine-size cap so kilonode
/// fat trees route without truncation.
const MAX_PATH: usize = 2 + 2 * (usize::BITS - (crate::MAX_NODES - 1).leading_zeros()) as usize;

/// How node pairs map onto network links.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A CM-5-style fat tree of the given arity: leaves are nodes,
    /// groups of `arity` share an up-link, and link width doubles per
    /// level toward the root. The CM-5's data network is 4-ary.
    FatTree {
        /// Children per internal switch (≥ 2).
        arity: usize,
    },
    /// A dedicated link per ordered node pair: contention arises only
    /// at the network interfaces. The "infinite fabric" ablation.
    Crossbar,
    /// One shared bus carrying all traffic. The "no fabric" ablation —
    /// an upper bound on contention.
    Flat,
}

impl Default for Topology {
    /// The CM-5's 4-ary fat tree.
    fn default() -> Topology {
        Topology::FatTree { arity: 4 }
    }
}

impl Topology {
    /// Short stable label (used in sweep CSVs).
    pub fn label(self) -> &'static str {
        match self {
            Topology::FatTree { .. } => "fat-tree",
            Topology::Crossbar => "crossbar",
            Topology::Flat => "flat",
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::FatTree { arity } => write!(f, "fat-tree/{arity}"),
            Topology::Crossbar => f.write_str("crossbar"),
            Topology::Flat => f.write_str("flat"),
        }
    }
}

/// Utilization of one link, harvested into run results and reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkUtil {
    /// Human-readable link name (e.g. `"fabric L1 g3"`, `"ni-tx n0"`).
    pub label: String,
    /// Messages that crossed the link.
    pub msgs: u64,
    /// Cycles the link spent serializing those messages.
    pub busy_cycles: u64,
    /// Cycles messages spent queued behind this link's reservations.
    pub queue_cycles: u64,
}

/// One link's backlog state and counters.
#[derive(Clone, Debug)]
struct Link {
    label: String,
    /// Serialization width multiplier; 0 marks an NI pseudo-link
    /// (width-1 byte rate plus the fixed `ni_occupancy` per message).
    width: u64,
    /// Undrained serialization work, in cycles.
    backlog: u64,
    /// Latest message timestamp seen; backlog drains by the timestamp
    /// advance between consecutive messages.
    last_seen: u64,
    msgs: u64,
    busy_cycles: u64,
    queue_cycles: u64,
}

impl Link {
    fn new(label: String, width: u64) -> Link {
        Link {
            label,
            width,
            backlog: 0,
            last_seen: 0,
            msgs: 0,
            busy_cycles: 0,
            queue_cycles: 0,
        }
    }
}

/// The contention-tracking network fabric of one simulated machine.
///
/// Built only when the cost model sets a finite link bandwidth; see the
/// module docs for the charging model.
#[derive(Clone, Debug)]
pub struct Fabric {
    topo: Topology,
    nodes: usize,
    bandwidth: u64,
    ni_occupancy: u64,
    window: u64,
    /// Fat-tree levels (0 for a single-node machine).
    levels: u32,
    /// Fabric-link index offset per fat-tree level (1-based levels).
    level_offsets: Vec<usize>,
    links: Vec<Link>,
}

impl Fabric {
    /// Builds the link table for `nodes` under `topo`, with serialization
    /// knobs taken from `cost`.
    ///
    /// # Panics
    /// Panics if `cost.link_bandwidth_bytes_per_cycle == 0` (an unlimited
    /// fabric has no reason to exist) or a fat-tree arity is < 2.
    pub fn new(topo: Topology, nodes: usize, cost: &CostModel) -> Fabric {
        assert!(
            cost.link_bandwidth_bytes_per_cycle > 0,
            "a contention fabric needs a finite link bandwidth"
        );
        // NI pseudo-links first: tx then rx per node.
        let mut links = Vec::new();
        for n in 0..nodes {
            links.push(Link::new(format!("ni-tx n{n}"), 0));
            links.push(Link::new(format!("ni-rx n{n}"), 0));
        }
        let mut levels = 0u32;
        let mut level_offsets = vec![0];
        match topo {
            Topology::FatTree { arity } => {
                assert!(arity >= 2, "a fat tree needs arity >= 2");
                // Smallest L with arity^L >= nodes.
                let mut span = 1usize;
                while span < nodes {
                    span = span.saturating_mul(arity);
                    levels += 1;
                }
                // Link (l, g) joins child group g (a level-(l-1) group)
                // to its level-l parent; width doubles per level.
                let mut child_groups = nodes;
                for l in 1..=levels {
                    level_offsets.push(links.len());
                    for c in 0..child_groups {
                        links.push(Link::new(format!("fabric L{l} g{c}"), 1 << (l - 1)));
                    }
                    child_groups = child_groups.div_ceil(arity);
                }
            }
            Topology::Crossbar => {
                level_offsets.push(links.len());
                for a in 0..nodes {
                    for b in 0..nodes {
                        links.push(Link::new(format!("xbar n{a}->n{b}"), 1));
                    }
                }
            }
            Topology::Flat => {
                level_offsets.push(links.len());
                links.push(Link::new("bus".to_string(), 1));
            }
        }
        Fabric {
            topo,
            nodes,
            bandwidth: cost.link_bandwidth_bytes_per_cycle,
            ni_occupancy: cost.ni_occupancy,
            window: cost.contention_window,
            levels,
            level_offsets,
            links,
        }
    }

    /// The topology this fabric implements.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Fat-tree levels (0 for single-node machines and flat variants).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Total links in the table (NI pseudo-links included).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Writes the link indices of the `from -> to` route into `path`,
    /// returning how many were written. NI-tx first, fabric hops, NI-rx
    /// last.
    fn route(&self, from: NodeId, to: NodeId, path: &mut [usize; MAX_PATH]) -> usize {
        let (a, b) = (from.index(), to.index());
        let mut n = 0;
        path[n] = 2 * a; // ni-tx
        n += 1;
        match self.topo {
            Topology::FatTree { arity } => {
                // Lowest common level: smallest l with equal level-l groups.
                let (mut ga, mut gb) = (a, b);
                let mut h = 0u32;
                while ga != gb {
                    ga /= arity;
                    gb /= arity;
                    h += 1;
                }
                // Up from a, then down to b. The level-l link of node x
                // is (l, x / arity^(l-1)).
                let mut g = a;
                for l in 1..=h {
                    path[n] = self.level_offsets[l as usize] + g;
                    n += 1;
                    g /= arity;
                }
                let mut down = [0usize; MAX_PATH];
                let mut dn = 0;
                let mut g = b;
                for l in 1..=h {
                    down[dn] = self.level_offsets[l as usize] + g;
                    dn += 1;
                    g /= arity;
                }
                for i in (0..dn).rev() {
                    path[n] = down[i];
                    n += 1;
                }
            }
            Topology::Crossbar => {
                path[n] = self.level_offsets[1] + a * self.nodes + b;
                n += 1;
            }
            Topology::Flat => {
                path[n] = self.level_offsets[1];
                n += 1;
            }
        }
        path[n] = 2 * b + 1; // ni-rx
        n + 1
    }

    /// Cycles `bytes` occupy link `li`.
    fn serialization(&self, li: usize, bytes: u64) -> u64 {
        let width = self.links[li].width;
        if width == 0 {
            // NI pseudo-link: width-1 injection rate plus the fixed
            // per-message handling charge.
            self.ni_occupancy + bytes.div_ceil(self.bandwidth)
        } else {
            bytes.div_ceil(self.bandwidth * width)
        }
    }

    /// Routes one `bytes`-sized message `from -> to` entering the
    /// network at cycle `now`, depositing serialization work onto every
    /// link on the path. Returns `(queue_cycles, serialization_cycles)`:
    /// the backlog waited out, summed over hops, and the single largest
    /// per-hop serialization (wormhole pipelining counts the narrowest
    /// hop once, not the sum).
    pub fn transfer(&mut self, from: NodeId, to: NodeId, bytes: u64, now: u64) -> (u64, u64) {
        debug_assert_ne!(from, to, "self-sends never enter the network");
        let mut path = [0usize; MAX_PATH];
        let hops = self.route(from, to, &mut path);
        let mut t = now;
        let mut queue = 0u64;
        let mut ser_max = 0u64;
        for &li in &path[..hops] {
            let ser = self.serialization(li, bytes);
            let link = &mut self.links[li];
            // Backlog drains one cycle per cycle of timestamp advance.
            // A message whose clock lags the last one seen (skewed node
            // clocks) neither drains nor pays for the skew.
            if t > link.last_seen {
                link.backlog = link.backlog.saturating_sub(t - link.last_seen);
                link.last_seen = t;
            }
            let wait = link.backlog.min(self.window);
            link.backlog += ser;
            link.msgs += 1;
            link.busy_cycles += ser;
            link.queue_cycles += wait;
            queue += wait;
            t += wait;
            ser_max = ser_max.max(ser);
        }
        (queue, ser_max)
    }

    /// Per-link utilization, links with traffic only, table order
    /// (NI pairs by node, then fabric links by level/group).
    pub fn utilization(&self) -> Vec<LinkUtil> {
        self.links
            .iter()
            .filter(|l| l.msgs > 0)
            .map(|l| LinkUtil {
                label: l.label.clone(),
                msgs: l.msgs,
                busy_cycles: l.busy_cycles,
                queue_cycles: l.queue_cycles,
            })
            .collect()
    }

    /// Zeroes backlogs and counters (clocks restart from zero between
    /// warm-up and measurement).
    pub fn reset(&mut self) {
        for l in &mut self.links {
            l.backlog = 0;
            l.last_seen = 0;
            l.msgs = 0;
            l.busy_cycles = 0;
            l.queue_cycles = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(bw: u64, ni: u64, window: u64) -> CostModel {
        let mut c = CostModel::cm5();
        c.link_bandwidth_bytes_per_cycle = bw;
        c.ni_occupancy = ni;
        c.contention_window = window;
        c
    }

    #[test]
    #[should_panic(expected = "finite link bandwidth")]
    fn unlimited_bandwidth_cannot_build_a_fabric() {
        Fabric::new(Topology::default(), 4, &CostModel::cm5());
    }

    #[test]
    fn fat_tree_link_table_shape() {
        // 16 nodes, arity 4: 2 levels; 4 level-1 links + ... wait, level
        // 1 has 16 child groups (each node its own level-0 group), level
        // 2 has 4. Plus 32 NI pseudo-links.
        let f = Fabric::new(Topology::FatTree { arity: 4 }, 16, &cost(4, 0, 1000));
        assert_eq!(f.levels(), 2);
        assert_eq!(f.link_count(), 32 + 16 + 4);
    }

    #[test]
    fn fat_tree_routes_via_lowest_common_ancestor() {
        let mut f = Fabric::new(Topology::FatTree { arity: 4 }, 16, &cost(4, 0, 1000));
        let mut path = [0usize; MAX_PATH];
        // Same level-1 group (0 and 3): one hop up, one down.
        let n = f.route(NodeId(0), NodeId(3), &mut path);
        assert_eq!(n, 4, "ni-tx, L1 up, L1 down, ni-rx");
        assert_eq!(path[0], 0, "ni-tx n0");
        assert_eq!(path[n - 1], 7, "ni-rx n3");
        // Distant pair (0 and 15): climbs both levels.
        let n = f.route(NodeId(0), NodeId(15), &mut path);
        assert_eq!(n, 6, "ni-tx, L1, L2, L2, L1, ni-rx");
        // The two directions of one pair share fabric links.
        let mut fwd = [0usize; MAX_PATH];
        let mut rev = [0usize; MAX_PATH];
        let nf = f.route(NodeId(2), NodeId(9), &mut fwd);
        let nr = f.route(NodeId(9), NodeId(2), &mut rev);
        let mid_f: Vec<usize> = fwd[1..nf - 1].to_vec();
        let mut mid_r: Vec<usize> = rev[1..nr - 1].to_vec();
        mid_r.reverse();
        assert_eq!(mid_f, mid_r, "fabric path is symmetric");
        // Route never mutates reservations.
        assert_eq!(f.transfer(NodeId(0), NodeId(3), 64, 0).0, 0);
    }

    #[test]
    fn serialization_counts_the_narrowest_hop_once() {
        // bw 4 B/cycle, 64-byte message: leaf links (width 1) need 16
        // cycles, level-2 links (width 2) need 8. Wormhole charge: 16.
        let mut f = Fabric::new(Topology::FatTree { arity: 4 }, 16, &cost(4, 0, 10_000));
        let (queue, ser) = f.transfer(NodeId(0), NodeId(15), 64, 0);
        assert_eq!(queue, 0, "empty fabric: no queueing");
        assert_eq!(ser, 16, "narrowest-hop serialization, once");
    }

    #[test]
    fn queueing_builds_behind_backlog_and_drains_with_time() {
        let mut f = Fabric::new(Topology::Flat, 4, &cost(1, 0, 100_000));
        // 32-byte messages on a 1 B/cycle bus: 32 cycles each.
        let (q1, s1) = f.transfer(NodeId(0), NodeId(1), 32, 0);
        assert_eq!((q1, s1), (0, 32));
        // Second message at the same instant queues behind the first.
        let (q2, s2) = f.transfer(NodeId(2), NodeId(3), 32, 0);
        assert_eq!((q2, s2), (32, 32));
        // 64 cycles later both deposits have drained away.
        let (q3, _) = f.transfer(NodeId(0), NodeId(3), 32, 64);
        assert_eq!(q3, 0);
    }

    #[test]
    fn lagging_clocks_neither_drain_nor_pay_for_skew() {
        let mut f = Fabric::new(Topology::Flat, 4, &cost(1, 0, 100_000));
        // A message stamped far in the future loads the bus...
        let (q1, _) = f.transfer(NodeId(0), NodeId(1), 32, 1_000_000);
        assert_eq!(q1, 0);
        // ...and one from a node whose clock lags queues behind the 32
        // cycles of deposited work — not the million cycles of skew.
        let (q2, _) = f.transfer(NodeId(2), NodeId(3), 32, 5);
        assert_eq!(q2, 32, "skew is not queueing");
    }

    #[test]
    fn contention_window_caps_observable_backlog() {
        let mut f = Fabric::new(Topology::Flat, 4, &cost(1, 0, 40));
        // Pile four 32-cycle messages onto the bus at t=0, each from a
        // fresh sender/receiver pair so only the bus contends; uncapped,
        // the last would wait 96 cycles, but the window bounds the
        // backlog any one message observes at 40.
        let mut last_q = 0;
        for i in 0..4u16 {
            let (q, _) = f.transfer(NodeId(i), NodeId((i + 1) % 4), 32, 0);
            last_q = q;
        }
        assert_eq!(last_q, 40, "queueing clamped to the window");
    }

    #[test]
    fn ni_occupancy_serializes_a_hotspot_receiver() {
        // Crossbar: dedicated pair links, so only the NIs contend. All
        // nodes hammer node 0 at t=0. A 16-byte message at 1000 B/cycle
        // costs 1 cycle of injection plus the 10-cycle handling charge.
        let mut f = Fabric::new(Topology::Crossbar, 4, &cost(1000, 10, 100_000));
        let (q1, s1) = f.transfer(NodeId(1), NodeId(0), 16, 0);
        assert_eq!((q1, s1), (0, 11), "first message pays its NI cost only");
        let (q2, _) = f.transfer(NodeId(2), NodeId(0), 16, 0);
        let (q3, _) = f.transfer(NodeId(3), NodeId(0), 16, 0);
        assert_eq!(q2, 11, "second queues behind node 0's rx NI");
        assert_eq!(q3, 22, "third waits for both predecessors");
    }

    #[test]
    fn utilization_reports_only_used_links_and_resets() {
        let mut f = Fabric::new(Topology::FatTree { arity: 4 }, 16, &cost(4, 5, 1000));
        f.transfer(NodeId(0), NodeId(3), 64, 0);
        let util = f.utilization();
        assert!(!util.is_empty());
        assert!(util.iter().any(|u| u.label == "ni-tx n0"));
        assert!(util.iter().any(|u| u.label.starts_with("fabric L1")));
        assert!(util.iter().all(|u| u.msgs > 0));
        let busy: u64 = util.iter().map(|u| u.busy_cycles).sum();
        assert!(busy > 0);
        f.reset();
        assert!(f.utilization().is_empty(), "reset clears counters");
        let (q, _) = f.transfer(NodeId(0), NodeId(3), 64, 0);
        assert_eq!(q, 0, "reset clears reservations");
    }

    #[test]
    fn topology_labels_and_default() {
        assert_eq!(Topology::default(), Topology::FatTree { arity: 4 });
        assert_eq!(Topology::default().label(), "fat-tree");
        assert_eq!(format!("{}", Topology::FatTree { arity: 4 }), "fat-tree/4");
        assert_eq!(Topology::Flat.to_string(), "flat");
        assert_eq!(Topology::Crossbar.label(), "crossbar");
    }

    #[test]
    fn single_node_machines_build_zero_level_trees() {
        let f = Fabric::new(Topology::FatTree { arity: 4 }, 1, &cost(4, 0, 0));
        assert_eq!(f.levels(), 0);
        assert_eq!(f.link_count(), 2, "just the NI pair");
    }

    #[test]
    fn binary_fat_tree_over_64_nodes_fits_max_path() {
        let mut f = Fabric::new(Topology::FatTree { arity: 2 }, 64, &cost(1, 1, 1000));
        assert_eq!(f.levels(), 6);
        // The most distant pair exercises the deepest route.
        let (q, s) = f.transfer(NodeId(0), NodeId(63), 48, 0);
        assert_eq!(q, 0);
        assert!(s >= 1);
    }

    #[test]
    fn binary_fat_tree_over_1024_nodes_fits_max_path() {
        // The deepest tree the machine cap allows: arity 2 over
        // MAX_NODES leaves needs 10 levels each way, and MAX_PATH is
        // derived to fit exactly that plus the NI pair.
        assert_eq!(MAX_PATH, 22);
        let mut f = Fabric::new(
            Topology::FatTree { arity: 2 },
            crate::MAX_NODES,
            &cost(1, 1, 1000),
        );
        assert_eq!(f.levels(), 10);
        let (q, s) = f.transfer(NodeId(0), NodeId(1023), 48, 0);
        assert_eq!(q, 0);
        assert!(s >= 1);
    }

    #[test]
    fn cm5_fat_tree_routes_at_kilonode_scale() {
        let mut f = Fabric::new(Topology::FatTree { arity: 4 }, 1000, &cost(4, 0, 1000));
        assert_eq!(f.levels(), 5);
        // Cross-root route between non-power-of-arity distant leaves.
        let (q, s) = f.transfer(NodeId(3), NodeId(997), 64, 0);
        assert_eq!(q, 0);
        assert!(s >= 1);
        // A second message right behind it queues.
        let (q2, _) = f.transfer(NodeId(3), NodeId(997), 64, 0);
        assert!(q2 > 0);
    }
}

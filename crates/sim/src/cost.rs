//! The parameterized cost model.
//!
//! Every protocol event in the simulation charges cycles to the node(s)
//! involved, according to a [`CostModel`]. The default constants are shaped
//! after the paper's platform — Blizzard-E on a 32-node Thinking Machines
//! CM-5, where a fine-grain access fault plus a remote round-trip costs on
//! the order of hundreds of processor cycles, while a hit is a plain cached
//! load. Absolute values are knobs, not measurements: the reproduction
//! targets the *shape* of the paper's results, and every experiment can be
//! re-run under a different model.

/// Cycle costs charged for memory-system events.
///
/// ```
/// use lcm_sim::CostModel;
/// let mut cm = CostModel::cm5();
/// cm.remote_miss = 10_000; // explore a slower network
/// assert!(cm.remote_miss > cm.local_fill);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// A load or store that hits a valid, sufficiently-permissioned block.
    pub cache_hit: u64,
    /// A *fault-serviced* fill from node-local storage (the Stache in
    /// local memory, or a home-local clean copy). Dominated by the
    /// fine-grain access-fault trap, which on Blizzard-E costs hundreds of
    /// cycles even when no network round-trip is needed.
    pub local_fill: u64,
    /// Reinitializing a cached block from a node-local clean copy *inside
    /// an already-running handler* (the LCM-mcc flush path): a 32-byte
    /// copy, no trap, no messages.
    pub local_refill: u64,
    /// A full remote round-trip: fault, request message, home handler,
    /// data reply (block transfer included).
    pub remote_miss: u64,
    /// Sender-side overhead of one protocol message.
    pub msg_send: u64,
    /// Receiver-side handler overhead of one protocol message.
    pub msg_recv: u64,
    /// Sending one modified block home at `flush_copies` time (on top of
    /// `msg_send`; covers assembling the block + dirty mask).
    pub block_flush: u64,
    /// Creating a clean copy of a block (home- or cache-side).
    pub clean_copy_create: u64,
    /// Home-side work to reconcile one arriving version of a block.
    pub reconcile_per_version: u64,
    /// Fixed cost of a global barrier.
    pub barrier_base: u64,
    /// Additional barrier cost per `log2(P)` combining-tree level.
    pub barrier_per_level: u64,
    /// Processing one invalidation request at a sharer.
    pub invalidate: u64,
    /// Upgrading a ReadOnly copy to Writable (ownership round-trip, no data).
    pub upgrade: u64,
    /// Base retransmission timeout: how long a sender waits before deciding
    /// a message was lost. Doubles per consecutive retry (exponential
    /// backoff, capped). Only charged under fault injection.
    pub retry_timeout: u64,
    /// Wire-format header bytes per protocol message (source, destination,
    /// kind, block address). Block-carrying messages add the 32-byte block
    /// payload on top. Feeds the `bytes_sent`/`bytes_recv` traffic
    /// counters, not the clocks.
    pub msg_header_bytes: u64,
    /// Bytes per cycle a leaf network link moves; fat-tree links at
    /// level `l` are `2^(l-1)`× wider (see [`crate::topology`]).
    /// **0 means unlimited bandwidth**: no contention fabric is built
    /// and message delivery charges only the flat per-message costs
    /// above — byte-identical to the pre-contention model. This is the
    /// default in every built-in model.
    pub link_bandwidth_bytes_per_cycle: u64,
    /// Fixed handling cycles a node's network interface spends per
    /// message it injects or drains (LogP-style occupancy), on top of
    /// moving the bytes at width-1 link rate: an NI is a contention
    /// point even when the fabric path is idle. Dormant while
    /// `link_bandwidth_bytes_per_cycle == 0`.
    pub ni_occupancy: u64,
    /// Upper bound (in cycles) on the serialization backlog any single
    /// message can observe at one link when computing queueing delay.
    /// Backlog drains as message timestamps advance, but a hotspot can
    /// accumulate faster than it drains; the window bounds the
    /// worst-case wait charged per hop. Dormant while
    /// `link_bandwidth_bytes_per_cycle == 0`.
    pub contention_window: u64,
}

impl CostModel {
    /// Constants shaped after Blizzard-E on the CM-5 (see module docs).
    ///
    /// Blizzard-E services fine-grain access faults with ECC traps and
    /// software handlers, so even a *local* fill costs on the order of a
    /// thousand 33 MHz cycles and a remote round-trip several thousand —
    /// misses dominate everything, which is what the paper's results are
    /// made of.
    pub fn cm5() -> CostModel {
        CostModel {
            cache_hit: 1,
            local_fill: 1000,
            local_refill: 100,
            remote_miss: 3000,
            msg_send: 200,
            msg_recv: 200,
            block_flush: 100,
            clean_copy_create: 100,
            reconcile_per_version: 100,
            barrier_base: 800,
            barrier_per_level: 100,
            invalidate: 200,
            upgrade: 2000,
            // A timeout must comfortably exceed the remote round-trip it
            // guards, or healthy messages would be retransmitted.
            retry_timeout: 6000,
            // A CM-5 active-message-style envelope: src/dst/kind/address.
            msg_header_bytes: 16,
            // Unlimited by default: today's flat per-message charges,
            // byte for byte. Sweeps enable contention by setting a
            // finite bandwidth; the NI occupancy and window below then
            // take effect (and are shaped for a ~25-cycle injection
            // overhead and a backlog horizon of two retry timeouts).
            link_bandwidth_bytes_per_cycle: 0,
            ni_occupancy: 25,
            contention_window: 12_000,
        }
    }

    /// A cost model that charges one cycle for everything.
    ///
    /// Useful in tests that want to count *events* rather than weigh them.
    pub fn unit() -> CostModel {
        CostModel {
            cache_hit: 1,
            local_fill: 1,
            local_refill: 1,
            remote_miss: 1,
            msg_send: 1,
            msg_recv: 1,
            block_flush: 1,
            clean_copy_create: 1,
            reconcile_per_version: 1,
            barrier_base: 1,
            barrier_per_level: 0,
            invalidate: 1,
            upgrade: 1,
            retry_timeout: 1,
            msg_header_bytes: 1,
            link_bandwidth_bytes_per_cycle: 0,
            ni_occupancy: 0,
            contention_window: 0,
        }
    }

    /// A cost model that charges zero for everything; execution time then
    /// reflects only explicitly-charged compute cycles.
    pub fn free() -> CostModel {
        CostModel {
            cache_hit: 0,
            local_fill: 0,
            local_refill: 0,
            remote_miss: 0,
            msg_send: 0,
            msg_recv: 0,
            block_flush: 0,
            clean_copy_create: 0,
            reconcile_per_version: 0,
            barrier_base: 0,
            barrier_per_level: 0,
            invalidate: 0,
            upgrade: 0,
            retry_timeout: 0,
            msg_header_bytes: 0,
            link_bandwidth_bytes_per_cycle: 0,
            ni_occupancy: 0,
            contention_window: 0,
        }
    }

    /// `self` with the remote-miss latency replaced and `upgrade` scaled
    /// to ⅔ of it (floored at 1) — the one latency → cost-model mapping
    /// every sweep (sensitivity, explore, serve) shares, so the sections
    /// can never silently diverge.
    ///
    /// The ⅔ ratio mirrors cm5, where an ownership round-trip without a
    /// data reply costs about two-thirds of a full remote miss.
    pub fn with_remote_latency(mut self, latency: u64) -> CostModel {
        self.remote_miss = latency;
        self.upgrade = (latency * 2 / 3).max(1);
        self
    }

    /// `self` with the leaf link bandwidth replaced (0 = unlimited, the
    /// dormant default) — the bandwidth → cost-model mapping shared by
    /// the contention, explore and serve sweeps.
    pub fn with_link_bandwidth(mut self, bandwidth: u64) -> CostModel {
        self.link_bandwidth_bytes_per_cycle = bandwidth;
        self
    }

    /// The cm5 model at one (bandwidth, latency) grid point: the single
    /// mapping behind every design-space grid in the repository.
    pub fn cm5_grid(bandwidth: u64, latency: u64) -> CostModel {
        CostModel::cm5()
            .with_remote_latency(latency)
            .with_link_bandwidth(bandwidth)
    }

    /// Total barrier cost for a machine of `nodes` processors: the base
    /// plus one per-level charge for each of the combining tree's
    /// `ceil(log2(nodes))` levels. A tree over 3 leaves needs 2 levels,
    /// same as one over 4 — non-power-of-two machines round *up*.
    pub fn barrier_cost(&self, nodes: usize) -> u64 {
        let levels = usize::BITS - (nodes.max(1) - 1).leading_zeros(); // ceil(log2)
        self.barrier_base + self.barrier_per_level * u64::from(levels)
    }
}

impl Default for CostModel {
    /// The default model is [`CostModel::cm5`].
    fn default() -> CostModel {
        CostModel::cm5()
    }
}

/// Symbolic reference to a [`CostModel`] price: the *formula* a charge
/// used, rather than the cycles it came to under the capture-time model.
///
/// Charges recorded as `(knob, units)` pairs stay re-priceable: the
/// trace-replay engine evaluates the same knob against an arbitrary cost
/// model and recovers the cycles that execution *would have* charged.
/// Each variant maps onto one model field — except
/// [`Knob::RemoteMissLessSend`], which captures the reply leg of a
/// request/reply round-trip (`remote_miss - msg_send`, saturating), a
/// composite the delivery layer charges as one quantity.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Knob {
    /// [`CostModel::cache_hit`].
    CacheHit,
    /// [`CostModel::local_fill`].
    LocalFill,
    /// [`CostModel::local_refill`].
    LocalRefill,
    /// [`CostModel::remote_miss`].
    RemoteMiss,
    /// [`CostModel::msg_send`].
    MsgSend,
    /// [`CostModel::msg_recv`].
    MsgRecv,
    /// [`CostModel::block_flush`].
    BlockFlush,
    /// [`CostModel::clean_copy_create`].
    CleanCopyCreate,
    /// [`CostModel::reconcile_per_version`].
    ReconcilePerVersion,
    /// [`CostModel::invalidate`].
    Invalidate,
    /// [`CostModel::upgrade`].
    Upgrade,
    /// [`CostModel::retry_timeout`] (backoff doubling is expressed in the
    /// charge's `units`, so the knob itself stays linear).
    RetryTimeout,
    /// `remote_miss - msg_send`, saturating: the requester's stall for
    /// the reply leg of a round-trip whose request overhead was already
    /// charged separately.
    RemoteMissLessSend,
}

impl Knob {
    /// Number of knobs.
    pub const COUNT: usize = 13;

    /// All knobs, in [`Knob::index`] order.
    pub fn all() -> [Knob; Knob::COUNT] {
        [
            Knob::CacheHit,
            Knob::LocalFill,
            Knob::LocalRefill,
            Knob::RemoteMiss,
            Knob::MsgSend,
            Knob::MsgRecv,
            Knob::BlockFlush,
            Knob::CleanCopyCreate,
            Knob::ReconcilePerVersion,
            Knob::Invalidate,
            Knob::Upgrade,
            Knob::RetryTimeout,
            Knob::RemoteMissLessSend,
        ]
    }

    /// Dense, stable index (`0..COUNT`) — part of the `.lcmtrace` wire
    /// format, so existing variants must never be renumbered.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Knob::CacheHit => 0,
            Knob::LocalFill => 1,
            Knob::LocalRefill => 2,
            Knob::RemoteMiss => 3,
            Knob::MsgSend => 4,
            Knob::MsgRecv => 5,
            Knob::BlockFlush => 6,
            Knob::CleanCopyCreate => 7,
            Knob::ReconcilePerVersion => 8,
            Knob::Invalidate => 9,
            Knob::Upgrade => 10,
            Knob::RetryTimeout => 11,
            Knob::RemoteMissLessSend => 12,
        }
    }

    /// The knob with [`Knob::index`] `idx`, if in range.
    pub fn from_index(idx: usize) -> Option<Knob> {
        Knob::all().get(idx).copied()
    }

    /// Short stable label.
    pub fn label(self) -> &'static str {
        match self {
            Knob::CacheHit => "cache_hit",
            Knob::LocalFill => "local_fill",
            Knob::LocalRefill => "local_refill",
            Knob::RemoteMiss => "remote_miss",
            Knob::MsgSend => "msg_send",
            Knob::MsgRecv => "msg_recv",
            Knob::BlockFlush => "block_flush",
            Knob::CleanCopyCreate => "clean_copy_create",
            Knob::ReconcilePerVersion => "reconcile_per_version",
            Knob::Invalidate => "invalidate",
            Knob::Upgrade => "upgrade",
            Knob::RetryTimeout => "retry_timeout",
            Knob::RemoteMissLessSend => "remote_miss_less_send",
        }
    }

    /// Cycles one unit of this knob costs under `c`.
    #[inline]
    pub fn eval(self, c: &CostModel) -> u64 {
        match self {
            Knob::CacheHit => c.cache_hit,
            Knob::LocalFill => c.local_fill,
            Knob::LocalRefill => c.local_refill,
            Knob::RemoteMiss => c.remote_miss,
            Knob::MsgSend => c.msg_send,
            Knob::MsgRecv => c.msg_recv,
            Knob::BlockFlush => c.block_flush,
            Knob::CleanCopyCreate => c.clean_copy_create,
            Knob::ReconcilePerVersion => c.reconcile_per_version,
            Knob::Invalidate => c.invalidate,
            Knob::Upgrade => c.upgrade,
            Knob::RetryTimeout => c.retry_timeout,
            Knob::RemoteMissLessSend => c.remote_miss.saturating_sub(c.msg_send),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cm5() {
        assert_eq!(CostModel::default(), CostModel::cm5());
    }

    #[test]
    fn cm5_orderings_hold() {
        let c = CostModel::cm5();
        assert!(c.cache_hit < c.local_refill);
        assert!(c.local_refill < c.local_fill);
        assert!(c.local_fill < c.remote_miss);
        assert!(c.upgrade < c.remote_miss);
        assert!(
            c.retry_timeout > c.remote_miss,
            "timeouts outlast healthy round-trips"
        );
    }

    #[test]
    fn barrier_cost_grows_logarithmically() {
        let c = CostModel::cm5();
        let b1 = c.barrier_cost(1);
        let b2 = c.barrier_cost(2);
        let b32 = c.barrier_cost(32);
        assert_eq!(b1, c.barrier_base);
        assert_eq!(b2, c.barrier_base + c.barrier_per_level);
        assert_eq!(b32, c.barrier_base + 5 * c.barrier_per_level);
        // Non-power-of-two machines round the combining tree *up*: a
        // tree over 3 leaves needs 2 levels (floor(log2) undercounted
        // this as 1), over 5 leaves 3, and crossing a power of two adds
        // exactly one level.
        assert_eq!(c.barrier_cost(3), c.barrier_base + 2 * c.barrier_per_level);
        assert_eq!(c.barrier_cost(4), c.barrier_cost(3), "3 and 4 leaves tie");
        assert_eq!(c.barrier_cost(5), c.barrier_base + 3 * c.barrier_per_level);
        assert_eq!(
            c.barrier_cost(17),
            c.barrier_base + 5 * c.barrier_per_level,
            "17 leaves need the same 5-level tree as 32"
        );
        assert_eq!(
            c.barrier_cost(33),
            c.barrier_base + 6 * c.barrier_per_level,
            "one leaf past 32 adds a level"
        );
    }

    #[test]
    fn unit_and_free_models() {
        assert_eq!(CostModel::unit().remote_miss, 1);
        assert_eq!(CostModel::free().barrier_cost(32), 0);
    }

    #[test]
    fn knob_indices_are_dense_and_eval_matches_fields() {
        let c = CostModel::cm5();
        for (i, k) in Knob::all().iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(Knob::from_index(i), Some(*k));
        }
        assert_eq!(Knob::from_index(Knob::COUNT), None);
        let labels: std::collections::HashSet<_> = Knob::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), Knob::COUNT, "labels are unique");
        assert_eq!(Knob::RemoteMiss.eval(&c), c.remote_miss);
        assert_eq!(
            Knob::RemoteMissLessSend.eval(&c),
            c.remote_miss - c.msg_send
        );
        // Saturation: a model where the send overhead exceeds the
        // round-trip must not wrap.
        let mut odd = CostModel::free();
        odd.msg_send = 10;
        assert_eq!(Knob::RemoteMissLessSend.eval(&odd), 0);
    }

    #[test]
    fn grid_mapping_is_pinned() {
        let c = CostModel::cm5_grid(16, 12_000);
        assert_eq!(c.remote_miss, 12_000);
        assert_eq!(c.upgrade, 8_000);
        assert_eq!(c.link_bandwidth_bytes_per_cycle, 16);
        // Everything else stays cm5.
        let mut cm5 = CostModel::cm5();
        cm5.remote_miss = c.remote_miss;
        cm5.upgrade = c.upgrade;
        cm5.link_bandwidth_bytes_per_cycle = c.link_bandwidth_bytes_per_cycle;
        assert_eq!(c, cm5);
        // The upgrade ratio floors at 1 so a zero-latency grid point
        // cannot produce a free ownership round-trip.
        assert_eq!(CostModel::cm5().with_remote_latency(0).upgrade, 1);
        assert_eq!(CostModel::cm5().with_remote_latency(1).upgrade, 1);
    }

    #[test]
    fn contention_is_off_in_every_builtin_model() {
        for c in [CostModel::cm5(), CostModel::unit(), CostModel::free()] {
            assert_eq!(
                c.link_bandwidth_bytes_per_cycle, 0,
                "built-in models must reproduce the flat-cost network"
            );
        }
    }
}

//! Cycle attribution: the [`CycleLedger`] and per-phase snapshots.
//!
//! The paper's argument rests on *where cycles go* — miss stalls, message
//! round-trips, clean-copy creation, reconciliation — so the machine
//! attributes every cycle it charges to a [`CycleCat`] category. The
//! ledger is conservation-checked: for every node, the category sums must
//! equal the node's clock (see [`CycleLedger::check_against`]); the
//! sanitizer asserts this at harvest time.
//!
//! Attribution is *by construction*: every clock mutation routes through
//! [`crate::Machine::advance_as`] (or the barrier path, which attributes
//! the synchronization jump itself), so the invariant cannot drift as
//! protocols evolve.

use crate::machine::NodeId;
use crate::stats::NodeStats;

/// Category a simulated cycle is attributed to.
///
/// Categories partition a node's clock: at any instant, each node's cycles
/// split exactly across these buckets.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CycleCat {
    /// Application compute, invocation overhead, and cache hits — cycles
    /// the memory system did not add.
    Compute,
    /// Load-miss stall serviced from node-local storage (fault trap, no
    /// network).
    ReadStallLocal,
    /// Load-miss stall including a remote round-trip.
    ReadStallRemote,
    /// Store-miss stall serviced from node-local storage.
    WriteStallLocal,
    /// Store-miss stall including a remote round-trip.
    WriteStallRemote,
    /// Ownership-upgrade stall (ReadOnly → Writable).
    UpgradeStall,
    /// Message send/receive handler overhead not part of a requester's
    /// miss stall (home-side handlers, invalidations, one-way sends).
    MsgOverhead,
    /// Waiting at a global barrier for slower nodes (the synchronization
    /// jump plus the barrier's own cost).
    BarrierWait,
    /// LCM bookkeeping: clean-copy creation, block flushes,
    /// reconciliation, local refills, stale refreshes.
    FlushReconcile,
    /// Retransmission timeouts, exponential backoff, wasted sends and
    /// injected stalls from the fault layer. Zero on a reliable network.
    RetryBackoff,
    /// Serialization onto and queueing behind finite network links
    /// (fat-tree fabric hops plus NI occupancy; see
    /// [`crate::topology`]). Zero while the cost model's link bandwidth
    /// is unlimited — the default.
    NetContention,
    /// Capturing recovery state at a phase boundary: flushing dirty data
    /// home and persisting the checkpoint image. Zero unless a crash
    /// schedule is active.
    Checkpoint,
    /// Re-executing work a crashed node lost since its last checkpoint,
    /// plus restoring its protocol state from that checkpoint. Zero
    /// unless a crash schedule is active.
    Rollback,
    /// Surviving nodes detecting a peer's fail-stop crash (timeout
    /// expiry and membership agreement). Zero unless a crash schedule is
    /// active.
    CrashDetect,
}

impl CycleCat {
    /// Number of categories.
    pub const COUNT: usize = 14;

    /// All categories, in display order.
    pub fn all() -> [CycleCat; CycleCat::COUNT] {
        [
            CycleCat::Compute,
            CycleCat::ReadStallLocal,
            CycleCat::ReadStallRemote,
            CycleCat::WriteStallLocal,
            CycleCat::WriteStallRemote,
            CycleCat::UpgradeStall,
            CycleCat::MsgOverhead,
            CycleCat::BarrierWait,
            CycleCat::FlushReconcile,
            CycleCat::RetryBackoff,
            CycleCat::NetContention,
            CycleCat::Checkpoint,
            CycleCat::Rollback,
            CycleCat::CrashDetect,
        ]
    }

    /// Dense index of the category (`0..COUNT`).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            CycleCat::Compute => 0,
            CycleCat::ReadStallLocal => 1,
            CycleCat::ReadStallRemote => 2,
            CycleCat::WriteStallLocal => 3,
            CycleCat::WriteStallRemote => 4,
            CycleCat::UpgradeStall => 5,
            CycleCat::MsgOverhead => 6,
            CycleCat::BarrierWait => 7,
            CycleCat::FlushReconcile => 8,
            CycleCat::RetryBackoff => 9,
            CycleCat::NetContention => 10,
            CycleCat::Checkpoint => 11,
            CycleCat::Rollback => 12,
            CycleCat::CrashDetect => 13,
        }
    }

    /// Short stable label (used in the profile CSV and report).
    pub fn label(self) -> &'static str {
        match self {
            CycleCat::Compute => "compute",
            CycleCat::ReadStallLocal => "read_stall_local",
            CycleCat::ReadStallRemote => "read_stall_remote",
            CycleCat::WriteStallLocal => "write_stall_local",
            CycleCat::WriteStallRemote => "write_stall_remote",
            CycleCat::UpgradeStall => "upgrade_stall",
            CycleCat::MsgOverhead => "msg_overhead",
            CycleCat::BarrierWait => "barrier_wait",
            CycleCat::FlushReconcile => "flush_reconcile",
            CycleCat::RetryBackoff => "retry_backoff",
            CycleCat::NetContention => "net_contention",
            CycleCat::Checkpoint => "checkpoint",
            CycleCat::Rollback => "rollback",
            CycleCat::CrashDetect => "crash_detect",
        }
    }
}

impl std::fmt::Display for CycleCat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-node, per-category cycle totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CycleLedger {
    cells: Vec<[u64; CycleCat::COUNT]>,
}

impl CycleLedger {
    /// A zeroed ledger for `nodes` processors.
    pub fn new(nodes: usize) -> CycleLedger {
        CycleLedger {
            cells: vec![[0; CycleCat::COUNT]; nodes],
        }
    }

    /// Number of nodes tracked.
    pub fn nodes(&self) -> usize {
        self.cells.len()
    }

    /// Attributes `cycles` on `node` to `cat`.
    #[inline]
    pub fn charge(&mut self, node: NodeId, cat: CycleCat, cycles: u64) {
        self.cells[node.index()][cat.index()] += cycles;
    }

    /// Cycles attributed to `cat` on `node`.
    #[inline]
    pub fn get(&self, node: NodeId, cat: CycleCat) -> u64 {
        self.cells[node.index()][cat.index()]
    }

    /// Sum of all categories on `node` — must equal the node's clock.
    pub fn node_total(&self, node: NodeId) -> u64 {
        self.cells[node.index()].iter().sum()
    }

    /// Cycles attributed to `cat` summed over all nodes.
    pub fn cat_total(&self, cat: CycleCat) -> u64 {
        self.cells.iter().map(|c| c[cat.index()]).sum()
    }

    /// Per-category totals summed over all nodes, in [`CycleCat::all`] order.
    pub fn totals(&self) -> [u64; CycleCat::COUNT] {
        let mut t = [0; CycleCat::COUNT];
        for c in &self.cells {
            for (acc, v) in t.iter_mut().zip(c) {
                *acc += v;
            }
        }
        t
    }

    /// Zeroes every cell, keeping the node count.
    pub fn clear(&mut self) {
        for c in &mut self.cells {
            *c = [0; CycleCat::COUNT];
        }
    }

    /// Conservation check: every node's category sum must equal its clock.
    /// Returns the first violating `(node, ledger_sum, clock)` if any.
    pub fn check_against(&self, clocks: &[u64]) -> Result<(), (NodeId, u64, u64)> {
        assert_eq!(self.cells.len(), clocks.len(), "ledger/machine node count");
        for (i, &clock) in clocks.iter().enumerate() {
            let node = NodeId(i as u16);
            let sum = self.node_total(node);
            if sum != clock {
                return Err((node, sum, clock));
            }
        }
        Ok(())
    }
}

/// A cumulative snapshot taken at a phase boundary (a barrier epoch /
/// parallel step). Consumers difference consecutive snapshots to get
/// per-phase metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// What ended at this boundary (e.g. `"init"`, `"apply"`).
    pub label: &'static str,
    /// Simulated time (max node clock) at the boundary.
    pub at: u64,
    /// Cumulative all-node statistics at the boundary.
    pub totals: NodeStats,
    /// Cumulative per-category cycle totals (all nodes) at the boundary,
    /// in [`CycleCat::all`] order.
    pub cycles: [u64; CycleCat::COUNT],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_indices_are_dense_and_stable() {
        for (i, cat) in CycleCat::all().iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
        let labels: std::collections::HashSet<_> =
            CycleCat::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), CycleCat::COUNT, "labels are unique");
    }

    #[test]
    fn charge_and_totals() {
        let mut l = CycleLedger::new(2);
        l.charge(NodeId(0), CycleCat::Compute, 10);
        l.charge(NodeId(0), CycleCat::ReadStallRemote, 5);
        l.charge(NodeId(1), CycleCat::ReadStallRemote, 7);
        assert_eq!(l.get(NodeId(0), CycleCat::Compute), 10);
        assert_eq!(l.node_total(NodeId(0)), 15);
        assert_eq!(l.cat_total(CycleCat::ReadStallRemote), 12);
        assert_eq!(l.totals()[CycleCat::Compute.index()], 10);
        l.clear();
        assert_eq!(l.node_total(NodeId(0)), 0);
    }

    #[test]
    fn conservation_check_catches_mismatch() {
        let mut l = CycleLedger::new(2);
        l.charge(NodeId(0), CycleCat::Compute, 10);
        assert!(l.check_against(&[10, 0]).is_ok());
        assert_eq!(l.check_against(&[10, 3]), Err((NodeId(1), 0, 3)));
    }
}

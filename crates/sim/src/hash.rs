//! A fast, deterministic hasher for the hot protocol maps.
//!
//! Tag tables, directories and copy tables are keyed by block/page ids and
//! are consulted on *every* simulated memory access, so the default SipHash
//! is needless overhead. `FastHasher` is a Fibonacci-multiply finalizer —
//! plenty for ids that are already well-distributed — and, unlike
//! `RandomState`, is deterministic, which keeps iteration-order-independent
//! code honest and traces reproducible.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for small integer keys.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

/// `BuildHasher` for [`FastHasher`]; plug into `HashMap::with_hasher`.
pub type FastBuild = BuildHasherDefault<FastHasher>;

/// A `HashMap` using [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, FastBuild>;

/// A `HashSet` using [`FastHasher`].
pub type FastSet<K> = std::collections::HashSet<K, FastBuild>;

const GOLDEN: u64 = 0x9e3779b97f4a7c15;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64 tail) so low bits are usable.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(GOLDEN);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state ^ i).wrapping_mul(GOLDEN);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuild::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn nearby_keys_spread() {
        // Consecutive block ids should land in different low-bit buckets.
        let buckets = 1 << 8;
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(hash_of(&i) % buckets);
        }
        assert!(seen.len() > 48, "got {} distinct buckets of 64", seen.len());
    }

    #[test]
    fn usable_as_map() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&500), Some(&1000));
        assert_eq!(m.len(), 1000);
    }
}

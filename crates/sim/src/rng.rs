//! A small deterministic PCG-32 generator.
//!
//! The simulator never consults wall-clock time or OS entropy; every
//! workload that needs randomness (dynamic partitioning schedules, graph
//! generation, threshold seeds) threads an explicitly-seeded [`Pcg32`]
//! through, so that every experiment is bit-reproducible across runs and
//! machines.

/// PCG-XSH-RR 64/32 random number generator (O'Neill 2014).
///
/// ```
/// use lcm_sim::Pcg32;
/// let mut a = Pcg32::new(42, 1);
/// let mut b = Pcg32::new(42, 1);
/// assert_eq!(a.next_u32(), b.next_u32()); // deterministic
/// let mut c = Pcg32::new(42, 2);
/// let _ = c.next_u32(); // distinct stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream selector.
    pub fn new(seed: u64, stream: u64) -> Pcg32 {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// A uniform value in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift with rejection of the biased tail.
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            let (hi, lo) = mul_hi_lo(r, n);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// 128-bit product of `a * b`, returned as `(high, low)` 64-bit halves of
/// the ratio decomposition used by `below`.
fn mul_hi_lo(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg32::new(7, 3);
        let mut b = Pcg32::new(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = Pcg32::new(7, 1);
        let mut b = Pcg32::new(7, 2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Pcg32::new(1, 1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        Pcg32::new(1, 1).below(0);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = Pcg32::new(9, 9);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            let g = rng.next_f32();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::new(5, 5);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 items should move");
    }
}

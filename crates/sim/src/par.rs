//! Fixed-size worker pool for embarrassingly parallel sweeps.
//!
//! Every sweep point of the evaluation — one `(benchmark, system, scale,
//! fault, sensitivity)` configuration — is an independent, deterministic
//! simulation: each run constructs its own machine, protocol and runtime,
//! and each runtime seeds its own [`crate::Pcg32`] from its config. No
//! state is shared between points, so executing them concurrently cannot
//! change any result. [`par_map`] exploits that: a fixed pool of
//! `std::thread::scope` workers claims indices from a shared counter and
//! writes each result into its input's slot, so the output order is the
//! input order regardless of which worker finished when — the property
//! the byte-identical determinism tests pin down.
//!
//! A worker panic (e.g. the coherence sanitizer rejecting a harvest)
//! propagates out of the scope when the threads join, exactly as it would
//! have on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism (the `--jobs` default), at least 1.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on a pool of at most `jobs` worker threads,
/// returning the results in input order.
///
/// With `jobs <= 1` (or a single item) the map runs on the calling
/// thread; either way `f` sees `(index, item)` and the result vector is
/// indexed identically, so serial and parallel executions are
/// indistinguishable to the caller.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    // Worker panics are caught by the pool and re-raised on the calling
    // thread with their original payload (the scope's own propagation
    // would replace a sanitizer diagnostic with "a scoped thread
    // panicked"); the lowest panicking index wins, so the surfaced
    // failure is deterministic.
    let mut out = Vec::with_capacity(items.len());
    for outcome in run_pool(jobs, items, f) {
        match outcome {
            Ok(r) => out.push(r),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
    out
}

/// [`par_map`] with per-item failure isolation: a panicking item yields
/// `Err(message)` in its slot while every other item still completes.
///
/// The sweep drivers use this to finish a grid despite individual bad
/// points, then report the failures and exit nonzero — instead of losing
/// the whole sweep to its first panic.
pub fn try_par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_pool(jobs, items, f)
        .into_iter()
        .map(|outcome| outcome.map_err(|p| panic_message(p.as_ref())))
        .collect()
}

/// The panic payload's human-readable message (`panic!` supplies a
/// `&str` or `String`; anything else gets a fixed fallback).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

type Outcome<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;

/// The shared pool: applies `f` to every item, capturing each result or
/// panic payload in input order.
fn run_pool<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<Outcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item))))
            .collect();
    }
    // Tasks and result slots are indexed; the per-slot mutexes are taken
    // once each, far off any hot path (a sweep point runs for ms–s).
    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<Outcome<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = tasks[i]
                    .lock()
                    .expect("task mutex never poisoned: held only to take")
                    .take()
                    .expect("each index is claimed exactly once");
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)));
                *slots[i]
                    .lock()
                    .expect("slot mutex never poisoned: held only to store") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot mutex unlocked after scope join")
                .expect("every slot filled: workers drained the counter")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(1, items.clone(), |i, x| (i as u64) * 1000 + x * x);
        for jobs in [2, 3, 8, 64] {
            let parallel = par_map(jobs, items.clone(), |i, x| (i as u64) * 1000 + x * x);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(8, Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(par_map(8, vec![7], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = par_map(16, vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn try_par_map_isolates_failures() {
        for jobs in [1, 4] {
            let items: Vec<usize> = (0..8).collect();
            let out = try_par_map(jobs, items, |_, x| {
                if x % 3 == 0 {
                    panic!("bad point {x}");
                }
                x * 10
            });
            assert_eq!(out.len(), 8, "jobs={jobs}");
            for (i, r) in out.iter().enumerate() {
                if i % 3 == 0 {
                    assert_eq!(r.as_ref().unwrap_err(), &format!("bad point {i}"));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i * 10));
                }
            }
        }
    }

    #[test]
    fn try_par_map_all_ok_matches_par_map() {
        let items: Vec<u64> = (0..20).collect();
        let plain = par_map(4, items.clone(), |i, x| (i as u64) + x);
        let fallible: Vec<u64> = try_par_map(4, items, |i, x| (i as u64) + x)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(plain, fallible);
    }

    #[test]
    #[should_panic(expected = "boom at 5")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        par_map(4, items, |_, x| {
            if x == 5 {
                panic!("boom at {x}");
            }
            x
        });
    }
}

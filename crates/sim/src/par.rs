//! Fixed-size worker pool for embarrassingly parallel sweeps.
//!
//! Every sweep point of the evaluation — one `(benchmark, system, scale,
//! fault, sensitivity)` configuration — is an independent, deterministic
//! simulation: each run constructs its own machine, protocol and runtime,
//! and each runtime seeds its own [`crate::Pcg32`] from its config. No
//! state is shared between points, so executing them concurrently cannot
//! change any result. [`par_map`] exploits that: a fixed pool of
//! `std::thread::scope` workers claims indices from a shared counter and
//! writes each result into its input's slot, so the output order is the
//! input order regardless of which worker finished when — the property
//! the byte-identical determinism tests pin down.
//!
//! A worker panic (e.g. the coherence sanitizer rejecting a harvest)
//! propagates out of the scope when the threads join, exactly as it would
//! have on the calling thread. [`try_par_map`] instead reports each
//! failure as `Err("file.rs:line: message")` — the panic site is captured
//! by a process-wide hook (installed once, chaining any previous hook)
//! into a thread-local, because the location is only reachable from
//! inside the hook, never from the `catch_unwind` payload.
//!
//! Result slots are plain `UnsafeCell`s, not mutexes: the claim counter
//! hands each index to exactly one worker, so slot accesses are disjoint
//! by construction, and the scope join orders every write before the
//! collecting read. At sweep granularity the locks never mattered; the
//! epoch-parallel engine ([`crate::epoch`]) dispatches thousands of
//! short node batches per barrier epoch through the same claim
//! discipline, where two lock round-trips per item would.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Once;

/// The host's available parallelism (the `--jobs` default), at least 1.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// `file:line` of the most recent panic on this thread, captured by
    /// the hook below. Taken (not just read) by [`call_caught`] so a
    /// stale location can never be attributed to a later panic.
    static LAST_PANIC_LOCATION: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// A panic payload the location hook swallows silently: thrown (with
/// [`std::panic::panic_any`]) and always caught by infrastructure that
/// uses unwinding as control flow — e.g. the epoch engine's shadow pass
/// bailing out of a construct it cannot model — where the default
/// hook's backtrace spew would be pure noise on a handled, expected
/// path.
pub struct QuietPanic;

/// Installs the location-capturing panic hook, once per process,
/// chaining whatever hook was installed before it (the default printer,
/// or the test harness's capture hook).
fn install_location_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<QuietPanic>().is_some() {
                return;
            }
            let loc = info
                .location()
                .map(|l| format!("{}:{}", l.file(), l.line()));
            LAST_PANIC_LOCATION.with(|c| *c.borrow_mut() = loc);
            prev(info);
        }));
    });
}

/// A caught worker panic: the original payload (for re-raising with
/// [`std::panic::resume_unwind`]) plus the `file:line` the hook captured.
pub(crate) struct Caught {
    pub(crate) payload: Box<dyn std::any::Any + Send + 'static>,
    pub(crate) location: Option<String>,
}

impl Caught {
    /// The human-readable report: `file.rs:line: message` when the hook
    /// saw the panic, bare message otherwise.
    pub(crate) fn message(&self) -> String {
        let msg = panic_message(self.payload.as_ref());
        match &self.location {
            Some(loc) => format!("{loc}: {msg}"),
            None => msg,
        }
    }
}

/// Runs `f`, converting a panic into a [`Caught`] carrying the payload
/// and the panic site.
pub(crate) fn call_caught<R>(f: impl FnOnce() -> R) -> Result<R, Caught> {
    install_location_hook();
    LAST_PANIC_LOCATION.with(|c| c.borrow_mut().take());
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| Caught {
        payload,
        location: LAST_PANIC_LOCATION.with(|c| c.borrow_mut().take()),
    })
}

/// Applies `f` to every item on a pool of at most `jobs` worker threads,
/// returning the results in input order.
///
/// With `jobs <= 1` (or a single item) the map runs on the calling
/// thread; either way `f` sees `(index, item)` and the result vector is
/// indexed identically, so serial and parallel executions are
/// indistinguishable to the caller.
pub fn par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    // Worker panics are caught by the pool and re-raised on the calling
    // thread with their original payload (the scope's own propagation
    // would replace a sanitizer diagnostic with "a scoped thread
    // panicked"); the lowest panicking index wins, so the surfaced
    // failure is deterministic.
    let mut out = Vec::with_capacity(items.len());
    for outcome in run_pool(jobs, items, f) {
        match outcome {
            Ok(r) => out.push(r),
            Err(caught) => std::panic::resume_unwind(caught.payload),
        }
    }
    out
}

/// [`par_map`] with per-item failure isolation: a panicking item yields
/// `Err("file.rs:line: message")` in its slot while every other item
/// still completes.
///
/// The sweep drivers use this to finish a grid despite individual bad
/// points, then report the failures (tagged with their sweep key) and
/// exit nonzero — instead of losing the whole sweep to its first panic.
pub fn try_par_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<Result<R, String>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_pool(jobs, items, f)
        .into_iter()
        .map(|outcome| outcome.map_err(|c| c.message()))
        .collect()
}

/// The panic payload's human-readable message (`panic!` supplies a
/// `&str` or `String`; anything else gets a fixed fallback — its origin
/// is still pinned by the captured location).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

type Outcome<R> = Result<R, Caught>;

/// A result/task slot writable from worker threads without a lock.
///
/// Safety contract: the claim counter assigns each index to exactly one
/// worker, so at most one thread ever touches a given cell during the
/// scope, and the scope join (or, in [`crate::epoch::SimPool`], the
/// job-completion handshake) orders those accesses before the owner's
/// collecting read.
pub(crate) struct SlotCell<T>(pub(crate) UnsafeCell<T>);

// SAFETY: see the contract above — access is index-disjoint and
// join-ordered, never concurrent on one cell.
unsafe impl<T: Send> Sync for SlotCell<T> {}

impl<T> SlotCell<T> {
    pub(crate) fn new(v: T) -> SlotCell<T> {
        SlotCell(UnsafeCell::new(v))
    }
}

/// The shared pool: applies `f` to every item, capturing each result or
/// panic in input order.
fn run_pool<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<Outcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| call_caught(|| f(i, item)))
            .collect();
    }
    let tasks: Vec<SlotCell<Option<T>>> =
        items.into_iter().map(|t| SlotCell::new(Some(t))).collect();
    let slots: Vec<SlotCell<Option<Outcome<R>>>> = (0..n).map(|_| SlotCell::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: `fetch_add` hands out index `i` to this worker
                // alone, so these are the only accesses to `tasks[i]` and
                // `slots[i]` until the scope joins.
                let item = unsafe { (*tasks[i].0.get()).take() }
                    .expect("each index is claimed exactly once");
                let r = call_caught(|| f(i, item));
                unsafe { *slots[i].0.get() = Some(r) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.0.into_inner()
                .expect("every slot filled: workers drained the counter")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(1, items.clone(), |i, x| (i as u64) * 1000 + x * x);
        for jobs in [2, 3, 8, 64] {
            let parallel = par_map(jobs, items.clone(), |i, x| (i as u64) * 1000 + x * x);
            assert_eq!(serial, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(8, Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(par_map(8, vec![7], |i, x| (i, x)), vec![(0, 7)]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = par_map(16, vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn try_par_map_isolates_failures() {
        for jobs in [1, 4] {
            let items: Vec<usize> = (0..8).collect();
            let out = try_par_map(jobs, items, |_, x| {
                if x % 3 == 0 {
                    panic!("bad point {x}");
                }
                x * 10
            });
            assert_eq!(out.len(), 8, "jobs={jobs}");
            for (i, r) in out.iter().enumerate() {
                if i % 3 == 0 {
                    let e = r.as_ref().unwrap_err();
                    assert!(e.ends_with(&format!("bad point {i}")), "jobs={jobs}: {e:?}");
                    assert!(e.contains("par.rs:"), "location prefix missing: {e:?}");
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i * 10));
                }
            }
        }
    }

    #[test]
    fn try_par_map_locates_non_string_payloads() {
        for jobs in [1, 4] {
            let out = try_par_map(jobs, vec![0usize, 1], |_, x| {
                if x == 1 {
                    std::panic::panic_any(0xbad_usize);
                }
                x
            });
            let e = out[1].as_ref().unwrap_err();
            assert!(
                e.ends_with("worker panicked with a non-string payload"),
                "jobs={jobs}: {e:?}"
            );
            assert!(e.contains("par.rs:"), "location prefix missing: {e:?}");
        }
    }

    #[test]
    fn try_par_map_all_ok_matches_par_map() {
        let items: Vec<u64> = (0..20).collect();
        let plain = par_map(4, items.clone(), |i, x| (i as u64) + x);
        let fallible: Vec<u64> = try_par_map(4, items, |i, x| (i as u64) + x)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(plain, fallible);
    }

    #[test]
    #[should_panic(expected = "boom at 5")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        par_map(4, items, |_, x| {
            if x == 5 {
                panic!("boom at {x}");
            }
            x
        });
    }
}

//! # lcm-sim — simulation substrate for the LCM reproduction
//!
//! This crate is the bottom layer of a reproduction of *Larus, Richards &
//! Viswanathan, "LCM: Memory System Support for Parallel Language
//! Implementation"* (Univ. of Wisconsin–Madison, 1994). The paper ran on a
//! 32-node Thinking Machines CM-5 under the Blizzard-E fine-grain
//! distributed-shared-memory system; we substitute a deterministic,
//! execution-driven simulation (see `DESIGN.md` at the repository root).
//!
//! `lcm-sim` provides:
//!
//! * memory geometry ([`mem`]): 32-byte blocks of eight 4-byte words,
//!   4 KB pages, [`mem::BlockBuf`] block buffers and [`mem::WordMask`]
//!   per-word dirty masks;
//! * the simulated [`Machine`]: per-node logical clocks, barriers, and
//!   [`NodeStats`] protocol counters;
//! * the parameterized [`CostModel`] (CM-5-shaped defaults);
//! * a deterministic [`Pcg32`] generator and a fast deterministic hasher
//!   ([`hash`]) for the hot protocol maps;
//! * an optional protocol event [`trace`].
//!
//! Everything above this crate — the Tempest-like mechanism layer, the
//! Stache baseline protocol, LCM itself, and the C\*\* runtime — charges
//! its costs through [`Machine`].
//!
//! ```
//! use lcm_sim::{Machine, MachineConfig, NodeId};
//!
//! let mut m = Machine::new(MachineConfig::new(4));
//! m.advance(NodeId(0), 100); // node 0 computes for 100 cycles
//! m.barrier();               // everyone synchronizes
//! assert!(m.time() >= 100);
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod epoch;
pub mod fault;
pub mod hash;
pub mod machine;
pub mod mem;
pub mod par;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod topology;
pub mod trace;

pub use cost::{CostModel, Knob};
pub use epoch::{PoolPanic, SimPool};
pub use fault::{
    CrashPlan, CrashPoint, DeliveryError, FaultConfig, FaultConfigError, FaultOutcome, FaultPlan,
};
pub use machine::{DirBackend, Machine, MachineConfig, NodeId, MAX_NODES};
pub use mem::{Addr, BlockBuf, BlockId, PageId, WordMask};
pub use par::{available_jobs, par_map, try_par_map, QuietPanic};
pub use profile::{CycleCat, CycleLedger, PhaseSnapshot};
pub use rng::Pcg32;
pub use stats::NodeStats;
pub use topology::{Fabric, LinkUtil, Topology};
pub use trace::{Event, Stamped, Trace, TraceSummary};

//! Structured, cycle-stamped protocol event trace.
//!
//! When enabled, the machine records a bounded stream of [`Stamped`]
//! protocol events: each carries a monotonic sequence number and the
//! cycle at which it occurred (the acting node's clock at record time).
//! Traces drive the profile exporter (`lcm-bench`), the coherence
//! sanitizer's violation reports, and tests that assert on exact event
//! sequences; the experiment harness leaves tracing off, which makes
//! recording a no-op.
//!
//! The buffer is bounded. On overflow, keep-first traces discard the new
//! event and ring traces discard their oldest; either way the discard is
//! counted in [`Trace::dropped`] and visible as a gap in the sequence
//! numbers, so a consumer can tell an incomplete stream from a quiet one.

use crate::cost::Knob;
use crate::machine::NodeId;
use crate::mem::BlockId;
use crate::profile::CycleCat;
use std::collections::VecDeque;

/// One protocol event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A load missed on `node` for `block`; `remote` says the fill crossed
    /// the network.
    ReadMiss {
        /// The faulting node.
        node: NodeId,
        /// The block accessed.
        block: BlockId,
        /// True when the fill crossed the network.
        remote: bool,
    },
    /// A store missed on `node` for `block`.
    WriteMiss {
        /// The faulting node.
        node: NodeId,
        /// The block accessed.
        block: BlockId,
        /// True when the fill crossed the network.
        remote: bool,
    },
    /// A store hit a ReadOnly copy and upgraded it.
    Upgrade {
        /// The upgrading node.
        node: NodeId,
        /// The block upgraded.
        block: BlockId,
    },
    /// A `mark_modification` directive created a private copy.
    Mark {
        /// The marking node.
        node: NodeId,
        /// The block marked.
        block: BlockId,
    },
    /// A clean copy of `block` was created (`home` side or cache side).
    CleanCopy {
        /// The node the copy was created on.
        node: NodeId,
        /// The block copied.
        block: BlockId,
    },
    /// `node` flushed its modified copy of `block` home.
    Flush {
        /// The flushing node.
        node: NodeId,
        /// The block flushed.
        block: BlockId,
    },
    /// The home reconciled `versions` outstanding versions of `block`.
    Reconcile {
        /// The block reconciled.
        block: BlockId,
        /// How many versions merged.
        versions: u32,
    },
    /// An invalidation was processed at `node` for `block`.
    Invalidate {
        /// The node losing its copy.
        node: NodeId,
        /// The block invalidated.
        block: BlockId,
    },
    /// A write-write conflict on `block`, word `word`.
    WwConflict {
        /// The block involved.
        block: BlockId,
        /// The conflicting word index.
        word: u8,
    },
    /// A read-write conflict on `block`.
    RwConflict {
        /// The block involved.
        block: BlockId,
    },
    /// A global barrier completed at time `at`.
    Barrier {
        /// Post-barrier simulated time.
        at: u64,
    },
    /// `from` sent a protocol message to `to` (recorded when the network
    /// delivers it; dropped attempts are not sends).
    MsgSend {
        /// The sending node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// Message kind label (see `lcm_tempest::MsgKind::label`).
        kind: &'static str,
        /// Bytes on the wire (header, plus the block payload if any).
        bytes: u64,
    },
    /// `node` handled a protocol message from `from`.
    MsgRecv {
        /// The handling node.
        node: NodeId,
        /// The original sender.
        from: NodeId,
        /// Message kind label.
        kind: &'static str,
        /// Bytes on the wire.
        bytes: u64,
    },
    /// A span opened on `node` (e.g. a fault handler started); paired
    /// with the next [`Event::SpanEnd`] carrying the same `node`/`what`/
    /// `block`, the cycle stamps delimit the operation's duration.
    SpanBegin {
        /// The node doing the work.
        node: NodeId,
        /// What the span covers (`"read_fault"`, `"reconcile"`, …).
        what: &'static str,
        /// The block involved.
        block: BlockId,
    },
    /// A span closed on `node` (see [`Event::SpanBegin`]).
    SpanEnd {
        /// The node doing the work.
        node: NodeId,
        /// What the span covers.
        what: &'static str,
        /// The block involved.
        block: BlockId,
    },
    /// Capture mode only: `node` was charged `units` × a [`Knob`] price
    /// under `cat`. Symbolic, so replay can re-price it under any cost
    /// model. Never recorded outside capture mode.
    Charge {
        /// The charged node.
        node: NodeId,
        /// Ledger category the cycles were attributed to.
        cat: CycleCat,
        /// Which cost-model price was charged.
        knob: Knob,
        /// How many units of the price (e.g. 2 for a three-hop
        /// double-round-trip, `2^k` for the k-th backoff doubling).
        units: u32,
    },
    /// Capture mode only: `node` was charged `cycles` raw cycles under
    /// `cat` — a quantity independent of the cost model (injected delays
    /// and stalls, externally computed charges). Replays verbatim.
    ChargeRaw {
        /// The charged node.
        node: NodeId,
        /// Ledger category the cycles were attributed to.
        cat: CycleCat,
        /// Raw cycles charged.
        cycles: u64,
    },
    /// Capture mode only: coalesced application work on `node` since its
    /// last synchronization point — raw compute cycles plus a count of
    /// cache hits (each worth the model's `cache_hit` price). Folding the
    /// per-access stream into one record per node per interval keeps
    /// captures compact.
    Work {
        /// The computing node.
        node: NodeId,
        /// Raw compute cycles (model-independent).
        cycles: u64,
        /// Cache hits bundled in (priced at `cache_hit` on replay).
        hits: u64,
    },
    /// Capture mode only: a delivered message crossed the network
    /// `from -> to`, entering at the sender's clock. Replay feeds these
    /// through a contention fabric (if the replay model has finite
    /// bandwidth) to rebuild link backlogs and queueing charges.
    Xfer {
        /// The sending node.
        from: NodeId,
        /// The receiving node.
        to: NodeId,
        /// Bytes on the wire (capture-time header + payload).
        bytes: u64,
    },
    /// Capture mode only: a phase boundary was stamped (see
    /// [`crate::Machine::mark_phase`]), letting replay rebuild per-phase
    /// snapshots and the trace file index phases for seekability.
    PhaseMark {
        /// The phase label.
        label: &'static str,
    },
}

impl Event {
    /// Stable label of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ReadMiss { .. } => "read_miss",
            Event::WriteMiss { .. } => "write_miss",
            Event::Upgrade { .. } => "upgrade",
            Event::Mark { .. } => "mark",
            Event::CleanCopy { .. } => "clean_copy",
            Event::Flush { .. } => "flush",
            Event::Reconcile { .. } => "reconcile",
            Event::Invalidate { .. } => "invalidate",
            Event::WwConflict { .. } => "ww_conflict",
            Event::RwConflict { .. } => "rw_conflict",
            Event::Barrier { .. } => "barrier",
            Event::MsgSend { .. } => "msg_send",
            Event::MsgRecv { .. } => "msg_recv",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::Charge { .. } => "charge",
            Event::ChargeRaw { .. } => "charge_raw",
            Event::Work { .. } => "work",
            Event::Xfer { .. } => "xfer",
            Event::PhaseMark { .. } => "phase_mark",
        }
    }

    /// The node the event is attributed to (the acting side), if any.
    /// Home-side events with no single actor ([`Event::Reconcile`],
    /// conflicts, [`Event::Barrier`]) return `None`.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            Event::ReadMiss { node, .. }
            | Event::WriteMiss { node, .. }
            | Event::Upgrade { node, .. }
            | Event::Mark { node, .. }
            | Event::CleanCopy { node, .. }
            | Event::Flush { node, .. }
            | Event::Invalidate { node, .. }
            | Event::MsgRecv { node, .. }
            | Event::SpanBegin { node, .. }
            | Event::SpanEnd { node, .. } => Some(*node),
            Event::MsgSend { from, .. } => Some(*from),
            Event::Charge { node, .. }
            | Event::ChargeRaw { node, .. }
            | Event::Work { node, .. } => Some(*node),
            Event::Xfer { from, .. } => Some(*from),
            Event::Reconcile { .. }
            | Event::WwConflict { .. }
            | Event::RwConflict { .. }
            | Event::Barrier { .. }
            | Event::PhaseMark { .. } => None,
        }
    }

    /// The block the event concerns, if any.
    pub fn block(&self) -> Option<BlockId> {
        match self {
            Event::ReadMiss { block, .. }
            | Event::WriteMiss { block, .. }
            | Event::Upgrade { block, .. }
            | Event::Mark { block, .. }
            | Event::CleanCopy { block, .. }
            | Event::Flush { block, .. }
            | Event::Reconcile { block, .. }
            | Event::Invalidate { block, .. }
            | Event::WwConflict { block, .. }
            | Event::RwConflict { block, .. }
            | Event::SpanBegin { block, .. }
            | Event::SpanEnd { block, .. } => Some(*block),
            Event::Barrier { .. }
            | Event::MsgSend { .. }
            | Event::MsgRecv { .. }
            | Event::Charge { .. }
            | Event::ChargeRaw { .. }
            | Event::Work { .. }
            | Event::Xfer { .. }
            | Event::PhaseMark { .. } => None,
        }
    }

    /// Bytes on the wire for message events, `None` otherwise.
    pub fn bytes(&self) -> Option<u64> {
        match self {
            Event::MsgSend { bytes, .. } | Event::MsgRecv { bytes, .. } => Some(*bytes),
            _ => None,
        }
    }

    /// The `(sender, receiver)` endpoints for events that cross the
    /// network ([`Event::MsgSend`], [`Event::MsgRecv`], [`Event::Xfer`]),
    /// `None` otherwise. Always oriented sender → receiver, so a recv
    /// pairs with its send by equal endpoints.
    pub fn endpoints(&self) -> Option<(NodeId, NodeId)> {
        match self {
            Event::MsgSend { from, to, .. } | Event::Xfer { from, to, .. } => Some((*from, *to)),
            Event::MsgRecv { node, from, .. } => Some((*from, *node)),
            _ => None,
        }
    }

    /// The protocol message kind label for [`Event::MsgSend`] and
    /// [`Event::MsgRecv`], `None` otherwise.
    pub fn msg_kind(&self) -> Option<&'static str> {
        match self {
            Event::MsgSend { kind, .. } | Event::MsgRecv { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

/// A recorded event with its stamp: a monotonic per-trace sequence number
/// and the cycle (acting node's clock) at record time. Sequence numbers
/// count every record attempt, so dropped events leave visible gaps.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Stamped {
    /// Position in the recorded stream (0-based; gaps mark drops).
    pub seq: u64,
    /// Acting node's clock when recorded (machine time for global events).
    pub cycle: u64,
    /// The event itself.
    pub event: Event,
}

/// A bounded in-memory event trace.
///
/// Storage is a [`VecDeque`] so ring-mode overflow is a constant-time
/// pop/push with no reallocation once the buffer is full — recording must
/// stay O(1) per event on the simulation's stepping path.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    ring: bool,
    events: VecDeque<Stamped>,
    seq: u64,
    dropped: u64,
}

impl Trace {
    /// A disabled trace; recording is a no-op.
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled trace retaining at most `capacity` events. Further events
    /// are counted in [`Trace::dropped`] but not stored.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            enabled: true,
            capacity,
            ring: false,
            events: VecDeque::new(),
            seq: 0,
            dropped: 0,
        }
    }

    /// An enabled trace retaining the *last* `capacity` events: on
    /// overflow the oldest event is discarded (and counted in
    /// [`Trace::dropped`]). Diagnostics — the coherence sanitizer's
    /// violation reports — use this mode, where the events leading up to
    /// a failure matter more than the program's opening.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn ring(capacity: usize) -> Trace {
        assert!(capacity > 0, "a ring trace needs capacity");
        Trace {
            enabled: true,
            capacity,
            ring: true,
            // Diagnostic ring capacities are small; reserving up front
            // makes every subsequent record allocation-free.
            events: VecDeque::with_capacity(capacity),
            seq: 0,
            dropped: 0,
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True for keep-last ([`Trace::ring`]) traces.
    pub fn is_ring(&self) -> bool {
        self.ring
    }

    /// Records `event` stamped with `cycle` if enabled; on overflow,
    /// keep-first traces discard `event` and ring traces discard their
    /// oldest entry. The sequence number advances either way, so drops
    /// are visible as gaps.
    #[inline]
    pub fn record_at(&mut self, cycle: u64, event: Event) {
        if !self.enabled {
            return;
        }
        let stamped = Stamped {
            seq: self.seq,
            cycle,
            event,
        };
        self.seq += 1;
        if self.events.len() < self.capacity {
            self.events.push_back(stamped);
        } else if self.ring {
            self.events.pop_front();
            self.events.push_back(stamped);
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Records `event` with a zero cycle stamp. Standalone-trace
    /// convenience; the machine stamps real clocks via
    /// [`crate::Machine::record`].
    #[inline]
    pub fn record(&mut self, event: Event) {
        self.record_at(0, event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &VecDeque<Stamped> {
        &self.events
    }

    /// The recorded events copied into a contiguous vector, oldest first.
    pub fn to_vec(&self) -> Vec<Stamped> {
        self.events.iter().copied().collect()
    }

    /// Number of record attempts so far (stored plus dropped).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Number of events discarded after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all recorded events and resets the sequence counter
    /// (capacity and enablement unchanged).
    pub fn clear(&mut self) {
        self.events.clear();
        self.seq = 0;
        self.dropped = 0;
    }

    /// Aggregates the recorded events into a [`TraceSummary`].
    pub fn summarize(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        let mut per_block: std::collections::HashMap<BlockId, u64> =
            std::collections::HashMap::new();
        for e in &self.events {
            match &e.event {
                Event::ReadMiss { block, .. } => {
                    s.read_misses += 1;
                    *per_block.entry(*block).or_default() += 1;
                }
                Event::WriteMiss { block, .. } => {
                    s.write_misses += 1;
                    *per_block.entry(*block).or_default() += 1;
                }
                Event::Upgrade { block, .. } => {
                    s.upgrades += 1;
                    *per_block.entry(*block).or_default() += 1;
                }
                Event::Mark { .. } => s.marks += 1,
                Event::CleanCopy { .. } => s.clean_copies += 1,
                Event::Flush { .. } => s.flushes += 1,
                Event::Reconcile { .. } => s.reconciles += 1,
                Event::Invalidate { block, .. } => {
                    s.invalidations += 1;
                    *per_block.entry(*block).or_default() += 1;
                }
                Event::WwConflict { .. } | Event::RwConflict { .. } => s.conflicts += 1,
                Event::Barrier { .. } => s.barriers += 1,
                Event::MsgSend { .. } => s.msg_sends += 1,
                Event::MsgRecv { .. } => s.msg_recvs += 1,
                Event::SpanBegin { .. } => s.spans += 1,
                // Capture-mode pricing records are accounting detail, not
                // protocol activity; the summary ignores them.
                Event::SpanEnd { .. }
                | Event::Charge { .. }
                | Event::ChargeRaw { .. }
                | Event::Work { .. }
                | Event::Xfer { .. }
                | Event::PhaseMark { .. } => {}
            }
        }
        let mut hot: Vec<(BlockId, u64)> = per_block.into_iter().collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(8);
        s.hottest_blocks = hot;
        s
    }
}

/// Aggregate view of a [`Trace`]: per-kind event counts and the blocks
/// with the most coherence activity — a quick answer to "where is this
/// program's protocol traffic coming from?".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Load faults recorded.
    pub read_misses: u64,
    /// Store faults recorded.
    pub write_misses: u64,
    /// Ownership upgrades recorded.
    pub upgrades: u64,
    /// `mark_modification` directives recorded.
    pub marks: u64,
    /// Clean-copy creations recorded.
    pub clean_copies: u64,
    /// Flushes recorded.
    pub flushes: u64,
    /// Block reconciliations recorded.
    pub reconciles: u64,
    /// Invalidations recorded.
    pub invalidations: u64,
    /// Conflicts (write-write + read-write) recorded.
    pub conflicts: u64,
    /// Barriers recorded.
    pub barriers: u64,
    /// Message sends recorded.
    pub msg_sends: u64,
    /// Message receipts recorded.
    pub msg_recvs: u64,
    /// Spans opened.
    pub spans: u64,
    /// Up to eight blocks with the most miss/upgrade/invalidate events,
    /// busiest first.
    pub hottest_blocks: Vec<(BlockId, u64)>,
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "misses: {} read / {} write / {} upgrade; marks {}, clean copies {}, flushes {}",
            self.read_misses,
            self.write_misses,
            self.upgrades,
            self.marks,
            self.clean_copies,
            self.flushes
        )?;
        writeln!(
            f,
            "reconciles {}, invalidations {}, conflicts {}, barriers {}, msgs {} sent / {} recv, {} spans",
            self.reconciles,
            self.invalidations,
            self.conflicts,
            self.barriers,
            self.msg_sends,
            self.msg_recvs,
            self.spans
        )?;
        if !self.hottest_blocks.is_empty() {
            write!(f, "hottest blocks:")?;
            for (b, n) in &self.hottest_blocks {
                write!(f, " {b:?}x{n}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Event::Barrier { at: 1 });
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(Event::Barrier { at: i });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.events()[0].event, Event::Barrier { at: 0 });
    }

    #[test]
    fn keep_first_overflow_discards_newest() {
        // with_capacity keeps the opening of the run: record beyond
        // capacity and the stored prefix never changes.
        let mut t = Trace::with_capacity(3);
        for i in 0..10 {
            t.record(Event::Barrier { at: i });
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 7);
        let stored: Vec<u64> = t
            .events()
            .iter()
            .map(|e| match e.event {
                Event::Barrier { at } => at,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(stored, vec![0, 1, 2]);
    }

    #[test]
    fn ring_overflow_keeps_the_last_events() {
        let mut t = Trace::ring(3);
        assert!(t.is_ring());
        for i in 0..10 {
            t.record(Event::Barrier { at: i });
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 7);
        let stored: Vec<u64> = t
            .events()
            .iter()
            .map(|e| match e.event {
                Event::Barrier { at } => at,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(stored, vec![7, 8, 9], "ring retains the tail, oldest first");
    }

    #[test]
    fn sequence_numbers_expose_drops_as_gaps() {
        let mut t = Trace::with_capacity(2);
        for i in 0..4 {
            t.record_at(i * 10, Event::Barrier { at: i });
        }
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1], "keep-first stores the opening seqs");
        assert_eq!(t.recorded(), 4);
        assert_eq!(t.dropped(), 2);

        let mut r = Trace::ring(2);
        for i in 0..4 {
            r.record_at(i * 10, Event::Barrier { at: i });
        }
        let seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3], "ring keeps the trailing seqs");
        assert_eq!(r.events()[0].cycle, 20, "cycle stamps travel with events");
    }

    #[test]
    fn ring_overflow_never_reallocates() {
        let mut t = Trace::ring(8);
        for i in 0..8 {
            t.record(Event::Barrier { at: i });
        }
        let cap = t.events.capacity();
        for i in 8..10_000 {
            t.record(Event::Barrier { at: i });
        }
        assert_eq!(t.events.capacity(), cap, "pop/push cycles stay in place");
        assert_eq!(t.events().len(), 8);
        assert_eq!(t.dropped(), 10_000 - 8);
    }

    #[test]
    fn to_vec_preserves_order() {
        let mut t = Trace::ring(3);
        for i in 0..5 {
            t.record(Event::Barrier { at: i });
        }
        let v = t.to_vec();
        let ats: Vec<u64> = v
            .iter()
            .map(|e| match e.event {
                Event::Barrier { at } => at,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn ring_under_capacity_behaves_like_plain_trace() {
        let mut t = Trace::ring(8);
        t.record(Event::Barrier { at: 1 });
        t.record(Event::Barrier { at: 2 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_ring_rejected() {
        Trace::ring(0);
    }

    #[test]
    fn summarize_on_a_wrapped_ring_counts_only_retained_events() {
        use crate::machine::NodeId;
        // Three read misses on block 1, then four write misses on block
        // 2: a ring of 4 wraps and sheds all the reads plus the first
        // write, so the summary must describe only the surviving tail.
        let mut t = Trace::ring(4);
        for _ in 0..3 {
            t.record(Event::ReadMiss {
                node: NodeId(0),
                block: BlockId(1),
                remote: true,
            });
        }
        for _ in 0..4 {
            t.record(Event::WriteMiss {
                node: NodeId(0),
                block: BlockId(2),
                remote: false,
            });
        }
        assert_eq!(t.dropped(), 3);
        let s = t.summarize();
        assert_eq!(s.read_misses, 0, "wrapped-out reads are gone");
        assert_eq!(s.write_misses, 4);
        assert_eq!(
            s.hottest_blocks,
            vec![(BlockId(2), 4)],
            "hot-block ranking sees only retained events"
        );
    }

    #[test]
    fn record_at_preserves_record_order_not_cycle_order() {
        // Stamps are the acting node's clock and nodes progress
        // independently, so cycle stamps are not monotonic; the trace
        // must keep record order and never sort.
        let cycles = [10u64, 5, 20, 1];
        let mut t = Trace::with_capacity(8);
        let mut r = Trace::ring(8);
        for (i, &c) in cycles.iter().enumerate() {
            t.record_at(c, Event::Barrier { at: i as u64 });
            r.record_at(c, Event::Barrier { at: i as u64 });
        }
        for trace in [&t, &r] {
            let got: Vec<(u64, u64)> = trace.events().iter().map(|e| (e.seq, e.cycle)).collect();
            assert_eq!(got, vec![(0, 10), (1, 5), (2, 20), (3, 1)]);
        }
        // A wrapped ring still reports the tail in record order.
        let mut w = Trace::ring(2);
        for (i, &c) in cycles.iter().enumerate() {
            w.record_at(c, Event::Barrier { at: i as u64 });
        }
        let got: Vec<(u64, u64)> = w.events().iter().map(|e| (e.seq, e.cycle)).collect();
        assert_eq!(got, vec![(2, 20), (3, 1)]);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::with_capacity(2);
        t.record(Event::Barrier { at: 1 });
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn event_accessors_expose_node_block_bytes() {
        use crate::machine::NodeId;
        let send = Event::MsgSend {
            from: NodeId(1),
            to: NodeId(2),
            kind: "GetShared",
            bytes: 16,
        };
        assert_eq!(send.node(), Some(NodeId(1)));
        assert_eq!(send.block(), None);
        assert_eq!(send.bytes(), Some(16));
        assert_eq!(send.kind(), "msg_send");

        let span = Event::SpanBegin {
            node: NodeId(3),
            what: "read_fault",
            block: BlockId(9),
        };
        assert_eq!(span.node(), Some(NodeId(3)));
        assert_eq!(span.block(), Some(BlockId(9)));
        assert_eq!(span.bytes(), None);

        assert_eq!(Event::Barrier { at: 5 }.node(), None);
        assert_eq!(
            Event::Reconcile {
                block: BlockId(1),
                versions: 2
            }
            .block(),
            Some(BlockId(1))
        );
    }

    #[test]
    fn summary_counts_by_kind_and_finds_hot_blocks() {
        use crate::machine::NodeId;
        let mut t = Trace::with_capacity(64);
        let hot = BlockId(7);
        let cold = BlockId(9);
        for _ in 0..3 {
            t.record(Event::ReadMiss {
                node: NodeId(0),
                block: hot,
                remote: true,
            });
        }
        t.record(Event::WriteMiss {
            node: NodeId(1),
            block: cold,
            remote: false,
        });
        t.record(Event::Upgrade {
            node: NodeId(1),
            block: hot,
        });
        t.record(Event::Mark {
            node: NodeId(1),
            block: hot,
        });
        t.record(Event::Flush {
            node: NodeId(1),
            block: hot,
        });
        t.record(Event::Reconcile {
            block: hot,
            versions: 2,
        });
        t.record(Event::Invalidate {
            node: NodeId(0),
            block: hot,
        });
        t.record(Event::WwConflict {
            block: hot,
            word: 3,
        });
        t.record(Event::Barrier { at: 100 });
        t.record(Event::MsgSend {
            from: NodeId(0),
            to: NodeId(1),
            kind: "GetShared",
            bytes: 16,
        });
        t.record(Event::MsgRecv {
            node: NodeId(1),
            from: NodeId(0),
            kind: "GetShared",
            bytes: 16,
        });
        t.record(Event::SpanBegin {
            node: NodeId(0),
            what: "read_fault",
            block: hot,
        });
        t.record(Event::SpanEnd {
            node: NodeId(0),
            what: "read_fault",
            block: hot,
        });
        let s = t.summarize();
        assert_eq!(s.read_misses, 3);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.upgrades, 1);
        assert_eq!(s.marks, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.reconciles, 1);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(s.msg_sends, 1);
        assert_eq!(s.msg_recvs, 1);
        assert_eq!(s.spans, 1);
        assert_eq!(
            s.hottest_blocks[0],
            (hot, 5),
            "3 reads + upgrade + invalidate"
        );
        assert_eq!(s.hottest_blocks[1], (cold, 1));
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn summary_of_empty_trace_is_zeroed() {
        let s = Trace::disabled().summarize();
        assert_eq!(s, TraceSummary::default());
        assert!(s.hottest_blocks.is_empty());
    }

    #[test]
    fn endpoints_orient_sender_to_receiver() {
        let send = Event::MsgSend {
            from: NodeId(3),
            to: NodeId(5),
            kind: "GetShared",
            bytes: 64,
        };
        let recv = Event::MsgRecv {
            node: NodeId(5),
            from: NodeId(3),
            kind: "GetShared",
            bytes: 64,
        };
        let xfer = Event::Xfer {
            from: NodeId(3),
            to: NodeId(5),
            bytes: 64,
        };
        assert_eq!(send.endpoints(), Some((NodeId(3), NodeId(5))));
        assert_eq!(
            recv.endpoints(),
            send.endpoints(),
            "recv pairs by endpoints"
        );
        assert_eq!(xfer.endpoints(), send.endpoints());
        assert_eq!(Event::Barrier { at: 1 }.endpoints(), None);
        assert_eq!(send.msg_kind(), Some("GetShared"));
        assert_eq!(recv.msg_kind(), Some("GetShared"));
        assert_eq!(xfer.msg_kind(), None, "transfers carry no protocol kind");
    }
}

//! Optional protocol event trace.
//!
//! When enabled, the machine records a bounded stream of protocol events.
//! Traces exist for debugging protocols and for tests that assert on exact
//! event sequences; the experiment harness leaves tracing off.

use crate::machine::NodeId;
use crate::mem::BlockId;

/// One protocol event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A load missed on `node` for `block`; `remote` says the fill crossed
    /// the network.
    ReadMiss {
        /// The faulting node.
        node: NodeId,
        /// The block accessed.
        block: BlockId,
        /// True when the fill crossed the network.
        remote: bool,
    },
    /// A store missed on `node` for `block`.
    WriteMiss {
        /// The faulting node.
        node: NodeId,
        /// The block accessed.
        block: BlockId,
        /// True when the fill crossed the network.
        remote: bool,
    },
    /// A store hit a ReadOnly copy and upgraded it.
    Upgrade {
        /// The upgrading node.
        node: NodeId,
        /// The block upgraded.
        block: BlockId,
    },
    /// A `mark_modification` directive created a private copy.
    Mark {
        /// The marking node.
        node: NodeId,
        /// The block marked.
        block: BlockId,
    },
    /// A clean copy of `block` was created (`home` side or cache side).
    CleanCopy {
        /// The node the copy was created on.
        node: NodeId,
        /// The block copied.
        block: BlockId,
    },
    /// `node` flushed its modified copy of `block` home.
    Flush {
        /// The flushing node.
        node: NodeId,
        /// The block flushed.
        block: BlockId,
    },
    /// The home reconciled `versions` outstanding versions of `block`.
    Reconcile {
        /// The block reconciled.
        block: BlockId,
        /// How many versions merged.
        versions: u32,
    },
    /// An invalidation was processed at `node` for `block`.
    Invalidate {
        /// The node losing its copy.
        node: NodeId,
        /// The block invalidated.
        block: BlockId,
    },
    /// A write-write conflict on `block`, word `word`.
    WwConflict {
        /// The block involved.
        block: BlockId,
        /// The conflicting word index.
        word: u8,
    },
    /// A read-write conflict on `block`.
    RwConflict {
        /// The block involved.
        block: BlockId,
    },
    /// A global barrier completed at time `at`.
    Barrier {
        /// Post-barrier simulated time.
        at: u64,
    },
}

/// A bounded in-memory event trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    ring: bool,
    events: Vec<Event>,
    dropped: u64,
}

impl Trace {
    /// A disabled trace; recording is a no-op.
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// An enabled trace retaining at most `capacity` events. Further events
    /// are counted in [`Trace::dropped`] but not stored.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            enabled: true,
            capacity,
            ring: false,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// An enabled trace retaining the *last* `capacity` events: on
    /// overflow the oldest event is discarded (and counted in
    /// [`Trace::dropped`]). Diagnostics — the coherence sanitizer's
    /// violation reports — use this mode, where the events leading up to
    /// a failure matter more than the program's opening.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn ring(capacity: usize) -> Trace {
        assert!(capacity > 0, "a ring trace needs capacity");
        Trace {
            enabled: true,
            capacity,
            ring: true,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// True for keep-last ([`Trace::ring`]) traces.
    pub fn is_ring(&self) -> bool {
        self.ring
    }

    /// Records `event` if enabled; on overflow, keep-first traces discard
    /// `event` and ring traces discard their oldest entry.
    #[inline]
    pub fn record(&mut self, event: Event) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else if self.ring {
            // Diagnostic capacities are small; a linear shift is fine.
            self.events.remove(0);
            self.events.push(event);
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events discarded after the capacity filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all recorded events (capacity and enablement unchanged).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Aggregates the recorded events into a [`TraceSummary`].
    pub fn summarize(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        let mut per_block: std::collections::HashMap<BlockId, u64> =
            std::collections::HashMap::new();
        for e in &self.events {
            match e {
                Event::ReadMiss { block, .. } => {
                    s.read_misses += 1;
                    *per_block.entry(*block).or_default() += 1;
                }
                Event::WriteMiss { block, .. } => {
                    s.write_misses += 1;
                    *per_block.entry(*block).or_default() += 1;
                }
                Event::Upgrade { block, .. } => {
                    s.upgrades += 1;
                    *per_block.entry(*block).or_default() += 1;
                }
                Event::Mark { .. } => s.marks += 1,
                Event::CleanCopy { .. } => s.clean_copies += 1,
                Event::Flush { .. } => s.flushes += 1,
                Event::Reconcile { .. } => s.reconciles += 1,
                Event::Invalidate { block, .. } => {
                    s.invalidations += 1;
                    *per_block.entry(*block).or_default() += 1;
                }
                Event::WwConflict { .. } | Event::RwConflict { .. } => s.conflicts += 1,
                Event::Barrier { .. } => s.barriers += 1,
            }
        }
        let mut hot: Vec<(BlockId, u64)> = per_block.into_iter().collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(8);
        s.hottest_blocks = hot;
        s
    }
}

/// Aggregate view of a [`Trace`]: per-kind event counts and the blocks
/// with the most coherence activity — a quick answer to "where is this
/// program's protocol traffic coming from?".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Load faults recorded.
    pub read_misses: u64,
    /// Store faults recorded.
    pub write_misses: u64,
    /// Ownership upgrades recorded.
    pub upgrades: u64,
    /// `mark_modification` directives recorded.
    pub marks: u64,
    /// Clean-copy creations recorded.
    pub clean_copies: u64,
    /// Flushes recorded.
    pub flushes: u64,
    /// Block reconciliations recorded.
    pub reconciles: u64,
    /// Invalidations recorded.
    pub invalidations: u64,
    /// Conflicts (write-write + read-write) recorded.
    pub conflicts: u64,
    /// Barriers recorded.
    pub barriers: u64,
    /// Up to eight blocks with the most miss/upgrade/invalidate events,
    /// busiest first.
    pub hottest_blocks: Vec<(BlockId, u64)>,
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "misses: {} read / {} write / {} upgrade; marks {}, clean copies {}, flushes {}",
            self.read_misses,
            self.write_misses,
            self.upgrades,
            self.marks,
            self.clean_copies,
            self.flushes
        )?;
        writeln!(
            f,
            "reconciles {}, invalidations {}, conflicts {}, barriers {}",
            self.reconciles, self.invalidations, self.conflicts, self.barriers
        )?;
        if !self.hottest_blocks.is_empty() {
            write!(f, "hottest blocks:")?;
            for (b, n) in &self.hottest_blocks {
                write!(f, " {b:?}x{n}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Event::Barrier { at: 1 });
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.record(Event::Barrier { at: i });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[0], Event::Barrier { at: 0 });
    }

    #[test]
    fn keep_first_overflow_discards_newest() {
        // with_capacity keeps the opening of the run: record beyond
        // capacity and the stored prefix never changes.
        let mut t = Trace::with_capacity(3);
        for i in 0..10 {
            t.record(Event::Barrier { at: i });
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 7);
        let stored: Vec<u64> = t
            .events()
            .iter()
            .map(|e| match e {
                Event::Barrier { at } => *at,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(stored, vec![0, 1, 2]);
    }

    #[test]
    fn ring_overflow_keeps_the_last_events() {
        let mut t = Trace::ring(3);
        assert!(t.is_ring());
        for i in 0..10 {
            t.record(Event::Barrier { at: i });
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 7);
        let stored: Vec<u64> = t
            .events()
            .iter()
            .map(|e| match e {
                Event::Barrier { at } => *at,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(stored, vec![7, 8, 9], "ring retains the tail, oldest first");
    }

    #[test]
    fn ring_under_capacity_behaves_like_plain_trace() {
        let mut t = Trace::ring(8);
        t.record(Event::Barrier { at: 1 });
        t.record(Event::Barrier { at: 2 });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_ring_rejected() {
        Trace::ring(0);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::with_capacity(2);
        t.record(Event::Barrier { at: 1 });
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn summary_counts_by_kind_and_finds_hot_blocks() {
        use crate::machine::NodeId;
        let mut t = Trace::with_capacity(64);
        let hot = BlockId(7);
        let cold = BlockId(9);
        for _ in 0..3 {
            t.record(Event::ReadMiss {
                node: NodeId(0),
                block: hot,
                remote: true,
            });
        }
        t.record(Event::WriteMiss {
            node: NodeId(1),
            block: cold,
            remote: false,
        });
        t.record(Event::Upgrade {
            node: NodeId(1),
            block: hot,
        });
        t.record(Event::Mark {
            node: NodeId(1),
            block: hot,
        });
        t.record(Event::Flush {
            node: NodeId(1),
            block: hot,
        });
        t.record(Event::Reconcile {
            block: hot,
            versions: 2,
        });
        t.record(Event::Invalidate {
            node: NodeId(0),
            block: hot,
        });
        t.record(Event::WwConflict {
            block: hot,
            word: 3,
        });
        t.record(Event::Barrier { at: 100 });
        let s = t.summarize();
        assert_eq!(s.read_misses, 3);
        assert_eq!(s.write_misses, 1);
        assert_eq!(s.upgrades, 1);
        assert_eq!(s.marks, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.reconciles, 1);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.barriers, 1);
        assert_eq!(
            s.hottest_blocks[0],
            (hot, 5),
            "3 reads + upgrade + invalidate"
        );
        assert_eq!(s.hottest_blocks[1], (cold, 1));
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn summary_of_empty_trace_is_zeroed() {
        let s = Trace::disabled().summarize();
        assert_eq!(s, TraceSummary::default());
        assert!(s.hottest_blocks.is_empty());
    }
}

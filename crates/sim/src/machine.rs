//! The simulated machine: nodes, logical clocks, and statistics.
//!
//! The reproduction is an *execution-driven* simulation: application code
//! really runs (inside one host thread) and every memory access is routed
//! through a protocol, which charges cycles to per-node logical clocks via
//! this module. A node's clock advances as it computes and as its misses
//! and messages are serviced; a [`Machine::barrier`] synchronizes all
//! clocks to the maximum, exactly how the phase-structured C\*\* programs
//! behave on the paper's CM-5.
//!
//! Clock accounting is *logical*: handler work for a message is charged to
//! the home node when the message is (synchronously) processed, without
//! modeling queueing or contention. This is sufficient for the paper's
//! results, which are dominated by miss counts and round-trip latencies.

use crate::cost::{CostModel, Knob};
use crate::fault::{FaultConfig, FaultPlan};
use crate::profile::{CycleCat, CycleLedger, PhaseSnapshot};
use crate::stats::NodeStats;
use crate::topology::{Fabric, LinkUtil, Topology};
use crate::trace::{Event, Trace};
use std::fmt;

/// Maximum machine size. Directory sharer sets throughout the protocol
/// stack are fixed-capacity multi-word bitmasks (`lcm_stache::SharerSet`)
/// sized for this many nodes; a larger machine would silently alias
/// sharers, so construction rejects it outright.
pub const MAX_NODES: usize = 1024;

/// Directory sharer-set representation backend.
///
/// Selects what the simulated *hardware* (or protocol software) stores
/// per directory entry, and therefore how precisely invalidations can be
/// targeted. The simulator always tracks exact membership as its oracle;
/// the backend governs the invalidation target set:
///
/// * [`DirBackend::FullMap`] — one presence bit per node: always
///   precise, but entry storage grows linearly with machine size.
/// * [`DirBackend::LimitedPtr`] — `ptrs` node pointers; an entry whose
///   sharer count exceeds `ptrs` *overflows to broadcast* (DASH's
///   `Dir_i B` scheme): invalidations go to every node until the entry
///   is rebuilt from scratch.
/// * [`DirBackend::CoarseVec`] — a `bits`-bit vector, each bit covering
///   `ceil(nodes / bits)` consecutive nodes; invalidations go to every
///   node of every group containing a sharer.
///
/// The defaults (`ptrs: 64`, `bits: 64`) re-spend exactly the storage
/// budget of the original single-`u64` full map, which makes all three
/// backends bit-identical on machines of ≤ 64 nodes (a 64-node set can
/// neither overflow 64 pointers nor be coarsened by 64 bits) while
/// genuinely over-invalidating at kilonode scale.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DirBackend {
    /// Full bit-vector: one presence bit per node, always precise.
    FullMap,
    /// `ptrs` exact node pointers, overflowing to broadcast beyond.
    LimitedPtr {
        /// Pointer capacity before the entry falls back to broadcast.
        ptrs: u16,
    },
    /// A `bits`-bit coarse vector over groups of consecutive nodes.
    CoarseVec {
        /// Vector width; each bit covers `ceil(nodes / bits)` nodes.
        bits: u16,
    },
}

impl DirBackend {
    /// The three backends under their default parameters, in
    /// presentation order.
    pub fn all() -> [DirBackend; 3] {
        [
            DirBackend::FullMap,
            DirBackend::LimitedPtr { ptrs: 64 },
            DirBackend::CoarseVec { bits: 64 },
        ]
    }

    /// Short stable label ("full-map", "limited-ptr", "coarse-vec").
    pub fn label(self) -> &'static str {
        match self {
            DirBackend::FullMap => "full-map",
            DirBackend::LimitedPtr { .. } => "limited-ptr",
            DirBackend::CoarseVec { .. } => "coarse-vec",
        }
    }
}

impl Default for DirBackend {
    /// Full-map: the always-precise representation.
    fn default() -> DirBackend {
        DirBackend::FullMap
    }
}

impl fmt::Display for DirBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of a processing node (`0..nodes`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {}", self.0)
    }
}

/// Static configuration of a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processing nodes. The paper's machine has 32.
    pub nodes: usize,
    /// Cycle costs for protocol events.
    pub cost: CostModel,
    /// Event-trace capacity; 0 disables tracing.
    pub trace_capacity: usize,
    /// Network fault injection; the default is a reliable network.
    pub faults: FaultConfig,
    /// Network topology for the link-contention model. Only consulted
    /// when the cost model sets a finite link bandwidth; the default is
    /// the CM-5's 4-ary fat tree.
    pub topology: Topology,
    /// Capture mode: record a *complete*, re-priceable charge stream
    /// (symbolic [`crate::trace::Event::Charge`] records, coalesced
    /// [`crate::trace::Event::Work`] records, network
    /// [`crate::trace::Event::Xfer`] crossings) into the trace, from
    /// which the `lcm-replay` crate can rebuild clocks and ledgers under
    /// any cost model. Off by default — ordinary runs record only the
    /// protocol-level events they always did.
    pub capture: bool,
    /// Directory sharer-set representation (see [`DirBackend`]). The
    /// default full-map backend reproduces the original precise
    /// invalidation behavior at any size.
    pub directory: DirBackend,
}

impl MachineConfig {
    /// A machine of `nodes` processors with the default (CM-5-shaped)
    /// cost model and tracing disabled.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `nodes > `[`MAX_NODES`] (directory
    /// sharer sets are fixed-capacity bitmasks; an oversized machine
    /// would silently alias sharers).
    pub fn new(nodes: usize) -> MachineConfig {
        assert!(nodes > 0, "a machine needs at least one node");
        assert!(
            nodes <= MAX_NODES,
            "a machine of {nodes} nodes exceeds the {MAX_NODES}-node limit \
             (directory sharer sets are fixed-capacity {MAX_NODES}-bit masks)"
        );
        MachineConfig {
            nodes,
            cost: CostModel::default(),
            trace_capacity: 0,
            faults: FaultConfig::default(),
            topology: Topology::default(),
            capture: false,
            directory: DirBackend::default(),
        }
    }

    /// Replaces the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> MachineConfig {
        self.cost = cost;
        self
    }

    /// Enables tracing with the given capacity.
    pub fn with_trace(mut self, capacity: usize) -> MachineConfig {
        self.trace_capacity = capacity;
        self
    }

    /// Enables deterministic network fault injection.
    pub fn with_faults(mut self, faults: FaultConfig) -> MachineConfig {
        self.faults = faults;
        self
    }

    /// Replaces the network topology (effective only under a finite
    /// link bandwidth).
    pub fn with_topology(mut self, topology: Topology) -> MachineConfig {
        self.topology = topology;
        self
    }

    /// Enables capture mode with a trace of `capacity` events: the run
    /// records a complete, re-priceable charge stream for the replay
    /// engine. The capacity must be generous — a capture that drops
    /// events is useless, and the replay writer refuses it.
    pub fn with_capture(mut self, capacity: usize) -> MachineConfig {
        self.trace_capacity = capacity;
        self.capture = true;
        self
    }

    /// Replaces the directory sharer-set backend.
    pub fn with_directory(mut self, directory: DirBackend) -> MachineConfig {
        self.directory = directory;
        self
    }
}

impl Default for MachineConfig {
    /// The paper's 32-node configuration.
    fn default() -> MachineConfig {
        MachineConfig::new(32)
    }
}

/// The simulated machine: per-node logical clocks, statistics, and the
/// event trace. Protocols and runtimes hold one `Machine` and charge all
/// costs through it.
#[derive(Clone, Debug)]
pub struct Machine {
    cost: CostModel,
    clocks: Vec<u64>,
    stats: Vec<NodeStats>,
    trace: Trace,
    ledger: CycleLedger,
    phases: Vec<PhaseSnapshot>,
    barriers: u64,
    faults: FaultPlan,
    /// Link-contention state; `None` under unlimited bandwidth (the
    /// default), in which case delivery charges are byte-identical to
    /// the flat per-message model.
    fabric: Option<Fabric>,
    /// Capture mode: record the complete charge stream (see
    /// [`MachineConfig::with_capture`]).
    capture: bool,
    /// Directory sharer-set backend the protocols above should build
    /// their directories with (see [`DirBackend`]).
    dir_backend: DirBackend,
    /// Per-node `(compute cycles, cache hits)` accumulated but not yet
    /// written to the trace as a [`Event::Work`] record. Clocks and
    /// ledger are bumped immediately; only the *record* is deferred, so
    /// the per-access stream coalesces into one event per node per
    /// synchronization interval. Empty unless capturing.
    pending: Vec<(u64, u64)>,
}

impl Machine {
    /// Builds a machine from a configuration.
    pub fn new(config: MachineConfig) -> Machine {
        let trace = if config.trace_capacity > 0 {
            Trace::with_capacity(config.trace_capacity)
        } else {
            Trace::disabled()
        };
        let fabric = if config.cost.link_bandwidth_bytes_per_cycle > 0 {
            Some(Fabric::new(config.topology, config.nodes, &config.cost))
        } else {
            None
        };
        Machine {
            cost: config.cost,
            clocks: vec![0; config.nodes],
            stats: vec![NodeStats::default(); config.nodes],
            trace,
            ledger: CycleLedger::new(config.nodes),
            phases: Vec::new(),
            barriers: 0,
            faults: FaultPlan::new(config.faults),
            fabric,
            capture: config.capture,
            dir_backend: config.directory,
            pending: vec![(0, 0); config.nodes],
        }
    }

    /// The directory backend configured for this machine. Protocols that
    /// maintain a sharer directory (Stache, and LCM through its embedded
    /// Stache) construct their representation from this.
    #[inline]
    pub fn dir_backend(&self) -> DirBackend {
        self.dir_backend
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.clocks.len()
    }

    /// Iterates over all node ids in ascending order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes() as u16).map(NodeId)
    }

    /// The cost model in force.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The logical clock of `node`, in cycles.
    #[inline]
    pub fn clock(&self, node: NodeId) -> u64 {
        self.clocks[node.index()]
    }

    /// The one primitive clock mutation: advances `node`'s clock by
    /// `cycles` and attributes them to `cat` in the ledger, recording
    /// nothing. Every public charging path funnels through here (or the
    /// barrier path), which is what makes the ledger conservation
    /// invariant hold by construction.
    #[inline]
    fn bump(&mut self, node: NodeId, cycles: u64, cat: CycleCat) {
        self.clocks[node.index()] += cycles;
        self.ledger.charge(node, cat, cycles);
    }

    /// Advances `node`'s clock by `cycles`, attributed to local compute.
    #[inline]
    pub fn advance(&mut self, node: NodeId, cycles: u64) {
        self.bump(node, cycles, CycleCat::Compute);
        if self.capture {
            self.pending[node.index()].0 += cycles;
        }
    }

    /// Advances `node`'s clock by `cycles`, attributing them to `cat` in
    /// the cycle ledger. The cycles are taken as a *raw*, model-
    /// independent quantity: under capture they record as a
    /// [`Event::ChargeRaw`] that replays verbatim. Charges derived from a
    /// cost-model price should go through [`Machine::charge`] instead so
    /// replay can re-price them.
    #[inline]
    pub fn advance_as(&mut self, node: NodeId, cycles: u64, cat: CycleCat) {
        self.bump(node, cycles, cat);
        if self.capture && cycles > 0 {
            self.trace.record_at(
                self.clocks[node.index()],
                Event::ChargeRaw { node, cat, cycles },
            );
        }
    }

    /// Charges `node` with `units` × the price of `knob` under the
    /// machine's cost model, attributed to `cat`; returns the cycles
    /// charged. Under capture the charge records *symbolically* (knob +
    /// units, not cycles), which is what lets the replay engine re-price
    /// a captured run under an arbitrary cost model.
    #[inline]
    pub fn charge(&mut self, node: NodeId, cat: CycleCat, knob: Knob, units: u64) -> u64 {
        let cycles = knob.eval(&self.cost).saturating_mul(units);
        self.bump(node, cycles, cat);
        if self.capture {
            debug_assert!(u32::try_from(units).is_ok(), "charge units overflow u32");
            self.trace.record_at(
                self.clocks[node.index()],
                Event::Charge {
                    node,
                    cat,
                    knob,
                    units: units as u32,
                },
            );
        }
        cycles
    }

    /// Charges `node` one cache hit (the model's `cache_hit` price, under
    /// compute). Under capture, hits coalesce into the node's pending
    /// [`Event::Work`] record instead of recording individually.
    #[inline]
    pub fn hit(&mut self, node: NodeId) {
        self.bump(node, self.cost.cache_hit, CycleCat::Compute);
        if self.capture {
            self.pending[node.index()].1 += 1;
        }
    }

    /// True while the machine is recording a re-priceable capture stream.
    #[inline]
    pub fn capture_enabled(&self) -> bool {
        self.capture
    }

    /// Writes `node`'s pending compute/hit accumulator to the trace as a
    /// [`Event::Work`] record. Called before any record whose replay
    /// reads `node`'s clock mid-stream.
    fn flush_pending(&mut self, node: NodeId) {
        let (cycles, hits) = std::mem::take(&mut self.pending[node.index()]);
        if cycles > 0 || hits > 0 {
            self.trace.record_at(
                self.clocks[node.index()],
                Event::Work { node, cycles, hits },
            );
        }
    }

    /// Flushes every node's pending [`Event::Work`] accumulator (before
    /// barriers, phase marks, and at the end of a capture).
    fn flush_all_pending(&mut self) {
        for i in 0..self.pending.len() {
            self.flush_pending(NodeId(i as u16));
        }
    }

    /// Finalizes a capture: flushes all pending coalesced work records so
    /// the trace is a complete account of every charged cycle. Call once
    /// after the program finishes, before reading the trace. No-op
    /// outside capture mode.
    pub fn finish_capture(&mut self) {
        if self.capture {
            self.flush_all_pending();
        }
    }

    /// Advances every node's clock by `cycles` (e.g. broadcast handler work).
    pub fn advance_all(&mut self, cycles: u64) {
        for i in 0..self.clocks.len() {
            self.advance_as(NodeId(i as u16), cycles, CycleCat::Compute);
        }
    }

    /// Executes a global barrier: all clocks jump to the maximum plus the
    /// model's barrier cost. Returns the post-barrier time.
    ///
    /// Under an active fault plan with stall settings, each node may be
    /// scheduled to stall: it leaves the barrier `stall_cycles` late
    /// (recovering by the next synchronization point). Stalls change
    /// clocks and statistics only, never data.
    pub fn barrier(&mut self) -> u64 {
        let max = self.time();
        let after = max + self.cost.barrier_cost(self.nodes());
        if self.capture {
            // Replay recomputes each node's barrier wait from its clock
            // at the Barrier record, so every pending work record must
            // land first.
            self.flush_all_pending();
        }
        for (i, c) in self.clocks.iter_mut().enumerate() {
            // The jump to the common release time is this node's barrier
            // wait: idle cycles spent on slower peers plus the barrier's
            // own cost.
            self.ledger
                .charge(NodeId(i as u16), CycleCat::BarrierWait, after - *c);
            *c = after;
        }
        for s in &mut self.stats {
            s.barriers += 1;
        }
        self.barriers += 1;
        // Recorded before any post-barrier fault stalls so a replaying
        // consumer sees the synchronization point first; the stamp is the
        // explicit release time either way.
        self.trace.record_at(after, Event::Barrier { at: after });
        if self.faults.is_active() {
            for i in 0..self.clocks.len() {
                if let Some(stall) = self.faults.barrier_stall() {
                    let node = NodeId(i as u16);
                    self.advance_as(node, stall, CycleCat::RetryBackoff);
                    self.stats[i].stall_cycles += stall;
                }
            }
        }
        after
    }

    /// Current simulated time: the maximum node clock.
    ///
    /// For phase-structured programs that end with a barrier this is the
    /// program's execution time, the metric of the paper's Figures 2–3.
    pub fn time(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Number of global barriers executed.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Statistics of `node`.
    #[inline]
    pub fn stats(&self, node: NodeId) -> &NodeStats {
        &self.stats[node.index()]
    }

    /// Mutable statistics of `node` (protocols update these directly).
    #[inline]
    pub fn stats_mut(&mut self, node: NodeId) -> &mut NodeStats {
        &mut self.stats[node.index()]
    }

    /// Sum of all nodes' statistics.
    pub fn total_stats(&self) -> NodeStats {
        let mut total = NodeStats::default();
        for s in &self.stats {
            total.add(s);
        }
        total
    }

    /// Routes one delivered `bytes`-sized message `from -> to` through
    /// the contention fabric, charging the queueing and serialization
    /// delay to the *receiving* node under
    /// [`CycleCat::NetContention`]. The message enters the network at
    /// the sender's current clock. A no-op (zero state touched, zero
    /// cycles charged) while the cost model's link bandwidth is
    /// unlimited — the default — so the flat-cost network is
    /// reproduced byte for byte.
    ///
    /// Delivery layers call this once per message that actually crosses
    /// the wire; lost attempts die before serialization and never
    /// reserve links.
    pub fn network_transfer(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        if self.capture {
            // Replay reads the sender's clock at this record to re-enter
            // the message into its own fabric — even when this capture
            // ran without one (bandwidth can be *added* at replay time).
            self.flush_pending(from);
            self.trace
                .record_at(self.clocks[from.index()], Event::Xfer { from, to, bytes });
        }
        let Some(fabric) = &mut self.fabric else {
            return;
        };
        let now = self.clocks[from.index()];
        let (queue, ser) = fabric.transfer(from, to, bytes, now);
        let extra = queue + ser;
        if extra > 0 {
            // Deliberately unrecorded (`bump`, not `advance_as`): replay
            // re-derives the contention charge from the Xfer record, so
            // recording it too would double-charge the receiver.
            self.bump(to, extra, CycleCat::NetContention);
        }
    }

    /// True when the link-contention model is active (finite bandwidth).
    pub fn contention_enabled(&self) -> bool {
        self.fabric.is_some()
    }

    /// Per-link utilization of the contention fabric: links that saw
    /// traffic only, in table order. Empty while contention is disabled.
    pub fn link_utilization(&self) -> Vec<LinkUtil> {
        self.fabric
            .as_ref()
            .map_or_else(Vec::new, Fabric::utilization)
    }

    /// The fault plan in force (inactive by default).
    #[inline]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable access to the fault plan (the delivery layer draws message
    /// outcomes through this).
    #[inline]
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Records an event into the trace, stamped with the acting node's
    /// clock — or the machine time for global events (no-op when tracing
    /// is disabled).
    #[inline]
    pub fn record(&mut self, event: Event) {
        if !self.trace.is_enabled() {
            return;
        }
        let cycle = match event.node() {
            Some(n) => self.clocks[n.index()],
            None => self.time(),
        };
        self.trace.record_at(cycle, event);
    }

    /// The cycle ledger: per-node, per-category attribution of every
    /// charged cycle.
    pub fn ledger(&self) -> &CycleLedger {
        &self.ledger
    }

    /// Checks the ledger conservation invariant: for every node, the sum
    /// over categories equals the node's clock. Errors with a description
    /// of the first violating node.
    pub fn verify_ledger(&self) -> Result<(), String> {
        self.ledger.check_against(&self.clocks).map_err(|(n, sum, clock)| {
            format!("cycle ledger violates conservation on {n}: categories sum to {sum} but the clock reads {clock}")
        })
    }

    /// Stamps a phase boundary: snapshots cumulative time, statistics and
    /// ledger totals under `label`. Runtimes call this after each parallel
    /// step's closing barrier; consumers difference consecutive snapshots
    /// for per-phase metrics.
    pub fn mark_phase(&mut self, label: &'static str) {
        if self.capture {
            // The mark is a seek point in the capture file: all coalesced
            // work must be on record before it.
            self.flush_all_pending();
            self.trace
                .record_at(self.time(), Event::PhaseMark { label });
        }
        self.phases.push(PhaseSnapshot {
            label,
            at: self.time(),
            totals: self.total_stats(),
            cycles: self.ledger.totals(),
        });
    }

    /// Phase-boundary snapshots recorded so far, oldest first.
    pub fn phases(&self) -> &[PhaseSnapshot] {
        &self.phases
    }

    /// Resets clocks, statistics, barrier count, ledger, phase marks and
    /// trace to zero, keeping the configuration. Used between warm-up and
    /// measured phases.
    pub fn reset_measurements(&mut self) {
        for c in &mut self.clocks {
            *c = 0;
        }
        for s in &mut self.stats {
            *s = NodeStats::default();
        }
        self.barriers = 0;
        self.ledger.clear();
        self.phases.clear();
        self.trace.clear();
        for p in &mut self.pending {
            *p = (0, 0);
        }
        if let Some(fabric) = &mut self.fabric {
            fabric.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_machine_is_quiescent() {
        let m = Machine::new(MachineConfig::new(4));
        assert_eq!(m.nodes(), 4);
        assert_eq!(m.time(), 0);
        assert_eq!(m.total_stats().accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        MachineConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds the 1024-node limit")]
    fn oversized_machines_are_rejected_not_aliased() {
        // Regression: sharer sets are fixed-capacity masks; an oversized
        // machine used to construct fine and silently alias the first
        // out-of-range node onto the mask arithmetic downstream.
        MachineConfig::new(MAX_NODES + 1);
    }

    #[test]
    fn the_full_1024_node_machine_still_constructs() {
        let m = Machine::new(MachineConfig::new(MAX_NODES));
        assert_eq!(m.nodes(), 1024);
    }

    #[test]
    fn dir_backend_defaults_to_full_map_and_is_configurable() {
        let m = Machine::new(MachineConfig::new(4));
        assert_eq!(m.dir_backend(), DirBackend::FullMap);
        let m =
            Machine::new(MachineConfig::new(4).with_directory(DirBackend::LimitedPtr { ptrs: 4 }));
        assert_eq!(m.dir_backend(), DirBackend::LimitedPtr { ptrs: 4 });
        let labels: Vec<&str> = DirBackend::all().iter().map(|b| b.label()).collect();
        assert_eq!(labels, vec!["full-map", "limited-ptr", "coarse-vec"]);
        assert_eq!(DirBackend::CoarseVec { bits: 64 }.to_string(), "coarse-vec");
    }

    #[test]
    fn network_transfer_is_a_noop_under_unlimited_bandwidth() {
        let mut m = Machine::new(MachineConfig::new(4));
        assert!(!m.contention_enabled());
        m.network_transfer(NodeId(0), NodeId(1), 48);
        assert_eq!(m.time(), 0, "no cycles charged");
        assert!(m.link_utilization().is_empty());
        m.verify_ledger().unwrap();
    }

    #[test]
    fn network_transfer_charges_the_receiver_under_net_contention() {
        let mut cost = CostModel::cm5();
        cost.link_bandwidth_bytes_per_cycle = 4;
        cost.ni_occupancy = 10;
        let mut m = Machine::new(MachineConfig::new(4).with_cost(cost));
        assert!(m.contention_enabled());
        m.network_transfer(NodeId(0), NodeId(1), 48);
        let charged = m.clock(NodeId(1));
        assert!(charged > 0, "serialization lands on the receiver");
        assert_eq!(m.ledger().get(NodeId(1), CycleCat::NetContention), charged);
        assert_eq!(m.clock(NodeId(0)), 0, "sender clock untouched");
        assert!(!m.link_utilization().is_empty());
        m.verify_ledger().expect("contention cycles are ledgered");
        m.reset_measurements();
        assert!(m.link_utilization().is_empty(), "reset clears the fabric");
    }

    #[test]
    fn advance_and_time() {
        let mut m = Machine::new(MachineConfig::new(3));
        m.advance(NodeId(0), 10);
        m.advance(NodeId(2), 25);
        assert_eq!(m.clock(NodeId(0)), 10);
        assert_eq!(m.clock(NodeId(1)), 0);
        assert_eq!(m.time(), 25);
        m.advance_all(5);
        assert_eq!(m.clock(NodeId(1)), 5);
        assert_eq!(m.time(), 30);
    }

    #[test]
    fn barrier_synchronizes_to_max_plus_cost() {
        let cfg = MachineConfig::new(4).with_cost(CostModel::unit());
        let mut m = Machine::new(cfg);
        m.advance(NodeId(1), 100);
        let t = m.barrier();
        assert_eq!(t, 101); // unit barrier cost
        for n in m.node_ids() {
            assert_eq!(m.clock(n), 101);
            assert_eq!(m.stats(n).barriers, 1);
        }
        assert_eq!(m.barriers(), 1);
    }

    #[test]
    fn total_stats_sums_nodes() {
        let mut m = Machine::new(MachineConfig::new(2));
        m.stats_mut(NodeId(0)).read_hits = 3;
        m.stats_mut(NodeId(1)).read_hits = 4;
        assert_eq!(m.total_stats().read_hits, 7);
    }

    #[test]
    fn reset_measurements_clears_everything() {
        let cfg = MachineConfig::new(2).with_trace(16);
        let mut m = Machine::new(cfg);
        m.advance(NodeId(0), 5);
        m.stats_mut(NodeId(0)).read_hits = 1;
        m.barrier();
        m.reset_measurements();
        assert_eq!(m.time(), 0);
        assert_eq!(m.total_stats().read_hits, 0);
        assert_eq!(m.barriers(), 0);
        assert!(m.trace().events().is_empty());
    }

    #[test]
    fn trace_enabled_by_config() {
        let mut m = Machine::new(MachineConfig::new(1).with_trace(8));
        assert!(m.trace().is_enabled());
        m.barrier();
        assert_eq!(m.trace().events().len(), 1);
    }

    #[test]
    fn barrier_syncs_arbitrarily_skewed_clocks_to_max() {
        let cfg = MachineConfig::new(5).with_cost(CostModel::free());
        let mut m = Machine::new(cfg);
        // Heavily skewed clocks: one idle node, one far ahead.
        m.advance(NodeId(0), 1);
        m.advance(NodeId(2), 1_000_000);
        m.advance(NodeId(4), 37);
        let t = m.barrier();
        assert_eq!(
            t, 1_000_000,
            "free model: barrier lands exactly on the max clock"
        );
        for n in m.node_ids() {
            assert_eq!(m.clock(n), t, "{n} synchronized");
        }
        // A second barrier from an already-synchronized state is a no-op
        // under the free model.
        assert_eq!(m.barrier(), t);
    }

    #[test]
    fn barrier_stalls_charge_cycles_deterministically() {
        use crate::fault::FaultConfig;
        let faults = FaultConfig {
            stall_rate: 0.5,
            stall_cycles: 777,
            ..FaultConfig::default()
        };
        let run = || {
            let cfg = MachineConfig::new(8)
                .with_cost(CostModel::unit())
                .with_faults(faults);
            let mut m = Machine::new(cfg);
            for _ in 0..10 {
                m.barrier();
            }
            (m.time(), m.total_stats().stall_cycles)
        };
        let (t1, s1) = run();
        let (t2, s2) = run();
        assert_eq!((t1, s1), (t2, s2), "identical seeds, identical stalls");
        assert!(s1 > 0, "some node stalled across 10 barriers at rate 0.5");
        assert_eq!(s1 % 777, 0);
    }

    #[test]
    fn inactive_faults_leave_barrier_untouched() {
        let mut plain = Machine::new(MachineConfig::new(4).with_cost(CostModel::unit()));
        let mut with_plan = Machine::new(
            MachineConfig::new(4)
                .with_cost(CostModel::unit())
                .with_faults(crate::fault::FaultConfig::default()),
        );
        for _ in 0..5 {
            assert_eq!(plain.barrier(), with_plan.barrier());
        }
        assert_eq!(with_plan.total_stats().stall_cycles, 0);
        assert_eq!(with_plan.faults().decisions(), 0);
    }

    #[test]
    fn ledger_conserves_cycles_across_advances_and_barriers() {
        use crate::profile::CycleCat;
        let mut m = Machine::new(MachineConfig::new(4));
        m.advance(NodeId(0), 123);
        m.advance_as(NodeId(1), 500, CycleCat::ReadStallRemote);
        m.advance_all(7);
        m.barrier();
        m.advance_as(NodeId(3), 42, CycleCat::FlushReconcile);
        m.barrier();
        m.verify_ledger().expect("ledger conserves every cycle");
        assert_eq!(m.ledger().get(NodeId(1), CycleCat::ReadStallRemote), 500);
        assert!(m.ledger().cat_total(CycleCat::BarrierWait) > 0);
        for n in m.node_ids() {
            assert_eq!(m.ledger().node_total(n), m.clock(n));
        }
    }

    #[test]
    fn ledger_attributes_fault_stalls_to_retry_backoff() {
        use crate::fault::FaultConfig;
        use crate::profile::CycleCat;
        let faults = FaultConfig {
            stall_rate: 1.0,
            stall_cycles: 99,
            ..FaultConfig::default()
        };
        let mut m = Machine::new(MachineConfig::new(4).with_faults(faults));
        for _ in 0..3 {
            m.barrier();
        }
        m.verify_ledger().expect("stalls are ledgered too");
        assert_eq!(
            m.ledger().cat_total(CycleCat::RetryBackoff),
            m.total_stats().stall_cycles
        );
    }

    #[test]
    fn events_are_stamped_with_the_acting_nodes_clock() {
        use crate::mem::BlockId;
        let mut m = Machine::new(MachineConfig::new(2).with_trace(8));
        m.advance(NodeId(1), 77);
        m.record(Event::Mark {
            node: NodeId(1),
            block: BlockId(3),
        });
        m.record(Event::Reconcile {
            block: BlockId(3),
            versions: 1,
        });
        let ev = m.trace().events();
        assert_eq!(ev[0].cycle, 77, "stamped with node 1's clock");
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[1].cycle, 77, "global events use machine time");
        assert_eq!(ev[1].seq, 1);
    }

    #[test]
    fn mark_phase_snapshots_cumulative_state() {
        let mut m = Machine::new(MachineConfig::new(2).with_cost(CostModel::unit()));
        m.advance(NodeId(0), 10);
        m.barrier();
        m.mark_phase("init");
        m.advance(NodeId(1), 5);
        m.barrier();
        m.mark_phase("apply");
        let ph = m.phases();
        assert_eq!(ph.len(), 2);
        assert_eq!(ph[0].label, "init");
        assert_eq!(ph[0].at, 11);
        assert_eq!(ph[1].at, 17);
        assert!(ph[1].totals.barriers > ph[0].totals.barriers);
        m.reset_measurements();
        assert!(m.phases().is_empty());
        m.verify_ledger()
            .expect("reset ledger matches reset clocks");
    }

    #[test]
    fn capture_off_records_no_pricing_events() {
        use crate::profile::CycleCat;
        let mut m = Machine::new(MachineConfig::new(2).with_trace(64));
        assert!(!m.capture_enabled());
        m.advance(NodeId(0), 10);
        m.hit(NodeId(0));
        m.charge(NodeId(1), CycleCat::ReadStallRemote, Knob::RemoteMiss, 1);
        m.advance_as(NodeId(1), 5, CycleCat::RetryBackoff);
        m.network_transfer(NodeId(0), NodeId(1), 48);
        m.mark_phase("p");
        m.finish_capture();
        let b = m.barrier();
        let ev = m.trace().to_vec();
        assert_eq!(ev.len(), 1, "only the barrier is recorded: {ev:?}");
        assert_eq!(ev[0].event, Event::Barrier { at: b });
    }

    #[test]
    fn capture_records_a_complete_repriceable_stream() {
        use crate::profile::CycleCat;
        let cost = CostModel::cm5();
        let mut m = Machine::new(MachineConfig::new(2).with_capture(64));
        assert!(m.capture_enabled());
        m.advance(NodeId(0), 10);
        m.hit(NodeId(0));
        m.hit(NodeId(0));
        let charged = m.charge(NodeId(1), CycleCat::ReadStallRemote, Knob::RemoteMiss, 2);
        assert_eq!(charged, 2 * cost.remote_miss);
        m.advance_as(NodeId(1), 5, CycleCat::RetryBackoff);
        m.barrier();
        m.finish_capture();
        let kinds: Vec<&str> = m.trace().events().iter().map(|e| e.event.kind()).collect();
        assert_eq!(kinds, vec!["charge", "charge_raw", "work", "barrier"]);
        let ev = m.trace().to_vec();
        assert_eq!(
            ev[0].event,
            Event::Charge {
                node: NodeId(1),
                cat: CycleCat::ReadStallRemote,
                knob: Knob::RemoteMiss,
                units: 2
            }
        );
        assert_eq!(
            ev[2].event,
            Event::Work {
                node: NodeId(0),
                cycles: 10,
                hits: 2
            },
            "compute and hits coalesce into one record, flushed at the barrier"
        );
        m.verify_ledger().unwrap();
    }

    #[test]
    fn capture_flushes_pending_work_before_xfer_records() {
        let mut cost = CostModel::cm5();
        cost.link_bandwidth_bytes_per_cycle = 4;
        let mut m = Machine::new(MachineConfig::new(2).with_capture(64).with_cost(cost));
        m.advance(NodeId(0), 7);
        m.network_transfer(NodeId(0), NodeId(1), 48);
        let ev = m.trace().to_vec();
        assert_eq!(
            ev[0].event,
            Event::Work {
                node: NodeId(0),
                cycles: 7,
                hits: 0
            },
            "sender's pending work lands before the crossing"
        );
        assert_eq!(
            ev[1].event,
            Event::Xfer {
                from: NodeId(0),
                to: NodeId(1),
                bytes: 48
            }
        );
        assert_eq!(ev[1].cycle, 7, "xfer stamped with the sender's clock");
        // The receiver's contention charge is derived state: it must NOT
        // appear as a charge record (replay recomputes it from the Xfer).
        assert!(ev[2..].iter().all(|e| e.event.kind() != "charge_raw"));
        m.verify_ledger().unwrap();
    }

    #[test]
    fn capture_records_xfers_even_without_a_fabric() {
        let mut m = Machine::new(MachineConfig::new(2).with_capture(16));
        m.network_transfer(NodeId(0), NodeId(1), 48);
        assert_eq!(
            m.time(),
            0,
            "no contention charged under unlimited bandwidth"
        );
        assert_eq!(
            m.trace().to_vec()[0].event,
            Event::Xfer {
                from: NodeId(0),
                to: NodeId(1),
                bytes: 48
            },
            "replay can still introduce bandwidth later"
        );
    }

    #[test]
    fn capture_marks_phases_and_resets_clear_pending() {
        let mut m = Machine::new(MachineConfig::new(2).with_capture(64));
        m.advance(NodeId(1), 3);
        m.mark_phase("init");
        let ev = m.trace().to_vec();
        assert_eq!(
            ev[0].event,
            Event::Work {
                node: NodeId(1),
                cycles: 3,
                hits: 0
            }
        );
        assert_eq!(ev[1].event, Event::PhaseMark { label: "init" });
        m.advance(NodeId(0), 9);
        m.reset_measurements();
        m.finish_capture();
        assert!(
            m.trace().events().is_empty(),
            "reset drops pending work along with the trace"
        );
    }

    #[test]
    fn node_ids_iterates_in_order() {
        let m = Machine::new(MachineConfig::new(3));
        let ids: Vec<_> = m.node_ids().collect();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}

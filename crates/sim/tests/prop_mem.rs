//! Property tests for the memory geometry primitives.

use lcm_sim::mem::{Addr, BlockBuf, BlockId, WordMask, BLOCK_BYTES, WORDS_PER_BLOCK};
use lcm_sim::Pcg32;
use proptest::prelude::*;

proptest! {
    /// Address → (block, word) → address round-trips for aligned words.
    #[test]
    fn addr_block_word_roundtrip(block in 0u64..1 << 40, word in 0usize..WORDS_PER_BLOCK) {
        let addr = BlockId(block).word_addr(word);
        prop_assert_eq!(addr.block(), BlockId(block));
        prop_assert_eq!(addr.word_in_block(), word);
        prop_assert!(addr.is_word_aligned());
    }

    /// Any byte address maps into its block's byte range.
    #[test]
    fn addr_offsets_stay_in_block(a in 0u64..1 << 44) {
        let addr = Addr(a);
        let base = addr.block().base_addr();
        prop_assert!(base.0 <= a);
        prop_assert!(a < base.0 + BLOCK_BYTES as u64);
    }

    /// WordMask union/intersection/minus behave like u8 bit sets.
    #[test]
    fn word_mask_algebra(a in 0u8.., b in 0u8..) {
        let (ma, mb) = (WordMask(a), WordMask(b));
        prop_assert_eq!(ma.union(mb).0, a | b);
        prop_assert_eq!(ma.intersect(mb).0, a & b);
        prop_assert_eq!(ma.minus(mb).0, a & !b);
        prop_assert_eq!(ma.overlaps(mb), a & b != 0);
        prop_assert_eq!(ma.count(), a.count_ones());
        // minus then union with the intersection restores the original.
        prop_assert_eq!(ma.minus(mb).union(ma.intersect(mb)).0, a);
    }

    /// iter_set enumerates exactly the set bits, ascending.
    #[test]
    fn word_mask_iter_matches_bits(a in 0u8..) {
        let m = WordMask(a);
        let words: Vec<usize> = m.iter_set().collect();
        prop_assert!(words.windows(2).all(|w| w[0] < w[1]));
        for w in 0..WORDS_PER_BLOCK {
            prop_assert_eq!(words.contains(&w), m.get(w));
        }
    }

    /// merge_words copies masked words exactly and nothing else.
    #[test]
    fn merge_words_is_selective(
        dst_words in proptest::array::uniform8(any::<u32>()),
        src_words in proptest::array::uniform8(any::<u32>()),
        mask in 0u8..,
    ) {
        let mut dst = BlockBuf::zeroed();
        let mut src = BlockBuf::zeroed();
        for w in 0..WORDS_PER_BLOCK {
            dst.set_word(w, dst_words[w]);
            src.set_word(w, src_words[w]);
        }
        let m = WordMask(mask);
        let mut merged = dst;
        merged.merge_words(&src, m);
        for w in 0..WORDS_PER_BLOCK {
            let expect = if m.get(w) { src_words[w] } else { dst_words[w] };
            prop_assert_eq!(merged.word(w), expect);
        }
    }

    /// f32/f64 views round-trip through the word representation.
    #[test]
    fn blockbuf_float_roundtrip(v32 in any::<f32>(), v64 in any::<f64>()) {
        let mut b = BlockBuf::zeroed();
        b.set_f32(1, v32);
        b.set_f64(4, v64);
        prop_assert_eq!(b.f32(1).to_bits(), v32.to_bits());
        prop_assert_eq!(b.f64(4).to_bits(), v64.to_bits());
    }

    /// below(n) is uniform enough to stay in range and hit both halves.
    #[test]
    fn pcg_below_stays_in_range(seed in any::<u64>(), n in 1u64..1000) {
        let mut rng = Pcg32::new(seed, 1);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), len in 0usize..64) {
        let mut rng = Pcg32::new(seed, 2);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }
}

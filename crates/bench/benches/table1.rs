//! Table 1 bench: every benchmark × memory system at smoke scale.
//!
//! Criterion measures the *host* cost of simulating each cell of the
//! paper's Table 1; the simulated metrics themselves (misses, clean
//! copies) are printed once per cell for reference. Regenerate the real
//! table with `cargo run -p lcm-bench --release --bin repro -- table1`.

use criterion::{criterion_group, criterion_main, Criterion};
use lcm_apps::experiments::{Benchmark, Scale};
use lcm_apps::SystemKind;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            let r = b.run(Scale::Smoke, s);
            println!(
                "{} / {}: misses={} clean={}",
                b.label(),
                s.label(),
                r.misses(),
                r.clean_copies()
            );
            group.bench_function(format!("{}/{}", b.label(), s.label()), |bench| {
                bench.iter(|| std::hint::black_box(b.run(Scale::Smoke, s).misses()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);

//! §7.5 ablation bench: stale-data regions vs coherent reads across
//! refresh intervals.

use criterion::{criterion_group, criterion_main, Criterion};
use lcm_apps::stale_data::{run_stale, StaleData, StaleSystem};

fn bench_stale(c: &mut Criterion) {
    let mut group = c.benchmark_group("stale_data");
    group.sample_size(10);
    let base = StaleData {
        field_words: 256,
        iters: 20,
        refresh_every: 8,
    };
    let (_, r) = run_stale(StaleSystem::Coherent, 8, &base);
    println!(
        "coherent: {} simulated cycles, {} misses",
        r.time,
        r.misses()
    );
    group.bench_function("coherent", |bench| {
        bench.iter(|| std::hint::black_box(run_stale(StaleSystem::Coherent, 8, &base).1.time));
    });
    for k in [2usize, 8] {
        let w = StaleData {
            refresh_every: k,
            ..base
        };
        let (_, r) = run_stale(StaleSystem::StaleRegion, 8, &w);
        println!(
            "stale k={k}: {} simulated cycles, {} misses",
            r.time,
            r.misses()
        );
        group.bench_function(format!("stale-k{k}"), |bench| {
            bench.iter(|| std::hint::black_box(run_stale(StaleSystem::StaleRegion, 8, &w).1.time));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stale);
criterion_main!(benches);

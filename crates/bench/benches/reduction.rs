//! §7.1 ablation bench: array sum via RSM reduction vs a shared
//! accumulator vs manual partial sums.

use criterion::{criterion_group, criterion_main, Criterion};
use lcm_apps::reduction::{run_reduction, ArraySum, ReductionMethod};

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    group.sample_size(10);
    let w = ArraySum {
        len: 4096,
        passes: 1,
    };
    for method in ReductionMethod::all() {
        let (_, r) = run_reduction(method, 8, &w);
        println!(
            "{}: {} simulated cycles, {} misses",
            method.label(),
            r.time,
            r.misses()
        );
        group.bench_function(method.label(), |bench| {
            bench.iter(|| std::hint::black_box(run_reduction(method, 8, &w).1.time));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);

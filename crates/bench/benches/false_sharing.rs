//! §7.4 ablation bench: false sharing packed vs padded, per system.

use criterion::{criterion_group, criterion_main, Criterion};
use lcm_apps::false_sharing::FalseSharing;
use lcm_apps::{execute, SystemKind};
use lcm_cstar::RuntimeConfig;

fn bench_false_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("false_sharing");
    group.sample_size(10);
    let w = FalseSharing {
        writers: 8,
        rounds: 50,
        padded: false,
    };
    for (label, sys, wl) in [
        ("stache-packed", SystemKind::Stache, w),
        ("stache-padded", SystemKind::Stache, w.padded()),
        ("lcm-mcc-packed", SystemKind::LcmMcc, w),
    ] {
        let (_, r) = execute(sys, w.writers, RuntimeConfig::default(), &wl);
        println!(
            "{label}: {} simulated cycles, {} misses",
            r.time,
            r.misses()
        );
        group.bench_function(label, |bench| {
            bench.iter(|| {
                std::hint::black_box(
                    execute(sys, w.writers, RuntimeConfig::default(), &wl)
                        .1
                        .time,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_false_sharing);
criterion_main!(benches);

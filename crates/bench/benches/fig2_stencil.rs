//! Figure 2 bench: Stencil (stat & dyn) × memory system.
//!
//! Regenerate the real figure with
//! `cargo run -p lcm-bench --release --bin repro -- fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use lcm_apps::stencil::Stencil;
use lcm_apps::{execute, SystemKind};
use lcm_cstar::{Partition, RuntimeConfig};

fn bench_stencil(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_stencil");
    group.sample_size(10);
    for (tag, partition) in [("stat", Partition::Static), ("dyn", Partition::Dynamic)] {
        let w = Stencil {
            rows: 96,
            cols: 96,
            iters: 4,
            partition,
        };
        for s in SystemKind::all() {
            let (_, r) = execute(s, 8, RuntimeConfig::default(), &w);
            println!("Stencil-{tag} / {}: {} simulated cycles", s.label(), r.time);
            group.bench_function(format!("stencil-{tag}/{}", s.label()), |bench| {
                bench.iter(|| {
                    std::hint::black_box(execute(s, 8, RuntimeConfig::default(), &w).1.time)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_stencil);
criterion_main!(benches);

//! Figure 3 bench: Adaptive (stat & dyn), Threshold, Unstructured ×
//! memory system.
//!
//! Regenerate the real figure with
//! `cargo run -p lcm-bench --release --bin repro -- fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use lcm_apps::experiments::{Benchmark, Scale};
use lcm_apps::SystemKind;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for b in [
        Benchmark::AdaptiveStat,
        Benchmark::AdaptiveDyn,
        Benchmark::Threshold,
        Benchmark::Unstructured,
    ] {
        for s in SystemKind::all() {
            let r = b.run(Scale::Smoke, s);
            println!("{} / {}: {} simulated cycles", b.label(), s.label(), r.time);
            group.bench_function(format!("{}/{}", b.label(), s.label()), |bench| {
                bench.iter(|| std::hint::black_box(b.run(Scale::Smoke, s).time));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);

//! The `repro critpath <file.lcmtrace>` CLI contract: corrupt or
//! truncated inputs are usage-level failures — exit code 2 with the
//! format layer's named error on stderr, never a panic.

use lcm_apps::unstructured::Unstructured;
use lcm_apps::SystemKind;
use lcm_bench::explore;
use lcm_cstar::RuntimeConfig;
use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcm-critpath-cli-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A small genuine capture to corrupt.
fn write_capture(path: &std::path::Path) {
    let file = explore::capture_workload(
        "Unstructured",
        "smoke",
        SystemKind::LcmMcc,
        4,
        RuntimeConfig::default(),
        &Unstructured::small(),
        1 << 20,
    )
    .expect("capture holds the whole stream");
    file.write_to(path).expect("writes");
}

#[test]
fn critpath_accepts_a_genuine_capture() {
    let dir = scratch_dir("ok");
    let path = dir.join("unstructured.lcmtrace");
    write_capture(&path);
    let out = repro().arg("critpath").arg(&path).output().expect("runs");
    assert!(
        out.status.success(),
        "genuine capture analyzes: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("makespan"), "report prints: {stdout}");
    assert!(stdout.contains("causal what-ifs"), "what-ifs print");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn critpath_exits_2_on_a_truncated_capture() {
    let dir = scratch_dir("trunc");
    let path = dir.join("unstructured.lcmtrace");
    write_capture(&path);
    let bytes = std::fs::read(&path).expect("reads back");
    let cut = dir.join("truncated.lcmtrace");
    std::fs::write(&cut, &bytes[..bytes.len() / 2]).expect("writes truncation");
    let out = repro().arg("critpath").arg(&cut).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "truncated capture exits 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("critpath:") && stderr.contains("truncated.lcmtrace"),
        "error names the subcommand and the path: {stderr}"
    );
    assert!(
        stderr.contains("checksum") || stderr.contains("too short") || stderr.contains("truncat"),
        "error names the format failure: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn critpath_exits_2_on_garbage() {
    let dir = scratch_dir("garbage");
    let path = dir.join("garbage.lcmtrace");
    std::fs::write(&path, b"this is not a trace").expect("writes garbage");
    let out = repro().arg("critpath").arg(&path).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "garbage exits 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("not a .lcmtrace")
            || stderr.contains("magic")
            || stderr.contains("checksum"),
        "error names the format failure: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn critpath_exits_2_on_a_missing_file() {
    let out = repro()
        .arg("critpath")
        .arg("/nonexistent/never.lcmtrace")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "missing file exits 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("never.lcmtrace"),
        "error names the path: {stderr}"
    );
}

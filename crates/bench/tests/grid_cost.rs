//! Pins the explorer's grid mapping to the one shared helper.
//!
//! Every grid consumer (sensitivity sweeps, the contention section, the
//! explorer, and the serve engine) prices `(bandwidth, latency)` points
//! through [`lcm_sim::CostModel::cm5_grid`]; this test fails if the
//! bench-side wrapper ever drifts from it, or if the mapping itself
//! silently changes.

use lcm_bench::explore;
use lcm_sim::CostModel;

#[test]
fn grid_cost_is_the_shared_cm5_grid_mapping() {
    for bw in [0u64, 64, 16, 4] {
        for lat in [500u64, 3_000, 12_000] {
            assert_eq!(
                explore::grid_cost(bw, lat),
                CostModel::cm5_grid(bw, lat),
                "bw={bw} lat={lat}: grid_cost must be the shared mapping"
            );
        }
    }
    // The mapping itself, pinned at one representative point: latency
    // sets the remote round trip, upgrades are two-thirds of it, the
    // bandwidth knob passes through, everything else stays cm5.
    let c = explore::grid_cost(16, 12_000);
    assert_eq!(c.remote_miss, 12_000);
    assert_eq!(c.upgrade, 8_000);
    assert_eq!(c.link_bandwidth_bytes_per_cycle, 16);
    let mut cm5 = CostModel::cm5();
    cm5.remote_miss = c.remote_miss;
    cm5.upgrade = c.upgrade;
    cm5.link_bandwidth_bytes_per_cycle = c.link_bandwidth_bytes_per_cycle;
    assert_eq!(c, cm5);
}

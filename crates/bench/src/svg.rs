//! A small, dependency-free grouped-bar-chart SVG writer.
//!
//! Used by the `repro` binary's `--svg` flag to draw Figures 2 and 3 the
//! way the paper presents them: one group of bars per benchmark, one bar
//! per memory system, execution time on the y-axis.

/// A grouped bar chart.
#[derive(Clone, Debug)]
pub struct BarChart {
    title: String,
    y_label: String,
    series: Vec<String>,
    groups: Vec<(String, Vec<f64>)>,
}

/// One color per series, chosen for print contrast.
const PALETTE: [&str; 6] = [
    "#4878a8", "#e49444", "#6a9f58", "#d1605e", "#855c8d", "#937860",
];

impl BarChart {
    /// An empty chart with the given title, y-axis label, and series
    /// names (bar order within each group).
    pub fn new(title: &str, y_label: &str, series: &[&str]) -> BarChart {
        BarChart {
            title: title.to_string(),
            y_label: y_label.to_string(),
            series: series.iter().map(|s| s.to_string()).collect(),
            groups: Vec::new(),
        }
    }

    /// Appends a group with one value per series.
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the series count.
    pub fn push_group(&mut self, label: &str, values: &[f64]) {
        assert_eq!(values.len(), self.series.len(), "one value per series");
        self.groups.push((label.to_string(), values.to_vec()));
    }

    /// Renders the chart as a standalone SVG document.
    pub fn to_svg(&self) -> String {
        let (w, h) = (160 + 140 * self.groups.len().max(1), 420);
        let (left, top, bottom) = (90.0, 60.0, 60.0);
        let plot_h = h as f64 - top - bottom;
        let max = self
            .groups
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .fold(f64::MIN_POSITIVE, f64::max);
        let mut out = String::new();
        out.push_str(&format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" font-family="sans-serif">"#
        ));
        out.push('\n');
        out.push_str(&format!(
            r#"<text x="{}" y="30" font-size="18" text-anchor="middle">{}</text>"#,
            w / 2,
            xml_escape(&self.title)
        ));
        out.push('\n');
        // Y axis with four gridlines.
        for i in 0..=4 {
            let frac = i as f64 / 4.0;
            let y = top + plot_h * (1.0 - frac);
            out.push_str(&format!(
                r##"<line x1="{left}" y1="{y:.1}" x2="{}" y2="{y:.1}" stroke="#ddd"/>"##,
                w as f64 - 20.0
            ));
            out.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
                left - 6.0,
                y + 4.0,
                format_si(max * frac)
            ));
            out.push('\n');
        }
        out.push_str(&format!(
            r#"<text x="18" y="{:.1}" font-size="12" transform="rotate(-90 18 {:.1})" text-anchor="middle">{}</text>"#,
            top + plot_h / 2.0,
            top + plot_h / 2.0,
            xml_escape(&self.y_label)
        ));
        out.push('\n');
        // Bars.
        let group_w = 140.0;
        let bar_w = (group_w - 30.0) / self.series.len().max(1) as f64;
        for (gi, (label, values)) in self.groups.iter().enumerate() {
            let gx = left + 10.0 + gi as f64 * group_w;
            for (si, &v) in values.iter().enumerate() {
                let bh = plot_h * (v / max);
                let x = gx + si as f64 * bar_w;
                let y = top + plot_h - bh;
                let color = PALETTE[si % PALETTE.len()];
                out.push_str(&format!(
                    r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bh:.1}" fill="{color}"/>"#,
                    bar_w - 4.0
                ));
                out.push_str(&format!(
                    r#"<text x="{:.1}" y="{:.1}" font-size="9" text-anchor="middle">{}</text>"#,
                    x + (bar_w - 4.0) / 2.0,
                    y - 3.0,
                    format_si(v)
                ));
                out.push('\n');
            }
            out.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
                gx + group_w / 2.0 - 15.0,
                top + plot_h + 20.0,
                xml_escape(label)
            ));
            out.push('\n');
        }
        // Legend.
        for (si, name) in self.series.iter().enumerate() {
            let x = left + 10.0 + si as f64 * 110.0;
            let y = h as f64 - 18.0;
            out.push_str(&format!(
                r#"<rect x="{x:.1}" y="{:.1}" width="12" height="12" fill="{}"/>"#,
                y - 10.0,
                PALETTE[si % PALETTE.len()]
            ));
            out.push_str(&format!(
                r#"<text x="{:.1}" y="{y:.1}" font-size="12">{}</text>"#,
                x + 16.0,
                xml_escape(name)
            ));
            out.push('\n');
        }
        out.push_str("</svg>\n");
        out
    }
}

/// Formats a value with an SI suffix (1.2M, 340k).
fn format_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        let mut c = BarChart::new(
            "Stencil execution time",
            "cycles",
            &["LCM-scc", "LCM-mcc", "Stache"],
        );
        c.push_group("Stencil-stat", &[2.5e9, 1.1e9, 2.2e8]);
        c.push_group("Stencil-dyn", &[7.3e9, 2.3e9, 2.8e9]);
        c
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(
            svg.matches("<rect").count(),
            6 + 3,
            "6 bars + 3 legend swatches"
        );
        assert!(svg.contains("Stencil-stat"));
        assert!(svg.contains("LCM-mcc"));
        assert!(svg.contains("2.5G"));
    }

    #[test]
    fn bars_scale_with_values() {
        let svg = chart().to_svg();
        // The tallest bar (7.3e9) spans the full plot height (300).
        assert!(
            svg.contains(r#"height="300.0""#),
            "max bar fills the plot:\n{svg}"
        );
    }

    #[test]
    #[should_panic(expected = "one value per series")]
    fn group_arity_checked() {
        chart().push_group("bad", &[1.0]);
    }

    #[test]
    fn si_formatting() {
        assert_eq!(format_si(950.0), "950");
        assert_eq!(format_si(1500.0), "2k");
        assert_eq!(format_si(2.5e6), "2.5M");
        assert_eq!(format_si(7.3e9), "7.3G");
    }

    #[test]
    fn titles_are_escaped() {
        let c = BarChart::new("a < b & c", "y", &["s"]);
        assert!(c.to_svg().contains("a &lt; b &amp; c"));
    }
}

//! Rendering for the critical-path profiler: the `critpath.csv` table,
//! the text report and drill-down, Perfetto flow/path annotations, and
//! the delivery-latency rows for `messages.csv`.
//!
//! All functions are pure renderers over [`lcm_replay::CritPath`] — the
//! `repro` binary and the determinism tests go through the same bytes,
//! so `critpath.csv` stays byte-identical at any `--jobs`.

use crate::profile::{percentile, FlowArrow, PathSlice};
use crate::report::MsgLatencyRow;
use lcm_replay::CritPath;
use lcm_sim::CycleCat;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One ranked causal what-if projection.
#[derive(Clone, Debug)]
pub struct WhatIfRow {
    /// Human-readable scaling, e.g. `net_contention x0%`.
    pub item: String,
    /// Projected makespan after the scaling.
    pub predicted: u64,
    /// Validation annotation (e.g. the genuine replay's makespan for an
    /// exactly-checkable projection); empty when unvalidated.
    pub note: String,
}

/// The categories worth reporting for a path: every category with
/// nonzero total cycles, in ledger order.
fn active_cats(cp: &CritPath) -> Vec<CycleCat> {
    let totals = cp.total_by_cat();
    CycleCat::all()
        .into_iter()
        .filter(|c| totals[c.index()] > 0)
        .collect()
}

/// The top-`n` single-category what-ifs: for every active category,
/// project removing it (`x0%`) and halving it (`x50%`), rank by
/// projected makespan ascending (biggest win first; ties by label) and
/// keep `n`. Validation notes are the caller's to add — the renderer
/// never runs a replay.
pub fn top_whatifs(cp: &CritPath, n: usize) -> Vec<WhatIfRow> {
    let mut rows: Vec<(u64, String)> = Vec::new();
    for cat in active_cats(cp) {
        for pct in [0u64, 50] {
            rows.push((cp.whatif(&[cat], pct), format!("{} x{pct}%", cat.label())));
        }
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    rows.truncate(n);
    rows.into_iter()
        .map(|(predicted, item)| WhatIfRow {
            item,
            predicted,
            note: String::new(),
        })
        .collect()
}

/// `critpath.csv`: per benchmark×system, a `summary` block (makespan,
/// slack, epoch count), a `path` block (per-category on-path vs total
/// cycles with the on-path share — `1 - share` is the slack-hidden
/// fraction), and a ranked `whatif` block. Rendered in entry order from
/// pre-computed analyses, so the bytes are independent of `--jobs`.
pub fn critpath_csv(entries: &[(String, String, CritPath, Vec<WhatIfRow>)]) -> String {
    let mut csv = String::from(
        "program,system,row,item,on_path_cycles,total_cycles,share_on_path,\
         predicted_cycles,delta_pct,note\n",
    );
    for (program, system, cp, whatifs) in entries {
        let makespan = cp.makespan;
        let _ = writeln!(
            csv,
            "{program},{system},summary,makespan,{},{makespan},1.0000,,,epochs={}",
            cp.path_length(),
            cp.epochs.len()
        );
        let _ = writeln!(
            csv,
            "{program},{system},summary,slack,0,{},0.0000,,,",
            cp.total_slack()
        );
        let on = cp.on_path_by_cat();
        let totals = cp.total_by_cat();
        for cat in active_cats(cp) {
            let (o, t) = (on[cat.index()], totals[cat.index()]);
            let _ = writeln!(
                csv,
                "{program},{system},path,{},{o},{t},{:.4},,,",
                cat.label(),
                o as f64 / t as f64
            );
        }
        for w in whatifs {
            let delta = 100.0 * (w.predicted as f64 - makespan as f64) / makespan as f64;
            let _ = writeln!(
                csv,
                "{program},{system},whatif,{},,,,{},{delta:+.2},{}",
                w.item, w.predicted, w.note
            );
        }
    }
    csv
}

/// The text slack histogram: power-of-4 buckets over every per-epoch,
/// per-node slack value, with proportional bars. Zero-slack entries
/// (one per epoch: the path-resident node) get their own first bucket.
pub fn slack_histogram(cp: &CritPath) -> String {
    let values = cp.slack_values();
    let mut buckets: Vec<(String, u64)> = vec![("0 (on path)".to_string(), 0)];
    let mut edges: Vec<u64> = Vec::new();
    let max = values.iter().copied().max().unwrap_or(0);
    let mut hi = 4u64;
    while hi / 4 <= max && edges.len() < 24 {
        buckets.push((format!("{}..{}", hi / 4, hi - 1), 0));
        edges.push(hi);
        hi = hi.saturating_mul(4);
        if hi / 4 > max {
            break;
        }
    }
    for v in &values {
        if *v == 0 {
            buckets[0].1 += 1;
        } else {
            let slot = edges
                .iter()
                .position(|&e| *v < e)
                .unwrap_or(edges.len() - 1);
            buckets[slot + 1].1 += 1;
        }
    }
    let peak = buckets.iter().map(|&(_, n)| n).max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (label, n) in &buckets {
        let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
        let _ = writeln!(out, "  {label:<22} {n:>8}  {bar}");
    }
    out
}

/// The per-run text report: path summary, composition table, per-phase
/// residence, slack histogram, hottest on-path blocks and ranked
/// what-ifs.
pub fn critpath_report(cp: &CritPath, whatifs: &[WhatIfRow]) -> String {
    let mut out = String::new();
    let slack = cp.total_slack();
    let busy: u64 = cp.total_by_cat().iter().sum();
    let _ = writeln!(
        out,
        "makespan {} cycles over {} epochs; total slack {} ({:.1}% of all node-cycles \
         is hidden behind a slower node)",
        cp.makespan,
        cp.epochs.len(),
        slack,
        100.0 * slack as f64 / (busy.max(1)) as f64
    );
    out.push_str(&drilldown_table(cp));
    let phases = cp.phase_summary();
    if phases.len() > 1 {
        let _ = writeln!(out, "per-phase path residence:");
        for p in &phases {
            let _ = writeln!(
                out,
                "  {:<10} {:>4} epochs {:>14} path cycles {:>14} slack",
                p.label, p.epochs, p.path_cycles, p.slack
            );
        }
    }
    let _ = writeln!(
        out,
        "slack distribution (cycles ahead of the slowest node):"
    );
    out.push_str(&slack_histogram(cp));
    let blocks = cp.path_blocks();
    if !blocks.is_empty() {
        let _ = writeln!(out, "hottest on-path blocks:");
        for (node, block, cycles) in blocks.iter().take(5) {
            let _ = writeln!(
                out,
                "  block {block:>8} @node{node}: {cycles:>12} cycles on path"
            );
        }
    }
    if !whatifs.is_empty() {
        let _ = writeln!(out, "causal what-ifs (projected makespan):");
        for w in whatifs {
            let delta = 100.0 * (w.predicted as f64 - cp.makespan as f64) / cp.makespan as f64;
            let note = if w.note.is_empty() {
                String::new()
            } else {
                format!("  [{}]", w.note)
            };
            let _ = writeln!(
                out,
                "  {:<26} {:>14} cycles ({delta:+.2}%){note}",
                w.item, w.predicted
            );
        }
    }
    out
}

/// The compact drill-down for the `profile` section: per-category
/// on-path vs slack-hidden cycles. `share` is the fraction of the
/// category's cycles that actually bound the run.
pub fn drilldown_table(cp: &CritPath) -> String {
    let on = cp.on_path_by_cat();
    let totals = cp.total_by_cat();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<18} {:>14} {:>14} {:>14} {:>7}",
        "category", "on_path", "hidden", "total", "share"
    );
    for cat in active_cats(cp) {
        let (o, t) = (on[cat.index()], totals[cat.index()]);
        let _ = writeln!(
            out,
            "  {:<18} {:>14} {:>14} {:>14} {:>6.1}%",
            cat.label(),
            o,
            t - o,
            t,
            100.0 * o as f64 / t as f64
        );
    }
    out
}

/// Perfetto annotations for [`crate::profile::chrome_trace_json_with_flows`]:
/// one [`FlowArrow`] per matched send→recv edge, and one [`PathSlice`]
/// per path-resident epoch segment plus one per barrier join.
pub fn flow_annotations(cp: &CritPath) -> (Vec<FlowArrow>, Vec<PathSlice>) {
    let flows = cp
        .edges
        .iter()
        .map(|e| FlowArrow {
            from: e.from.0,
            to: e.to.0,
            kind: e.kind,
            bytes: e.bytes,
            send_cycle: e.send_cycle,
            recv_cycle: e.recv_cycle,
        })
        .collect();
    let mut path = Vec::new();
    for e in &cp.epochs {
        if e.end > e.start {
            path.push(PathSlice {
                name: format!("{} @node{}", e.label, e.critical),
                start: e.start,
                dur: e.end - e.start,
                args: format!(
                    "\"epoch\":{},\"node\":{},\"slack_total\":{}",
                    e.index,
                    e.critical,
                    (0..cp.nodes).map(|n| e.slack(n)).sum::<u64>()
                ),
            });
        }
        if e.closed_by_barrier && e.barrier_cost > 0 {
            path.push(PathSlice {
                name: "barrier".to_string(),
                start: e.end,
                dur: e.barrier_cost,
                args: format!("\"epoch\":{}", e.index),
            });
        }
    }
    (flows, path)
}

/// `messages.csv` latency rows from an analysis' matched edges: per
/// kind, the p50/p95/p99 send→recv cycle deltas.
pub fn msg_latency_rows(program: &str, system: &str, cp: &CritPath) -> Vec<MsgLatencyRow> {
    let mut by_kind: HashMap<&'static str, Vec<i64>> = HashMap::new();
    for e in &cp.edges {
        by_kind.entry(e.kind).or_default().push(e.latency());
    }
    let mut kinds: Vec<(&'static str, Vec<i64>)> = by_kind.into_iter().collect();
    kinds.sort_by_key(|&(k, _)| k);
    kinds
        .into_iter()
        .map(|(kind, mut v)| {
            v.sort_unstable();
            MsgLatencyRow {
                program: program.to_string(),
                system: system.to_string(),
                kind: kind.to_string(),
                p50: percentile(&v, 50),
                p95: percentile(&v, 95),
                p99: percentile(&v, 99),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_replay::critpath::{EpochSeg, MsgEdge};
    use lcm_sim::NodeId;

    /// A hand-built two-epoch, two-node path: epoch 0 bound by node 1's
    /// remote stalls, epoch 1 (tail) by node 0's compute.
    fn sample() -> CritPath {
        let mut w0 = vec![[0u64; CycleCat::COUNT]; 2];
        w0[0][CycleCat::Compute.index()] = 100;
        w0[1][CycleCat::ReadStallRemote.index()] = 400;
        let mut w1 = vec![[0u64; CycleCat::COUNT]; 2];
        w1[0][CycleCat::Compute.index()] = 200;
        CritPath {
            nodes: 2,
            makespan: 650,
            epochs: vec![
                EpochSeg {
                    index: 0,
                    label: "init",
                    start: 0,
                    end: 400,
                    barrier_cost: 50,
                    closed_by_barrier: true,
                    critical: 1,
                    work: w0,
                    blocks: vec![(1, 7, 400)],
                },
                EpochSeg {
                    index: 1,
                    label: "(end)",
                    start: 450,
                    end: 650,
                    barrier_cost: 0,
                    closed_by_barrier: false,
                    critical: 0,
                    work: w1,
                    blocks: vec![],
                },
            ],
            edges: vec![MsgEdge {
                from: NodeId(1),
                to: NodeId(0),
                kind: "GetShared",
                bytes: 64,
                send_seq: 3,
                recv_seq: 4,
                send_cycle: 400,
                recv_cycle: 420,
            }],
            unmatched_recvs: 0,
            unmatched_sends: 0,
        }
    }

    #[test]
    fn csv_carries_summary_path_and_whatif_blocks() {
        let cp = sample();
        let whatifs = top_whatifs(&cp, 10);
        assert!(!whatifs.is_empty());
        assert!(
            whatifs.len() <= 10,
            "top-10 cap respected: {}",
            whatifs.len()
        );
        let csv = critpath_csv(&[(
            "Stencil-dyn".to_string(),
            "stache".to_string(),
            cp.clone(),
            whatifs,
        )]);
        assert!(
            csv.starts_with("program,system,row,item,on_path_cycles,total_cycles,share_on_path")
        );
        assert!(csv.contains("summary,makespan,650,650,1.0000,,,epochs=2"));
        // Compute: 200 on path (epoch 1) of 300 total.
        assert!(csv.contains("path,compute,200,300,0.6667"), "{csv}");
        // Remote stalls: all 400 on path.
        assert!(csv.contains("path,read_stall_remote,400,400,1.0000"));
        assert!(csv.contains(",whatif,"));
        // Rendering twice is byte-identical (determinism surrogate).
        let again = critpath_csv(&[(
            "Stencil-dyn".to_string(),
            "stache".to_string(),
            sample(),
            top_whatifs(&sample(), 10),
        )]);
        assert_eq!(csv, again);
    }

    #[test]
    fn whatifs_rank_biggest_win_first() {
        let cp = sample();
        let w = top_whatifs(&cp, 3);
        // Removing the read stalls collapses epoch 0 to node 0's 100
        // compute cycles: 100 + 50 + 200 = 350 — the biggest win.
        assert_eq!(w[0].item, "read_stall_remote x0%");
        assert_eq!(w[0].predicted, 350);
        assert!(w.windows(2).all(|p| p[0].predicted <= p[1].predicted));
    }

    #[test]
    fn report_and_drilldown_name_the_load_bearing_category() {
        let cp = sample();
        let report = critpath_report(&cp, &top_whatifs(&cp, 5));
        assert!(report.contains("makespan 650 cycles over 2 epochs"));
        assert!(report.contains("read_stall_remote"));
        assert!(report.contains("slack distribution"));
        assert!(report.contains("block        7 @node1"));
        assert!(report.contains("causal what-ifs"));
        let drill = drilldown_table(&cp);
        assert!(drill.contains("on_path"));
        assert!(drill.contains("100.0%"), "fully on-path stall: {drill}");
    }

    #[test]
    fn slack_histogram_buckets_every_sample() {
        let cp = sample();
        let hist = slack_histogram(&cp);
        // 2 epochs x 2 nodes = 4 samples; bars plus labels per bucket.
        let total: u64 = hist
            .lines()
            .map(|l| {
                l.split_whitespace()
                    .rev()
                    .find(|t| t.chars().all(|c| c.is_ascii_digit()))
                    .map(|t| t.parse::<u64>().unwrap())
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(total, 4, "all samples bucketed:\n{hist}");
        assert!(hist.contains("0 (on path)"));
    }

    #[test]
    fn flow_annotations_cover_edges_epochs_and_barriers() {
        let cp = sample();
        let (flows, path) = flow_annotations(&cp);
        assert_eq!(flows.len(), 1);
        assert_eq!((flows[0].from, flows[0].to), (1, 0));
        // Two epoch slices plus one barrier slice.
        assert_eq!(path.len(), 3);
        assert!(path.iter().any(|s| s.name == "barrier"));
        assert!(path.iter().any(|s| s.name == "init @node1"));
    }

    #[test]
    fn latency_rows_summarize_matched_edges() {
        let cp = sample();
        let rows = msg_latency_rows("Stencil-dyn", "stache", &cp);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].kind, "GetShared");
        assert_eq!((rows[0].p50, rows[0].p95, rows[0].p99), (20, 20, 20));
    }
}

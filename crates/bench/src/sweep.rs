//! The parallel sweep engine and the wall-clock bench trajectory.
//!
//! Every evaluation artifact is assembled from *sweep points* — one
//! independent simulation per `(benchmark, system, scale, fault,
//! sensitivity)` configuration. [`SweepKey`] is that configuration's
//! canonical identity: its derived `Ord` fixes one global order
//! (benchmark, then system, then scale, then fault rate, then swept
//! parameter), and [`SweepEngine::run`] executes the points on a
//! fixed-size worker pool ([`lcm_sim::par_map`]) while returning results
//! in exactly that order. Tables, figures and CSVs built from the
//! returned vector are therefore byte-identical no matter how many
//! worker threads ran the points or which finished first.
//!
//! [`BenchReport`] is the other half of the story: the `repro bench`
//! mode times each section serially and on the pool and serializes the
//! trajectory as `BENCH_sweep.json` (hand-rolled writer — the workspace
//! takes no serialization dependency).

use std::fmt::Write as _;
use std::time::Instant;

/// Canonical identity of one sweep point.
///
/// Fault rates are stored in parts-per-million so the key is totally
/// ordered (`f64` is not `Ord`); `sensitivity` carries the swept machine
/// parameter (remote latency, processor count, …) or 0 when the point
/// isn't part of a sensitivity sweep.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SweepKey {
    /// Benchmark label, e.g. `"Stencil-dyn"`.
    pub benchmark: String,
    /// System label, e.g. `"LCM-mcc"`.
    pub system: String,
    /// Scale label, e.g. `"medium"`.
    pub scale: String,
    /// Message-drop probability in parts-per-million (0 = reliable).
    pub fault_ppm: u32,
    /// Swept parameter value (latency cycles, node count, …), 0 if none.
    pub sensitivity: u64,
}

impl SweepKey {
    /// A reliable-network, non-sensitivity point.
    pub fn new(benchmark: &str, system: &str, scale: &str) -> Self {
        SweepKey {
            benchmark: benchmark.to_string(),
            system: system.to_string(),
            scale: scale.to_string(),
            fault_ppm: 0,
            sensitivity: 0,
        }
    }

    /// Sets the fault coordinate from a drop probability in `[0, 1]`.
    pub fn with_fault(mut self, drop_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_rate),
            "drop rate is a probability"
        );
        self.fault_ppm = (drop_rate * 1_000_000.0).round() as u32;
        self
    }

    /// Sets the swept-parameter coordinate.
    pub fn with_sensitivity(mut self, x: u64) -> Self {
        self.sensitivity = x;
        self
    }

    /// The fault coordinate back as a drop probability.
    pub fn fault_rate(&self) -> f64 {
        f64::from(self.fault_ppm) / 1_000_000.0
    }
}

/// Executes keyed sweep points on a fixed-size worker pool, assembling
/// results in canonical key order.
#[derive(Clone, Copy, Debug)]
pub struct SweepEngine {
    jobs: usize,
}

impl SweepEngine {
    /// An engine dispatching on at most `jobs` workers (min 1).
    pub fn new(jobs: usize) -> Self {
        SweepEngine { jobs: jobs.max(1) }
    }

    /// The worker count this engine dispatches on.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every point concurrently and returns the results
    /// sorted by [`SweepKey`] — the same vector a `jobs = 1` engine
    /// produces, whatever the input order or thread schedule. Duplicate
    /// keys are rejected: two points with one identity would make the
    /// assembled output ambiguous.
    pub fn run<T, R, F>(&self, mut points: Vec<(SweepKey, T)>, f: F) -> Vec<(SweepKey, R)>
    where
        T: Send,
        R: Send,
        F: Fn(&SweepKey, T) -> R + Sync,
    {
        points.sort_by(|a, b| a.0.cmp(&b.0));
        for w in points.windows(2) {
            assert_ne!(w[0].0, w[1].0, "duplicate sweep point {:?}", w[0].0);
        }
        let (keys, items): (Vec<SweepKey>, Vec<T>) = points.into_iter().unzip();
        let results = lcm_sim::par_map(self.jobs, items, |i, item| f(&keys[i], item));
        keys.into_iter().zip(results).collect()
    }
}

/// Wall-clock timing of one repro section, serial vs pooled.
#[derive(Clone, Debug)]
pub struct SectionTiming {
    /// Section name as passed to `repro` (e.g. `"table1"`, `"faults"`).
    pub section: String,
    /// Wall-clock seconds with `--jobs 1`.
    pub serial_secs: f64,
    /// Wall-clock seconds with the report's `jobs` workers.
    pub parallel_secs: f64,
}

impl SectionTiming {
    /// Serial over parallel wall-clock (> 1 means the pool helped).
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-9)
    }
}

/// The `repro bench` trajectory: per-section wall-clock at `jobs = 1`
/// and `jobs = N`, serialized as `BENCH_sweep.json`.
///
/// The parallel legs run on `effective_jobs`, the requested worker count
/// clamped to the host's `available_parallelism`: timing more workers
/// than cores does not measure pool speedup, it measures oversubscription
/// (a fictitious slowdown on small hosts). Both counts are recorded so
/// the JSON is honest about what actually ran.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Scale the sections ran at.
    pub scale: String,
    /// Worker count the user asked for (`--jobs N`).
    pub jobs: usize,
    /// Worker count the parallel legs actually ran on:
    /// `min(jobs, host_cores)`, at least 1.
    pub effective_jobs: usize,
    /// `available_parallelism` of the measuring host.
    pub host_cores: usize,
    /// One entry per timed section.
    pub sections: Vec<SectionTiming>,
}

impl BenchReport {
    /// An empty report for `jobs` requested workers at `scale`. Clamps
    /// the effective worker count to the host's cores.
    pub fn new(scale: &str, jobs: usize) -> Self {
        let host_cores = lcm_sim::available_jobs();
        BenchReport {
            scale: scale.to_string(),
            jobs,
            effective_jobs: jobs.min(host_cores).max(1),
            host_cores,
            sections: Vec::new(),
        }
    }

    /// True when the user asked for more workers than the host has cores
    /// (the parallel legs were clamped to [`BenchReport::effective_jobs`]).
    pub fn oversubscribed(&self) -> bool {
        self.jobs > self.effective_jobs
    }

    /// Times `serial` then `parallel` (in that order, so cache warm-up
    /// favors neither measurement systematically across sections) and
    /// records the section.
    pub fn time_section<R>(
        &mut self,
        section: &str,
        serial: impl FnOnce() -> R,
        parallel: impl FnOnce() -> R,
    ) -> (R, R) {
        let t0 = Instant::now();
        let a = serial();
        let serial_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let b = parallel();
        let parallel_secs = t1.elapsed().as_secs_f64();
        self.sections.push(SectionTiming {
            section: section.to_string(),
            serial_secs,
            parallel_secs,
        });
        (a, b)
    }

    /// Total serial wall-clock across sections.
    pub fn total_serial(&self) -> f64 {
        self.sections.iter().map(|s| s.serial_secs).sum()
    }

    /// Total pooled wall-clock across sections.
    pub fn total_parallel(&self) -> f64 {
        self.sections.iter().map(|s| s.parallel_secs).sum()
    }

    /// Overall serial-over-parallel speedup.
    pub fn speedup(&self) -> f64 {
        self.total_serial() / self.total_parallel().max(1e-9)
    }

    /// The `BENCH_sweep.json` document (stable key order, no deps).
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(j, "  \"jobs_requested\": {},", self.jobs);
        let _ = writeln!(j, "  \"jobs_effective\": {},", self.effective_jobs);
        let _ = writeln!(j, "  \"host_cores\": {},", self.host_cores);
        j.push_str("  \"sections\": [\n");
        for (i, s) in self.sections.iter().enumerate() {
            let _ = write!(
                j,
                "    {{\"section\": \"{}\", \"serial_secs\": {:.4}, \
                 \"parallel_secs\": {:.4}, \"speedup\": {:.3}}}",
                s.section,
                s.serial_secs,
                s.parallel_secs,
                s.speedup()
            );
            j.push_str(if i + 1 < self.sections.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("  ],\n");
        let _ = writeln!(
            j,
            "  \"total\": {{\"serial_secs\": {:.4}, \"parallel_secs\": {:.4}, \
             \"speedup\": {:.3}}}",
            self.total_serial(),
            self.total_parallel(),
            self.speedup()
        );
        j.push_str("}\n");
        j
    }
}

/// One benchmark's wall-clock under the epoch-parallel engine:
/// `--sim-threads 1` vs `--sim-threads N` on the *same* simulation.
#[derive(Clone, Debug)]
pub struct ParTiming {
    /// Benchmark label (e.g. `"Stencil-dyn/256"`).
    pub benchmark: String,
    /// Simulated machine nodes.
    pub nodes: usize,
    /// Wall-clock seconds at `sim_threads = 1`.
    pub serial_secs: f64,
    /// Wall-clock seconds at the report's effective thread count.
    pub parallel_secs: f64,
    /// Whether the two runs produced identical digests (they must).
    pub digest_match: bool,
}

impl ParTiming {
    /// Serial over parallel wall-clock (> 1 means the pool helped).
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs.max(1e-9)
    }
}

/// The `repro par` trajectory: intra-run epoch parallelism, serialized
/// as `BENCH_par.json`.
///
/// Unlike [`BenchReport`] (which parallelizes *across* independent sweep
/// points with `--jobs`), this measures `--sim-threads` — host threads
/// cooperating *inside one simulation* — and records both the requested
/// and the effective thread count so single-core hosts report an honest
/// ~1.0x rather than a fictitious slowdown.
#[derive(Clone, Debug)]
pub struct ParReport {
    /// Scale label the runs used.
    pub scale: String,
    /// Thread count the user asked for (`--sim-threads N`).
    pub sim_threads: usize,
    /// Thread count the parallel legs actually ran on:
    /// `min(sim_threads, host_cores)`, at least 1.
    pub effective_sim_threads: usize,
    /// `available_parallelism` of the measuring host.
    pub host_cores: usize,
    /// One entry per timed benchmark.
    pub runs: Vec<ParTiming>,
}

impl ParReport {
    /// An empty report for `sim_threads` requested workers.
    pub fn new(scale: &str, sim_threads: usize) -> Self {
        let host_cores = lcm_sim::available_jobs();
        ParReport {
            scale: scale.to_string(),
            sim_threads,
            effective_sim_threads: sim_threads.min(host_cores).max(1),
            host_cores,
            runs: Vec::new(),
        }
    }

    /// True when the requested thread count exceeded the host's cores.
    pub fn oversubscribed(&self) -> bool {
        self.sim_threads > self.effective_sim_threads
    }

    /// The `BENCH_par.json` document (stable key order, no deps).
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n");
        let _ = writeln!(j, "  \"scale\": \"{}\",", self.scale);
        let _ = writeln!(j, "  \"sim_threads_requested\": {},", self.sim_threads);
        let _ = writeln!(
            j,
            "  \"sim_threads_effective\": {},",
            self.effective_sim_threads
        );
        let _ = writeln!(j, "  \"host_cores\": {},", self.host_cores);
        j.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let _ = write!(
                j,
                "    {{\"benchmark\": \"{}\", \"nodes\": {}, \"serial_secs\": {:.4}, \
                 \"parallel_secs\": {:.4}, \"speedup\": {:.3}, \"digest_match\": {}}}",
                r.benchmark,
                r.nodes,
                r.serial_secs,
                r.parallel_secs,
                r.speedup(),
                r.digest_match
            );
            j.push_str(if i + 1 < self.runs.len() { ",\n" } else { "\n" });
        }
        j.push_str("  ]\n}\n");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: &str, s: &str, fault: f64, x: u64) -> SweepKey {
        SweepKey::new(b, s, "smoke")
            .with_fault(fault)
            .with_sensitivity(x)
    }

    #[test]
    fn key_order_is_benchmark_system_scale_fault_sensitivity() {
        let mut keys = vec![
            key("Stencil", "Stache", 0.0, 0),
            key("Stencil", "LCM-mcc", 0.01, 0),
            key("Stencil", "LCM-mcc", 0.001, 0),
            key("Barnes", "Stache", 0.05, 9),
            key("Stencil", "LCM-mcc", 0.001, 500),
        ];
        keys.sort();
        let labels: Vec<(String, String, u32, u64)> = keys
            .into_iter()
            .map(|k| (k.benchmark, k.system, k.fault_ppm, k.sensitivity))
            .collect();
        assert_eq!(
            labels,
            vec![
                ("Barnes".into(), "Stache".into(), 50_000, 9),
                ("Stencil".into(), "LCM-mcc".into(), 1_000, 0),
                ("Stencil".into(), "LCM-mcc".into(), 1_000, 500),
                ("Stencil".into(), "LCM-mcc".into(), 10_000, 0),
                ("Stencil".into(), "Stache".into(), 0, 0),
            ]
        );
    }

    #[test]
    fn fault_ppm_round_trips() {
        assert_eq!(key("b", "s", 0.001, 0).fault_ppm, 1000);
        assert!((key("b", "s", 0.05, 0).fault_rate() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn engine_output_is_canonical_regardless_of_input_order_and_jobs() {
        let scrambled: Vec<(SweepKey, u64)> = [(0.01, 3), (0.0, 1), (0.05, 9), (0.001, 2)]
            .iter()
            .map(|&(f, v)| (key("Stencil", "LCM-mcc", f, 0), v))
            .collect();
        let serial =
            SweepEngine::new(1).run(scrambled.clone(), |k, v| (u64::from(k.fault_ppm), v * v));
        for jobs in [2, 8] {
            let par = SweepEngine::new(jobs)
                .run(scrambled.clone(), |k, v| (u64::from(k.fault_ppm), v * v));
            assert_eq!(
                serial
                    .iter()
                    .map(|(k, r)| (k.clone(), *r))
                    .collect::<Vec<_>>(),
                par.iter().map(|(k, r)| (k.clone(), *r)).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
        let ppms: Vec<u32> = serial.iter().map(|(k, _)| k.fault_ppm).collect();
        assert_eq!(
            ppms,
            vec![0, 1_000, 10_000, 50_000],
            "canonical fault order"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate sweep point")]
    fn duplicate_keys_are_rejected() {
        let pts = vec![(key("b", "s", 0.0, 0), 1), (key("b", "s", 0.0, 0), 2)];
        SweepEngine::new(2).run(pts, |_, v| v);
    }

    #[test]
    fn bench_report_serializes_sections_and_totals() {
        let mut report = BenchReport::new("smoke", 4);
        report.time_section("suite", || 1 + 1, || 2 + 2);
        report.sections[0].serial_secs = 2.0;
        report.sections[0].parallel_secs = 0.5;
        let json = report.to_json();
        assert!(json.contains("\"scale\": \"smoke\""));
        assert!(json.contains("\"jobs_requested\": 4"));
        assert!(json.contains(&format!("\"jobs_effective\": {}", report.effective_jobs)));
        assert!(json.contains(&format!("\"host_cores\": {}", report.host_cores)));
        assert!(json.contains("\"section\": \"suite\""));
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.ends_with("}\n"));
        assert!((report.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn effective_jobs_never_exceeds_host_cores() {
        let report = BenchReport::new("smoke", usize::MAX);
        assert_eq!(report.effective_jobs, report.host_cores.max(1));
        assert!(report.oversubscribed() || report.host_cores == usize::MAX);
        let one = BenchReport::new("smoke", 1);
        assert_eq!(one.effective_jobs, 1);
        assert!(!one.oversubscribed());
    }
}

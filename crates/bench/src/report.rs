//! CSV renderers for the suite's tables and figures.
//!
//! One function per emitted file, each a pure `&Suite -> String` so the
//! `repro` binary and the determinism tests render through the same code:
//! the byte-identity contract ("a `--jobs N` run produces the same CSVs
//! as `--jobs 1`") is checked against these exact bytes.

use lcm_apps::experiments::{Benchmark, Suite};
use lcm_apps::SystemKind;
use std::fmt::Write as _;

/// `table1.csv`: per-benchmark miss and clean-copy counts.
pub fn table1_csv(suite: &Suite) -> String {
    let mut csv =
        String::from("program,misses_scc,misses_mcc,misses_copying,clean_scc,clean_mcc\n");
    for (b, misses, clean) in suite.table1() {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            b.label(),
            misses[0],
            misses[1],
            misses[2],
            clean[0],
            clean[1]
        );
    }
    csv
}

/// `fig2.csv` / `fig3.csv`: one `(program, system, cycles)` row per run.
pub fn fig_csv(rows: &[(Benchmark, SystemKind, u64)]) -> String {
    let mut csv = String::from("program,system,cycles\n");
    for (b, s, t) in rows {
        let _ = writeln!(csv, "{},{},{t}", b.label(), s.label());
    }
    csv
}

/// One benchmark×system×kind delivery-latency summary, harvested from a
/// captured trace by the critical-path analyzer's message matching.
#[derive(Clone, Debug)]
pub struct MsgLatencyRow {
    /// Benchmark label (matches `messages.csv`'s `program` column).
    pub program: String,
    /// System label.
    pub system: String,
    /// Message kind label.
    pub kind: String,
    /// p50 / p95 / p99 send→recv cycle deltas (signed: per-node logical
    /// clocks can put a recv's stamp before its send's).
    pub p50: i64,
    /// See `p50`.
    pub p95: i64,
    /// See `p50`.
    pub p99: i64,
}

/// `messages.csv`: per-kind message counts and bytes for every run.
pub fn messages_csv(suite: &Suite) -> String {
    messages_csv_with_latency(suite, &[])
}

/// [`messages_csv`] with p50/p95/p99 delivery-latency columns filled in
/// for the rows a captured trace covers (other rows keep the fields
/// empty). With `latency` empty — no traces captured — the header and
/// every row are byte-identical to [`messages_csv`], keeping committed
/// artifacts stable.
pub fn messages_csv_with_latency(suite: &Suite, latency: &[MsgLatencyRow]) -> String {
    let mut csv = String::from("program,system,kind,count,bytes");
    if !latency.is_empty() {
        csv.push_str(",p50_latency,p95_latency,p99_latency");
    }
    csv.push('\n');
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            let r = suite.result(b, s);
            for ((kind, n), (_, bytes)) in r.msg_kinds.iter().zip(&r.msg_bytes) {
                if *n > 0 {
                    let _ = write!(
                        csv,
                        "{},{},{},{n},{bytes}",
                        b.label(),
                        s.label(),
                        kind.label()
                    );
                    if !latency.is_empty() {
                        match latency.iter().find(|l| {
                            l.program == b.label()
                                && l.system == s.label()
                                && l.kind == kind.label()
                        }) {
                            Some(l) => {
                                let _ = write!(csv, ",{},{},{}", l.p50, l.p95, l.p99);
                            }
                            None => csv.push_str(",,,"),
                        }
                    }
                    csv.push('\n');
                }
            }
        }
    }
    csv
}

/// `network.csv`: delivery/retry/stall counters for every run.
pub fn network_csv(suite: &Suite) -> String {
    let mut csv = String::from(
        "program,system,msgs_delivered,blocks,retries,timeouts,dropped,duplicated,stall_cycles\n",
    );
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            let r = suite.result(b, s);
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{},{}",
                b.label(),
                s.label(),
                r.msgs_total(),
                r.totals.blocks_sent,
                r.totals.retries,
                r.totals.timeouts,
                r.totals.msgs_dropped,
                r.totals.msgs_duplicated,
                r.totals.stall_cycles,
            );
        }
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_apps::experiments::Scale;

    #[test]
    fn renderers_are_pure_functions_of_the_suite() {
        let suite = Suite::run(Scale::Smoke);
        assert_eq!(table1_csv(&suite), table1_csv(&suite));
        let fig2 = suite.fig2();
        assert!(fig_csv(&fig2).starts_with("program,system,cycles\n"));
        assert_eq!(fig_csv(&fig2).lines().count(), 1 + fig2.len());
        // Every (benchmark, system) pair contributes exactly one network row.
        assert_eq!(network_csv(&suite).lines().count(), 1 + 6 * 3);
        assert!(messages_csv(&suite).len() > "program,system,kind,count,bytes\n".len());
    }

    #[test]
    fn latency_columns_appear_only_when_rows_are_supplied() {
        let suite = Suite::run(Scale::Smoke);
        let plain = messages_csv(&suite);
        assert_eq!(
            messages_csv_with_latency(&suite, &[]),
            plain,
            "no traces: byte-identical"
        );
        // Build a latency row for whatever data line the table emits
        // first, so the test tracks the suite rather than guessing at
        // protocol traffic.
        let first = plain.lines().nth(1).expect("suite has traffic");
        let mut f = first.split(',');
        let rows = vec![MsgLatencyRow {
            program: f.next().unwrap().to_string(),
            system: f.next().unwrap().to_string(),
            kind: f.next().unwrap().to_string(),
            p50: 10,
            p95: 20,
            p99: -5,
        }];
        let with = messages_csv_with_latency(&suite, &rows);
        assert!(with
            .starts_with("program,system,kind,count,bytes,p50_latency,p95_latency,p99_latency\n"));
        assert_eq!(with.lines().count(), plain.lines().count());
        assert!(with.contains(",10,20,-5"), "matched row gains values");
        assert!(
            with.lines().any(|l| l.ends_with(",,,")),
            "unmatched rows stay empty"
        );
    }
}

//! CSV renderers for the suite's tables and figures.
//!
//! One function per emitted file, each a pure `&Suite -> String` so the
//! `repro` binary and the determinism tests render through the same code:
//! the byte-identity contract ("a `--jobs N` run produces the same CSVs
//! as `--jobs 1`") is checked against these exact bytes.

use lcm_apps::experiments::{Benchmark, Suite};
use lcm_apps::SystemKind;
use std::fmt::Write as _;

/// `table1.csv`: per-benchmark miss and clean-copy counts.
pub fn table1_csv(suite: &Suite) -> String {
    let mut csv =
        String::from("program,misses_scc,misses_mcc,misses_copying,clean_scc,clean_mcc\n");
    for (b, misses, clean) in suite.table1() {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            b.label(),
            misses[0],
            misses[1],
            misses[2],
            clean[0],
            clean[1]
        );
    }
    csv
}

/// `fig2.csv` / `fig3.csv`: one `(program, system, cycles)` row per run.
pub fn fig_csv(rows: &[(Benchmark, SystemKind, u64)]) -> String {
    let mut csv = String::from("program,system,cycles\n");
    for (b, s, t) in rows {
        let _ = writeln!(csv, "{},{},{t}", b.label(), s.label());
    }
    csv
}

/// `messages.csv`: per-kind message counts and bytes for every run.
pub fn messages_csv(suite: &Suite) -> String {
    let mut csv = String::from("program,system,kind,count,bytes\n");
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            let r = suite.result(b, s);
            for ((kind, n), (_, bytes)) in r.msg_kinds.iter().zip(&r.msg_bytes) {
                if *n > 0 {
                    let _ = writeln!(
                        csv,
                        "{},{},{},{n},{bytes}",
                        b.label(),
                        s.label(),
                        kind.label()
                    );
                }
            }
        }
    }
    csv
}

/// `network.csv`: delivery/retry/stall counters for every run.
pub fn network_csv(suite: &Suite) -> String {
    let mut csv = String::from(
        "program,system,msgs_delivered,blocks,retries,timeouts,dropped,duplicated,stall_cycles\n",
    );
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            let r = suite.result(b, s);
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{},{}",
                b.label(),
                s.label(),
                r.msgs_total(),
                r.totals.blocks_sent,
                r.totals.retries,
                r.totals.timeouts,
                r.totals.msgs_dropped,
                r.totals.msgs_duplicated,
                r.totals.stall_cycles,
            );
        }
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_apps::experiments::Scale;

    #[test]
    fn renderers_are_pure_functions_of_the_suite() {
        let suite = Suite::run(Scale::Smoke);
        assert_eq!(table1_csv(&suite), table1_csv(&suite));
        let fig2 = suite.fig2();
        assert!(fig_csv(&fig2).starts_with("program,system,cycles\n"));
        assert_eq!(fig_csv(&fig2).lines().count(), 1 + fig2.len());
        // Every (benchmark, system) pair contributes exactly one network row.
        assert_eq!(network_csv(&suite).lines().count(), 1 + 6 * 3);
        assert!(messages_csv(&suite).len() > "program,system,kind,count,bytes\n".len());
    }
}

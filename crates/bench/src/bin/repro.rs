//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale paper|medium|smoke] [--jobs N] [--csv DIR] [--svg DIR]
//!       [--trace FILE]
//!       [table1|fig2|fig3|claims|reduction|falseshare|stale|races|
//!        flushpolicy|cachelimit|tree|contention|profile|bench|all]
//! ```
//!
//! With `--csv DIR`, the table/figure data is also written as CSV files
//! (`table1.csv`, `fig2.csv`, `fig3.csv`) for external plotting.
//!
//! `--jobs N` runs the independent sweep points of each section on a
//! fixed pool of N worker threads (default: the host's available
//! parallelism). Every section assembles its output by canonical sweep
//! key, so stdout and every CSV are byte-identical to a `--jobs 1` run —
//! the determinism tests pin this. The `bench` section (not part of
//! `all`) times each section serially and on the pool and writes the
//! wall-clock trajectory to `BENCH_sweep.json`.
//!
//! The `contention` section (also not part of `all`, so `all`'s output
//! stays pinned) activates the CM-5 fat-tree link-contention model and
//! sweeps link bandwidth across four benchmarks: messages serialize
//! onto their routes and queue behind in-flight traffic, and the extra
//! cycles land in the `net_contention` ledger category. With `--csv
//! DIR` the grid is written to `contention.csv`.
//!
//! The `profile` section runs the cycle-attribution profiler on
//! Stencil-dyn: a per-node cycle breakdown table (every simulated cycle
//! attributed to a category, conservation-checked against the node
//! clocks), the hottest blocks by stall cycles, the message-kind
//! histogram, and a critical-path drill-down of a captured LCM-mcc run.
//! `--trace FILE` additionally exports the LCM-mcc run's event stream as
//! Chrome-trace JSON — load it at `ui.perfetto.dev` or
//! `chrome://tracing`.
//!
//! The `critpath` section (not part of `all`: its captures run at
//! finite link bandwidth) builds the happens-before DAG of each
//! benchmark×system capture, extracts the critical path, attributes
//! slack, and projects causal what-ifs that are validated against
//! genuine replays under modified cost models. With `--csv DIR` the
//! analysis is written to `critpath.csv`; `--flow-trace FILE` exports a
//! Perfetto trace with send→recv flow arrows and a critical-path track.
//! `repro critpath <file.lcmtrace>` runs the same analysis offline on
//! any capture.
//!
//! The `serve` section (not part of `all`: its grid runs at finite
//! link bandwidth) self-checks the resident replay server of DESIGN.md
//! §4k — batched answers vs a fresh sequential engine, differential
//! re-pricing vs full replay, cached reruns returning the shared
//! result, a real TCP roundtrip, and a corrupt-frame probe.
//! `--listen ADDR` stays resident serving `--traces DIR` over TCP;
//! `--bench` measures the cached / differential / cold-replay cost
//! ladder plus closed-loop qps and p50/p99 latency, written to
//! `BENCH_serve.json`. Any serve flag implies the section.
//!
//! Simulated cycles are this reproduction's "execution time"; the paper
//! reports wall-clock seconds on a 32-node CM-5, so compare *shapes*
//! (who wins, by what factor), not absolute values. Paper reference
//! numbers are printed alongside where the paper gives them.

use lcm_apps::cache_limit::{chunk_blocks, stencil_on_limited_stache};
use lcm_apps::experiments::{Benchmark, Scale, Suite};
use lcm_apps::false_sharing::FalseSharing;
use lcm_apps::independent::{run_with_flush, IndependentMap};
use lcm_apps::nbody::{rms_error, run_nbody, NBody, NBodySystem};
use lcm_apps::race::{detect_races, RaceKernel};
use lcm_apps::reduction::{run_reduction, ArraySum, ReductionMethod, ReductionSum};
use lcm_apps::sensitivity::{sweep_nodes_jobs, sweep_remote_latency_jobs, SweepPoint};
use lcm_apps::stale_data::{run_stale, StaleData, StaleSystem};
use lcm_apps::stencil::Stencil;
use lcm_apps::threshold::Threshold;
use lcm_apps::unstructured::Unstructured;
use lcm_apps::{
    execute, execute_traced, execute_with_cost, execute_with_faults, RunResult, SystemKind,
    Workload,
};
use lcm_bench::{
    critpath, explore, profile, report, BarChart, BenchReport, ParReport, ParTiming, SweepEngine,
    SweepKey,
};
use lcm_cstar::{FlushPolicy, Partition, RuntimeConfig};
use lcm_replay::TraceFile;
use lcm_sim::{CostModel, CrashPlan, CycleCat, FaultConfig, MachineConfig, NodeId, Stamped};
use std::path::PathBuf;
use std::time::Instant;

/// Every runnable section, in help order. `contention`, `explore` and
/// `bench` are valid names but not part of `all` (see the comments at
/// their dispatch sites).
const SECTIONS: [&str; 24] = [
    "all",
    "table1",
    "fig2",
    "fig3",
    "claims",
    "reduction",
    "falseshare",
    "stale",
    "nbody",
    "races",
    "flushpolicy",
    "cachelimit",
    "tree",
    "sweep",
    "faults",
    "contention",
    "profile",
    "explore",
    "critpath",
    "recovery",
    "scale",
    "bench",
    "par",
    "serve",
];

/// Known flags, for the unknown-flag error message.
const FLAGS: &str = "--scale --jobs --sim-threads --csv --svg --faults --crash --trace \
                     --flow-trace --listen --traces --bench --list-sections -h/--help";

fn list_sections() {
    eprintln!("sections (default: all):");
    for s in SECTIONS {
        eprintln!("  {s}");
    }
    eprintln!("subcommands:");
    eprintln!("  replay <file.lcmtrace>     validate and summarize a captured trace");
    eprintln!("  critpath <file.lcmtrace>   critical-path analysis of a captured trace");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut csv_dir: Option<PathBuf> = None;
    let mut svg_dir: Option<PathBuf> = None;
    let mut fault_point: Option<(f64, u64)> = None;
    let mut crash_point: Option<(f64, u64)> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut flow_trace_path: Option<PathBuf> = None;
    let mut jobs = lcm_sim::available_jobs();
    let mut sim_threads = 1usize;
    let mut serve_listen: Option<String> = None;
    let mut serve_traces: Option<PathBuf> = None;
    let mut serve_bench = false;
    let mut what = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = match it.next().and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--jobs requires a worker count >= 1");
                        std::process::exit(2);
                    }
                };
            }
            "--sim-threads" => {
                sim_threads = match it.next().and_then(|s| s.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--sim-threads requires a thread count >= 1");
                        std::process::exit(2);
                    }
                };
            }
            "--faults" => {
                let Some(spec) = it.next() else {
                    eprintln!("--faults requires <drop_rate>:<seed>");
                    std::process::exit(2);
                };
                let Some((rate, seed)) = parse_rate_seed(spec) else {
                    eprintln!("bad --faults spec {spec:?} (want <drop_rate>:<seed>, e.g. 0.01:42)");
                    std::process::exit(2);
                };
                // Out-of-range rates are the config layer's call, surfaced
                // here as its named error (exit 2, like unknown flags).
                if let Err(e) = FaultConfig::drops(rate, seed).validate() {
                    eprintln!("--faults {spec}: {e}");
                    std::process::exit(2);
                }
                fault_point = Some((rate, seed));
            }
            "--crash" => {
                let Some(spec) = it.next() else {
                    eprintln!("--crash requires <crash_rate>:<seed>");
                    std::process::exit(2);
                };
                let Some((rate, seed)) = parse_rate_seed(spec) else {
                    eprintln!("bad --crash spec {spec:?} (want <crash_rate>:<seed>, e.g. 0.1:42)");
                    std::process::exit(2);
                };
                if let Err(e) = FaultConfig::crashes(rate, seed).validate() {
                    eprintln!("--crash {spec}: {e}");
                    std::process::exit(2);
                }
                crash_point = Some((rate, seed));
            }
            "--trace" => {
                let Some(path) = it.next() else {
                    eprintln!("--trace requires a file path");
                    std::process::exit(2);
                };
                trace_path = Some(PathBuf::from(path));
            }
            "--flow-trace" => {
                let Some(path) = it.next() else {
                    eprintln!("--flow-trace requires a file path");
                    std::process::exit(2);
                };
                flow_trace_path = Some(PathBuf::from(path));
            }
            "--listen" => {
                let Some(addr) = it.next() else {
                    eprintln!("--listen requires an address (e.g. 127.0.0.1:7199)");
                    std::process::exit(2);
                };
                serve_listen = Some(addr.clone());
            }
            "--traces" => {
                let Some(dir) = it.next() else {
                    eprintln!("--traces requires a directory of .lcmtrace files");
                    std::process::exit(2);
                };
                serve_traces = Some(PathBuf::from(dir));
            }
            "--bench" => {
                serve_bench = true;
            }
            "--svg" => {
                let Some(dir) = it.next() else {
                    eprintln!("--svg requires a directory");
                    std::process::exit(2);
                };
                svg_dir = Some(PathBuf::from(dir));
            }
            "--csv" => {
                let Some(dir) = it.next() else {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("paper") => Scale::Paper,
                    Some("medium") => Scale::Medium,
                    Some("smoke") => Scale::Smoke,
                    other => {
                        eprintln!("unknown scale {other:?} (paper|medium|smoke)");
                        std::process::exit(2);
                    }
                }
            }
            "--list-sections" => {
                list_sections();
                return;
            }
            "-h" | "--help" => {
                println!(
                    "repro [--scale paper|medium|smoke] [--jobs N] [--sim-threads N] [--csv DIR] \
                     [--svg DIR] [--faults RATE:SEED] [--crash RATE:SEED] [--trace FILE] \
                     [--flow-trace FILE] [--listen ADDR] [--traces DIR] [--bench] \
                     [--list-sections] [SECTION…] | replay FILE | critpath FILE"
                );
                list_sections();
                return;
            }
            w if w.starts_with('-') => {
                eprintln!("unknown flag {w:?} (known flags: {FLAGS})");
                list_sections();
                std::process::exit(2);
            }
            w => what.push(w.to_string()),
        }
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    if what[0] == "replay" {
        let [_, path] = what.as_slice() else {
            eprintln!("usage: repro replay <file.lcmtrace>");
            std::process::exit(2);
        };
        run_replay_summary(std::path::Path::new(path));
        return;
    }
    // `critpath FILE` is the offline subcommand; a bare `critpath` (or
    // `critpath` among other section names) is the capture-and-analyze
    // section below.
    if what[0] == "critpath" && what.len() == 2 && !SECTIONS.contains(&what[1].as_str()) {
        run_critpath_file(std::path::Path::new(&what[1]));
        return;
    }
    if let Some(bad) = what.iter().find(|w| !SECTIONS.contains(&w.as_str())) {
        eprintln!("unknown section {bad:?}");
        list_sections();
        std::process::exit(2);
    }
    let all = what.iter().any(|w| w == "all");
    let wants = |k: &str| all || what.iter().any(|w| w == k);

    // The sections that read the shared suite, and the single place it is
    // materialized: every consumer below sits inside the `if let`, so a
    // missing suite is a compile-shape impossibility, not an `unwrap`.
    const SUITE_SECTIONS: [&str; 4] = ["table1", "fig2", "fig3", "claims"];
    let needs_suite = all || what.iter().any(|w| SUITE_SECTIONS.contains(&w.as_str()));
    // `--sim-threads` routes every suite point through the epoch-parallel
    // engine; the output is byte-identical to `--sim-threads 1` by
    // construction (DESIGN.md §4j), which CI diffs.
    let base_cfg = RuntimeConfig {
        sim_threads,
        ..RuntimeConfig::default()
    };
    let suite = if needs_suite {
        eprintln!(
            "running the benchmark suite at scale '{scale}' ({} processors, {jobs} worker(s), \
             {sim_threads} sim thread(s))…",
            scale.nodes()
        );
        let t0 = Instant::now();
        let s = Suite::run_jobs_cfg(scale, jobs, base_cfg);
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        Some(s)
    } else {
        None
    };

    if let Some(suite) = suite.as_ref() {
        if wants("table1") {
            print_table1(suite);
        }
        if wants("fig2") {
            print_fig(suite, true);
        }
        if wants("fig3") {
            print_fig(suite, false);
        }
        if wants("claims") {
            print_claims(suite);
        }
    }
    if wants("reduction") {
        print_reduction(scale, jobs);
    }
    if wants("falseshare") {
        print_false_sharing(jobs);
    }
    if wants("stale") {
        print_stale(jobs);
    }
    if wants("flushpolicy") {
        print_flush_policy(scale, jobs);
    }
    if wants("cachelimit") {
        print_cache_limit(jobs);
    }
    if wants("tree") {
        print_tree_reconcile(scale, jobs);
    }
    if wants("nbody") {
        print_nbody(jobs);
    }
    if wants("sweep") {
        print_sweeps(scale, jobs);
    }
    if wants("races") {
        print_races(jobs);
    }
    let mut csvs = SectionCsvs::default();
    if wants("faults") || fault_point.is_some() {
        csvs.faults = Some(print_faults(scale, fault_point, jobs));
    }
    if wants("profile") || trace_path.is_some() {
        csvs.profile = Some(print_profile(scale, trace_path.as_deref(), jobs));
    }
    // `contention` is deliberately not part of `all`: finite link
    // bandwidth surfaces a new cycle category and changes every total,
    // and `all`'s stdout and CSVs are pinned byte-identical across
    // releases by the determinism tests.
    if what.iter().any(|w| w == "contention") {
        csvs.contention = Some(print_contention(scale, jobs));
    }
    // `explore` is deliberately not part of `all` for the same reason as
    // `contention`: its grid spans finite bandwidths, and the byte-
    // identity determinism tests pin `all`'s output.
    if what.iter().any(|w| w == "explore") {
        csvs.explore = Some(print_explore(scale, jobs, csv_dir.as_deref()));
    }
    // `critpath` is deliberately not part of `all` for the same reason:
    // its captures run at finite link bandwidth, so every total differs
    // from the pinned `all` output.
    if what.iter().any(|w| w == "critpath") || flow_trace_path.is_some() {
        csvs.critpath = Some(print_critpath(scale, jobs, flow_trace_path.as_deref()));
    }
    // `recovery` is deliberately not part of `all` for the same reason:
    // active crash plans add checkpoint/rollback cycles to every total.
    let mut sweep_failures: Vec<String> = Vec::new();
    if what.iter().any(|w| w == "recovery") || crash_point.is_some() {
        csvs.recovery = Some(print_recovery(
            scale,
            crash_point,
            jobs,
            csv_dir.as_deref(),
            &mut sweep_failures,
        ));
    }
    // `scale` is deliberately not part of `all`: its grid runs machines
    // of up to 1024 nodes across three directory backends, well outside
    // the pinned 16/32-node `all` output.
    if what.iter().any(|w| w == "scale") {
        csvs.scale = Some(print_scale(jobs, csv_dir.as_deref()));
    }
    // `bench` is deliberately not part of `all`: it re-runs whole
    // sections twice (serially and on the pool) to measure wall-clock.
    if what.iter().any(|w| w == "bench") {
        run_bench(scale, jobs, csv_dir.as_deref());
    }
    // `par` is deliberately not part of `all`: it re-runs kilonode
    // simulations twice (sim-threads 1 vs N) to measure wall-clock.
    if what.iter().any(|w| w == "par") {
        run_bench_par(scale, sim_threads, csv_dir.as_deref());
    }
    // `serve` is deliberately not part of `all`: its self-check replays
    // a finite-bandwidth grid (like `explore`), and `--listen` blocks
    // as a resident server. The serve flags imply the section, like
    // `--trace` implies `profile`.
    if what.iter().any(|w| w == "serve")
        || serve_listen.is_some()
        || serve_bench
        || serve_traces.is_some()
    {
        run_serve(
            scale,
            jobs,
            serve_listen.as_deref(),
            serve_traces.as_deref(),
            serve_bench,
            csv_dir.as_deref(),
        );
    }
    if let Some(dir) = csv_dir {
        if let Err(e) = write_all_csv(&dir, suite.as_ref(), &csvs) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("CSV written to {}", dir.display());
    }
    if let (Some(dir), Some(suite)) = (svg_dir, suite.as_ref()) {
        if let Err(e) = write_svg(&dir, suite) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        println!("SVG figures written to {}", dir.display());
    }
    // Graceful sweep degradation: failed grid points were reported and
    // skipped so the rest of the sweep (and its CSV) completed; a failure
    // still fails the run as a whole.
    if !sweep_failures.is_empty() {
        eprintln!("{} sweep point(s) failed:", sweep_failures.len());
        for f in &sweep_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Creates `dir` (and parents), naming the directory in the error.
fn ensure_dir(dir: &std::path::Path) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("failed to create directory {}: {e}", dir.display()))
}

/// Writes one output file, naming the failing path in the error.
fn write_file(path: PathBuf, contents: &str) -> Result<(), String> {
    std::fs::write(&path, contents).map_err(|e| format!("failed to write {}: {e}", path.display()))
}

fn write_svg(dir: &std::path::Path, suite: &Suite) -> Result<(), String> {
    ensure_dir(dir)?;
    let series = ["LCM-scc", "LCM-mcc", "Stache"];
    for (file, title, rows) in [
        ("fig2.svg", "Figure 2: Stencil execution time", suite.fig2()),
        (
            "fig3.svg",
            "Figure 3: benchmark execution time",
            suite.fig3(),
        ),
    ] {
        let mut chart = BarChart::new(title, "simulated cycles", &series);
        let mut groups: Vec<(Benchmark, [f64; 3])> = Vec::new();
        for (b, s, t) in rows {
            let slot = match s {
                SystemKind::LcmScc => 0,
                SystemKind::LcmMcc => 1,
                SystemKind::Stache => 2,
            };
            match groups.iter_mut().find(|(gb, _)| *gb == b) {
                Some((_, vs)) => vs[slot] = t as f64,
                None => {
                    let mut vs = [0.0; 3];
                    vs[slot] = t as f64;
                    groups.push((b, vs));
                }
            }
        }
        for (b, vs) in groups {
            chart.push_group(b.label(), &vs);
        }
        write_file(dir.join(file), &chart.to_svg())?;
    }
    Ok(())
}

/// The per-section CSV payloads gathered by `main` for `--csv`, one
/// field per section that renders a file.
#[derive(Default)]
struct SectionCsvs {
    faults: Option<String>,
    /// `(profile.csv, phases.csv)`.
    profile: Option<(String, String)>,
    contention: Option<String>,
    explore: Option<String>,
    recovery: Option<String>,
    scale: Option<String>,
    /// `(critpath.csv, messages.csv latency rows)`.
    critpath: Option<(String, Vec<report::MsgLatencyRow>)>,
}

fn write_all_csv(
    dir: &std::path::Path,
    suite: Option<&Suite>,
    csvs: &SectionCsvs,
) -> Result<(), String> {
    ensure_dir(dir)?;
    let latency = csvs
        .critpath
        .as_ref()
        .map_or(&[][..], |(_, l)| l.as_slice());
    if let Some(suite) = suite {
        write_csv(dir, suite, latency)?;
    }
    if let Some(faults) = &csvs.faults {
        write_file(dir.join("faults.csv"), faults)?;
    }
    if let Some((profile, phases)) = &csvs.profile {
        write_file(dir.join("profile.csv"), profile)?;
        write_file(dir.join("phases.csv"), phases)?;
    }
    if let Some(contention) = &csvs.contention {
        write_file(dir.join("contention.csv"), contention)?;
    }
    if let Some(explore) = &csvs.explore {
        write_file(dir.join("explore.csv"), explore)?;
    }
    if let Some(recovery) = &csvs.recovery {
        write_file(dir.join("recovery.csv"), recovery)?;
    }
    if let Some(scale) = &csvs.scale {
        write_file(dir.join("scale.csv"), scale)?;
    }
    if let Some((critpath, _)) = &csvs.critpath {
        write_file(dir.join("critpath.csv"), critpath)?;
    }
    Ok(())
}

fn write_csv(
    dir: &std::path::Path,
    suite: &Suite,
    latency: &[report::MsgLatencyRow],
) -> Result<(), String> {
    // Rendering lives in `lcm_bench::report` so the determinism tests
    // check byte-identity against the exact strings written here.
    ensure_dir(dir)?;
    write_file(dir.join("table1.csv"), &report::table1_csv(suite))?;
    write_file(dir.join("fig2.csv"), &report::fig_csv(&suite.fig2()))?;
    write_file(dir.join("fig3.csv"), &report::fig_csv(&suite.fig3()))?;
    write_file(
        dir.join("messages.csv"),
        &report::messages_csv_with_latency(suite, latency),
    )?;
    write_file(dir.join("network.csv"), &report::network_csv(suite))?;
    Ok(())
}

/// Parses a `<rate>:<seed>` spec's *shape*; range checking is
/// [`FaultConfig::validate`]'s job so the CLI reports its named error.
fn parse_rate_seed(spec: &str) -> Option<(f64, u64)> {
    let (rate, seed) = spec.split_once(':')?;
    let rate: f64 = rate.parse().ok()?;
    let seed: u64 = seed.parse().ok()?;
    Some((rate, seed))
}

/// The stencil workload of the fault sweep at a given scale.
fn fault_stencil(scale: Scale) -> Stencil {
    match scale {
        Scale::Paper => Stencil {
            rows: 256,
            cols: 256,
            iters: 10,
            partition: Partition::Dynamic,
        },
        Scale::Medium => Stencil {
            rows: 128,
            cols: 128,
            iters: 6,
            partition: Partition::Dynamic,
        },
        Scale::Smoke => Stencil {
            rows: 48,
            cols: 48,
            iters: 3,
            partition: Partition::Dynamic,
        },
    }
}

/// The threshold workload of the fault sweep at a given scale.
fn fault_threshold(scale: Scale) -> Threshold {
    match scale {
        Scale::Paper => Threshold {
            size: 256,
            iters: 15,
            threshold: 1.0,
            sources: 6,
        },
        Scale::Medium => Threshold {
            size: 96,
            iters: 8,
            threshold: 1.0,
            sources: 4,
        },
        Scale::Smoke => Threshold::small(),
    }
}

/// The unreliable-network sweep: execution-time slowdown vs message drop
/// rate, for all three systems on two benchmarks. Returns the CSV rows.
fn print_faults(scale: Scale, custom: Option<(f64, u64)>, jobs: usize) -> String {
    let seed = custom.map_or(0xC0FFEE, |(_, s)| s);
    let mut rates = vec![0.0, 0.001, 0.01, 0.05];
    if let Some((r, _)) = custom {
        if !rates.contains(&r) {
            rates.push(r);
            rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        }
    }
    println!("== Unreliable network: slowdown vs message drop rate (seed {seed}) ==");
    println!("   each drop costs a timeout plus an exponentially backed-off retransmit;");
    println!("   outputs are checked bit-identical to the fault-free run, and every run");
    println!("   ends with the coherence-invariant sanitizer");
    let nodes = scale.nodes();
    let mut csv = String::from(
        "benchmark,system,drop_rate,seed,cycles,slowdown,msgs_delivered,retries,timeouts,dropped,duplicated\n",
    );
    let stencil = fault_stencil(scale);
    sweep_faults(
        "Stencil-dyn",
        scale,
        nodes,
        &stencil,
        &rates,
        seed,
        jobs,
        &mut csv,
    );
    let threshold = fault_threshold(scale);
    sweep_faults(
        "Threshold",
        scale,
        nodes,
        &threshold,
        &rates,
        seed,
        jobs,
        &mut csv,
    );
    println!();
    csv
}

/// Executes one benchmark's `(system × drop rate)` fault grid on the
/// sweep engine; results come back in canonical [`SweepKey`] order.
fn compute_fault_sweep<W>(
    name: &str,
    scale: Scale,
    nodes: usize,
    w: &W,
    rates: &[f64],
    seed: u64,
    jobs: usize,
) -> Vec<(SweepKey, (W::Output, RunResult))>
where
    W: Workload + Sync,
    W::Output: Send,
{
    let scale_label = scale.to_string();
    let mut points = Vec::with_capacity(3 * rates.len());
    for system in SystemKind::all() {
        for &rate in rates {
            let key = SweepKey::new(name, system.label(), &scale_label).with_fault(rate);
            points.push((key, (system, rate)));
        }
    }
    SweepEngine::new(jobs).run(points, |_, (system, rate)| {
        let faults = FaultConfig::drops(rate, seed);
        execute_with_faults(system, nodes, faults, RuntimeConfig::default(), w)
    })
}

#[allow(clippy::too_many_arguments)]
fn sweep_faults<W>(
    name: &str,
    scale: Scale,
    nodes: usize,
    w: &W,
    rates: &[f64],
    seed: u64,
    jobs: usize,
    csv: &mut String,
) where
    W: Workload + Sync,
    W::Output: PartialEq + std::fmt::Debug + Send,
{
    println!("{name}:");
    // All points run concurrently; printing walks the canonical grid in
    // the fixed (system, then rate) order, so stdout and the CSV are
    // byte-identical to the old serial loop whatever `jobs` is.
    let runs = compute_fault_sweep(name, scale, nodes, w, rates, seed, jobs);
    let scale_label = scale.to_string();
    let point = |system: SystemKind, rate: f64| {
        let key = SweepKey::new(name, system.label(), &scale_label).with_fault(rate);
        runs.iter()
            .find(|(k, _)| *k == key)
            .map(|(_, run)| run)
            .expect("every grid point was computed")
    };
    assert_eq!(rates[0], 0.0, "the first rate is the fault-free baseline");
    for system in SystemKind::all() {
        let (base_out, base) = point(system, rates[0]);
        for &rate in rates {
            let (out, r) = point(system, rate);
            assert_eq!(
                base_out, out,
                "{name}/{system}: faults changed the result at drop rate {rate}"
            );
            let slowdown = r.time as f64 / base.time as f64;
            println!(
                "  {:<8} drop={:<6} {:>13} cycles ({:>5.2}x)  retries={:<6} timeouts={:<6} dropped={:<6} dup={}",
                system.label(),
                rate,
                r.time,
                slowdown,
                r.totals.retries,
                r.totals.timeouts,
                r.totals.msgs_dropped,
                r.totals.msgs_duplicated,
            );
            csv.push_str(&format!(
                "{name},{},{rate},{seed},{},{slowdown:.4},{},{},{},{},{}\n",
                system.label(),
                r.time,
                r.msgs_total(),
                r.totals.retries,
                r.totals.timeouts,
                r.totals.msgs_dropped,
                r.totals.msgs_duplicated,
            ));
        }
        let last = &point(system, *rates.last().expect("rates nonempty")).1;
        let mix: Vec<String> = last
            .msg_kinds
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(kind, n)| format!("{}={n}", kind.label()))
            .collect();
        println!("           msgs at max rate: {}", mix.join(" "));
    }
}

/// Swept link bandwidths in bytes/cycle; 0 means unlimited — the
/// default (dormant) network model, and the baseline every slowdown in
/// the section is measured against.
const CONTENTION_BANDWIDTHS: [u64; 4] = [0, 64, 16, 4];

/// The unstructured-mesh workload of the contention sweep.
fn contention_unstructured(scale: Scale) -> Unstructured {
    match scale {
        Scale::Paper => Unstructured::paper(),
        Scale::Medium => Unstructured {
            iters: 100,
            ..Unstructured::paper()
        },
        Scale::Smoke => Unstructured::small(),
    }
}

/// One benchmark's `(system × bandwidth)` contention grid on the sweep
/// engine; results come back in canonical [`SweepKey`] order.
fn compute_contention_grid<W>(
    name: &str,
    scale: Scale,
    nodes: usize,
    w: &W,
    jobs: usize,
) -> Vec<(SweepKey, (W::Output, RunResult))>
where
    W: Workload + Sync,
    W::Output: Send,
{
    let scale_label = scale.to_string();
    let mut points = Vec::with_capacity(3 * CONTENTION_BANDWIDTHS.len());
    for system in SystemKind::all() {
        for &bw in &CONTENTION_BANDWIDTHS {
            let key = SweepKey::new(name, system.label(), &scale_label).with_sensitivity(bw);
            points.push((key, (system, bw)));
        }
    }
    SweepEngine::new(jobs).run(points, |_, (system, bw)| {
        let cost = CostModel::cm5().with_link_bandwidth(bw);
        execute_with_cost(system, nodes, cost, RuntimeConfig::default(), w)
    })
}

/// Prints one benchmark's bandwidth sweep and appends its CSV rows.
fn sweep_contention<W>(name: &str, scale: Scale, nodes: usize, w: &W, jobs: usize, csv: &mut String)
where
    W: Workload + Sync,
    W::Output: PartialEq + std::fmt::Debug + Send,
{
    println!("{name}:");
    let runs = compute_contention_grid(name, scale, nodes, w, jobs);
    let scale_label = scale.to_string();
    let point = |system: SystemKind, bw: u64| {
        let key = SweepKey::new(name, system.label(), &scale_label).with_sensitivity(bw);
        runs.iter()
            .find(|(k, _)| *k == key)
            .map(|(_, run)| run)
            .expect("every grid point was computed")
    };
    for system in SystemKind::all() {
        let (base_out, base) = point(system, 0);
        for &bw in &CONTENTION_BANDWIDTHS {
            let (out, r) = point(system, bw);
            assert_eq!(
                base_out, out,
                "{name}/{system}: contention changed the result at bandwidth {bw}"
            );
            let slowdown = r.time as f64 / base.time as f64;
            let queued = r.ledger.totals()[CycleCat::NetContention.index()];
            let bw_label = if bw == 0 {
                "unlimited".to_string()
            } else {
                format!("{bw} B/cy")
            };
            println!(
                "  {:<8} bw={:<10} {:>13} cycles ({:>5.2}x)  net_contention={}",
                system.label(),
                bw_label,
                r.time,
                slowdown,
                queued
            );
            csv.push_str(&format!(
                "{name},{},{bw},{},{slowdown:.4},{queued},{},{}\n",
                system.label(),
                r.time,
                r.msgs_total(),
                r.totals.bytes_sent,
            ));
        }
    }
    // Where the cycles went: the busiest links of the most contended
    // baseline-system run.
    let tightest = *CONTENTION_BANDWIDTHS
        .iter()
        .filter(|&&b| b > 0)
        .min()
        .expect("the sweep includes a finite bandwidth");
    let (_, worst) = point(SystemKind::Stache, tightest);
    let links = profile::hottest_links_table(worst, 5);
    if !links.is_empty() {
        println!("  hottest links (Stache at {tightest} B/cycle):");
        print!("{links}");
    }
}

/// The link-contention sweep: execution time vs fat-tree link bandwidth
/// for all three systems on four benchmarks. Returns the CSV rows.
fn print_contention(scale: Scale, jobs: usize) -> String {
    println!("== Link contention: CM-5 fat-tree fabric, time vs link bandwidth ==");
    println!("   finite bandwidth serializes each message onto its fat-tree route and");
    println!("   queues it behind in-flight traffic (charged to the receiver as");
    println!("   net_contention); bw=unlimited is the dormant default model and the");
    println!("   per-system baseline");
    let nodes = scale.nodes();
    let mut csv = String::from(
        "benchmark,system,bandwidth_bytes_per_cycle,cycles,slowdown,net_contention_cycles,msgs,bytes\n",
    );
    sweep_contention(
        "Reduction",
        scale,
        nodes,
        &ReductionSum(reduction_worksize(scale)),
        jobs,
        &mut csv,
    );
    let fs = if matches!(scale, Scale::Smoke) {
        FalseSharing::small()
    } else {
        FalseSharing::default_size()
    };
    sweep_contention("FalseShare", scale, fs.writers, &fs, jobs, &mut csv);
    sweep_contention(
        "Unstructured",
        scale,
        nodes,
        &contention_unstructured(scale),
        jobs,
        &mut csv,
    );
    sweep_contention(
        "Stencil-dyn",
        scale,
        nodes,
        &fault_stencil(scale),
        jobs,
        &mut csv,
    );
    println!();
    csv
}

/// Swept link bandwidths of the explore grid (bytes/cycle; 0 = unlimited).
const EXPLORE_BANDWIDTHS: [u64; 4] = [0, 64, 16, 4];
/// Swept remote-miss latencies of the explore grid (cycles).
const EXPLORE_LATENCIES: [u64; 3] = [500, 3000, 12000];

/// Rolling state of the explore section: grid rows plus timing totals,
/// accumulated one capture at a time so only a single trace is ever
/// resident (medium-scale captures run to millions of events).
#[derive(Default)]
struct ExploreAcc {
    rows: Vec<explore::ExploreRow>,
    traces: usize,
    events: usize,
    capture_secs: f64,
    replay_secs: f64,
}

/// Captures one (benchmark, system) pair, validates the capture,
/// optionally saves it as a `.lcmtrace`, replays the grid over it, and
/// folds everything into `acc`.
#[allow(clippy::too_many_arguments)]
fn explore_one<W: Workload>(
    benchmark: &str,
    scale_label: &str,
    system: SystemKind,
    nodes: usize,
    w: &W,
    jobs: usize,
    trace_dir: Option<&std::path::Path>,
    acc: &mut ExploreAcc,
) {
    let t0 = Instant::now();
    let file = explore::capture_workload(
        benchmark,
        scale_label,
        system,
        nodes,
        RuntimeConfig::default(),
        w,
        explore::CAPTURE_CAPACITY,
    )
    .unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    if let Err(e) = lcm_replay::validate(&file) {
        eprintln!("capture {benchmark}/{system} failed validation: {e}");
        std::process::exit(1);
    }
    acc.capture_secs += t0.elapsed().as_secs_f64();
    if let Some(dir) = trace_dir {
        let name = format!(
            "{}-{}.lcmtrace",
            benchmark.to_lowercase(),
            system.label().to_lowercase()
        );
        if let Err(e) = file.write_to(&dir.join(&name)) {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
    acc.traces += 1;
    acc.events += file.events.len();
    let t1 = Instant::now();
    let handle = std::sync::Arc::new(file);
    acc.rows.extend(explore::explore_grid(
        std::slice::from_ref(&handle),
        &EXPLORE_BANDWIDTHS,
        &EXPLORE_LATENCIES,
        jobs,
    ));
    acc.replay_secs += t1.elapsed().as_secs_f64();
}

/// The design-space exploration: capture each (benchmark, system) pair
/// once, validate the captures, then re-price them across the bandwidth
/// × latency grid with the replay engine. Returns the CSV rows.
fn print_explore(scale: Scale, jobs: usize, trace_dir: Option<&std::path::Path>) -> String {
    println!("== Design-space exploration: replayed cost-model grid (scale '{scale}') ==");
    println!("   each (benchmark, system) pair executes once in capture mode; every grid");
    println!("   point below is the trace re-priced by lcm-replay, not a re-execution,");
    println!("   and each capture is validated to reproduce its execution-driven run");
    if let Some(dir) = trace_dir {
        if let Err(e) = ensure_dir(dir) {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
    let nodes = scale.nodes();
    let scale_label = scale.to_string();
    let red = ReductionSum(reduction_worksize(scale));
    let sten = fault_stencil(scale);
    let mut acc = ExploreAcc::default();
    for system in SystemKind::all() {
        explore_one(
            "Reduction",
            &scale_label,
            system,
            nodes,
            &red,
            jobs,
            trace_dir,
            &mut acc,
        );
    }
    for system in SystemKind::all() {
        explore_one(
            "Stencil-dyn",
            &scale_label,
            system,
            nodes,
            &sten,
            jobs,
            trace_dir,
            &mut acc,
        );
    }
    // Wall-clock times and the trace directory vary between runs, so
    // they go to stderr: stdout stays byte-identical at any --jobs
    // (the §4d contract, diffed in CI).
    if let Some(dir) = trace_dir {
        eprintln!(
            "   {} .lcmtrace capture files written to {}",
            acc.traces,
            dir.display()
        );
    }
    let ExploreAcc {
        rows,
        traces,
        events,
        capture_secs,
        replay_secs,
    } = acc;
    println!(
        "   {traces} traces ({events} events) captured+validated; {} grid points replayed",
        rows.len()
    );
    eprintln!("   (wall-clock: capture+validate {capture_secs:.1}s, replay {replay_secs:.2}s)");
    println!(
        "  {:<12} {:<9} {:>10} | {:>13} {:>13} {:>13}",
        "benchmark", "system", "bandwidth", "lat=500", "lat=3000", "lat=12000"
    );
    for chunk in rows.chunks(EXPLORE_LATENCIES.len()) {
        let r = &chunk[0];
        let bw_label = if r.bandwidth == 0 {
            "unlimited".to_string()
        } else {
            format!("{} B/cy", r.bandwidth)
        };
        let times: Vec<String> = chunk.iter().map(|r| r.time.to_string()).collect();
        println!(
            "  {:<12} {:<9} {:>10} | {:>13} {:>13} {:>13}",
            r.benchmark, r.system, bw_label, times[0], times[1], times[2]
        );
    }
    println!();
    explore::explore_csv(&rows)
}

/// Default crash rates of the recovery sweep (0 is run separately as the
/// per-system baseline every slowdown and output check measures against).
const RECOVERY_RATES: [f64; 2] = [0.05, 0.2];
/// Swept checkpoint granularities: checkpoint every N-th phase boundary.
const RECOVERY_EVERY: [u64; 2] = [1, 4];
/// Default crash-schedule seed of the recovery sweep.
const RECOVERY_SEED: u64 = 0x5EED;

/// Per-system accumulation across the whole recovery grid, for
/// `BENCH_recovery.json`.
#[derive(Default, Clone, Copy)]
struct RecoveryAgg {
    runs: u64,
    checkpoints: u64,
    checkpoint_bytes: u64,
    crashes: u64,
    checkpoint_cycles: u64,
    rollback_cycles: u64,
    crash_detect_cycles: u64,
}

/// The adaptive-mesh workload of the recovery sweep.
fn recovery_adaptive(scale: Scale) -> lcm_apps::adaptive::Adaptive {
    use lcm_apps::adaptive::Adaptive;
    match scale {
        Scale::Paper => Adaptive::paper(Partition::Dynamic),
        Scale::Medium => Adaptive {
            size: 64,
            iters: 40,
            ..Adaptive::paper(Partition::Dynamic)
        },
        Scale::Smoke => Adaptive::small(Partition::Dynamic),
    }
}

/// One benchmark's `(system × crash rate × checkpoint granularity)` grid.
///
/// Runs on [`lcm_sim::try_par_map`] so a failing grid point is reported
/// and skipped while the rest of the sweep completes; printing walks the
/// canonical point order, so stdout and the CSV stay byte-identical at
/// any `--jobs`.
#[allow(clippy::too_many_arguments)]
fn sweep_recovery<W>(
    name: &str,
    nodes: usize,
    w: &W,
    rates: &[f64],
    seed: u64,
    jobs: usize,
    csv: &mut String,
    aggs: &mut [RecoveryAgg; 3],
    failures: &mut Vec<String>,
) where
    W: Workload + Sync,
    W::Output: PartialEq + std::fmt::Debug + Send,
{
    println!("{name}:");
    let mut points = Vec::new();
    for system in SystemKind::all() {
        // The crash-free baseline first; an inactive plan never
        // checkpoints, so its granularity does not matter.
        points.push((system, 0.0f64, 1u64));
        for &rate in rates {
            for &every in &RECOVERY_EVERY {
                points.push((system, rate, every));
            }
        }
    }
    let runs = lcm_sim::try_par_map(jobs, points.clone(), |_, (system, rate, every)| {
        let cfg = RuntimeConfig {
            crash: CrashPlan::new(rate, seed),
            checkpoint_every: every,
            ..RuntimeConfig::default()
        };
        execute(system, nodes, cfg, w)
    });
    let per_system = 1 + rates.len() * RECOVERY_EVERY.len();
    for (si, system) in SystemKind::all().into_iter().enumerate() {
        let keys = &points[si * per_system..(si + 1) * per_system];
        let slot = &runs[si * per_system..(si + 1) * per_system];
        let baseline = match &slot[0] {
            Ok(run) => Some(run),
            Err(e) => {
                failures.push(format!(
                    "{name}/{}: crash-free baseline failed: {e}",
                    system.label()
                ));
                None
            }
        };
        for ((_, rate, every), run) in keys.iter().zip(slot) {
            let (out, r) = match run {
                Ok(run) => run,
                Err(e) => {
                    failures.push(format!(
                        "{name}/{} crash={rate} every={every}: {e}",
                        system.label()
                    ));
                    continue;
                }
            };
            let mut slowdown = 0.0;
            if let Some((base_out, base)) = baseline {
                // The §4d contract: crashes move cycles, never values.
                if out != base_out {
                    failures.push(format!(
                        "{name}/{} crash={rate} every={every}: output diverged from \
                         the crash-free run",
                        system.label()
                    ));
                    continue;
                }
                slowdown = r.time as f64 / base.time as f64;
            }
            let cats = r.ledger.totals();
            let ck_cycles = cats[CycleCat::Checkpoint.index()];
            let rb_cycles = cats[CycleCat::Rollback.index()];
            let det_cycles = cats[CycleCat::CrashDetect.index()];
            println!(
                "  {:<8} crash={:<5} every={} {:>13} cycles ({:>5.2}x)  crashes={:<3} ckpts={:<4} ckpt_bytes={:<9} rollback_cy={}",
                system.label(),
                rate,
                every,
                r.time,
                slowdown,
                r.totals.crashes,
                r.totals.checkpoints,
                r.totals.checkpoint_bytes,
                rb_cycles,
            );
            csv.push_str(&format!(
                "{name},{},{rate},{seed},{every},{},{slowdown:.4},{},{},{},{ck_cycles},{rb_cycles},{det_cycles}\n",
                system.label(),
                r.time,
                r.totals.crashes,
                r.totals.checkpoints,
                r.totals.checkpoint_bytes,
            ));
            let agg = &mut aggs[si];
            agg.runs += 1;
            agg.checkpoints += r.totals.checkpoints;
            agg.checkpoint_bytes += r.totals.checkpoint_bytes;
            agg.crashes += r.totals.crashes;
            agg.checkpoint_cycles += ck_cycles;
            agg.rollback_cycles += rb_cycles;
            agg.crash_detect_cycles += det_cycles;
        }
    }
    // The headline asymmetry, per benchmark: what one full checkpoint
    // schedule costs each protocol at the highest swept rate.
    let probe = |si: usize| match &runs[si * per_system + per_system - RECOVERY_EVERY.len()] {
        Ok((_, r)) => Some(r.totals.checkpoint_bytes),
        Err(_) => None,
    };
    if let (Some(mcc), Some(stache)) = (probe(1), probe(2)) {
        println!(
            "  checkpoint bytes at crash={} every=1: LCM-mcc {} vs Stache {} ({:.2}x)",
            rates.last().expect("rates nonempty"),
            mcc,
            stache,
            stache as f64 / mcc.max(1) as f64
        );
    }
}

/// The fail-stop recovery sweep: crash rate × checkpoint granularity over
/// the Fig-3 benchmarks (plus Reduction and Stencil) × 3 systems.
/// Returns the CSV rows and writes `BENCH_recovery.json`.
fn print_recovery(
    scale: Scale,
    custom: Option<(f64, u64)>,
    jobs: usize,
    csv_dir: Option<&std::path::Path>,
    failures: &mut Vec<String>,
) -> String {
    let seed = custom.map_or(RECOVERY_SEED, |(_, s)| s);
    let mut rates = RECOVERY_RATES.to_vec();
    if let Some((r, _)) = custom {
        if r > 0.0 && !rates.contains(&r) {
            rates.push(r);
            rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        }
    }
    println!("== Fail-stop recovery: crash rate x checkpoint granularity (seed {seed}) ==");
    println!("   every phase boundary may checkpoint; a crashed node rolls back to the");
    println!("   last checkpoint and re-executes, so crashes change cycles and statistics");
    println!("   only — outputs are checked bit-identical to the crash-free run. LCM");
    println!("   checkpoints only unreconciled modified words; Stache must capture its");
    println!("   directory plus every dirty line — that asymmetry is the point.");
    let nodes = scale.nodes();
    let mut csv = String::from(
        "benchmark,system,crash_rate,crash_seed,checkpoint_every,cycles,slowdown,crashes,checkpoints,checkpoint_bytes,checkpoint_cycles,rollback_cycles,crash_detect_cycles\n",
    );
    let mut aggs = [RecoveryAgg::default(); 3];
    sweep_recovery(
        "Reduction",
        nodes,
        &ReductionSum(reduction_worksize(scale)),
        &rates,
        seed,
        jobs,
        &mut csv,
        &mut aggs,
        failures,
    );
    sweep_recovery(
        "Stencil-dyn",
        nodes,
        &fault_stencil(scale),
        &rates,
        seed,
        jobs,
        &mut csv,
        &mut aggs,
        failures,
    );
    sweep_recovery(
        "Adaptive-dyn",
        nodes,
        &recovery_adaptive(scale),
        &rates,
        seed,
        jobs,
        &mut csv,
        &mut aggs,
        failures,
    );
    sweep_recovery(
        "Threshold",
        nodes,
        &fault_threshold(scale),
        &rates,
        seed,
        jobs,
        &mut csv,
        &mut aggs,
        failures,
    );
    sweep_recovery(
        "Unstructured",
        nodes,
        &contention_unstructured(scale),
        &rates,
        seed,
        jobs,
        &mut csv,
        &mut aggs,
        failures,
    );
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    json.push_str(&format!("  \"crash_seed\": {seed},\n"));
    json.push_str("  \"systems\": [\n");
    for (si, system) in SystemKind::all().into_iter().enumerate() {
        let a = &aggs[si];
        json.push_str(&format!(
            "    {{\"system\": \"{}\", \"runs\": {}, \"checkpoints\": {}, \
             \"checkpoint_bytes\": {}, \"crashes\": {}, \"checkpoint_cycles\": {}, \
             \"rollback_cycles\": {}, \"crash_detect_cycles\": {}}}{}\n",
            system.label(),
            a.runs,
            a.checkpoints,
            a.checkpoint_bytes,
            a.crashes,
            a.checkpoint_cycles,
            a.rollback_cycles,
            a.crash_detect_cycles,
            if si + 1 < 3 { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = csv_dir
        .map(|d| d.join("BENCH_recovery.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_recovery.json"));
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = ensure_dir(parent) {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("recovery overhead summary written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!();
    csv
}

/// The kilonode scale sweep: five benchmarks × 3 systems × 3 directory
/// backends across machines of 32→1024 nodes. Prints the divergence and
/// backend-overhead summaries, writes `BENCH_scale.json`, and returns
/// the CSV rows (byte-identical at any `--jobs`).
fn print_scale(jobs: usize, csv_dir: Option<&std::path::Path>) -> String {
    use lcm_apps::scale_sweep::{scale_benchmarks, try_sweep_scale, ScaleRow, SCALE_NODE_COUNTS};
    use lcm_sim::DirBackend;
    println!("== Scale: directory backends from the paper's 32 nodes to 1024 ==");
    println!("   full-map invalidates exactly; limited-ptr entries that overflow their");
    println!("   pointers broadcast to the whole machine; coarse-vec invalidates whole");
    println!("   node groups. The defaults re-spend the old 64-bit budget, so all three");
    println!("   are bit-identical up to 64 nodes and diverge only beyond the old wall.");
    let t0 = Instant::now();
    // Failures come back tagged with their sweep key, so one bad grid
    // point names itself instead of tearing the whole section down with
    // an anonymous panic.
    let rows = match try_sweep_scale(&SCALE_NODE_COUNTS, jobs) {
        Ok(rows) => rows,
        Err(failures) => {
            eprintln!("scale: {} grid point(s) failed:", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    };
    println!(
        "   {} grid points in {:.1}s ({jobs} worker(s))\n",
        rows.len(),
        t0.elapsed().as_secs_f64()
    );

    let mut csv = String::from(
        "benchmark,system,backend,nodes,cycles,misses,msgs,invalidations_sent,\
         dir_overflows,spurious_invals,msg_overhead_cycles,digest\n",
    );
    let msg_overhead = |r: &lcm_apps::RunResult, nodes: usize| -> u64 {
        (0..nodes)
            .map(|n| r.ledger.get(NodeId(n as u16), CycleCat::MsgOverhead))
            .sum()
    };
    for row in &rows {
        let r = &row.result;
        let msgs: u64 = r.msg_kinds.iter().map(|(_, c)| c).sum();
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:016x}\n",
            row.benchmark.label(),
            r.system.label(),
            row.backend.label(),
            row.nodes,
            r.time,
            r.misses(),
            msgs,
            r.totals.invalidations_sent,
            r.totals.dir_overflows,
            r.totals.spurious_invals,
            msg_overhead(r, row.nodes),
            r.digest(),
        ));
    }

    let find = |b, nodes, sys, backend: DirBackend| -> &ScaleRow {
        rows.iter()
            .find(|r| {
                r.benchmark == b
                    && r.nodes == nodes
                    && r.result.system == sys
                    && r.backend == backend
            })
            .expect("grid is complete")
    };

    println!("   Stache vs LCM-mcc, full-map (cycles, ratio):");
    println!(
        "   {:<14} {:>6} {:>12} {:>12} {:>7}",
        "benchmark", "nodes", "stache", "lcm-mcc", "ratio"
    );
    for b in scale_benchmarks() {
        for &nodes in &SCALE_NODE_COUNTS {
            let st = find(b, nodes, SystemKind::Stache, DirBackend::FullMap)
                .result
                .time;
            let mcc = find(b, nodes, SystemKind::LcmMcc, DirBackend::FullMap)
                .result
                .time;
            println!(
                "   {:<14} {:>6} {:>12} {:>12} {:>6.2}x",
                b.label(),
                nodes,
                st,
                mcc,
                st as f64 / mcc.max(1) as f64
            );
        }
    }
    println!();
    println!("   backend overhead under Stache (cycles vs full-map; overflow costs):");
    println!(
        "   {:<14} {:>6} {:<12} {:>12} {:>8} {:>10} {:>12}",
        "benchmark", "nodes", "backend", "cycles", "vs full", "overflows", "spurious"
    );
    for b in scale_benchmarks() {
        for &nodes in &SCALE_NODE_COUNTS {
            let full = find(b, nodes, SystemKind::Stache, DirBackend::FullMap)
                .result
                .time;
            for backend in [
                DirBackend::LimitedPtr { ptrs: 64 },
                DirBackend::CoarseVec { bits: 64 },
            ] {
                let row = find(b, nodes, SystemKind::Stache, backend);
                println!(
                    "   {:<14} {:>6} {:<12} {:>12} {:>7.2}x {:>10} {:>12}",
                    b.label(),
                    nodes,
                    backend.label(),
                    row.result.time,
                    row.result.time as f64 / full.max(1) as f64,
                    row.result.totals.dir_overflows,
                    row.result.totals.spurious_invals,
                );
            }
        }
    }

    // BENCH_scale.json: the divergence trend and overflow totals, summed
    // over benchmarks, for trend-tracking across releases.
    let mut json = String::from("{\n  \"node_counts\": [");
    json.push_str(
        &SCALE_NODE_COUNTS
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    json.push_str("],\n  \"divergence_full_map\": [\n");
    for (i, &nodes) in SCALE_NODE_COUNTS.iter().enumerate() {
        let sum = |sys| -> u64 {
            scale_benchmarks()
                .into_iter()
                .map(|b| find(b, nodes, sys, DirBackend::FullMap).result.time)
                .sum()
        };
        let st = sum(SystemKind::Stache);
        let mcc = sum(SystemKind::LcmMcc);
        json.push_str(&format!(
            "    {{\"nodes\": {nodes}, \"stache_cycles\": {st}, \"lcm_mcc_cycles\": {mcc}, \
             \"ratio\": {:.4}}}{}\n",
            st as f64 / mcc.max(1) as f64,
            if i + 1 < SCALE_NODE_COUNTS.len() {
                ","
            } else {
                ""
            },
        ));
    }
    json.push_str("  ],\n  \"backend_overhead_stache\": [\n");
    let backends = [
        DirBackend::LimitedPtr { ptrs: 64 },
        DirBackend::CoarseVec { bits: 64 },
    ];
    for (bi, &backend) in backends.iter().enumerate() {
        for (i, &nodes) in SCALE_NODE_COUNTS.iter().enumerate() {
            let mut cycles = 0u64;
            let mut full = 0u64;
            let mut ovf = 0u64;
            let mut spur = 0u64;
            for b in scale_benchmarks() {
                let row = find(b, nodes, SystemKind::Stache, backend);
                cycles += row.result.time;
                ovf += row.result.totals.dir_overflows;
                spur += row.result.totals.spurious_invals;
                full += find(b, nodes, SystemKind::Stache, DirBackend::FullMap)
                    .result
                    .time;
            }
            let last = bi + 1 == backends.len() && i + 1 == SCALE_NODE_COUNTS.len();
            json.push_str(&format!(
                "    {{\"backend\": \"{}\", \"nodes\": {nodes}, \"cycles\": {cycles}, \
                 \"vs_full_map\": {:.4}, \"dir_overflows\": {ovf}, \"spurious_invals\": {spur}}}{}\n",
                backend.label(),
                cycles as f64 / full.max(1) as f64,
                if last { "" } else { "," },
            ));
        }
    }
    json.push_str("  ]\n}\n");
    let path = csv_dir
        .map(|d| d.join("BENCH_scale.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_scale.json"));
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = ensure_dir(parent) {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nscale summary written to {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!();
    csv
}

/// The `replay` subcommand: parse a `.lcmtrace`, validate it against its
/// own footer, and summarize what it holds.
fn run_replay_summary(path: &std::path::Path) {
    // `open` shares one decoded handle per path: a summary of a trace
    // already resident (e.g. loaded by a server in this process) costs
    // no second decode.
    let file = match TraceFile::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!("{} (.lcmtrace v{})", path.display(), lcm_replay::VERSION);
    for (k, v) in &file.metadata {
        println!("  {k}: {v}");
    }
    println!("  nodes: {}   topology: {}", file.nodes, file.topology);
    println!("  fingerprint: {:#018x}", file.fingerprint());
    println!(
        "  events: {}   phase marks: {}",
        file.events.len(),
        file.phase_index.len()
    );
    match lcm_replay::validate(&file) {
        Ok(r) => {
            println!("  validation: OK (replay reproduces the execution-driven run exactly)");
            println!(
                "  time: {} cycles   barriers: {}   msgs: {}   bytes sent: {}",
                r.time, r.barriers, file.totals.msgs_sent, file.totals.bytes_sent
            );
            println!("  cycles by category (all nodes):");
            for cat in CycleCat::all() {
                let total: u64 = (0..file.nodes)
                    .map(|n| r.ledger.get(NodeId(n as u16), cat))
                    .sum();
                if total > 0 {
                    println!("    {:<18} {total}", cat.label());
                }
            }
        }
        Err(e) => {
            eprintln!("  validation FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// The `critpath` subcommand: parse a `.lcmtrace` and run the
/// happens-before analysis offline. Unreadable or corrupt files are a
/// usage-level failure (exit 2, like bad flags): the named format error
/// goes to stderr.
fn run_critpath_file(path: &std::path::Path) {
    let file = match TraceFile::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("critpath: {e}");
            std::process::exit(2);
        }
    };
    println!("{} (.lcmtrace v{})", path.display(), lcm_replay::VERSION);
    for (k, v) in &file.metadata {
        println!("  {k}: {v}");
    }
    println!("  nodes: {}   topology: {}", file.nodes, file.topology);
    let cp = lcm_replay::analyze(&file);
    if cp.path_length() != cp.makespan {
        eprintln!(
            "critpath: path length {} != makespan {} — the happens-before walk \
             does not reproduce this capture",
            cp.path_length(),
            cp.makespan
        );
        std::process::exit(1);
    }
    if cp.unmatched_recvs > 0 || cp.unmatched_sends > 0 {
        eprintln!(
            "  note: {} recv(s) and {} send(s) had no FIFO partner (faulty capture?); \
             program-order and barrier edges still cover the path",
            cp.unmatched_recvs, cp.unmatched_sends
        );
    }
    let whatifs = critpath::top_whatifs(&cp, 10);
    print!("{}", critpath::critpath_report(&cp, &whatifs));
}

/// Link bandwidth (bytes/cycle) of the `critpath` section's captures:
/// finite, so network contention exists and the on-path vs slack-hidden
/// split has something to say about it.
const CRITPATH_BANDWIDTH: u64 = 16;

/// Chrome-trace export cap for `--flow-trace`: beyond this many capture
/// events the JSON becomes unloadable, so the export keeps a prefix and
/// says so on stderr.
const FLOW_EXPORT_EVENTS: usize = 4_000_000;

/// One analyzed capture of the `critpath` section. The edge list is
/// already summarized (latency rows, optional flow JSON) and dropped by
/// the worker, so nine captures' edges never coexist in memory.
struct CritOut {
    benchmark: &'static str,
    system: SystemKind,
    cp: lcm_replay::CritPath,
    whatifs: Vec<critpath::WhatIfRow>,
    latency: Vec<report::MsgLatencyRow>,
    flow_json: Option<(String, usize)>,
}

/// Captures one benchmark×system execution at finite bandwidth, runs the
/// happens-before analysis, and validates its what-if projections
/// against genuine replays under modified cost models.
fn compute_critpath_one(
    bench: usize,
    system: SystemKind,
    scale: Scale,
    nodes: usize,
    scale_label: &str,
    want_flow: bool,
) -> Result<CritOut, String> {
    let cost = CostModel::cm5().with_link_bandwidth(CRITPATH_BANDWIDTH);
    let mc = MachineConfig::new(nodes).with_cost(cost);
    let config = RuntimeConfig::default();
    let cap = explore::CAPTURE_CAPACITY;
    let (benchmark, file) = match bench {
        0 => (
            "Stencil-dyn",
            explore::capture_with_machine(
                "Stencil-dyn",
                scale_label,
                system,
                mc,
                config,
                &fault_stencil(scale),
                cap,
            )?,
        ),
        1 => (
            "Threshold",
            explore::capture_with_machine(
                "Threshold",
                scale_label,
                system,
                mc,
                config,
                &fault_threshold(scale),
                cap,
            )?,
        ),
        _ => (
            "Unstructured",
            explore::capture_with_machine(
                "Unstructured",
                scale_label,
                system,
                mc,
                config,
                &contention_unstructured(scale),
                cap,
            )?,
        ),
    };
    lcm_replay::validate(&file).map_err(|e| {
        format!(
            "{benchmark}/{}: capture failed validation: {e}",
            system.label()
        )
    })?;
    let mut cp = lcm_replay::analyze(&file);
    if cp.path_length() != cp.makespan {
        return Err(format!(
            "{benchmark}/{}: path length {} != makespan {}",
            system.label(),
            cp.path_length(),
            cp.makespan
        ));
    }
    let mut whatifs = critpath::top_whatifs(&cp, 10);
    // Exactly-checkable projection: zeroing `net_contention` must equal a
    // genuine replay of the same trace at unlimited bandwidth, because no
    // other charge in the stream depends on the link model. A mismatch
    // means the analyzer's cost arithmetic diverged from the engine's —
    // fail the section rather than print a wrong projection.
    let mut bw0 = file.cost;
    bw0.link_bandwidth_bytes_per_cycle = 0;
    let r0 = lcm_replay::replay(&file, &bw0, file.topology);
    let nc0 = cp.whatif(&[CycleCat::NetContention], 0);
    if nc0 != r0.time {
        return Err(format!(
            "{benchmark}/{}: what-if net_contention x0% projects {nc0} cycles but a \
             zero-bandwidth replay takes {}",
            system.label(),
            r0.time
        ));
    }
    let note = format!("exact;replay={}", r0.time);
    match whatifs.iter_mut().find(|w| w.item == "net_contention x0%") {
        Some(w) => w.note = note,
        None => whatifs.push(critpath::WhatIfRow {
            item: "net_contention x0%".to_string(),
            predicted: nc0,
            note,
        }),
    }
    // Tolerance-checked projection: doubling the remote-stall categories
    // vs a genuine replay with `remote_miss` doubled. These diverge where
    // the engine prices a charge by `remote_miss - msg_send` rather than
    // proportionally (§4h documents the limit); the measured error is
    // reported in the row's note.
    let mut rm2 = file.cost;
    rm2.remote_miss *= 2;
    let r2 = lcm_replay::replay(&file, &rm2, file.topology);
    let pred2 = cp.whatif(
        &[CycleCat::ReadStallRemote, CycleCat::WriteStallRemote],
        200,
    );
    let err2 = 100.0 * (pred2 as f64 - r2.time as f64) / r2.time as f64;
    whatifs.push(critpath::WhatIfRow {
        item: "remote_stalls x200%".to_string(),
        predicted: pred2,
        note: format!("replay={};err={err2:+.2}%", r2.time),
    });
    let latency = critpath::msg_latency_rows(benchmark, system.label(), &cp);
    let flow_json =
        (want_flow && benchmark == "Stencil-dyn" && system == SystemKind::LcmMcc).then(|| {
            let cut = file.events.len().min(FLOW_EXPORT_EVENTS);
            if cut < file.events.len() {
                let max_seq = file.events[cut - 1].seq;
                cp.edges
                    .retain(|e| e.send_seq <= max_seq && e.recv_seq <= max_seq);
            }
            let (flows, path) = critpath::flow_annotations(&cp);
            (
                profile::chrome_trace_json_with_flows(
                    &file.events[..cut],
                    file.nodes,
                    &[],
                    &flows,
                    &path,
                ),
                file.events.len() - cut,
            )
        });
    cp.edges = Vec::new();
    cp.edges.shrink_to_fit();
    Ok(CritOut {
        benchmark,
        system,
        cp,
        whatifs,
        latency,
        flow_json,
    })
}

/// The `critpath` section: capture every benchmark×system pair at finite
/// bandwidth, run the happens-before analysis, print per-pair reports
/// and the on-path vs slack-hidden headline table. Returns
/// `(critpath.csv, messages.csv latency rows)`.
fn print_critpath(
    scale: Scale,
    jobs: usize,
    flow_path: Option<&std::path::Path>,
) -> (String, Vec<report::MsgLatencyRow>) {
    println!("== Critical path: happens-before analysis of captured executions ==");
    println!("   each benchmark×system pair executes once in capture mode with");
    println!("   {CRITPATH_BANDWIDTH} B/cy links; the happens-before walk reproduces the makespan");
    println!("   bit-exactly, splits every ledger category into on-path vs slack-");
    println!("   hidden cycles, and projects causal what-ifs (validated against");
    println!("   genuine replays under modified cost models)");
    let nodes = scale.nodes();
    let scale_label = scale.to_string();
    let want_flow = flow_path.is_some();
    let t0 = Instant::now();
    let items: Vec<(usize, SystemKind)> = (0..3)
        .flat_map(|b| SystemKind::all().into_iter().map(move |s| (b, s)))
        .collect();
    let results = lcm_sim::par_map(jobs, items, |_, (bench, system)| {
        compute_critpath_one(bench, system, scale, nodes, &scale_label, want_flow)
    });
    let mut outs: Vec<CritOut> = Vec::new();
    for r in results {
        match r {
            Ok(o) => outs.push(o),
            Err(e) => {
                eprintln!("critpath: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!(
        "   (wall-clock: capture+analyze {:.1}s)",
        t0.elapsed().as_secs_f64()
    );
    for o in &outs {
        println!("-- {} / {} --", o.benchmark, o.system.label());
        print!("{}", critpath::critpath_report(&o.cp, &o.whatifs));
        println!();
    }
    println!("net contention, on-path share (the flat ledger counts every stall;");
    println!("only the on-path fraction actually bounds the run):");
    println!("  {:<14} {:>24} {:>24}", "benchmark", "Stache", "LCM-mcc");
    let cell = |bench: &str, sys: SystemKind| -> String {
        outs.iter()
            .find(|o| o.benchmark == bench && o.system == sys)
            .map_or("-".to_string(), |o| {
                let i = CycleCat::NetContention.index();
                let (on, tot) = (o.cp.on_path_by_cat()[i], o.cp.total_by_cat()[i]);
                if tot == 0 {
                    "none".to_string()
                } else {
                    format!("{:.1}% of {tot}", 100.0 * on as f64 / tot as f64)
                }
            })
    };
    for bench in ["Stencil-dyn", "Threshold", "Unstructured"] {
        println!(
            "  {bench:<14} {:>24} {:>24}",
            cell(bench, SystemKind::Stache),
            cell(bench, SystemKind::LcmMcc)
        );
    }
    println!();
    let mut latency: Vec<report::MsgLatencyRow> = Vec::new();
    let mut entries = Vec::new();
    for o in outs {
        if let (Some(path), Some((json, truncated))) = (flow_path, &o.flow_json) {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                if let Err(e) = ensure_dir(parent) {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            }
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("failed to write flow trace to {}: {e}", path.display());
                std::process::exit(1);
            }
            // The path varies between runs, so this goes to stderr like
            // the other wall-clock/location notes (§4d byte-identity).
            eprintln!(
                "   flow-annotated Chrome-trace JSON written to {} — load it at \
                 ui.perfetto.dev and follow the send→recv arrows",
                path.display()
            );
            if *truncated > 0 {
                eprintln!(
                    "   (export truncated: {truncated} events past the first \
                     {FLOW_EXPORT_EVENTS} were dropped, with their flow arrows)"
                );
            }
        }
        latency.extend(o.latency);
        entries.push((
            o.benchmark.to_string(),
            o.system.label().to_string(),
            o.cp,
            o.whatifs,
        ));
    }
    (critpath::critpath_csv(&entries), latency)
}

/// The cycle-attribution profile: Stencil-dyn on all three systems with
/// tracing on, per-node cycle breakdowns, hottest blocks, and message
/// histograms. Returns `(profile.csv, phases.csv)` contents; with
/// `trace_path` set, also exports the LCM-mcc event stream as
/// Chrome-trace JSON.
fn print_profile(
    scale: Scale,
    trace_path: Option<&std::path::Path>,
    jobs: usize,
) -> (String, String) {
    println!("== Cycle-attribution profile: Stencil-dyn, every cycle to a category ==");
    println!("   (per-node category sums are conservation-checked against the clocks");
    println!("   by the sanitizer on every harvest)");
    let nodes = scale.nodes();
    let cost = CostModel::cm5();
    // The three traced runs execute concurrently; reports print in the
    // fixed system order afterwards.
    let traced = compute_profile_runs(scale, jobs);
    let mut results = Vec::new();
    for (system, (r, events)) in SystemKind::all().into_iter().zip(traced) {
        println!("{}", profile::profile_report(&r, &events, &cost));
        if system == SystemKind::LcmMcc {
            if let Some(path) = trace_path {
                let json = profile::chrome_trace_json(&events, nodes);
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    if let Err(e) = ensure_dir(parent) {
                        eprintln!("{e}");
                        std::process::exit(1);
                    }
                }
                match std::fs::write(path, &json) {
                    Ok(()) => println!(
                        "Chrome-trace JSON ({} events) written to {} — load it at \
                         ui.perfetto.dev or chrome://tracing\n",
                        events.len(),
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("failed to write trace to {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
        }
        results.push(r);
    }
    // Critical-path drill-down: one more LCM-mcc execution in capture
    // mode, analyzed by the happens-before walk. The flat breakdown above
    // counts every charged cycle; this splits each category into cycles
    // on the critical path vs cycles hidden behind a slower node.
    println!("-- critical-path drill-down (LCM-mcc, captured execution) --");
    match explore::capture_workload(
        "Stencil-dyn",
        &scale.to_string(),
        SystemKind::LcmMcc,
        nodes,
        RuntimeConfig::default(),
        &profile_stencil(scale),
        explore::CAPTURE_CAPACITY,
    ) {
        Ok(file) => {
            let cp = lcm_replay::analyze(&file);
            print!("{}", critpath::drilldown_table(&cp));
            println!(
                "  path length {} == makespan {} ({} epochs); run the `critpath` \
                 section for slack histograms and what-ifs",
                cp.path_length(),
                cp.makespan,
                cp.epochs.len()
            );
        }
        // Deterministic for a given scale, so stdout stays --jobs-stable.
        Err(e) => println!("  drill-down unavailable: {e}"),
    }
    println!();
    let entries: Vec<(&str, &RunResult)> = results.iter().map(|r| ("Stencil-dyn", r)).collect();
    (
        profile::profile_csv(&entries),
        profile::phases_csv(&entries),
    )
}

/// The profiled stencil workload at a given scale.
fn profile_stencil(scale: Scale) -> Stencil {
    match scale {
        Scale::Paper => Stencil {
            rows: 256,
            cols: 256,
            iters: 10,
            partition: Partition::Dynamic,
        },
        Scale::Medium => Stencil {
            rows: 128,
            cols: 128,
            iters: 6,
            partition: Partition::Dynamic,
        },
        Scale::Smoke => Stencil {
            rows: 48,
            cols: 48,
            iters: 3,
            partition: Partition::Dynamic,
        },
    }
}

/// Runs the three traced profile simulations (one per system) on the
/// worker pool, returning `(result, events)` in system order.
fn compute_profile_runs(scale: Scale, jobs: usize) -> Vec<(RunResult, Vec<Stamped>)> {
    let nodes = scale.nodes();
    let w = profile_stencil(scale);
    lcm_sim::par_map(jobs, SystemKind::all().to_vec(), |_, system| {
        let mc = MachineConfig::new(nodes).with_trace(2_000_000);
        let (_, r, events) = execute_traced(system, mc, RuntimeConfig::default(), &w);
        (r, events)
    })
}

fn print_flush_policy(scale: Scale, jobs: usize) {
    println!("== §5.1 flush elision: per-invocation vs at-reconcile flushes ==");
    println!("   (sound when the compiler proves invocations touch distinct locations)");
    let w = match scale {
        Scale::Paper => IndependentMap {
            len: 1 << 18,
            sweeps: 4,
        },
        Scale::Medium => IndependentMap::default_size(),
        Scale::Smoke => IndependentMap::small(),
    };
    let mut runs = lcm_sim::par_map(
        jobs,
        vec![FlushPolicy::PerInvocation, FlushPolicy::AtReconcile],
        |_, policy| run_with_flush(policy, scale.nodes(), &w).1,
    );
    let at_rec = runs.pop().expect("two policies ran");
    let per_inv = runs.pop().expect("two policies ran");
    println!(
        "  per-invocation {:>12} cycles, {:>8} flushes",
        per_inv.time, per_inv.totals.flushes
    );
    println!(
        "  at-reconcile   {:>12} cycles, {:>8} flushes  ({:.2}x faster)",
        at_rec.time,
        at_rec.totals.flushes,
        per_inv.time as f64 / at_rec.time as f64
    );
    println!();
}

fn print_cache_limit(jobs: usize) {
    println!("== §6.3 limited-cache ablation: Stencil-stat on a bounded Stache ==");
    let w = Stencil {
        rows: 256,
        cols: 256,
        iters: 10,
        partition: Partition::Static,
    };
    let nodes = 16;
    let chunk = chunk_blocks(&w, nodes);
    let lcm = execute(SystemKind::LcmMcc, nodes, RuntimeConfig::default(), &w).1;
    println!("  LCM-mcc (reference)         {:>12} cycles", lcm.time);
    let caps = vec![
        ("Stache unbounded (paper)", None),
        ("Stache cap = 2x chunk", Some(2 * chunk)),
        ("Stache cap = chunk/2", Some(chunk / 2)),
        ("Stache cap = chunk/8", Some(chunk / 8)),
    ];
    let runs = lcm_sim::par_map(jobs, caps, |_, (label, cap)| {
        (label, stencil_on_limited_stache(cap, nodes, &w))
    });
    for (label, r) in runs {
        println!(
            "  {:<27} {:>12} cycles, {:>8} misses, {:>8} evictions",
            label,
            r.time,
            r.misses(),
            r.totals.evictions
        );
    }
    println!();
}

fn print_tree_reconcile(scale: Scale, jobs: usize) {
    use lcm_core::{Lcm, LcmVariant};
    use lcm_cstar::{Runtime, Strategy};
    use lcm_rsm::{MemoryProtocol, ReduceOp};
    use lcm_sim::MachineConfig;
    use lcm_tempest::Placement;
    println!("== §5 tree-structured reconciliation (reduction bottleneck) ==");
    let nodes = scale.nodes().max(16);
    let runs = lcm_sim::par_map(jobs, vec![false, true], |_, tree| {
        let mut mem = Lcm::new(MachineConfig::new(nodes), LcmVariant::Mcc);
        mem.set_tree_reconcile(tree);
        let mut rt = Runtime::new(mem, Strategy::LcmDirectives);
        let a = rt.new_aggregate1::<f32>(nodes * 64, Placement::Blocked, "a");
        rt.init1(a, |i| (i % 5) as f32);
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "total");
        rt.apply1(a, Partition::Static, |inv, i| {
            let v = inv.get(a.at(i)) as f64;
            inv.reduce_f64(total, v);
        });
        let home = lcm_sim::NodeId(0);
        let machine = &rt.mem().tempest().machine;
        (
            machine.time(),
            machine.stats(home).versions_reconciled,
            rt.peek_reduction(total),
        )
    });
    for (tree, (time, merged, sum)) in [false, true].into_iter().zip(runs) {
        println!(
            "  {:<8} total time {:>10} cycles; home node merged {:>3} versions (sum={})",
            if tree { "tree" } else { "direct" },
            time,
            merged,
            sum
        );
    }
    println!();
}

fn k(x: u64) -> String {
    format!("{:.0}", x as f64 / 1000.0)
}

fn print_table1(suite: &Suite) {
    println!("== Table 1: benchmark cache misses and clean copies (thousands) ==");
    println!("   (paper values in parentheses; paper ran 32-node CM-5)");
    println!(
        "{:<14} | {:>16} {:>16} {:>16} | {:>14} {:>14}",
        "Program", "misses scc", "misses mcc", "misses Copying", "clean scc", "clean mcc"
    );
    println!("{}", "-".repeat(102));
    for (b, misses, clean) in suite.table1() {
        let refs = b.paper_table1();
        let fmt_ref = |v: Option<f64>| v.map(|x| format!("({x:.0})")).unwrap_or_default();
        let (r_scc, r_mcc, r_cp, r_cscc, r_cmcc) = match refs {
            Some((a, b2, c, d, e)) => (
                fmt_ref(a),
                fmt_ref(Some(b2)),
                fmt_ref(Some(c)),
                fmt_ref(d),
                fmt_ref(Some(e)),
            ),
            None => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
        };
        println!(
            "{:<14} | {:>8} {:>7} {:>8} {:>7} {:>8} {:>7} | {:>6} {:>7} {:>6} {:>7}",
            b.label(),
            k(misses[0]),
            r_scc,
            k(misses[1]),
            r_mcc,
            k(misses[2]),
            r_cp,
            k(clean[0]),
            r_cscc,
            k(clean[1]),
            r_cmcc,
        );
    }
    println!();
}

fn print_fig(suite: &Suite, fig2: bool) {
    if fig2 {
        println!("== Figure 2: Stencil execution time (simulated cycles) ==");
    } else {
        println!("== Figure 3: benchmark execution time (simulated cycles) ==");
    }
    let rows = if fig2 { suite.fig2() } else { suite.fig3() };
    let mut last: Option<Benchmark> = None;
    for (b, s, time) in rows {
        if last != Some(b) {
            println!("{}:", b.label());
            last = Some(b);
        }
        let base = suite.result(b, SystemKind::Stache).time as f64;
        println!(
            "  {:<8} {:>14} cycles   ({:.2}x vs Stache)",
            s.label(),
            time,
            time as f64 / base
        );
    }
    println!();
}

fn print_claims(suite: &Suite) {
    println!("== §6.3 prose claims, checked against this run ==");
    let claims = suite.claims();
    let mut ok = 0;
    for c in &claims {
        println!(
            "[{}] {}\n        paper: {:<14} measured: {}",
            if c.holds { "PASS" } else { "FAIL" },
            c.description,
            c.paper,
            c.measured
        );
        if c.holds {
            ok += 1;
        }
    }
    println!(
        "{} of {} claims hold at scale '{}'\n",
        ok,
        claims.len(),
        suite.scale()
    );
}

/// The array-sum workload of the reduction section at a given scale.
fn reduction_worksize(scale: Scale) -> ArraySum {
    match scale {
        Scale::Paper => ArraySum {
            len: 1 << 20,
            passes: 2,
        },
        Scale::Medium => ArraySum::default_size(),
        Scale::Smoke => ArraySum::small(),
    }
}

/// Runs every reduction method on the worker pool, in method order.
fn compute_reduction_runs(scale: Scale, jobs: usize) -> Vec<(f64, RunResult)> {
    let w = reduction_worksize(scale);
    lcm_sim::par_map(jobs, ReductionMethod::all().to_vec(), |_, method| {
        run_reduction(method, scale.nodes(), &w)
    })
}

fn print_reduction(scale: Scale, jobs: usize) {
    println!(
        "== §7.1 Reductions: summing an array on {} processors ==",
        scale.nodes()
    );
    let runs = compute_reduction_runs(scale, jobs);
    let mut base = None;
    for (method, (sum, r)) in ReductionMethod::all().into_iter().zip(runs) {
        let base_time = *base.get_or_insert(r.time) as f64;
        println!(
            "  {:<15} {:>14} cycles ({:>5.2}x vs shared-acc)  sum={}  misses={}",
            method.label(),
            r.time,
            r.time as f64 / base_time,
            sum,
            r.misses()
        );
    }
    println!();
}

fn print_false_sharing(jobs: usize) {
    println!("== §7.4 False sharing: 8 writers, one block, 200 rounds ==");
    let w = FalseSharing::default_size();
    let writers = w.writers;
    let cfg = RuntimeConfig::default();
    let configs = vec![
        ("Stache packed", SystemKind::Stache, w),
        ("Stache padded", SystemKind::Stache, w.padded()),
        ("LCM-mcc packed", SystemKind::LcmMcc, w),
        ("LCM-scc packed", SystemKind::LcmScc, w),
    ];
    let runs = lcm_sim::par_map(jobs, configs, |_, (label, sys, wl)| {
        (label, execute(sys, writers, cfg, &wl).1)
    });
    for (label, r) in runs {
        println!(
            "  {:<15} {:>12} cycles  misses={:<6} invalidations={}",
            label,
            r.time,
            r.misses(),
            r.totals.invalidations_sent
        );
    }
    println!();
}

fn print_stale(jobs: usize) {
    println!("== §7.5 Stale data: producer field, consumers refresh every k ==");
    let base = StaleData::default_size();
    let (lag, r) = run_stale(StaleSystem::Coherent, 8, &base);
    println!(
        "  {:<22} {:>12} cycles  misses={:<6} staleness={}",
        "coherent (k=1)",
        r.time,
        r.misses(),
        lag
    );
    let ks = vec![2usize, 4, 8, 16];
    let runs = lcm_sim::par_map(jobs, ks.clone(), |_, k| {
        let w = StaleData {
            refresh_every: k,
            ..base
        };
        run_stale(StaleSystem::StaleRegion, 8, &w)
    });
    for (k, (lag, r)) in ks.into_iter().zip(runs) {
        println!(
            "  {:<22} {:>12} cycles  misses={:<6} staleness={:.0}  refreshes={}",
            format!("stale region (k={k})"),
            r.time,
            r.misses(),
            lag,
            r.totals.stale_refreshes
        );
    }
    println!();
}

fn print_nbody(jobs: usize) {
    println!("== §7.5 N-body: stale far-field positions ==");
    let base = NBody::default_size();
    let (reference, coherent) = run_nbody(NBodySystem::Coherent, 8, &base);
    println!(
        "  {:<18} {:>12} cycles, {:>6} misses, rms error 0",
        "coherent",
        coherent.time,
        coherent.misses()
    );
    let ks = vec![2usize, 4, 8, 16];
    let runs = lcm_sim::par_map(jobs, ks.clone(), |_, k| {
        let w = NBody {
            refresh_every: k,
            ..base
        };
        run_nbody(NBodySystem::StaleRegion, 8, &w)
    });
    for (k, (pos, run)) in ks.into_iter().zip(runs) {
        println!(
            "  {:<18} {:>12} cycles, {:>6} misses, rms error {:.4}",
            format!("refresh every {k}"),
            run.time,
            run.misses(),
            rms_error(&reference, &pos)
        );
    }
    println!();
}

/// The sensitivity-sweep stencil at a given scale.
fn sensitivity_stencil(scale: Scale) -> Stencil {
    match scale {
        Scale::Paper => Stencil {
            rows: 512,
            cols: 512,
            iters: 10,
            partition: Partition::Dynamic,
        },
        Scale::Medium => Stencil {
            rows: 256,
            cols: 256,
            iters: 8,
            partition: Partition::Dynamic,
        },
        Scale::Smoke => Stencil {
            rows: 64,
            cols: 64,
            iters: 4,
            partition: Partition::Dynamic,
        },
    }
}

/// Swept remote latencies (cycles) of the sensitivity section.
const SWEEP_LATENCIES: [u64; 5] = [500, 1500, 3000, 6000, 12000];
/// Swept processor counts of the sensitivity section.
const SWEEP_NODES: [usize; 4] = [4, 8, 16, 32];

/// Both sensitivity sweeps on the worker pool.
fn compute_sweeps(scale: Scale, jobs: usize) -> (Vec<SweepPoint>, Vec<SweepPoint>) {
    let w = sensitivity_stencil(scale);
    (
        sweep_remote_latency_jobs(&SWEEP_LATENCIES, scale.nodes(), &w, jobs),
        sweep_nodes_jobs(&SWEEP_NODES, &w, jobs),
    )
}

fn print_sweeps(scale: Scale, jobs: usize) {
    println!("== Sensitivity: Stencil-dyn LCM-mcc advantage vs machine parameters ==");
    let (latency, nodes) = compute_sweeps(scale, jobs);
    println!(
        "remote round-trip latency sweep ({} processors):",
        scale.nodes()
    );
    for p in latency {
        println!(
            "  remote_miss={:>6} cy: LCM-mcc {:>12}, Stache {:>12}  (advantage {:.2}x)",
            p.x,
            p.lcm.time,
            p.stache.time,
            p.advantage()
        );
    }
    println!("processor-count sweep (default cost model):");
    for p in nodes {
        println!(
            "  P={:>2}: LCM-mcc {:>12}, Stache {:>12}  (advantage {:.2}x)",
            p.x,
            p.lcm.time,
            p.stache.time,
            p.advantage()
        );
    }
    println!();
}

fn print_races(jobs: usize) {
    println!("== §7.2/7.3 Conflict detection ==");
    let kernels = RaceKernel::all();
    let found = lcm_sim::par_map(jobs, kernels.to_vec(), |_, kernel| detect_races(kernel, 4));
    for (kernel, conflicts) in kernels.into_iter().zip(found) {
        println!("  {:?}: {} conflict(s)", kernel, conflicts.len());
        for c in conflicts.iter().take(4) {
            println!("    - {c}");
        }
    }
    println!();
}

/// The `bench` section: times representative sections with `--jobs 1`
/// and with the requested pool, cross-checks that both executions agree
/// digest-for-digest, and writes the trajectory to `BENCH_sweep.json`
/// (in `--csv DIR` when given, else the working directory).
fn run_bench(scale: Scale, requested_jobs: usize, csv_dir: Option<&std::path::Path>) {
    let mut report = BenchReport::new(&scale.to_string(), requested_jobs);
    // Time the parallel legs at the *effective* worker count: running
    // more workers than the host has cores measures oversubscription,
    // not pool speedup, and used to report fictitious slowdowns on
    // small hosts. Both counts land in BENCH_sweep.json.
    let jobs = report.effective_jobs;
    if report.oversubscribed() {
        eprintln!(
            "warning: --jobs {requested_jobs} exceeds the host's {} core(s); timing the \
             parallel legs at {jobs} worker(s) (requested and effective counts are both \
             recorded in BENCH_sweep.json)",
            report.host_cores
        );
    }
    println!("== Wall-clock bench: serial vs --jobs {jobs}, scale '{scale}' ==");

    let (serial_suite, pooled_suite) = report.time_section(
        "suite",
        || Suite::run_jobs(scale, 1),
        || Suite::run_jobs(scale, jobs),
    );
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            assert_eq!(
                serial_suite.result(b, s).digest(),
                pooled_suite.result(b, s).digest(),
                "suite point {}/{} diverged between jobs=1 and jobs={jobs}",
                b.label(),
                s.label()
            );
        }
    }

    let stencil = fault_stencil(scale);
    let rates = [0.0, 0.001, 0.01, 0.05];
    let nodes = scale.nodes();
    let (serial_faults, pooled_faults) = report.time_section(
        "faults",
        || compute_fault_sweep("Stencil-dyn", scale, nodes, &stencil, &rates, 0xC0FFEE, 1),
        || {
            compute_fault_sweep(
                "Stencil-dyn",
                scale,
                nodes,
                &stencil,
                &rates,
                0xC0FFEE,
                jobs,
            )
        },
    );
    for ((k1, (_, r1)), (k2, (_, r2))) in serial_faults.iter().zip(&pooled_faults) {
        assert_eq!(k1, k2, "fault grids assemble in one canonical order");
        assert_eq!(r1.digest(), r2.digest(), "fault point {k1:?} diverged");
    }

    let (serial_sweeps, pooled_sweeps) = report.time_section(
        "sweep",
        || compute_sweeps(scale, 1),
        || compute_sweeps(scale, jobs),
    );
    for (a, b) in serial_sweeps
        .0
        .iter()
        .chain(&serial_sweeps.1)
        .zip(pooled_sweeps.0.iter().chain(&pooled_sweeps.1))
    {
        assert_eq!(a.x, b.x, "sweep points assemble in input order");
        assert_eq!(
            a.lcm.digest(),
            b.lcm.digest(),
            "sweep point x={} diverged",
            a.x
        );
        assert_eq!(
            a.stache.digest(),
            b.stache.digest(),
            "sweep point x={} diverged",
            a.x
        );
    }

    let red = ReductionSum(reduction_worksize(scale));
    let (serial_cont, pooled_cont) = report.time_section(
        "contention",
        || compute_contention_grid("Reduction", scale, nodes, &red, 1),
        || compute_contention_grid("Reduction", scale, nodes, &red, jobs),
    );
    for ((k1, (_, r1)), (k2, (_, r2))) in serial_cont.iter().zip(&pooled_cont) {
        assert_eq!(k1, k2, "contention grids assemble in one canonical order");
        assert_eq!(r1.digest(), r2.digest(), "contention point {k1:?} diverged");
    }

    let (reexec_rows, replay_rows) = report.time_section(
        "explore",
        || {
            explore::reexecute_grid(
                "Stencil-dyn",
                SystemKind::LcmMcc,
                nodes,
                RuntimeConfig::default(),
                &stencil,
                &EXPLORE_BANDWIDTHS,
                &EXPLORE_LATENCIES,
            )
        },
        || {
            let file = explore::capture_workload(
                "Stencil-dyn",
                &scale.to_string(),
                SystemKind::LcmMcc,
                nodes,
                RuntimeConfig::default(),
                &stencil,
                explore::CAPTURE_CAPACITY,
            )
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            explore::explore_grid(
                std::slice::from_ref(&std::sync::Arc::new(file)),
                &EXPLORE_BANDWIDTHS,
                &EXPLORE_LATENCIES,
                jobs,
            )
        },
    );
    for (x, r) in reexec_rows
        .iter()
        .zip(&replay_rows)
        .filter(|(x, _)| x.bandwidth == 0)
    {
        assert_eq!(
            x.time, r.time,
            "explore point bw=0 lat={} diverged between re-execution and replay",
            x.latency
        );
    }

    // Reduce to digests *inside* the timed closures: holding the first
    // leg's multi-million-event trace buffers alive while the second leg
    // allocates its own used to charge the pooled leg a fictitious
    // memory-pressure slowdown (~4x on this section).
    let profile_digests = |jobs: usize| {
        compute_profile_runs(scale, jobs)
            .iter()
            .map(|(r, events)| (r.digest(), events.len()))
            .collect::<Vec<_>>()
    };
    let (serial_prof, pooled_prof) =
        report.time_section("profile", || profile_digests(1), || profile_digests(jobs));
    assert_eq!(
        serial_prof, pooled_prof,
        "profile runs diverged between jobs=1 and jobs={jobs}"
    );
    report.time_section(
        "reduction",
        || compute_reduction_runs(scale, 1),
        || compute_reduction_runs(scale, jobs),
    );

    for s in &report.sections {
        println!(
            "  {:<10} serial {:>8.2}s   jobs={jobs} {:>8.2}s   speedup {:.2}x",
            s.section,
            s.serial_secs,
            s.parallel_secs,
            s.speedup()
        );
    }
    println!(
        "  {:<10} serial {:>8.2}s   jobs={jobs} {:>8.2}s   speedup {:.2}x",
        "total",
        report.total_serial(),
        report.total_parallel(),
        report.speedup()
    );
    println!("  parallel runs agreed with serial runs digest-for-digest");
    if let Some(s) = report.sections.iter().find(|s| s.section == "explore") {
        println!(
            "  (explore compares re-executing the cost-model grid against capturing \
             once + replaying it: replay is {:.1}x faster)",
            s.speedup()
        );
    }
    let path = csv_dir
        .map(|d| d.join("BENCH_sweep.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_sweep.json"));
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("failed to create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("bench trajectory written to {}\n", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// The `par` section: intra-run epoch parallelism on kilonode machines.
///
/// Where `bench` parallelizes *across* independent sweep points
/// (`--jobs`), this measures `--sim-threads`: host threads cooperating
/// inside one simulation through the epoch-parallel engine (DESIGN.md
/// §4j). Each benchmark runs once at `sim_threads = 1` and once at the
/// effective thread count; the two runs must agree digest-for-digest —
/// the engine's byte-identity contract — and the wall-clock trajectory
/// is written to `BENCH_par.json`. On a single-core host the effective
/// count clamps to 1 and the speedup honestly reads ~1.0x.
fn run_bench_par(scale: Scale, sim_threads: usize, csv_dir: Option<&std::path::Path>) {
    // A bare `repro par` (no --sim-threads) measures at the host's width.
    let requested = if sim_threads > 1 {
        sim_threads
    } else {
        lcm_sim::available_jobs()
    };
    let mut report = ParReport::new(&scale.to_string(), requested);
    let eff = report.effective_sim_threads;
    if report.oversubscribed() {
        eprintln!(
            "warning: --sim-threads {requested} exceeds the host's {} core(s); timing the \
             parallel legs at {eff} thread(s) (requested and effective counts are both \
             recorded in BENCH_par.json)",
            report.host_cores
        );
    }
    println!("== Intra-run parallelism: sim-threads 1 vs {eff}, scale '{scale}' ==");
    println!("   one simulation, many host threads: the epoch-parallel engine runs each");
    println!("   barrier epoch's invocations on a worker pool (shadow pass) and merges");
    println!("   them in a deterministic replay — clocks, ledgers and digests are");
    println!("   byte-identical to the sequential path, which this section asserts.");
    if eff == 1 {
        println!("   (single-core host: no parallelism available, expect ~1.0x)");
    }

    fn leg<W: Workload>(w: &W, nodes: usize, threads: usize) -> (u64, f64) {
        let cfg = RuntimeConfig {
            sim_threads: threads,
            ..RuntimeConfig::default()
        };
        let t0 = Instant::now();
        let (_, r) = execute(SystemKind::LcmMcc, nodes, cfg, w);
        (r.digest(), t0.elapsed().as_secs_f64())
    }

    let mut record = |label: &str, nodes: usize, serial: (u64, f64), par: (u64, f64)| {
        assert_eq!(
            serial.0, par.0,
            "par point {label}/{nodes} diverged between sim-threads 1 and {eff}"
        );
        report.runs.push(ParTiming {
            benchmark: label.to_string(),
            nodes,
            serial_secs: serial.1,
            parallel_secs: par.1,
            digest_match: serial.0 == par.0,
        });
    };

    // Kilonode points: big enough that per-epoch node-local work (not
    // the sequential replay) dominates, as the engine needs to show a
    // speedup; weak-scaled like the `scale` section.
    let nodes = 256;
    let iters = match scale {
        Scale::Paper => 20,
        Scale::Medium => 10,
        Scale::Smoke => 3,
    };
    let st = Stencil {
        rows: nodes,
        cols: 256,
        iters,
        partition: Partition::Dynamic,
    };
    record(
        "Stencil-dyn",
        nodes,
        leg(&st, nodes, 1),
        leg(&st, nodes, eff),
    );
    let un = Unstructured {
        nodes: 4 * nodes,
        edges: 16 * nodes,
        iters: 2 * iters,
        seed: 42,
    };
    record(
        "Unstructured",
        nodes,
        leg(&un, nodes, 1),
        leg(&un, nodes, eff),
    );

    for r in &report.runs {
        println!(
            "  {:<14} {:>5} nodes   1-thread {:>8.2}s   {eff}-thread {:>8.2}s   speedup {:.2}x",
            r.benchmark,
            r.nodes,
            r.serial_secs,
            r.parallel_secs,
            r.speedup()
        );
    }
    println!("  parallel runs agreed with sequential runs digest-for-digest");
    let path = csv_dir
        .map(|d| d.join("BENCH_par.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_par.json"));
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("failed to create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => println!("par trajectory written to {}\n", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

// ===================================================================== serve

/// Captures the serve section's default trace set — the explore
/// benchmarks (Reduction and Stencil-dyn across all three systems) —
/// validating each capture, on `jobs` workers.
fn serve_trace_set(scale: Scale, jobs: usize) -> Vec<(String, lcm_replay::TraceHandle)> {
    let nodes = scale.nodes();
    let scale_label = scale.to_string();
    let red = ReductionSum(reduction_worksize(scale));
    let sten = fault_stencil(scale);
    let mut specs: Vec<(&str, SystemKind)> = Vec::new();
    for system in SystemKind::all() {
        specs.push(("Reduction", system));
    }
    for system in SystemKind::all() {
        specs.push(("Stencil-dyn", system));
    }
    lcm_sim::par_map(jobs, specs, |_, (bench, system)| {
        let capture = |w: &dyn Fn() -> Result<TraceFile, String>| {
            w().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            })
        };
        let file = if bench == "Reduction" {
            capture(&|| {
                explore::capture_workload(
                    bench,
                    &scale_label,
                    system,
                    nodes,
                    RuntimeConfig::default(),
                    &red,
                    explore::CAPTURE_CAPACITY,
                )
            })
        } else {
            capture(&|| {
                explore::capture_workload(
                    bench,
                    &scale_label,
                    system,
                    nodes,
                    RuntimeConfig::default(),
                    &sten,
                    explore::CAPTURE_CAPACITY,
                )
            })
        };
        if let Err(e) = lcm_replay::validate(&file) {
            eprintln!("capture {bench}/{system} failed validation: {e}");
            std::process::exit(1);
        }
        let name = format!("{}-{}", bench.to_lowercase(), system.label().to_lowercase());
        (name, std::sync::Arc::new(file))
    })
}

/// Loads every `.lcmtrace` in `dir` (sorted by name) through the shared
/// decode-once handle cache.
fn serve_load_dir(dir: &std::path::Path) -> Vec<(String, lcm_replay::TraceHandle)> {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        eprintln!("--traces {}: {e}", dir.display());
        std::process::exit(1);
    });
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lcmtrace"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("--traces {}: no .lcmtrace files found", dir.display());
        std::process::exit(1);
    }
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.display().to_string());
            let handle = TraceFile::open(&p).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            (name, handle)
        })
        .collect()
}

/// The full serve query grid: every loaded trace at every explore
/// (bandwidth, latency) point, in fixed grid order.
fn serve_grid(engine: &lcm_serve::ServeEngine) -> Vec<lcm_serve::Query> {
    let mut queries = Vec::new();
    for t in engine.traces() {
        for &bw in &EXPLORE_BANDWIDTHS {
            for &lat in &EXPLORE_LATENCIES {
                queries.push(lcm_serve::Query {
                    trace: t.name.clone(),
                    cost: explore::grid_cost(bw, lat),
                    topology: t.handle.topology,
                    backend: lcm_sim::DirBackend::FullMap,
                });
            }
        }
    }
    queries
}

/// The `serve` section. Three modes:
///
/// * default — a self-check: batched == sequential, differential ==
///   full replay on every grid point, cached rerun byte-identical, and
///   a real TCP roundtrip (including a corrupt frame answered with a
///   named error) agreeing with the in-process engine.
/// * `--bench` — a closed-loop load generator writing
///   `BENCH_serve.json` (per-query cold/differential/cached costs and
///   qps + p50/p99 across client counts).
/// * `--listen ADDR` — a resident server until a client SHUTDOWN.
///
/// `--traces DIR` serves captured `.lcmtrace` files instead of
/// capturing the default explore set.
fn run_serve(
    scale: Scale,
    jobs: usize,
    listen: Option<&str>,
    traces_dir: Option<&std::path::Path>,
    bench: bool,
    csv_dir: Option<&std::path::Path>,
) {
    let t0 = Instant::now();
    let traces = match traces_dir {
        Some(dir) => serve_load_dir(dir),
        None => serve_trace_set(scale, jobs),
    };
    let mut engine = lcm_serve::ServeEngine::new();
    let mut events = 0usize;
    for (name, handle) in traces {
        events += handle.events.len();
        engine.load(&name, handle);
    }
    let engine = std::sync::Arc::new(engine);
    eprintln!(
        "   (wall-clock: {} trace(s) loaded+indexed in {:.1}s)",
        engine.traces().len(),
        t0.elapsed().as_secs_f64()
    );

    if let Some(addr) = listen {
        let server = lcm_serve::Server::start(addr, std::sync::Arc::clone(&engine), jobs)
            .unwrap_or_else(|e| {
                eprintln!("serve: {e}");
                std::process::exit(1);
            });
        println!(
            "lcm-serve: {} trace(s) ({events} events) resident on {}",
            engine.traces().len(),
            server.addr
        );
        for t in engine.traces() {
            println!(
                "  {:<24} {:>3} nodes   fingerprint {:#018x}",
                t.name, t.handle.nodes, t.fingerprint
            );
        }
        println!("(send a SHUTDOWN request to stop; protocol: crates/serve/src/proto.rs)");
        server.wait();
        return;
    }

    if bench {
        run_serve_bench(scale, jobs, &engine, csv_dir);
        return;
    }

    // ---- self-check: every identity the server's answers rest on.
    println!("== lcm-serve self-check (scale '{scale}') ==");
    let queries = serve_grid(&engine);
    println!(
        "   {} trace(s), {} grid queries (bandwidth x latency explore grid)",
        engine.traces().len(),
        queries.len()
    );

    let t1 = Instant::now();
    let batched: Vec<_> = engine
        .query_batch(jobs, &queries)
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|e| {
                eprintln!("serve: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    eprintln!(
        "   (wall-clock: cold batch {:.2}s)",
        t1.elapsed().as_secs_f64()
    );

    // Batched == sequential, on a fresh engine so nothing is pre-cached.
    let mut sequential = lcm_serve::ServeEngine::new();
    for t in engine.traces() {
        sequential.load(&t.name, std::sync::Arc::clone(&t.handle));
    }
    for (q, (br, _)) in queries.iter().zip(&batched) {
        let (sr, _) = sequential.query(q).unwrap_or_else(|e| {
            eprintln!("serve: {e}");
            std::process::exit(1);
        });
        if **br != *sr {
            eprintln!(
                "serve self-check FAILED: batched result diverges from sequential \
                 for {} bw={} lat={}",
                q.trace, q.cost.link_bandwidth_bytes_per_cycle, q.cost.remote_miss
            );
            std::process::exit(1);
        }
    }
    println!(
        "   batched == sequential: {} points byte-identical",
        queries.len()
    );

    // Differential == full event-walk replay, on every grid point.
    let failures: Vec<String> = lcm_sim::par_map(jobs, queries.clone(), |_, q| {
        engine.verify(&q).err().map(|e| {
            format!(
                "{} bw={} lat={}: {e}",
                q.trace, q.cost.link_bandwidth_bytes_per_cycle, q.cost.remote_miss
            )
        })
    })
    .into_iter()
    .flatten()
    .collect();
    if !failures.is_empty() {
        eprintln!("serve self-check FAILED: differential replay diverged:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!(
        "   differential == full replay: {} points byte-identical",
        queries.len()
    );

    // A cached rerun answers every point from the cache, byte-for-byte.
    let rerun = engine.query_batch(jobs, &queries);
    for ((q, (first, _)), again) in queries.iter().zip(&batched).zip(rerun) {
        let (cached, class) = again.unwrap_or_else(|e| {
            eprintln!("serve: {e}");
            std::process::exit(1);
        });
        if class != lcm_serve::QueryClass::Cached || !std::sync::Arc::ptr_eq(first, &cached) {
            eprintln!(
                "serve self-check FAILED: rerun of {} bw={} lat={} was not a cache hit",
                q.trace, q.cost.link_bandwidth_bytes_per_cycle, q.cost.remote_miss
            );
            std::process::exit(1);
        }
    }
    println!("   cached rerun: {} points, all exact hits", queries.len());

    // A real TCP roundtrip must agree with the in-process engine, and a
    // corrupt frame must come back as a named error, not a panic.
    let server = lcm_serve::Server::start("127.0.0.1:0", std::sync::Arc::clone(&engine), jobs)
        .unwrap_or_else(|e| {
            eprintln!("serve: {e}");
            std::process::exit(1);
        });
    let addr = server.addr.to_string();
    let mut client = lcm_serve::Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("serve: {e}");
        std::process::exit(1);
    });
    let listed = client.list().unwrap_or_else(|e| {
        eprintln!("serve: LIST failed: {e}");
        std::process::exit(1);
    });
    if listed.len() != engine.traces().len() {
        eprintln!(
            "serve self-check FAILED: LIST returned {} traces, engine holds {}",
            listed.len(),
            engine.traces().len()
        );
        std::process::exit(1);
    }
    let over_wire = client.query_batch(&queries).unwrap_or_else(|e| {
        eprintln!("serve: QUERY failed: {e}");
        std::process::exit(1);
    });
    for ((q, (local, _)), wire) in queries.iter().zip(&batched).zip(&over_wire) {
        if **local != wire.result {
            eprintln!(
                "serve self-check FAILED: TCP result diverges from in-process \
                 for {} bw={} lat={}",
                q.trace, q.cost.link_bandwidth_bytes_per_cycle, q.cost.remote_miss
            );
            std::process::exit(1);
        }
    }
    println!(
        "   TCP roundtrip: LIST + {}-query batch byte-identical to in-process",
        queries.len()
    );
    // Corrupt request on a raw socket: opcode 9 does not exist.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(&addr).unwrap_or_else(|e| {
            eprintln!("serve: raw connect failed: {e}");
            std::process::exit(1);
        });
        raw.write_all(&1u32.to_le_bytes())
            .and_then(|()| raw.write_all(&[9u8]))
            .unwrap_or_else(|e| {
                eprintln!("serve: raw write failed: {e}");
                std::process::exit(1);
            });
        let frame = lcm_serve::proto::read_frame(&mut raw)
            .unwrap_or_else(|e| {
                eprintln!("serve: corrupt-frame probe got no response: {e}");
                std::process::exit(1);
            })
            .unwrap_or_else(|| {
                eprintln!("serve: corrupt-frame probe: connection closed without a response");
                std::process::exit(1);
            });
        match lcm_serve::proto::decode_query_response(&frame) {
            Err(e) if e.contains("malformed request") => {
                println!("   corrupt request: named error response ({e})");
            }
            other => {
                eprintln!("serve self-check FAILED: corrupt frame got {other:?}");
                std::process::exit(1);
            }
        }
    }
    client.shutdown().unwrap_or_else(|e| {
        eprintln!("serve: SHUTDOWN failed: {e}");
        std::process::exit(1);
    });
    server.wait();
    println!("   shutdown: acknowledged and drained");
    let (cached, neighbor, differential) = engine.stats.snapshot();
    eprintln!(
        "   (engine counters: {cached} cached, {neighbor} neighbor, \
         {differential} differential)"
    );
    println!();
}

/// Percentile of a sorted latency sample (nearest-rank).
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The `serve --bench` load generator: per-query engine-path costs plus
/// a closed-loop TCP sweep across client counts, written to
/// `BENCH_serve.json`.
fn run_serve_bench(
    scale: Scale,
    jobs: usize,
    engine: &std::sync::Arc<lcm_serve::ServeEngine>,
    csv_dir: Option<&std::path::Path>,
) {
    println!("== lcm-serve load bench (scale '{scale}', {jobs} pool worker(s)) ==");
    let queries = serve_grid(engine);
    let n = queries.len();

    // Per-query engine paths, each averaged over the whole grid.
    let time_pass = |f: &dyn Fn(&lcm_serve::Query)| {
        let t = Instant::now();
        for q in &queries {
            f(q);
        }
        t.elapsed().as_secs_f64() * 1e6 / n as f64
    };
    let cold_full_us = time_pass(&|q| {
        engine.query_full(q).unwrap_or_else(|e| {
            eprintln!("serve bench: {e}");
            std::process::exit(1);
        });
    });
    let entry_of = |q: &lcm_serve::Query| {
        engine
            .traces()
            .iter()
            .find(|t| t.name == q.trace)
            .expect("grid queries address loaded traces")
    };
    let differential_us = time_pass(&|q| {
        engine.replay_differential(entry_of(q), q);
    });
    // Prime the cache, then time pure hits.
    for q in &queries {
        engine.query(q).unwrap_or_else(|e| {
            eprintln!("serve bench: {e}");
            std::process::exit(1);
        });
    }
    let cached_us = time_pass(&|q| {
        engine.query(q).unwrap_or_else(|e| {
            eprintln!("serve bench: {e}");
            std::process::exit(1);
        });
    });
    println!(
        "  per query: cold full replay {cold_full_us:.0}us   differential \
         {differential_us:.0}us   cached {cached_us:.1}us"
    );

    // Closed-loop TCP sweep: N clients, each issuing single-query
    // requests back-to-back over its own connection.
    let server = lcm_serve::Server::start("127.0.0.1:0", std::sync::Arc::clone(engine), jobs)
        .unwrap_or_else(|e| {
            eprintln!("serve bench: {e}");
            std::process::exit(1);
        });
    let addr = server.addr.to_string();
    let reqs_per_client = match scale {
        Scale::Smoke => 60,
        _ => 240,
    };
    let mut sweep_rows = Vec::new();
    for &clients in &[1usize, 2, 4, 8] {
        let t = Instant::now();
        let mut all_lat: Vec<u64> = Vec::with_capacity(clients * reqs_per_client);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let addr = addr.clone();
                    let queries = &queries;
                    s.spawn(move || {
                        let mut cl = lcm_serve::Client::connect(&addr).unwrap_or_else(|e| {
                            eprintln!("serve bench client: {e}");
                            std::process::exit(1);
                        });
                        let mut lat = Vec::with_capacity(reqs_per_client);
                        for i in 0..reqs_per_client {
                            let q = &queries[(c + i) % queries.len()];
                            let t = Instant::now();
                            cl.query(q).unwrap_or_else(|e| {
                                eprintln!("serve bench client: {e}");
                                std::process::exit(1);
                            });
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                        lat
                    })
                })
                .collect();
            for h in handles {
                all_lat.extend(h.join().expect("bench client panicked"));
            }
        });
        let wall = t.elapsed().as_secs_f64();
        all_lat.sort_unstable();
        let total = clients * reqs_per_client;
        let qps = total as f64 / wall;
        let p50 = percentile_us(&all_lat, 50.0);
        let p99 = percentile_us(&all_lat, 99.0);
        println!(
            "  {clients} client(s): {total} requests in {wall:.2}s   {qps:>8.0} q/s   \
             p50 {p50}us   p99 {p99}us"
        );
        sweep_rows.push(format!(
            "    {{\"clients\": {clients}, \"requests\": {total}, \"qps\": {qps:.1}, \
             \"p50_us\": {p50}, \"p99_us\": {p99}}}"
        ));
    }
    server.stop();
    let (cached, neighbor, differential) = engine.stats.snapshot();

    let json = format!(
        "{{\n  \"scale\": \"{scale}\",\n  \"jobs\": {jobs},\n  \"traces\": {},\n  \
         \"grid_points\": {n},\n  \"per_query_us\": {{\"cold_full\": {cold_full_us:.1}, \
         \"differential\": {differential_us:.1}, \"cached\": {cached_us:.2}}},\n  \
         \"engine_counters\": {{\"cached\": {cached}, \"neighbor\": {neighbor}, \
         \"differential\": {differential}}},\n  \"closed_loop\": [\n{}\n  ]\n}}\n",
        engine.traces().len(),
        sweep_rows.join(",\n"),
    );
    let path = csv_dir
        .map(|d| d.join("BENCH_serve.json"))
        .unwrap_or_else(|| PathBuf::from("BENCH_serve.json"));
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("failed to create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("serve bench written to {}\n", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

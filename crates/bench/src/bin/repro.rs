//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale paper|medium|smoke] [--csv DIR] [--svg DIR] [--trace FILE]
//!       [table1|fig2|fig3|claims|reduction|falseshare|stale|races|
//!        flushpolicy|cachelimit|tree|profile|all]
//! ```
//!
//! With `--csv DIR`, the table/figure data is also written as CSV files
//! (`table1.csv`, `fig2.csv`, `fig3.csv`) for external plotting.
//!
//! The `profile` section runs the cycle-attribution profiler on
//! Stencil-dyn: a per-node cycle breakdown table (every simulated cycle
//! attributed to a category, conservation-checked against the node
//! clocks), the hottest blocks by stall cycles, and the message-kind
//! histogram. `--trace FILE` additionally exports the LCM-mcc run's
//! event stream as Chrome-trace JSON — load it at `ui.perfetto.dev` or
//! `chrome://tracing`.
//!
//! Simulated cycles are this reproduction's "execution time"; the paper
//! reports wall-clock seconds on a 32-node CM-5, so compare *shapes*
//! (who wins, by what factor), not absolute values. Paper reference
//! numbers are printed alongside where the paper gives them.

use lcm_apps::cache_limit::{chunk_blocks, stencil_on_limited_stache};
use lcm_apps::experiments::{Benchmark, Scale, Suite};
use lcm_apps::false_sharing::FalseSharing;
use lcm_apps::independent::{run_with_flush, IndependentMap};
use lcm_apps::nbody::{rms_error, run_nbody, NBody, NBodySystem};
use lcm_apps::race::{detect_races, RaceKernel};
use lcm_apps::reduction::{run_reduction, ArraySum, ReductionMethod};
use lcm_apps::sensitivity::{sweep_nodes, sweep_remote_latency};
use lcm_apps::stale_data::{run_stale, StaleData, StaleSystem};
use lcm_apps::stencil::Stencil;
use lcm_apps::threshold::Threshold;
use lcm_apps::{execute, execute_traced, execute_with_faults, RunResult, SystemKind, Workload};
use lcm_bench::{profile, BarChart};
use lcm_cstar::{FlushPolicy, Partition, RuntimeConfig};
use lcm_sim::{CostModel, FaultConfig, MachineConfig};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Medium;
    let mut csv_dir: Option<PathBuf> = None;
    let mut svg_dir: Option<PathBuf> = None;
    let mut fault_point: Option<(f64, u64)> = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut what = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                let Some(spec) = it.next() else {
                    eprintln!("--faults requires <drop_rate>:<seed>");
                    std::process::exit(2);
                };
                fault_point = match parse_faults(spec) {
                    Some(p) => Some(p),
                    None => {
                        eprintln!(
                            "bad --faults spec {spec:?} (want <drop_rate>:<seed>, e.g. 0.01:42)"
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--trace" => {
                let Some(path) = it.next() else {
                    eprintln!("--trace requires a file path");
                    std::process::exit(2);
                };
                trace_path = Some(PathBuf::from(path));
            }
            "--svg" => {
                let Some(dir) = it.next() else {
                    eprintln!("--svg requires a directory");
                    std::process::exit(2);
                };
                svg_dir = Some(PathBuf::from(dir));
            }
            "--csv" => {
                let Some(dir) = it.next() else {
                    eprintln!("--csv requires a directory");
                    std::process::exit(2);
                };
                csv_dir = Some(PathBuf::from(dir));
            }
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("paper") => Scale::Paper,
                    Some("medium") => Scale::Medium,
                    Some("smoke") => Scale::Smoke,
                    other => {
                        eprintln!("unknown scale {other:?} (paper|medium|smoke)");
                        std::process::exit(2);
                    }
                }
            }
            "-h" | "--help" => {
                println!(
                    "repro [--scale paper|medium|smoke] [--csv DIR] [--svg DIR] [--faults RATE:SEED] \
                     [--trace FILE] \
                     [table1|fig2|fig3|claims|reduction|falseshare|stale|nbody|races|flushpolicy|cachelimit|tree|sweep|faults|profile|all]"
                );
                return;
            }
            w => what.push(w.to_string()),
        }
    }
    if what.is_empty() {
        what.push("all".to_string());
    }
    let all = what.iter().any(|w| w == "all");
    let wants = |k: &str| all || what.iter().any(|w| w == k);

    let needs_suite = all
        || what
            .iter()
            .any(|w| matches!(w.as_str(), "table1" | "fig2" | "fig3" | "claims"));
    let suite = if needs_suite {
        eprintln!(
            "running the benchmark suite at scale '{scale}' ({} processors)…",
            scale.nodes()
        );
        let t0 = Instant::now();
        let s = Suite::run(scale);
        eprintln!("…done in {:.1}s\n", t0.elapsed().as_secs_f64());
        Some(s)
    } else {
        None
    };

    if wants("table1") {
        print_table1(suite.as_ref().unwrap());
    }
    if wants("fig2") {
        print_fig(suite.as_ref().unwrap(), true);
    }
    if wants("fig3") {
        print_fig(suite.as_ref().unwrap(), false);
    }
    if wants("claims") {
        print_claims(suite.as_ref().unwrap());
    }
    if wants("reduction") {
        print_reduction(scale);
    }
    if wants("falseshare") {
        print_false_sharing();
    }
    if wants("stale") {
        print_stale();
    }
    if wants("flushpolicy") {
        print_flush_policy(scale);
    }
    if wants("cachelimit") {
        print_cache_limit();
    }
    if wants("tree") {
        print_tree_reconcile(scale);
    }
    if wants("nbody") {
        print_nbody();
    }
    if wants("sweep") {
        print_sweeps(scale);
    }
    if wants("races") {
        print_races();
    }
    let faults_csv = if wants("faults") || fault_point.is_some() {
        Some(print_faults(scale, fault_point))
    } else {
        None
    };
    let profile_csvs = if wants("profile") || trace_path.is_some() {
        Some(print_profile(scale, trace_path.as_deref()))
    } else {
        None
    };
    if let Some(dir) = csv_dir {
        if let Err(e) = write_all_csv(&dir, suite.as_ref(), faults_csv.as_deref(), &profile_csvs) {
            eprintln!("failed to write CSV files to {}: {e}", dir.display());
            std::process::exit(1);
        }
        println!("CSV written to {}", dir.display());
    }
    if let (Some(dir), Some(suite)) = (svg_dir, suite.as_ref()) {
        if let Err(e) = write_svg(&dir, suite) {
            eprintln!("failed to write SVG figures to {}: {e}", dir.display());
            std::process::exit(1);
        }
        println!("SVG figures written to {}", dir.display());
    }
}

fn write_svg(dir: &std::path::Path, suite: &Suite) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let series = ["LCM-scc", "LCM-mcc", "Stache"];
    for (file, title, rows) in [
        ("fig2.svg", "Figure 2: Stencil execution time", suite.fig2()),
        (
            "fig3.svg",
            "Figure 3: benchmark execution time",
            suite.fig3(),
        ),
    ] {
        let mut chart = BarChart::new(title, "simulated cycles", &series);
        let mut groups: Vec<(Benchmark, [f64; 3])> = Vec::new();
        for (b, s, t) in rows {
            let slot = match s {
                SystemKind::LcmScc => 0,
                SystemKind::LcmMcc => 1,
                SystemKind::Stache => 2,
            };
            match groups.iter_mut().find(|(gb, _)| *gb == b) {
                Some((_, vs)) => vs[slot] = t as f64,
                None => {
                    let mut vs = [0.0; 3];
                    vs[slot] = t as f64;
                    groups.push((b, vs));
                }
            }
        }
        for (b, vs) in groups {
            chart.push_group(b.label(), &vs);
        }
        std::fs::write(dir.join(file), chart.to_svg())?;
    }
    Ok(())
}

fn write_all_csv(
    dir: &std::path::Path,
    suite: Option<&Suite>,
    faults_csv: Option<&str>,
    profile_csvs: &Option<(String, String)>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    if let Some(suite) = suite {
        write_csv(dir, suite)?;
    }
    if let Some(faults) = faults_csv {
        std::fs::write(dir.join("faults.csv"), faults)?;
    }
    if let Some((profile, phases)) = profile_csvs {
        std::fs::write(dir.join("profile.csv"), profile)?;
        std::fs::write(dir.join("phases.csv"), phases)?;
    }
    Ok(())
}

fn write_csv(dir: &std::path::Path, suite: &Suite) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut table1 =
        String::from("program,misses_scc,misses_mcc,misses_copying,clean_scc,clean_mcc\n");
    for (b, misses, clean) in suite.table1() {
        table1.push_str(&format!(
            "{},{},{},{},{},{}\n",
            b.label(),
            misses[0],
            misses[1],
            misses[2],
            clean[0],
            clean[1]
        ));
    }
    std::fs::write(dir.join("table1.csv"), table1)?;
    for (name, rows) in [("fig2.csv", suite.fig2()), ("fig3.csv", suite.fig3())] {
        let mut csv = String::from("program,system,cycles\n");
        for (b, s, t) in rows {
            csv.push_str(&format!("{},{},{}\n", b.label(), s.label(), t));
        }
        std::fs::write(dir.join(name), csv)?;
    }
    // Per-kind message counts and fault/retry counters for every run.
    let mut messages = String::from("program,system,kind,count,bytes\n");
    let mut net = String::from(
        "program,system,msgs_delivered,blocks,retries,timeouts,dropped,duplicated,stall_cycles\n",
    );
    for b in Benchmark::all() {
        for s in SystemKind::all() {
            let r = suite.result(b, s);
            for ((kind, n), (_, bytes)) in r.msg_kinds.iter().zip(&r.msg_bytes) {
                if *n > 0 {
                    messages.push_str(&format!(
                        "{},{},{},{n},{bytes}\n",
                        b.label(),
                        s.label(),
                        kind.label()
                    ));
                }
            }
            net.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                b.label(),
                s.label(),
                r.msgs_total(),
                r.totals.blocks_sent,
                r.totals.retries,
                r.totals.timeouts,
                r.totals.msgs_dropped,
                r.totals.msgs_duplicated,
                r.totals.stall_cycles,
            ));
        }
    }
    std::fs::write(dir.join("messages.csv"), messages)?;
    std::fs::write(dir.join("network.csv"), net)?;
    Ok(())
}

fn parse_faults(spec: &str) -> Option<(f64, u64)> {
    let (rate, seed) = spec.split_once(':')?;
    let rate: f64 = rate.parse().ok()?;
    let seed: u64 = seed.parse().ok()?;
    (0.0..=1.0).contains(&rate).then_some((rate, seed))
}

/// The unreliable-network sweep: execution-time slowdown vs message drop
/// rate, for all three systems on two benchmarks. Returns the CSV rows.
fn print_faults(scale: Scale, custom: Option<(f64, u64)>) -> String {
    let seed = custom.map_or(0xC0FFEE, |(_, s)| s);
    let mut rates = vec![0.0, 0.001, 0.01, 0.05];
    if let Some((r, _)) = custom {
        if !rates.contains(&r) {
            rates.push(r);
            rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        }
    }
    println!("== Unreliable network: slowdown vs message drop rate (seed {seed}) ==");
    println!("   each drop costs a timeout plus an exponentially backed-off retransmit;");
    println!("   outputs are checked bit-identical to the fault-free run, and every run");
    println!("   ends with the coherence-invariant sanitizer");
    let nodes = scale.nodes();
    let mut csv = String::from(
        "benchmark,system,drop_rate,seed,cycles,slowdown,msgs_delivered,retries,timeouts,dropped,duplicated\n",
    );
    let stencil = match scale {
        Scale::Paper => Stencil {
            rows: 256,
            cols: 256,
            iters: 10,
            partition: Partition::Dynamic,
        },
        Scale::Medium => Stencil {
            rows: 128,
            cols: 128,
            iters: 6,
            partition: Partition::Dynamic,
        },
        Scale::Smoke => Stencil {
            rows: 48,
            cols: 48,
            iters: 3,
            partition: Partition::Dynamic,
        },
    };
    sweep_faults("Stencil-dyn", nodes, &stencil, &rates, seed, &mut csv);
    let threshold = match scale {
        Scale::Paper => Threshold {
            size: 256,
            iters: 15,
            threshold: 1.0,
            sources: 6,
        },
        Scale::Medium => Threshold {
            size: 96,
            iters: 8,
            threshold: 1.0,
            sources: 4,
        },
        Scale::Smoke => Threshold::small(),
    };
    sweep_faults("Threshold", nodes, &threshold, &rates, seed, &mut csv);
    println!();
    csv
}

fn sweep_faults<W: Workload>(
    name: &str,
    nodes: usize,
    w: &W,
    rates: &[f64],
    seed: u64,
    csv: &mut String,
) where
    W::Output: PartialEq + std::fmt::Debug,
{
    println!("{name}:");
    for system in SystemKind::all() {
        let mut base: Option<(W::Output, u64)> = None;
        let mut last_kinds = Vec::new();
        for &rate in rates {
            let faults = FaultConfig::drops(rate, seed);
            let (out, r) = execute_with_faults(system, nodes, faults, RuntimeConfig::default(), w);
            match &base {
                None => base = Some((out, r.time)),
                Some((expected, _)) => assert_eq!(
                    expected, &out,
                    "{name}/{system}: faults changed the result at drop rate {rate}"
                ),
            }
            let slowdown = r.time as f64 / base.as_ref().expect("baseline recorded").1 as f64;
            println!(
                "  {:<8} drop={:<6} {:>13} cycles ({:>5.2}x)  retries={:<6} timeouts={:<6} dropped={:<6} dup={}",
                system.label(),
                rate,
                r.time,
                slowdown,
                r.totals.retries,
                r.totals.timeouts,
                r.totals.msgs_dropped,
                r.totals.msgs_duplicated,
            );
            csv.push_str(&format!(
                "{name},{},{rate},{seed},{},{slowdown:.4},{},{},{},{},{}\n",
                system.label(),
                r.time,
                r.msgs_total(),
                r.totals.retries,
                r.totals.timeouts,
                r.totals.msgs_dropped,
                r.totals.msgs_duplicated,
            ));
            last_kinds = r.msg_kinds;
        }
        let mix: Vec<String> = last_kinds
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(kind, n)| format!("{}={n}", kind.label()))
            .collect();
        println!("           msgs at max rate: {}", mix.join(" "));
    }
}

/// The cycle-attribution profile: Stencil-dyn on all three systems with
/// tracing on, per-node cycle breakdowns, hottest blocks, and message
/// histograms. Returns `(profile.csv, phases.csv)` contents; with
/// `trace_path` set, also exports the LCM-mcc event stream as
/// Chrome-trace JSON.
fn print_profile(scale: Scale, trace_path: Option<&std::path::Path>) -> (String, String) {
    println!("== Cycle-attribution profile: Stencil-dyn, every cycle to a category ==");
    println!("   (per-node category sums are conservation-checked against the clocks");
    println!("   by the sanitizer on every harvest)");
    let nodes = scale.nodes();
    let w = match scale {
        Scale::Paper => Stencil {
            rows: 256,
            cols: 256,
            iters: 10,
            partition: Partition::Dynamic,
        },
        Scale::Medium => Stencil {
            rows: 128,
            cols: 128,
            iters: 6,
            partition: Partition::Dynamic,
        },
        Scale::Smoke => Stencil {
            rows: 48,
            cols: 48,
            iters: 3,
            partition: Partition::Dynamic,
        },
    };
    let cost = CostModel::cm5();
    let mut results = Vec::new();
    for system in SystemKind::all() {
        let mc = MachineConfig::new(nodes).with_trace(2_000_000);
        let (_, r, events) = execute_traced(system, mc, RuntimeConfig::default(), &w);
        println!("{}", profile::profile_report(&r, &events, &cost));
        if system == SystemKind::LcmMcc {
            if let Some(path) = trace_path {
                let json = profile::chrome_trace_json(&events, nodes);
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    let _ = std::fs::create_dir_all(parent);
                }
                match std::fs::write(path, &json) {
                    Ok(()) => println!(
                        "Chrome-trace JSON ({} events) written to {} — load it at \
                         ui.perfetto.dev or chrome://tracing\n",
                        events.len(),
                        path.display()
                    ),
                    Err(e) => {
                        eprintln!("failed to write trace to {}: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            }
        }
        results.push(r);
    }
    let entries: Vec<(&str, &RunResult)> = results.iter().map(|r| ("Stencil-dyn", r)).collect();
    (
        profile::profile_csv(&entries),
        profile::phases_csv(&entries),
    )
}

fn print_flush_policy(scale: Scale) {
    println!("== §5.1 flush elision: per-invocation vs at-reconcile flushes ==");
    println!("   (sound when the compiler proves invocations touch distinct locations)");
    let w = match scale {
        Scale::Paper => IndependentMap {
            len: 1 << 18,
            sweeps: 4,
        },
        Scale::Medium => IndependentMap::default_size(),
        Scale::Smoke => IndependentMap::small(),
    };
    let (_, per_inv) = run_with_flush(FlushPolicy::PerInvocation, scale.nodes(), &w);
    let (_, at_rec) = run_with_flush(FlushPolicy::AtReconcile, scale.nodes(), &w);
    println!(
        "  per-invocation {:>12} cycles, {:>8} flushes",
        per_inv.time, per_inv.totals.flushes
    );
    println!(
        "  at-reconcile   {:>12} cycles, {:>8} flushes  ({:.2}x faster)",
        at_rec.time,
        at_rec.totals.flushes,
        per_inv.time as f64 / at_rec.time as f64
    );
    println!();
}

fn print_cache_limit() {
    println!("== §6.3 limited-cache ablation: Stencil-stat on a bounded Stache ==");
    let w = Stencil {
        rows: 256,
        cols: 256,
        iters: 10,
        partition: Partition::Static,
    };
    let nodes = 16;
    let chunk = chunk_blocks(&w, nodes);
    let lcm = execute(SystemKind::LcmMcc, nodes, RuntimeConfig::default(), &w).1;
    println!("  LCM-mcc (reference)         {:>12} cycles", lcm.time);
    for (label, cap) in [
        ("Stache unbounded (paper)", None),
        ("Stache cap = 2x chunk", Some(2 * chunk)),
        ("Stache cap = chunk/2", Some(chunk / 2)),
        ("Stache cap = chunk/8", Some(chunk / 8)),
    ] {
        let r = stencil_on_limited_stache(cap, nodes, &w);
        println!(
            "  {:<27} {:>12} cycles, {:>8} misses, {:>8} evictions",
            label,
            r.time,
            r.misses(),
            r.totals.evictions
        );
    }
    println!();
}

fn print_tree_reconcile(scale: Scale) {
    use lcm_core::{Lcm, LcmVariant};
    use lcm_cstar::{Runtime, Strategy};
    use lcm_rsm::{MemoryProtocol, ReduceOp};
    use lcm_sim::MachineConfig;
    use lcm_tempest::Placement;
    println!("== §5 tree-structured reconciliation (reduction bottleneck) ==");
    let nodes = scale.nodes().max(16);
    for tree in [false, true] {
        let mut mem = Lcm::new(MachineConfig::new(nodes), LcmVariant::Mcc);
        mem.set_tree_reconcile(tree);
        let mut rt = Runtime::new(mem, Strategy::LcmDirectives);
        let a = rt.new_aggregate1::<f32>(nodes * 64, Placement::Blocked, "a");
        rt.init1(a, |i| (i % 5) as f32);
        let total = rt.new_reduction_f64(ReduceOp::SumF64, 0.0, "total");
        rt.apply1(a, Partition::Static, |inv, i| {
            let v = inv.get(a.at(i)) as f64;
            inv.reduce_f64(total, v);
        });
        let home = lcm_sim::NodeId(0);
        let machine = &rt.mem().tempest().machine;
        println!(
            "  {:<8} total time {:>10} cycles; home node merged {:>3} versions (sum={})",
            if tree { "tree" } else { "direct" },
            machine.time(),
            machine.stats(home).versions_reconciled,
            rt.peek_reduction(total)
        );
    }
    println!();
}

fn k(x: u64) -> String {
    format!("{:.0}", x as f64 / 1000.0)
}

fn print_table1(suite: &Suite) {
    println!("== Table 1: benchmark cache misses and clean copies (thousands) ==");
    println!("   (paper values in parentheses; paper ran 32-node CM-5)");
    println!(
        "{:<14} | {:>16} {:>16} {:>16} | {:>14} {:>14}",
        "Program", "misses scc", "misses mcc", "misses Copying", "clean scc", "clean mcc"
    );
    println!("{}", "-".repeat(102));
    for (b, misses, clean) in suite.table1() {
        let refs = b.paper_table1();
        let fmt_ref = |v: Option<f64>| v.map(|x| format!("({x:.0})")).unwrap_or_default();
        let (r_scc, r_mcc, r_cp, r_cscc, r_cmcc) = match refs {
            Some((a, b2, c, d, e)) => (
                fmt_ref(a),
                fmt_ref(Some(b2)),
                fmt_ref(Some(c)),
                fmt_ref(d),
                fmt_ref(Some(e)),
            ),
            None => (
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ),
        };
        println!(
            "{:<14} | {:>8} {:>7} {:>8} {:>7} {:>8} {:>7} | {:>6} {:>7} {:>6} {:>7}",
            b.label(),
            k(misses[0]),
            r_scc,
            k(misses[1]),
            r_mcc,
            k(misses[2]),
            r_cp,
            k(clean[0]),
            r_cscc,
            k(clean[1]),
            r_cmcc,
        );
    }
    println!();
}

fn print_fig(suite: &Suite, fig2: bool) {
    if fig2 {
        println!("== Figure 2: Stencil execution time (simulated cycles) ==");
    } else {
        println!("== Figure 3: benchmark execution time (simulated cycles) ==");
    }
    let rows = if fig2 { suite.fig2() } else { suite.fig3() };
    let mut last: Option<Benchmark> = None;
    for (b, s, time) in rows {
        if last != Some(b) {
            println!("{}:", b.label());
            last = Some(b);
        }
        let base = suite.result(b, SystemKind::Stache).time as f64;
        println!(
            "  {:<8} {:>14} cycles   ({:.2}x vs Stache)",
            s.label(),
            time,
            time as f64 / base
        );
    }
    println!();
}

fn print_claims(suite: &Suite) {
    println!("== §6.3 prose claims, checked against this run ==");
    let claims = suite.claims();
    let mut ok = 0;
    for c in &claims {
        println!(
            "[{}] {}\n        paper: {:<14} measured: {}",
            if c.holds { "PASS" } else { "FAIL" },
            c.description,
            c.paper,
            c.measured
        );
        if c.holds {
            ok += 1;
        }
    }
    println!(
        "{} of {} claims hold at scale '{}'\n",
        ok,
        claims.len(),
        suite.scale()
    );
}

fn print_reduction(scale: Scale) {
    println!(
        "== §7.1 Reductions: summing an array on {} processors ==",
        scale.nodes()
    );
    let w = match scale {
        Scale::Paper => ArraySum {
            len: 1 << 20,
            passes: 2,
        },
        Scale::Medium => ArraySum::default_size(),
        Scale::Smoke => ArraySum::small(),
    };
    let mut base = None;
    for method in ReductionMethod::all() {
        let (sum, r) = run_reduction(method, scale.nodes(), &w);
        let base_time = *base.get_or_insert(r.time) as f64;
        println!(
            "  {:<15} {:>14} cycles ({:>5.2}x vs shared-acc)  sum={}  misses={}",
            method.label(),
            r.time,
            r.time as f64 / base_time,
            sum,
            r.misses()
        );
    }
    println!();
}

fn print_false_sharing() {
    println!("== §7.4 False sharing: 8 writers, one block, 200 rounds ==");
    let w = FalseSharing::default_size();
    let cfg = RuntimeConfig::default();
    for (label, sys, wl) in [
        ("Stache packed", SystemKind::Stache, w),
        ("Stache padded", SystemKind::Stache, w.padded()),
        ("LCM-mcc packed", SystemKind::LcmMcc, w),
        ("LCM-scc packed", SystemKind::LcmScc, w),
    ] {
        let (_, r) = execute(sys, w.writers, cfg, &wl);
        println!(
            "  {:<15} {:>12} cycles  misses={:<6} invalidations={}",
            label,
            r.time,
            r.misses(),
            r.totals.invalidations_sent
        );
    }
    println!();
}

fn print_stale() {
    println!("== §7.5 Stale data: producer field, consumers refresh every k ==");
    let base = StaleData::default_size();
    let (lag, r) = run_stale(StaleSystem::Coherent, 8, &base);
    println!(
        "  {:<22} {:>12} cycles  misses={:<6} staleness={}",
        "coherent (k=1)",
        r.time,
        r.misses(),
        lag
    );
    for k in [2usize, 4, 8, 16] {
        let w = StaleData {
            refresh_every: k,
            ..base
        };
        let (lag, r) = run_stale(StaleSystem::StaleRegion, 8, &w);
        println!(
            "  {:<22} {:>12} cycles  misses={:<6} staleness={:.0}  refreshes={}",
            format!("stale region (k={k})"),
            r.time,
            r.misses(),
            lag,
            r.totals.stale_refreshes
        );
    }
    println!();
}

fn print_nbody() {
    println!("== §7.5 N-body: stale far-field positions ==");
    let base = NBody::default_size();
    let (reference, coherent) = run_nbody(NBodySystem::Coherent, 8, &base);
    println!(
        "  {:<18} {:>12} cycles, {:>6} misses, rms error 0",
        "coherent",
        coherent.time,
        coherent.misses()
    );
    for k in [2usize, 4, 8, 16] {
        let w = NBody {
            refresh_every: k,
            ..base
        };
        let (pos, run) = run_nbody(NBodySystem::StaleRegion, 8, &w);
        println!(
            "  {:<18} {:>12} cycles, {:>6} misses, rms error {:.4}",
            format!("refresh every {k}"),
            run.time,
            run.misses(),
            rms_error(&reference, &pos)
        );
    }
    println!();
}

fn print_sweeps(scale: Scale) {
    println!("== Sensitivity: Stencil-dyn LCM-mcc advantage vs machine parameters ==");
    let w = match scale {
        Scale::Paper => Stencil {
            rows: 512,
            cols: 512,
            iters: 10,
            partition: Partition::Dynamic,
        },
        Scale::Medium => Stencil {
            rows: 256,
            cols: 256,
            iters: 8,
            partition: Partition::Dynamic,
        },
        Scale::Smoke => Stencil {
            rows: 64,
            cols: 64,
            iters: 4,
            partition: Partition::Dynamic,
        },
    };
    println!(
        "remote round-trip latency sweep ({} processors):",
        scale.nodes()
    );
    for p in sweep_remote_latency(&[500, 1500, 3000, 6000, 12000], scale.nodes(), &w) {
        println!(
            "  remote_miss={:>6} cy: LCM-mcc {:>12}, Stache {:>12}  (advantage {:.2}x)",
            p.x,
            p.lcm.time,
            p.stache.time,
            p.advantage()
        );
    }
    println!("processor-count sweep (default cost model):");
    for p in sweep_nodes(&[4, 8, 16, 32], &w) {
        println!(
            "  P={:>2}: LCM-mcc {:>12}, Stache {:>12}  (advantage {:.2}x)",
            p.x,
            p.lcm.time,
            p.stache.time,
            p.advantage()
        );
    }
    println!();
}

fn print_races() {
    println!("== §7.2/7.3 Conflict detection ==");
    for kernel in RaceKernel::all() {
        let conflicts = detect_races(kernel, 4);
        println!("  {:?}: {} conflict(s)", kernel, conflicts.len());
        for c in conflicts.iter().take(4) {
            println!("    - {c}");
        }
    }
    println!();
}

//! Cost-model design-space exploration over captured traces.
//!
//! The expensive part of a design-space sweep is re-executing the
//! program at every grid point. This module does it once: each
//! (benchmark, system) pair is executed a single time in capture mode,
//! and the resulting [`TraceFile`] is re-priced under every cost model
//! of the grid by the `lcm-replay` engine — same clocks and ledgers,
//! a fraction of the cost.
//!
//! The grid follows the sensitivity and contention sections: remote
//! latency maps onto `remote_miss` (with `upgrade` scaled to ⅔ of it,
//! as in the latency sweep) and bandwidth onto
//! `link_bandwidth_bytes_per_cycle` (0 = unlimited). Results are
//! returned in fixed grid order regardless of the worker count, so the
//! CSV is byte-identical at any `--jobs`.

use lcm_apps::{execute_captured, execute_with_machine, RunResult, SystemKind, Workload};
use lcm_cstar::RuntimeConfig;
use lcm_replay::{TraceFile, TraceHandle};
use lcm_serve::{Query, ServeEngine};
use lcm_sim::{CostModel, CycleCat, CycleLedger, DirBackend, MachineConfig, NodeId};
use std::sync::Arc;

/// Default capture buffer: generous enough for the medium-scale
/// benchmarks (a dropped event makes a capture useless for replay).
/// The trace grows on demand, so an unused cap costs nothing.
pub const CAPTURE_CAPACITY: usize = 1 << 24;

/// Captures one (benchmark, system) execution as a replayable trace
/// file under the cm5 cost model at the default topology.
///
/// Fails if the capture buffer overflowed — a truncated stream cannot
/// account for every charged cycle.
pub fn capture_workload<W: Workload>(
    benchmark: &str,
    scale: &str,
    system: SystemKind,
    nodes: usize,
    config: RuntimeConfig,
    workload: &W,
    capacity: usize,
) -> Result<TraceFile, String> {
    let mc = MachineConfig::new(nodes).with_cost(CostModel::cm5());
    capture_with_machine(benchmark, scale, system, mc, config, workload, capacity)
}

/// [`capture_workload`] under an explicit machine configuration — e.g.
/// a finite-bandwidth cost model, whose contention charges replay must
/// also reproduce.
pub fn capture_with_machine<W: Workload>(
    benchmark: &str,
    scale: &str,
    system: SystemKind,
    mc: MachineConfig,
    config: RuntimeConfig,
    workload: &W,
    capacity: usize,
) -> Result<TraceFile, String> {
    let nodes = mc.nodes;
    let topology = mc.topology;
    let cost = mc.cost;
    let (_, result, events) = execute_captured(system, mc, capacity, config, workload);
    if result.trace_dropped > 0 {
        return Err(format!(
            "{benchmark}/{system}: capture dropped {} events (buffer of \
             {capacity}); recapture with a larger buffer",
            result.trace_dropped
        ));
    }
    TraceFile::from_capture(
        nodes,
        topology,
        cost,
        vec![
            ("benchmark".to_string(), benchmark.to_string()),
            ("system".to_string(), system.label().to_string()),
            ("scale".to_string(), scale.to_string()),
        ],
        events,
        result.clocks.clone(),
        &result.ledger,
        result.totals.clone(),
    )
}

/// The cost model at one grid point: cm5 with the remote latency and
/// link bandwidth replaced (the latency scales `upgrade` with it, as in
/// the sensitivity sweep).
pub fn grid_cost(bandwidth: u64, latency: u64) -> CostModel {
    CostModel::cm5_grid(bandwidth, latency)
}

/// One re-priced grid point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExploreRow {
    /// Benchmark label (from the trace's metadata).
    pub benchmark: String,
    /// Memory-system label (from the trace's metadata).
    pub system: String,
    /// Link bandwidth in bytes/cycle; 0 = unlimited.
    pub bandwidth: u64,
    /// Remote-miss latency in cycles.
    pub latency: u64,
    /// Execution time under this cost model (max node clock).
    pub time: u64,
    /// Total network-contention cycles across all nodes.
    pub contention: u64,
    /// Total barrier-wait cycles across all nodes.
    pub barrier_wait: u64,
    /// Total wire bytes sent.
    pub bytes_sent: u64,
}

fn cat_total(ledger: &CycleLedger, nodes: usize, cat: CycleCat) -> u64 {
    (0..nodes).map(|n| ledger.get(NodeId(n as u16), cat)).sum()
}

#[allow(clippy::too_many_arguments)]
fn row(
    benchmark: &str,
    system: &str,
    bandwidth: u64,
    latency: u64,
    nodes: usize,
    time: u64,
    ledger: &CycleLedger,
    bytes_sent: u64,
) -> ExploreRow {
    ExploreRow {
        benchmark: benchmark.to_string(),
        system: system.to_string(),
        bandwidth,
        latency,
        time,
        contention: cat_total(ledger, nodes, CycleCat::NetContention),
        barrier_wait: cat_total(ledger, nodes, CycleCat::BarrierWait),
        bytes_sent,
    }
}

/// Re-prices every captured trace at every (bandwidth, latency) grid
/// point. Rows come back in fixed grid order — traces outermost, then
/// bandwidths, then latencies — so the output is deterministic at any
/// worker count.
///
/// The sweep is a thin client of the `lcm-serve` engine: traces are
/// loaded once, the grid is issued as one batch on `jobs` workers, and
/// repeated or provably-equivalent points come from the result cache —
/// byte-identical to a cold full replay (the serve test suite holds
/// that identity on this very grid).
pub fn explore_grid(
    files: &[TraceHandle],
    bandwidths: &[u64],
    latencies: &[u64],
    jobs: usize,
) -> Vec<ExploreRow> {
    let mut engine = ServeEngine::new();
    for (i, file) in files.iter().enumerate() {
        engine.load(&format!("trace-{i}"), Arc::clone(file));
    }
    let mut queries = Vec::with_capacity(files.len() * bandwidths.len() * latencies.len());
    let mut coords = Vec::with_capacity(queries.capacity());
    for (i, file) in files.iter().enumerate() {
        for &bw in bandwidths {
            for &lat in latencies {
                queries.push(Query {
                    trace: format!("trace-{i}"),
                    cost: grid_cost(bw, lat),
                    topology: file.topology,
                    backend: DirBackend::FullMap,
                });
                coords.push((i, bw, lat));
            }
        }
    }
    let answers = engine.query_batch(jobs, &queries);
    answers
        .into_iter()
        .zip(coords)
        .map(|(answer, (i, bw, lat))| {
            let (result, _) = answer.expect("grid queries address loaded traces");
            let nodes = files[i].nodes;
            ExploreRow {
                benchmark: result.benchmark.clone(),
                system: result.system.clone(),
                bandwidth: bw,
                latency: lat,
                time: result.time,
                contention: result.cat_total(CycleCat::NetContention),
                barrier_wait: result.cat_total(CycleCat::BarrierWait),
                bytes_sent: {
                    debug_assert_eq!(nodes, result.nodes);
                    result.totals().bytes_sent
                },
            }
        })
        .collect()
}

/// The execution-driven control: runs the *same* grid for one workload
/// by re-executing it at every point. Exists to benchmark replay
/// against (`repro bench`) and to cross-check the explorer in tests;
/// the explorer itself never re-executes.
pub fn reexecute_grid<W: Workload>(
    benchmark: &str,
    system: SystemKind,
    nodes: usize,
    config: RuntimeConfig,
    workload: &W,
    bandwidths: &[u64],
    latencies: &[u64],
) -> Vec<ExploreRow> {
    let mut rows = Vec::with_capacity(bandwidths.len() * latencies.len());
    for &bw in bandwidths {
        for &lat in latencies {
            let mc = MachineConfig::new(nodes).with_cost(grid_cost(bw, lat));
            let result: RunResult = execute_with_machine(system, mc, config, workload).1;
            rows.push(row(
                benchmark,
                system.label(),
                bw,
                lat,
                nodes,
                result.time,
                &result.ledger,
                result.totals.bytes_sent,
            ));
        }
    }
    rows
}

/// Renders explorer rows as CSV (stable column order, one header line).
pub fn explore_csv(rows: &[ExploreRow]) -> String {
    let mut csv = String::from(
        "benchmark,system,bandwidth_bytes_per_cycle,remote_latency,cycles,\
         net_contention_cycles,barrier_wait_cycles,bytes_sent\n",
    );
    for r in rows {
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.benchmark,
            r.system,
            r.bandwidth,
            r.latency,
            r.time,
            r.contention,
            r.barrier_wait,
            r.bytes_sent
        ));
    }
    csv
}

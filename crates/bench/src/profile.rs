//! Profile exporters: Chrome-trace JSON, text reports, and CSV tables.
//!
//! The cycle-attribution profiler has three consumers, all fed from the
//! same two sources — the conservation-checked
//! [`CycleLedger`](lcm_sim::CycleLedger) carried by every
//! [`RunResult`], and the cycle-stamped event stream captured by
//! [`lcm_apps::execute_traced`]:
//!
//! * [`chrome_trace_json`] renders the event stream in the Chrome
//!   trace-event format (load the file at `ui.perfetto.dev` or
//!   `chrome://tracing`): one process track per node, complete ("X")
//!   slices for span-style operations (fault handlers, marks, flushes,
//!   reconciles), instant ("i") events for everything else;
//! * [`profile_report`] prints the per-node cycle breakdown table, the
//!   hottest blocks by stall cycles, and the message-kind histogram;
//! * [`profile_csv`] / [`phases_csv`] emit machine-readable tables for
//!   external plotting.

use lcm_apps::RunResult;
use lcm_sim::mem::BlockId;
use lcm_sim::trace::Event;
use lcm_sim::{CostModel, CycleCat, LinkUtil, NodeId, Stamped};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The cycle categories a run actually exercises: every category, minus
/// the late-addition ones when the run charged nothing to them
/// (`net_contention` stays zero under the default unlimited bandwidth;
/// `checkpoint`/`rollback`/`crash_detect` stay zero without an active
/// crash plan). Filtering keeps the breakdown table and `profile.csv`
/// byte-identical for runs that predate those models.
fn visible_cats(r: &RunResult) -> Vec<CycleCat> {
    let dormant_when_zero = [
        CycleCat::NetContention,
        CycleCat::Checkpoint,
        CycleCat::Rollback,
        CycleCat::CrashDetect,
    ];
    CycleCat::all()
        .into_iter()
        .filter(|&cat| !dormant_when_zero.contains(&cat) || r.ledger.totals()[cat.index()] > 0)
        .collect()
}

/// Parses field `idx` (0-based) of a comma-separated `line` as `u64`,
/// naming the offending line and field on failure instead of panicking —
/// CSV tables round-trip through string form in several places, and a
/// malformed line should produce a diagnosable error, not an `unwrap`
/// backtrace.
pub fn csv_field_u64(line: &str, idx: usize) -> Result<u64, String> {
    let field = line
        .split(',')
        .nth(idx)
        .ok_or_else(|| format!("CSV line has no field {idx}: {line:?}"))?;
    field
        .parse::<u64>()
        .map_err(|e| format!("CSV field {idx} ({field:?}) is not a u64 ({e}): {line:?}"))
}

/// A matched send→recv message dependency, rendered as a Perfetto flow
/// arrow between two thin slices on the endpoints' message rows.
#[derive(Clone, Debug)]
pub struct FlowArrow {
    /// Sending node (pid of the arrow's tail).
    pub from: u16,
    /// Receiving node (pid of the arrow's head).
    pub to: u16,
    /// Protocol message kind label.
    pub kind: &'static str,
    /// Bytes on the wire.
    pub bytes: u64,
    /// Sender's clock at the send.
    pub send_cycle: u64,
    /// Receiver's clock at the handling.
    pub recv_cycle: u64,
}

/// One slice on the synthetic critical-path track (pid `nodes + 2`):
/// a path-resident epoch segment or a barrier join.
#[derive(Clone, Debug)]
pub struct PathSlice {
    /// Slice name (e.g. `"apply @node3"` or `"barrier"`).
    pub name: String,
    /// Start cycle.
    pub start: u64,
    /// Duration in cycles.
    pub dur: u64,
    /// Pre-rendered JSON object body for the slice's `args`.
    pub args: String,
}

/// Renders a captured event stream as Chrome trace-event JSON.
///
/// `nodes` sizes the per-node track metadata. Events with no acting node
/// (barriers, reconcile summaries, conflicts) land on a synthetic
/// "machine" track with pid `nodes`. Cycle stamps map 1:1 to the
/// format's microsecond timestamps, so one displayed microsecond is one
/// simulated cycle.
pub fn chrome_trace_json(events: &[Stamped], nodes: usize) -> String {
    chrome_trace_json_with_links(events, nodes, &[])
}

/// [`chrome_trace_json`] plus the fabric's per-link utilization
/// (harvested in [`RunResult::links`] when the contention-aware network
/// model is active). Links land on a synthetic "fabric" track with pid
/// `nodes + 1`, one instant per link at ts 0 carrying the message
/// count, busy (serialization) cycles, and queue cycles as args. With
/// `links` empty the output is byte-identical to [`chrome_trace_json`].
pub fn chrome_trace_json_with_links(
    events: &[Stamped],
    nodes: usize,
    links: &[LinkUtil],
) -> String {
    chrome_trace_json_with_flows(events, nodes, links, &[], &[])
}

/// The full exporter: [`chrome_trace_json_with_links`] plus happens-
/// before annotations from the critical-path analyzer. Each
/// [`FlowArrow`] becomes a pair of 1-cycle slices on the endpoints'
/// message rows (`tid` 1) joined by an `s`/`f` flow — Perfetto draws
/// the arrow between them — and [`PathSlice`]s land on a dedicated
/// "critical path" track with pid `nodes + 2`, so the path-resident
/// segments read as one highlighted lane above the node tracks. With
/// `flows` and `path` empty the output is byte-identical to
/// [`chrome_trace_json_with_links`].
pub fn chrome_trace_json_with_flows(
    events: &[Stamped],
    nodes: usize,
    links: &[LinkUtil],
    flows: &[FlowArrow],
    path: &[PathSlice],
) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, ev: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&ev);
    };
    for pid in 0..=nodes {
        let name = if pid == nodes {
            "machine".to_string()
        } else {
            format!("node {pid}")
        };
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
        );
    }
    if !links.is_empty() {
        let fabric = nodes + 1;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{fabric},\"tid\":0,\
                 \"args\":{{\"name\":\"fabric\"}}}}"
            ),
        );
        for l in links {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":{fabric},\"tid\":0,\
                     \"ts\":0,\"s\":\"p\",\"args\":{{\"msgs\":{},\"busy_cycles\":{},\
                     \"queue_cycles\":{}}}}}",
                    l.label, l.msgs, l.busy_cycles, l.queue_cycles
                ),
            );
        }
    }
    // Open spans, keyed by (node, label, block); values are begin cycles.
    // Nested spans of the same key close innermost-first.
    let mut open: HashMap<(u16, &'static str, u64), Vec<u64>> = HashMap::new();
    for e in events {
        let pid = e.event.node().map_or(nodes, |n| n.index());
        match e.event {
            Event::SpanBegin { node, what, block } => {
                open.entry((node.0, what, block.0))
                    .or_default()
                    .push(e.cycle);
            }
            Event::SpanEnd { node, what, block } => {
                let begin = open
                    .get_mut(&(node.0, what, block.0))
                    .and_then(Vec::pop)
                    .unwrap_or(e.cycle);
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{what}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\
                         \"ts\":{begin},\"dur\":{},\"args\":{{\"block\":{}}}}}",
                        e.cycle.saturating_sub(begin),
                        block.0
                    ),
                );
            }
            ref ev => {
                let mut args = String::new();
                if let Some(b) = ev.block() {
                    let _ = write!(args, "\"block\":{}", b.0);
                }
                if let Some(bytes) = ev.bytes() {
                    if !args.is_empty() {
                        args.push(',');
                    }
                    let _ = write!(args, "\"bytes\":{bytes}");
                }
                if let Event::MsgSend { to, kind, .. } = ev {
                    let _ = write!(args, ",\"kind\":\"{kind}\",\"to\":{}", to.index());
                }
                if let Event::MsgRecv { from, kind, .. } = ev {
                    let _ = write!(args, ",\"kind\":\"{kind}\",\"from\":{}", from.index());
                }
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":{pid},\"tid\":0,\
                         \"ts\":{},\"s\":\"t\",\"args\":{{{args}}}}}",
                        ev.kind(),
                        e.cycle
                    ),
                );
            }
        }
    }
    // Spans left open (e.g. a truncated trace): close them at their
    // begin cycle so the slice is visible with zero duration.
    let mut leftovers: Vec<((u16, &'static str, u64), u64)> = open
        .into_iter()
        .flat_map(|(k, begins)| begins.into_iter().map(move |b| (k, b)))
        .collect();
    leftovers.sort_unstable();
    for ((node, what, block), begin) in leftovers {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"{what}\",\"ph\":\"X\",\"pid\":{node},\"tid\":0,\
                 \"ts\":{begin},\"dur\":0,\"args\":{{\"block\":{block}}}}}"
            ),
        );
    }
    for (id, f) in flows.iter().enumerate() {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":1,\
                 \"ts\":{},\"dur\":1,\"args\":{{\"bytes\":{},\"to\":{}}}}}",
                f.kind, f.from, f.send_cycle, f.bytes, f.to
            ),
        );
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":{id},\
                 \"pid\":{},\"tid\":1,\"ts\":{}}}",
                f.from, f.send_cycle
            ),
        );
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":1,\
                 \"ts\":{},\"dur\":1,\"args\":{{\"bytes\":{},\"from\":{}}}}}",
                f.kind, f.to, f.recv_cycle, f.bytes, f.from
            ),
        );
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\
                 \"id\":{id},\"pid\":{},\"tid\":1,\"ts\":{}}}",
                f.to, f.recv_cycle
            ),
        );
    }
    if !path.is_empty() {
        let cp = nodes + 2;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{cp},\"tid\":0,\
                 \"args\":{{\"name\":\"critical path\"}}}}"
            ),
        );
        for s in path {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{cp},\"tid\":0,\
                     \"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
                    s.name, s.start, s.dur, s.args
                ),
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// The per-node cycle breakdown: one row per node, one column per
/// [`CycleCat`], plus per-node totals (which the conservation invariant
/// guarantees equal the node clocks) and a machine-wide footer.
pub fn cycle_breakdown_table(r: &RunResult) -> String {
    let cats = visible_cats(r);
    let mut out = String::new();
    let _ = write!(out, "{:<6}", "node");
    for cat in &cats {
        let _ = write!(out, " {:>18}", cat.label());
    }
    let _ = writeln!(out, " {:>16}", "total");
    for n in 0..r.ledger.nodes() {
        let node = NodeId(n as u16);
        let _ = write!(out, "{n:<6}");
        for cat in &cats {
            let _ = write!(out, " {:>18}", r.ledger.get(node, *cat));
        }
        let _ = writeln!(out, " {:>16}", r.ledger.node_total(node));
    }
    let totals = r.ledger.totals();
    let _ = write!(out, "{:<6}", "all");
    for cat in &cats {
        let _ = write!(out, " {:>18}", totals[cat.index()]);
    }
    let sum: u64 = totals.iter().sum();
    let _ = writeln!(out, " {:>16}", sum);
    out
}

/// The blocks with the most stall cycles, reconstructed from the event
/// stream: misses and upgrades weighted by the cost model's fill
/// latencies. Returns up to `n` `(block, stall_cycles)` pairs, hottest
/// first. An empty result means tracing was off (or nothing missed).
pub fn hottest_blocks(events: &[Stamped], cost: &CostModel, n: usize) -> Vec<(BlockId, u64)> {
    let mut per_block: HashMap<BlockId, u64> = HashMap::new();
    for e in events {
        let (block, cycles) = match e.event {
            Event::ReadMiss { block, remote, .. } | Event::WriteMiss { block, remote, .. } => (
                block,
                if remote {
                    cost.remote_miss
                } else {
                    cost.local_fill
                },
            ),
            Event::Upgrade { block, .. } => (block, cost.upgrade),
            _ => continue,
        };
        *per_block.entry(block).or_default() += cycles;
    }
    let mut hot: Vec<(BlockId, u64)> = per_block.into_iter().collect();
    hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    hot.truncate(n);
    hot
}

/// The delivered-message histogram: count and wire bytes per kind, with
/// a proportional bar. Kinds with zero traffic are omitted.
pub fn message_histogram(r: &RunResult) -> String {
    message_histogram_with_latency(r, &[])
}

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element with at least `p`% of the sample at or below it. `sorted`
/// must be non-empty.
pub fn percentile(sorted: &[i64], p: u64) -> i64 {
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Send→recv delivery latency samples per message kind, ascending-
/// sorted, kinds in label order. Each [`Event::MsgRecv`] is paired FIFO
/// with the earlier [`Event::MsgSend`] on the same `(from, to, kind)`
/// channel; the delta of their cycle stamps is the delivery latency.
/// Signed: the stamps are per-node logical clocks, so a fast receiver
/// can handle a slow sender's message at an earlier clock reading.
pub fn message_latencies(events: &[Stamped]) -> Vec<(&'static str, Vec<i64>)> {
    let mut inflight: HashMap<(u16, u16, &'static str), std::collections::VecDeque<u64>> =
        HashMap::new();
    let mut by_kind: HashMap<&'static str, Vec<i64>> = HashMap::new();
    for e in events {
        let (Some((from, to)), Some(kind)) = (e.event.endpoints(), e.event.msg_kind()) else {
            continue;
        };
        match e.event {
            Event::MsgSend { .. } => {
                inflight
                    .entry((from.0, to.0, kind))
                    .or_default()
                    .push_back(e.cycle);
            }
            Event::MsgRecv { .. } => {
                if let Some(send) = inflight
                    .get_mut(&(from.0, to.0, kind))
                    .and_then(|q| q.pop_front())
                {
                    by_kind
                        .entry(kind)
                        .or_default()
                        .push(e.cycle as i64 - send as i64);
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<(&'static str, Vec<i64>)> = by_kind.into_iter().collect();
    for (_, v) in &mut out {
        v.sort_unstable();
    }
    out.sort_by_key(|&(k, _)| k);
    out
}

/// [`message_histogram`] with p50/p95/p99 delivery-latency columns when
/// the cycle-stamped event stream is available. Kinds whose messages
/// were not captured (e.g. a ring-mode trace that dropped them) show
/// `-`. With `events` empty — traces absent — the output is
/// byte-identical to [`message_histogram`].
pub fn message_histogram_with_latency(r: &RunResult, events: &[Stamped]) -> String {
    let lat = message_latencies(events);
    let max = r.msg_kinds.iter().map(|&(_, n)| n).max().unwrap_or(0);
    let mut out = String::new();
    for (&(kind, count), &(_, bytes)) in r.msg_kinds.iter().zip(&r.msg_bytes) {
        if count == 0 {
            continue;
        }
        let bar = "#".repeat(((count * 40).div_ceil(max.max(1))) as usize);
        if lat.is_empty() {
            let _ = writeln!(
                out,
                "{:<14} {count:>12} msgs {bytes:>14} B  {bar}",
                kind.label()
            );
        } else {
            let cols = match lat.iter().find(|&&(k, _)| k == kind.label()) {
                Some((_, v)) => format!(
                    "p50 {:>8} p95 {:>8} p99 {:>8}",
                    percentile(v, 50),
                    percentile(v, 95),
                    percentile(v, 99)
                ),
                None => format!("p50 {:>8} p95 {:>8} p99 {:>8}", "-", "-", "-"),
            };
            let _ = writeln!(
                out,
                "{:<14} {count:>12} msgs {bytes:>14} B {cols}  {bar}",
                kind.label()
            );
        }
    }
    out
}

/// The fabric links with the most occupied (serialization + queueing)
/// cycles, hottest first: up to `n` rows of
/// `label  msgs  busy  queue  occupied`. Empty when the run carried no
/// link utilization — i.e. whenever the contention-aware network model
/// was off.
pub fn hottest_links_table(r: &RunResult, n: usize) -> String {
    let mut links: Vec<&LinkUtil> = r.links.iter().collect();
    links.sort_by(|a, b| {
        (b.busy_cycles + b.queue_cycles, &a.label).cmp(&(a.busy_cycles + a.queue_cycles, &b.label))
    });
    links.truncate(n);
    let mut out = String::new();
    for l in links {
        let _ = writeln!(
            out,
            "  {:<18} {:>10} msgs {:>12} busy {:>12} queued {:>14} occupied",
            l.label,
            l.msgs,
            l.busy_cycles,
            l.queue_cycles,
            l.busy_cycles + l.queue_cycles
        );
    }
    out
}

/// The text profile report for one run: cycle breakdown, hottest blocks,
/// message histogram, hottest fabric links (when the contention model
/// ran), and the trace-completeness note.
pub fn profile_report(r: &RunResult, events: &[Stamped], cost: &CostModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "per-node cycle breakdown ({}):", r.system.label());
    out.push_str(&cycle_breakdown_table(r));
    let hot = hottest_blocks(events, cost, 10);
    if !hot.is_empty() {
        let _ = writeln!(out, "hottest blocks by stall cycles:");
        for (block, cycles) in hot {
            let _ = writeln!(out, "  block {:>8}: {cycles:>12} cycles", block.0);
        }
    }
    let hist = message_histogram_with_latency(r, events);
    if !hist.is_empty() {
        let _ = writeln!(out, "messages by kind:");
        out.push_str(&hist);
    }
    let links = hottest_links_table(r, 10);
    if !links.is_empty() {
        let _ = writeln!(out, "hottest fabric links:");
        out.push_str(&links);
    }
    let _ = writeln!(
        out,
        "trace: {} events captured, {} dropped{}",
        r.trace_events,
        r.trace_dropped,
        if r.trace_dropped > 0 {
            " (grow the capture buffer for a complete stream)"
        } else {
            ""
        }
    );
    out
}

/// The `profile.csv` table: one row per `(program, system, node,
/// category)` with its attributed cycles.
pub fn profile_csv(entries: &[(&str, &RunResult)]) -> String {
    let mut csv = String::from("program,system,node,category,cycles\n");
    for (program, r) in entries {
        let cats = visible_cats(r);
        for n in 0..r.ledger.nodes() {
            for cat in &cats {
                let _ = writeln!(
                    csv,
                    "{program},{},{n},{},{}",
                    r.system.label(),
                    cat.label(),
                    r.ledger.get(NodeId(n as u16), *cat)
                );
            }
        }
    }
    csv
}

/// The `phases.csv` table: one row per phase boundary with the cycles
/// and traffic spent *in* that phase (deltas between consecutive
/// snapshots).
pub fn phases_csv(entries: &[(&str, &RunResult)]) -> String {
    let mut csv =
        String::from("program,system,phase,label,end_cycle,phase_cycles,accesses,msgs_sent\n");
    for (program, r) in entries {
        let mut prev_at = 0u64;
        let mut prev_accesses = 0u64;
        let mut prev_msgs = 0u64;
        for (i, p) in r.phases.iter().enumerate() {
            let _ = writeln!(
                csv,
                "{program},{},{i},{},{},{},{},{}",
                r.system.label(),
                p.label,
                p.at,
                p.at - prev_at,
                p.totals.accesses() - prev_accesses,
                p.totals.msgs_sent - prev_msgs
            );
            prev_at = p.at;
            prev_accesses = p.totals.accesses();
            prev_msgs = p.totals.msgs_sent;
        }
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_apps::stencil::Stencil;
    use lcm_apps::{execute_traced, SystemKind};
    use lcm_cstar::{Partition, RuntimeConfig};
    use lcm_sim::MachineConfig;

    fn traced_run(system: SystemKind) -> (RunResult, Vec<Stamped>) {
        let w = Stencil {
            rows: 16,
            cols: 16,
            iters: 2,
            partition: Partition::Dynamic,
        };
        let mc = MachineConfig::new(4).with_trace(1 << 20);
        let (_, r, events) = execute_traced(system, mc, RuntimeConfig::default(), &w);
        assert_eq!(r.trace_dropped, 0, "trace capacity must hold the run");
        (r, events)
    }

    /// A minimal JSON syntax checker: enough to reject unbalanced or
    /// misquoted output without a JSON dependency.
    fn check_json(s: &str) {
        let mut depth: Vec<char> = Vec::new();
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => depth.push('}'),
                '[' => depth.push(']'),
                '}' | ']' => {
                    assert_eq!(depth.pop(), Some(c), "mismatched bracket in {s:.120}…")
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert!(depth.is_empty(), "unbalanced brackets");
        assert!(!s.contains(",]") && !s.contains(",}"), "trailing comma");
        assert!(!s.contains("[,") && !s.contains("{,"), "leading comma");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_node_tracks_and_spans() {
        let (_, events) = traced_run(SystemKind::LcmMcc);
        assert!(!events.is_empty());
        let json = chrome_trace_json(&events, 4);
        check_json(&json);
        assert!(json.starts_with("{\"traceEvents\":["));
        for n in 0..4 {
            assert!(
                json.contains(&format!("\"name\":\"node {n}\"")),
                "track {n}"
            );
        }
        assert!(json.contains("\"ph\":\"X\""), "span slices present");
        assert!(json.contains("\"ph\":\"i\""), "instants present");
        assert!(json.contains("\"name\":\"mark\""), "LCM mark spans present");
        // Every span begin/end pair became one complete slice.
        let begins = events
            .iter()
            .filter(|e| matches!(e.event, Event::SpanBegin { .. }))
            .count();
        let slices = json.matches("\"ph\":\"X\"").count();
        assert_eq!(slices, begins, "one X slice per span");
    }

    #[test]
    fn unmatched_span_begins_are_closed_not_dropped() {
        let events = vec![Stamped {
            seq: 0,
            cycle: 40,
            event: Event::SpanBegin {
                node: NodeId(1),
                what: "read_fault",
                block: BlockId(3),
            },
        }];
        let json = chrome_trace_json(&events, 2);
        check_json(&json);
        assert!(json.contains("\"dur\":0"));
        assert!(json.contains("\"ts\":40"));
    }

    #[test]
    fn breakdown_table_rows_sum_to_node_clocks() {
        let (r, _) = traced_run(SystemKind::LcmScc);
        let table = cycle_breakdown_table(&r);
        assert!(table.contains("read_stall"), "category columns present");
        for (n, &clock) in r.clocks.iter().enumerate() {
            let node = NodeId(n as u16);
            let sum: u64 = CycleCat::all().iter().map(|&c| r.ledger.get(node, c)).sum();
            assert_eq!(sum, clock, "node {n} conservation");
            assert!(table.contains(&clock.to_string()), "node {n} total printed");
        }
    }

    #[test]
    fn hottest_blocks_weight_remote_misses_heaviest() {
        let cost = CostModel::cm5();
        let events = vec![
            Stamped {
                seq: 0,
                cycle: 0,
                event: Event::ReadMiss {
                    node: NodeId(0),
                    block: BlockId(1),
                    remote: true,
                },
            },
            Stamped {
                seq: 1,
                cycle: 10,
                event: Event::WriteMiss {
                    node: NodeId(0),
                    block: BlockId(2),
                    remote: false,
                },
            },
            Stamped {
                seq: 2,
                cycle: 20,
                event: Event::Upgrade {
                    node: NodeId(1),
                    block: BlockId(2),
                },
            },
        ];
        let hot = hottest_blocks(&events, &cost, 10);
        assert_eq!(hot[0], (BlockId(1), cost.remote_miss));
        assert_eq!(hot[1], (BlockId(2), cost.local_fill + cost.upgrade));
    }

    #[test]
    fn csv_tables_cover_every_node_category_and_phase() {
        let (r, _) = traced_run(SystemKind::Stache);
        let profile = profile_csv(&[("Stencil-16", &r)]);
        let rows = profile.lines().count() - 1;
        // A crash-free unlimited-bandwidth run omits the four all-zero
        // late-addition categories (net_contention plus the three
        // recovery ones), keeping the CSV identical to earlier output.
        assert_eq!(rows, 4 * (CycleCat::COUNT - 4), "4 nodes x categories");
        assert!(!profile.contains("net_contention"));
        assert!(!profile.contains("checkpoint"));
        assert!(!profile.contains("rollback"));
        assert!(!profile.contains("crash_detect"));
        assert!(profile.starts_with("program,system,node,category,cycles\n"));

        let phases = phases_csv(&[("Stencil-16", &r)]);
        assert_eq!(phases.lines().count() - 1, r.phases.len());
        assert!(phases.contains(",apply,"));
        // Phase cycle deltas sum back to the last boundary's time.
        let total: u64 = phases
            .lines()
            .skip(1)
            .map(|l| csv_field_u64(l, 5).expect("well-formed phases.csv line"))
            .sum();
        assert_eq!(total, r.phases.last().unwrap().at);
    }

    #[test]
    fn report_mentions_breakdown_hot_blocks_and_drops() {
        let (r, events) = traced_run(SystemKind::LcmMcc);
        let report = profile_report(&r, &events, &CostModel::cm5());
        assert!(report.contains("per-node cycle breakdown"));
        assert!(report.contains("hottest blocks"));
        assert!(report.contains("messages by kind"));
        assert!(!report.contains("hottest fabric links"), "model was off");
        assert!(report.contains("0 dropped"));
    }

    fn contended_run() -> RunResult {
        let w = Stencil {
            rows: 16,
            cols: 16,
            iters: 2,
            partition: Partition::Dynamic,
        };
        let mut cost = CostModel::cm5();
        cost.link_bandwidth_bytes_per_cycle = 2;
        let (_, r) =
            lcm_apps::execute_with_cost(SystemKind::Stache, 4, cost, RuntimeConfig::default(), &w);
        r
    }

    #[test]
    fn contended_runs_surface_links_and_the_new_category() {
        let r = contended_run();
        assert!(!r.links.is_empty(), "finite bandwidth populates links");
        let table = cycle_breakdown_table(&r);
        assert!(table.contains("net_contention"), "column appears when hot");
        let csv = profile_csv(&[("Stencil-16", &r)]);
        // net_contention is hot; the three recovery categories stay
        // dormant (no crash plan) and remain hidden.
        assert_eq!(csv.lines().count() - 1, 4 * (CycleCat::COUNT - 3));
        assert!(csv.contains(",net_contention,"));
        let links = hottest_links_table(&r, 3);
        assert_eq!(links.lines().count(), 3, "truncated to n");
        assert!(links.contains("occupied"));
        let report = profile_report(&r, &[], &CostModel::cm5());
        assert!(report.contains("hottest fabric links:"));
    }

    #[test]
    fn crashing_runs_surface_the_recovery_categories() {
        let w = Stencil {
            rows: 16,
            cols: 16,
            iters: 2,
            partition: Partition::Dynamic,
        };
        let (_, r) = lcm_apps::execute_with_faults(
            SystemKind::Stache,
            4,
            lcm_sim::FaultConfig::crashes(0.5, 0xDEAD),
            RuntimeConfig::default(),
            &w,
        );
        assert!(r.totals.crashes > 0, "the schedule crashed nodes");
        let table = cycle_breakdown_table(&r);
        assert!(table.contains("checkpoint"));
        assert!(table.contains("rollback"));
        assert!(table.contains("crash_detect"));
        let csv = profile_csv(&[("Stencil-16", &r)]);
        assert!(csv.contains(",checkpoint,"));
        assert!(csv.contains(",rollback,"));
        assert!(csv.contains(",crash_detect,"));
    }

    #[test]
    fn csv_field_errors_name_the_line_and_field() {
        assert_eq!(csv_field_u64("a,b,42,d", 2), Ok(42));
        let err = csv_field_u64("a,b", 5).expect_err("missing field");
        assert!(err.contains("no field 5"), "unexpected: {err}");
        assert!(err.contains("\"a,b\""), "names the line: {err}");
        let err = csv_field_u64("x,-3,z", 1).expect_err("not a u64");
        assert!(err.contains("field 1"), "unexpected: {err}");
        assert!(err.contains("\"-3\""), "names the field: {err}");
        assert!(err.contains("\"x,-3,z\""), "names the line: {err}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let v: Vec<i64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[-5, 3], 50), -5);
        assert_eq!(percentile(&[-5, 3], 99), 3);
    }

    fn msg_pair(seq: u64, send_cycle: u64, recv_cycle: u64) -> [Stamped; 2] {
        [
            Stamped {
                seq,
                cycle: send_cycle,
                event: Event::MsgSend {
                    from: NodeId(0),
                    to: NodeId(1),
                    kind: "GetShared",
                    bytes: 64,
                },
            },
            Stamped {
                seq: seq + 1,
                cycle: recv_cycle,
                event: Event::MsgRecv {
                    node: NodeId(1),
                    from: NodeId(0),
                    kind: "GetShared",
                    bytes: 64,
                },
            },
        ]
    }

    #[test]
    fn message_latencies_pair_fifo_and_allow_negative_deltas() {
        let mut events = Vec::new();
        events.extend(msg_pair(0, 100, 150));
        events.extend(msg_pair(2, 200, 180)); // receiver's clock ran behind
        let lat = message_latencies(&events);
        assert_eq!(lat.len(), 1);
        assert_eq!(lat[0].0, "GetShared");
        assert_eq!(lat[0].1, vec![-20, 50], "sorted, signed");
    }

    #[test]
    fn histogram_gains_latency_columns_only_with_events() {
        let (r, events) = traced_run(SystemKind::LcmMcc);
        let plain = message_histogram(&r);
        assert_eq!(
            message_histogram_with_latency(&r, &[]),
            plain,
            "traces absent: byte-identical"
        );
        let with = message_histogram_with_latency(&r, &events);
        assert_ne!(with, plain);
        assert!(with.contains("p50"), "latency columns present");
        assert!(with.contains("p99"));
        assert_eq!(with.lines().count(), plain.lines().count());
        let report = profile_report(&r, &events, &CostModel::cm5());
        assert!(report.contains("p95"), "report histogram carries latency");
    }

    #[test]
    fn flow_arrows_and_path_track_extend_the_trace_json() {
        let flows = vec![FlowArrow {
            from: 0,
            to: 1,
            kind: "GetShared",
            bytes: 64,
            send_cycle: 100,
            recv_cycle: 150,
        }];
        let path = vec![PathSlice {
            name: "apply @node1".to_string(),
            start: 0,
            dur: 500,
            args: "\"epoch\":0,\"node\":1".to_string(),
        }];
        let json = chrome_trace_json_with_flows(&[], 4, &[], &flows, &path);
        check_json(&json);
        assert!(json.contains("\"ph\":\"s\""), "flow start");
        assert!(json.contains("\"ph\":\"f\""), "flow finish");
        assert!(json.contains("\"name\":\"critical path\""));
        assert!(json.contains("apply @node1"));
        assert!(json.contains("\"tid\":1"), "message rows");
        // Empty annotations leave the exporter byte-identical.
        assert_eq!(
            chrome_trace_json_with_flows(&[], 4, &[], &[], &[]),
            chrome_trace_json(&[], 4)
        );
    }

    #[test]
    fn link_utilization_rides_a_fabric_trace_track() {
        let r = contended_run();
        let json = chrome_trace_json_with_links(&[], 4, &r.links);
        check_json(&json);
        assert!(json.contains("\"name\":\"fabric\""));
        assert!(json.contains("queue_cycles"));
        // With no links the wrapper is exactly the plain exporter, so
        // existing traces stay byte-identical.
        assert_eq!(
            chrome_trace_json_with_links(&[], 4, &[]),
            chrome_trace_json(&[], 4)
        );
    }
}

//! # lcm-bench — benchmark harness for the LCM reproduction
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p lcm-bench --release --bin repro`)
//!   regenerates every table and figure of the paper (Table 1, Figures
//!   2–3, the §6.3 prose claims, and the §7 ablations) in simulated
//!   cycles, printing paper reference values alongside;
//! * the **Criterion benches** (`cargo bench -p lcm-bench`) measure the
//!   host-side cost of the simulator on the same workloads, one bench
//!   per table/figure, for tracking the reproduction itself.

#![warn(missing_docs)]

pub mod critpath;
pub mod explore;
pub mod profile;
pub mod report;
pub mod svg;
pub mod sweep;

pub use svg::BarChart;
pub use sweep::{BenchReport, ParReport, ParTiming, SectionTiming, SweepEngine, SweepKey};

/// Formats a cycle count with thousands separators for bench output.
pub fn cycles(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_formats_groups() {
        assert_eq!(cycles(0), "0");
        assert_eq!(cycles(999), "999");
        assert_eq!(cycles(1000), "1,000");
        assert_eq!(cycles(1234567), "1,234,567");
    }
}

//! Stale-data regions (paper §7.5).
//!
//! In applications like N-body simulation, consumers can tolerate old
//! values of distant producers' data for many iterations. RSM expresses
//! this as a region policy: a consumer's read takes a local *snapshot* of
//! the block which subsequent reads hit — even while the producer keeps
//! writing — until the consumer issues an explicit refresh (a
//! self-invalidation; the next read fetches the latest value). Producers
//! write without invalidating the aged snapshots, which is precisely the
//! coherence traffic the optimization removes.

use lcm_sim::hash::{FastMap, FastSet};
use lcm_sim::mem::{Addr, BlockBuf, BlockId};
use lcm_sim::trace::Event;
use lcm_sim::{CycleCat, Knob, NodeId};
use lcm_tempest::{MsgKind, Tempest};

/// Per-node snapshot and write-permission state for stale regions.
#[derive(Clone, Debug)]
pub struct StaleState {
    snaps: Vec<FastMap<BlockId, BlockBuf>>,
    own: Vec<FastSet<BlockId>>,
}

impl StaleState {
    /// Empty state for `nodes` processors.
    pub fn new(nodes: usize) -> StaleState {
        StaleState {
            snaps: (0..nodes).map(|_| FastMap::default()).collect(),
            own: (0..nodes).map(|_| FastSet::default()).collect(),
        }
    }

    /// Loads a word: hits the node's snapshot if present, otherwise
    /// fetches the current home value and snapshots the whole block.
    pub fn read(&mut self, t: &mut Tempest, node: NodeId, addr: Addr, block: BlockId) -> u32 {
        let w = addr.word_in_block();
        if let Some(snap) = self.snaps[node.index()].get(&block) {
            t.machine.hit(node);
            t.machine.stats_mut(node).read_hits += 1;
            return snap.word(w);
        }
        let home = t.home_of(block);
        if node == home {
            t.machine
                .charge(node, CycleCat::ReadStallLocal, Knob::LocalFill, 1);
            t.machine.stats_mut(node).read_miss_local += 1;
            t.machine.record(Event::ReadMiss {
                node,
                block,
                remote: false,
            });
        } else {
            t.net
                .request_reply(&mut t.machine, node, home, MsgKind::StaleRefresh, true);
            t.machine.stats_mut(node).read_miss_remote += 1;
            t.machine.record(Event::ReadMiss {
                node,
                block,
                remote: true,
            });
        }
        let buf = t.mem.read_block(block);
        self.snaps[node.index()].insert(block, buf);
        buf.word(w)
    }

    /// Stores a word: the producer acquires (once) the right to write the
    /// block, then writes home directly — *without* invalidating anyone's
    /// snapshot. The producer's own snapshot, if any, is kept current.
    pub fn write(&mut self, t: &mut Tempest, node: NodeId, addr: Addr, bits: u32, block: BlockId) {
        let w = addr.word_in_block();
        if self.own[node.index()].contains(&block) {
            t.machine.hit(node);
            t.machine.stats_mut(node).write_hits += 1;
        } else {
            let home = t.home_of(block);
            if node == home {
                t.machine
                    .charge(node, CycleCat::WriteStallLocal, Knob::LocalFill, 1);
                t.machine.stats_mut(node).write_miss_local += 1;
                t.machine.record(Event::WriteMiss {
                    node,
                    block,
                    remote: false,
                });
            } else {
                t.net
                    .request_reply(&mut t.machine, node, home, MsgKind::GetExclusive, true);
                t.machine.stats_mut(node).write_miss_remote += 1;
                t.machine.record(Event::WriteMiss {
                    node,
                    block,
                    remote: true,
                });
            }
            self.own[node.index()].insert(block);
        }
        t.mem.write_word(addr, bits);
        if let Some(snap) = self.snaps[node.index()].get_mut(&block) {
            snap.set_word(w, bits); // a producer sees its own writes
        }
    }

    /// Drops `node`'s snapshot of `block`, so the next read fetches the
    /// latest value. No-op (and uncounted) when no snapshot exists.
    pub fn refresh(&mut self, t: &mut Tempest, node: NodeId, block: BlockId) {
        if self.snaps[node.index()].remove(&block).is_some() {
            t.machine
                .charge(node, CycleCat::FlushReconcile, Knob::Invalidate, 1);
            t.machine.stats_mut(node).stale_refreshes += 1;
        }
    }

    /// Number of snapshots held by `node` (tests/inspection).
    pub fn snapshots(&self, node: NodeId) -> usize {
        self.snaps[node.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_sim::MachineConfig;
    use lcm_tempest::Placement;

    fn setup() -> (Tempest, StaleState, Addr) {
        let mut t = Tempest::new(MachineConfig::new(2));
        let a = t.alloc(4096, Placement::OnNode(NodeId(0)), "field");
        (t, StaleState::new(2), a)
    }

    #[test]
    fn consumer_sees_stale_until_refresh() {
        let (mut t, mut s, a) = setup();
        let producer = NodeId(0);
        let consumer = NodeId(1);
        s.write(&mut t, producer, a, 1, a.block());
        assert_eq!(s.read(&mut t, consumer, a, a.block()), 1);
        // Producer moves on; consumer still sees the snapshot.
        s.write(&mut t, producer, a, 2, a.block());
        assert_eq!(s.read(&mut t, consumer, a, a.block()), 1, "stale by design");
        // Refresh: next read fetches the latest value.
        s.refresh(&mut t, consumer, a.block());
        assert_eq!(s.read(&mut t, consumer, a, a.block()), 2);
        assert_eq!(t.machine.stats(consumer).stale_refreshes, 1);
    }

    #[test]
    fn producer_sees_its_own_writes() {
        let (mut t, mut s, a) = setup();
        let p = NodeId(0);
        assert_eq!(s.read(&mut t, p, a, a.block()), 0); // snapshot taken
        s.write(&mut t, p, a, 7, a.block());
        assert_eq!(s.read(&mut t, p, a, a.block()), 7);
    }

    #[test]
    fn snapshot_reads_are_hits() {
        let (mut t, mut s, a) = setup();
        let consumer = NodeId(1);
        s.read(&mut t, consumer, a, a.block());
        assert_eq!(t.machine.stats(consumer).read_miss_remote, 1);
        for _ in 0..10 {
            s.read(&mut t, consumer, a.offset(4), a.block());
        }
        assert_eq!(t.machine.stats(consumer).read_hits, 10);
        assert_eq!(t.machine.stats(consumer).read_miss_remote, 1);
        assert_eq!(s.snapshots(consumer), 1);
    }

    #[test]
    fn producer_writes_do_not_invalidate_snapshots() {
        let (mut t, mut s, a) = setup();
        s.read(&mut t, NodeId(1), a, a.block());
        for i in 0..100 {
            s.write(&mut t, NodeId(0), a, i, a.block());
        }
        // One write miss (acquisition), then hits; no invalidations anywhere.
        assert_eq!(t.machine.stats(NodeId(0)).write_miss_local, 1);
        assert_eq!(t.machine.stats(NodeId(0)).write_hits, 99);
        assert_eq!(t.machine.stats(NodeId(1)).invalidations_recv, 0);
        assert_eq!(s.snapshots(NodeId(1)), 1);
    }

    #[test]
    fn refresh_without_snapshot_is_uncounted() {
        let (mut t, mut s, a) = setup();
        s.refresh(&mut t, NodeId(1), a.block());
        assert_eq!(t.machine.stats(NodeId(1)).stale_refreshes, 0);
    }
}

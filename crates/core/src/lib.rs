//! # lcm-core — Loosely Coherent Memory
//!
//! The paper's primary contribution: a Reconcilable Shared Memory system
//! in which compiler-directed copy-on-write makes memory *deliberately,
//! temporarily inconsistent* to implement C\*\*'s atomic-and-simultaneous
//! parallel function semantics, then returns it to a consistent state
//! with an application-specific reconciliation at a global barrier.
//!
//! * [`Lcm`] — the protocol (a [`lcm_rsm::MemoryProtocol`]), embedding
//!   the Stache baseline for ordinary coherent data;
//! * [`LcmVariant`] — the §6.3 clean-copy variants (`Scc` vs `Mcc`);
//! * [`cow`] — private copies and per-block phase bookkeeping;
//! * [`stale`] — stale-data regions (§7.5).
//!
//! See the crate-level docs of `lcm-rsm` for the model and `DESIGN.md` at
//! the repository root for how this maps onto the paper.

#![warn(missing_docs)]

pub mod cow;
pub(crate) mod nested;
pub mod protocol;
pub mod stale;

pub use protocol::{Lcm, LcmVariant};

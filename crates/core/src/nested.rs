//! Nested-phase state (C\*\*'s nested parallel functions).
//!
//! A nested parallel call runs *inside one invocation* of an outer call:
//! its inner invocations spread across all processors, observe the parent
//! invocation's private modifications layered over the pre-call global
//! state, and merge their own modifications back into the parent's
//! private state when the inner call completes. Global memory never sees
//! any of it until the *outer* reconciliation.
//!
//! Cost accounting is block-faithful where it matters (first-touch fills,
//! flush messages, merge work at homes) but does not model distributing
//! the parent's private state beyond the first-touch fill — the paper
//! never evaluated nesting, so there is no hardware shape to match.

use crate::cow::{CowEntry, PrivCopy};
use lcm_sim::hash::{FastMap, FastSet};
use lcm_sim::mem::BlockId;
use lcm_sim::NodeId;

/// State of one open nested phase.
#[derive(Clone, Debug)]
pub(crate) struct NestedPhase {
    /// The node running the parent invocation; its outer private copies
    /// are the inner call's pre-call state.
    pub parent: NodeId,
    /// Inner private copies, per node.
    pub privs: Vec<FastMap<BlockId, PrivCopy>>,
    /// Per-node insertion order of inner private copies.
    pub order: Vec<Vec<BlockId>>,
    /// Home-side merge state of flushed inner versions.
    pub entries: FastMap<BlockId, CowEntry>,
    /// Blocks each node has already fetched this nested phase (first
    /// touches pay a fill; later reads hit).
    pub touched: Vec<FastSet<BlockId>>,
}

impl NestedPhase {
    /// Fresh state for a machine of `nodes` processors.
    pub fn new(nodes: usize, parent: NodeId) -> NestedPhase {
        NestedPhase {
            parent,
            privs: (0..nodes).map(|_| FastMap::default()).collect(),
            order: (0..nodes).map(|_| Vec::new()).collect(),
            entries: FastMap::default(),
            touched: (0..nodes).map(|_| FastSet::default()).collect(),
        }
    }
}

//! Copy-on-write bookkeeping: private copies and per-block phase entries.
//!
//! During a parallel phase, each `mark_modification` gives the marking
//! node a [`PrivCopy`] — an inconsistent, writable version of the block,
//! private to that node's current invocation. The block's home tracks the
//! phase in a [`CowEntry`]: who holds clean read-only copies, who has
//! written, the merged value of all flushed versions, and enough per-word
//! provenance to detect conflicting claims.

use lcm_rsm::{ConflictKind, ConflictRecord, KeepOrder, MergePolicy, RegionPolicy, ValueWidth};
use lcm_sim::mem::{BlockBuf, BlockId, WordMask, WORDS_PER_BLOCK};
use lcm_sim::NodeId;
use lcm_stache::SharerSet;

/// A node's private, writable version of one block.
#[derive(Copy, Clone, Debug)]
pub struct PrivCopy {
    /// The version's contents. Initialized from the clean value for
    /// keep-one regions and from the operator identity for reductions.
    pub data: BlockBuf,
    /// Which words this version has stored to.
    pub dirty: WordMask,
}

impl PrivCopy {
    /// A private copy initialized from `data` with nothing dirty.
    pub fn new(data: BlockBuf) -> PrivCopy {
        PrivCopy {
            data,
            dirty: WordMask::empty(),
        }
    }
}

/// Sentinel in [`CowEntry::word_writer`] meaning "no claim yet".
const NO_WRITER: u16 = u16::MAX;

/// Home-side state of one block during a parallel phase.
#[derive(Clone, Debug)]
pub struct CowEntry {
    /// Nodes that held copies when the block entered the phase (absorbed
    /// from the Stache directory). Potential readers for §7.2 detection.
    pub absorbed: SharerSet,
    /// Nodes that fetched a clean copy during the phase (actual readers).
    pub readers: SharerSet,
    /// Nodes that marked (and possibly flushed) private copies.
    pub writers: SharerSet,
    /// Nodes holding a node-local clean copy (LCM-mcc only).
    pub mcc_clean: SharerSet,
    /// True once the home's clean copy has been established.
    pub home_clean: bool,
    /// The merge of all flushed versions so far.
    pub pending: BlockBuf,
    /// Words claimed in `pending`.
    pub pending_mask: WordMask,
    /// Per-word id of the node whose claim currently stands.
    word_writer: [u16; WORDS_PER_BLOCK],
    /// Number of versions flushed home this phase.
    pub versions: u32,
}

impl CowEntry {
    /// A fresh entry absorbing the block's pre-phase holders.
    pub fn new(absorbed: SharerSet) -> CowEntry {
        CowEntry {
            absorbed,
            readers: SharerSet::empty(),
            writers: SharerSet::empty(),
            mcc_clean: SharerSet::empty(),
            home_clean: false,
            pending: BlockBuf::zeroed(),
            pending_mask: WordMask::empty(),
            word_writer: [NO_WRITER; WORDS_PER_BLOCK],
            versions: 0,
        }
    }

    /// True when no version has been flushed and nobody marked the block.
    pub fn is_unwritten(&self) -> bool {
        self.writers.is_empty() && self.pending_mask.is_empty()
    }

    /// The node whose claim stands on word `w`, if any.
    pub fn word_writer(&self, w: usize) -> Option<NodeId> {
        let id = self.word_writer[w];
        (id != NO_WRITER).then_some(NodeId(id))
    }

    /// Every node involved with the block this phase (for invalidation).
    pub fn participants(&self) -> SharerSet {
        self.absorbed
            .union(self.readers)
            .union(self.writers)
            .union(self.mcc_clean)
    }

    /// Merges one flushed version into the pending value according to the
    /// region's merge policy. Returns the number of write-write conflicts
    /// found; when `policy.detect_conflicts`, also appends a record per
    /// conflict to `conflicts`.
    ///
    /// # Panics
    /// Panics if an 8-byte reduction version arrives with a torn (single
    /// word of a pair) dirty mask.
    pub fn merge_version(
        &mut self,
        node: NodeId,
        data: &BlockBuf,
        dirty: WordMask,
        policy: RegionPolicy,
        block: BlockId,
        conflicts: &mut Vec<ConflictRecord>,
    ) -> u64 {
        self.versions += 1;
        self.writers.add(node);
        match policy.merge {
            MergePolicy::KeepOne | MergePolicy::KeepOneOrdered(_) => {
                let order = policy.merge.keep_order();
                let overlap = self.pending_mask.intersect(dirty);
                let mut ww = 0;
                for w in overlap.iter_set() {
                    ww += 1;
                    let prev = self.word_writer(w).expect("claimed word has a writer");
                    let (winner, loser) = match order {
                        KeepOrder::LastWins => (node, prev),
                        KeepOrder::FirstWins => (prev, node),
                    };
                    if policy.detect_conflicts {
                        conflicts.push(ConflictRecord {
                            block,
                            word: Some(w as u8),
                            kind: ConflictKind::WriteWrite,
                            winner,
                            loser,
                        });
                    }
                }
                let claimed = match order {
                    KeepOrder::LastWins => dirty,
                    KeepOrder::FirstWins => dirty.minus(self.pending_mask),
                };
                self.pending.merge_words(data, claimed);
                for w in claimed.iter_set() {
                    self.word_writer[w] = node.0;
                }
                self.pending_mask = self.pending_mask.union(dirty);
                ww
            }
            MergePolicy::Reduce(op) => {
                match op.width() {
                    ValueWidth::W4 => {
                        for w in dirty.iter_set() {
                            let incoming = data.word(w) as u64;
                            let cur = if self.pending_mask.get(w) {
                                self.pending.word(w) as u64
                            } else {
                                op.identity_bits()
                            };
                            self.pending
                                .set_word(w, op.combine_bits(cur, incoming) as u32);
                            self.word_writer[w] = node.0;
                        }
                    }
                    ValueWidth::W8 => {
                        for w in (0..WORDS_PER_BLOCK).step_by(2) {
                            if !dirty.get(w) && !dirty.get(w + 1) {
                                continue;
                            }
                            assert!(
                                dirty.get(w) && dirty.get(w + 1),
                                "torn 8-byte reduction version on {block:?} word {w}"
                            );
                            let incoming = data.word(w) as u64 | ((data.word(w + 1) as u64) << 32);
                            let cur = if self.pending_mask.get(w) {
                                self.pending.word(w) as u64
                                    | ((self.pending.word(w + 1) as u64) << 32)
                            } else {
                                op.identity_bits()
                            };
                            let combined = op.combine_bits(cur, incoming);
                            self.pending.set_word(w, combined as u32);
                            self.pending.set_word(w + 1, (combined >> 32) as u32);
                            self.word_writer[w] = node.0;
                            self.word_writer[w + 1] = node.0;
                        }
                    }
                }
                self.pending_mask = self.pending_mask.union(dirty);
                0 // reductions combine; concurrent contributions are not conflicts
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_rsm::ReduceOp;

    fn buf_with(words: &[(usize, u32)]) -> BlockBuf {
        let mut b = BlockBuf::zeroed();
        for &(w, v) in words {
            b.set_word(w, v);
        }
        b
    }

    fn mask_of(words: &[usize]) -> WordMask {
        let mut m = WordMask::empty();
        for &w in words {
            m.set(w);
        }
        m
    }

    #[test]
    fn disjoint_keep_one_versions_merge_cleanly() {
        let mut e = CowEntry::new(SharerSet::empty());
        let mut conflicts = Vec::new();
        let p = RegionPolicy::copy_on_write(MergePolicy::KeepOne);
        let ww = e.merge_version(
            NodeId(1),
            &buf_with(&[(0, 10)]),
            mask_of(&[0]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        assert_eq!(ww, 0);
        let ww = e.merge_version(
            NodeId(2),
            &buf_with(&[(3, 30)]),
            mask_of(&[3]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        assert_eq!(ww, 0);
        assert_eq!(e.pending.word(0), 10);
        assert_eq!(e.pending.word(3), 30);
        assert_eq!(e.versions, 2);
        assert_eq!(e.word_writer(0), Some(NodeId(1)));
        assert_eq!(e.word_writer(3), Some(NodeId(2)));
        assert!(conflicts.is_empty());
        assert!(!e.is_unwritten());
    }

    #[test]
    fn overlapping_claims_count_conflicts_last_wins() {
        let mut e = CowEntry::new(SharerSet::empty());
        let mut conflicts = Vec::new();
        let p = RegionPolicy::copy_on_write(MergePolicy::KeepOne).detecting();
        e.merge_version(
            NodeId(1),
            &buf_with(&[(2, 100)]),
            mask_of(&[2]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        let ww = e.merge_version(
            NodeId(2),
            &buf_with(&[(2, 200)]),
            mask_of(&[2]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        assert_eq!(ww, 1);
        assert_eq!(e.pending.word(2), 200, "last arrival wins");
        assert_eq!(e.word_writer(2), Some(NodeId(2)));
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].winner, NodeId(2));
        assert_eq!(conflicts[0].loser, NodeId(1));
        assert_eq!(conflicts[0].word, Some(2));
    }

    #[test]
    fn first_wins_keeps_earlier_claim() {
        let mut e = CowEntry::new(SharerSet::empty());
        let mut conflicts = Vec::new();
        let p = RegionPolicy::copy_on_write(MergePolicy::KeepOneOrdered(KeepOrder::FirstWins))
            .detecting();
        e.merge_version(
            NodeId(1),
            &buf_with(&[(2, 100)]),
            mask_of(&[2]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        e.merge_version(
            NodeId(2),
            &buf_with(&[(2, 200), (3, 300)]),
            mask_of(&[2, 3]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        assert_eq!(e.pending.word(2), 100, "first arrival wins");
        assert_eq!(e.pending.word(3), 300, "unclaimed word still merges");
        assert_eq!(e.word_writer(2), Some(NodeId(1)));
        assert_eq!(conflicts[0].winner, NodeId(1));
        assert_eq!(conflicts[0].loser, NodeId(2));
    }

    #[test]
    fn conflicts_counted_but_not_recorded_without_detection() {
        let mut e = CowEntry::new(SharerSet::empty());
        let mut conflicts = Vec::new();
        let p = RegionPolicy::copy_on_write(MergePolicy::KeepOne); // not detecting
        e.merge_version(
            NodeId(1),
            &buf_with(&[(2, 1)]),
            mask_of(&[2]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        let ww = e.merge_version(
            NodeId(2),
            &buf_with(&[(2, 2)]),
            mask_of(&[2]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        assert_eq!(ww, 1);
        assert!(conflicts.is_empty());
    }

    #[test]
    fn reduction_versions_combine() {
        let mut e = CowEntry::new(SharerSet::empty());
        let mut conflicts = Vec::new();
        let p = RegionPolicy::copy_on_write(MergePolicy::Reduce(ReduceOp::SumF32));
        let a = buf_with(&[(0, f32::to_bits(1.5))]);
        let b = buf_with(&[(0, f32::to_bits(2.0))]);
        let ww1 = e.merge_version(NodeId(1), &a, mask_of(&[0]), p, BlockId(7), &mut conflicts);
        let ww2 = e.merge_version(NodeId(2), &b, mask_of(&[0]), p, BlockId(7), &mut conflicts);
        assert_eq!(
            (ww1, ww2),
            (0, 0),
            "reduction contributions are not conflicts"
        );
        assert_eq!(f32::from_bits(e.pending.word(0)), 3.5);
    }

    #[test]
    fn f64_reduction_combines_pairs() {
        let mut e = CowEntry::new(SharerSet::empty());
        let mut conflicts = Vec::new();
        let p = RegionPolicy::copy_on_write(MergePolicy::Reduce(ReduceOp::SumF64));
        let mut a = BlockBuf::zeroed();
        a.set_f64(0, 10.0);
        let mut b = BlockBuf::zeroed();
        b.set_f64(0, 2.5);
        e.merge_version(
            NodeId(1),
            &a,
            mask_of(&[0, 1]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        e.merge_version(
            NodeId(2),
            &b,
            mask_of(&[0, 1]),
            p,
            BlockId(7),
            &mut conflicts,
        );
        assert_eq!(e.pending.f64(0), 12.5);
    }

    #[test]
    #[should_panic(expected = "torn 8-byte reduction")]
    fn torn_f64_reduction_rejected() {
        let mut e = CowEntry::new(SharerSet::empty());
        let mut conflicts = Vec::new();
        let p = RegionPolicy::copy_on_write(MergePolicy::Reduce(ReduceOp::SumF64));
        e.merge_version(
            NodeId(1),
            &BlockBuf::zeroed(),
            mask_of(&[0]),
            p,
            BlockId(7),
            &mut conflicts,
        );
    }

    #[test]
    fn participants_unions_all_sets() {
        let mut e = CowEntry::new(SharerSet::single(NodeId(0)));
        e.readers.add(NodeId(1));
        e.writers.add(NodeId(2));
        e.mcc_clean.add(NodeId(3));
        let p = e.participants();
        for i in 0..4 {
            assert!(p.contains(NodeId(i)));
        }
        assert_eq!(p.count(), 4);
    }

    #[test]
    fn fresh_entry_is_unwritten() {
        let mut e = CowEntry::new(SharerSet::single(NodeId(5)));
        assert!(e.is_unwritten());
        e.readers.add(NodeId(1));
        assert!(e.is_unwritten(), "readers alone leave the block unwritten");
        assert_eq!(e.word_writer(0), None);
    }
}

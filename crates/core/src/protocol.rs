//! The Loosely Coherent Memory protocol.
//!
//! LCM implements C\*\*'s "atomic and simultaneous" invocation semantics
//! with a fine-grained copy-on-write scheme (paper §5):
//!
//! * [`Lcm::mark_modification`] creates an inconsistent, writable private
//!   copy of a block; other nodes keep seeing the *clean* (pre-phase)
//!   value, so memory as a whole becomes deliberately inconsistent;
//! * [`Lcm::flush_copies`] returns a node's modified copies to their home
//!   nodes between invocations, so a new invocation on the same processor
//!   cannot see a previous invocation's modifications;
//! * [`Lcm::reconcile_copies`] is the global barrier that merges all
//!   outstanding versions (keep-one or reduction), installs the result as
//!   the new global state, invalidates outstanding copies of modified
//!   blocks, and reclaims clean copies.
//!
//! Two variants reproduce the paper's §6.3 systems: **LCM-scc** keeps a
//! single clean copy at the block's home (a flush invalidates the cached
//! copy, so reuse pays a fault), while **LCM-mcc** keeps a clean copy on
//! every node that obtains a marked block (a flush reinitializes the
//! cached copy locally — no fault, no messages).
//!
//! Blocks outside copy-on-write regions — and all blocks outside parallel
//! phases — are handled by the embedded [`Stache`] protocol, mirroring how
//! the real LCM was built by extending the user-level Stache handlers.

use crate::cow::{CowEntry, PrivCopy};
use crate::nested::NestedPhase;
use crate::stale::StaleState;
use lcm_rsm::{
    CheckpointImage, CoherenceKind, ConflictKind, ConflictRecord, MemoryProtocol, MergePolicy,
    NestedProtocol, PolicyTable, ReduceOp, RegionPolicy, ValueWidth,
};
use lcm_sim::hash::FastMap;
use lcm_sim::mem::{Addr, BlockId, WORDS_PER_BLOCK, WORD_BYTES};
use lcm_sim::trace::Event;
use lcm_sim::{CycleCat, Knob, MachineConfig, NodeId};
use lcm_stache::Stache;
use lcm_tempest::{MsgKind, Tag, Tempest};

/// Clean-copy placement variant (paper §6.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LcmVariant {
    /// Single clean copy, kept at the block's home node.
    Scc,
    /// A clean copy on every processor that obtains the block.
    Mcc,
}

/// The LCM memory system.
///
/// ```
/// use lcm_core::{Lcm, LcmVariant};
/// use lcm_rsm::{MemoryProtocol, MergePolicy, RegionPolicy};
/// use lcm_sim::{MachineConfig, NodeId};
/// use lcm_tempest::Placement;
///
/// let mut mem = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
/// let a = mem.tempest_mut().alloc(4096, Placement::Interleaved, "mesh");
/// mem.register_cow_region(a, 4096, MergePolicy::KeepOne);
///
/// mem.write_f32(NodeId(0), a, 1.0); // outside a phase: ordinary coherence
/// mem.begin_parallel_phase();
/// mem.mark_modification(NodeId(1), a);
/// mem.write_f32(NodeId(1), a, 2.0);            // private to node 1
/// assert_eq!(mem.read_f32(NodeId(2), a), 1.0); // others still see 1.0
/// mem.reconcile_copies();
/// assert_eq!(mem.read_f32(NodeId(2), a), 2.0); // merged global state
/// ```
#[derive(Clone, Debug)]
pub struct Lcm {
    inner: Stache,
    variant: LcmVariant,
    policies: PolicyTable,
    in_phase: bool,
    privs: Vec<FastMap<BlockId, PrivCopy>>,
    priv_order: Vec<Vec<BlockId>>,
    cow: FastMap<BlockId, CowEntry>,
    conflicts: Vec<ConflictRecord>,
    stale: StaleState,
    tree_reconcile: bool,
    strict_detection: bool,
    nested: Option<NestedPhase>,
    /// Per-home-node count of words reconciled since the last
    /// checkpoint. LCM's phase discipline funnels every modification
    /// through the home at reconcile time, so this *is* the set of
    /// globally-visible state changes — which makes LCM's checkpoint
    /// incremental (see [`MemoryProtocol::checkpoint`]).
    reconciled_words: Vec<u64>,
    // Reusable scratch buffers: cleared (capacity kept) after each use so
    // the per-reconcile/per-flush paths allocate nothing in steady state.
    reduce_scratch: Vec<(BlockId, NodeId, PrivCopy)>,
    block_scratch: Vec<BlockId>,
    retain_scratch: Vec<BlockId>,
}

impl Lcm {
    /// Builds an LCM system of the given variant.
    pub fn new(config: MachineConfig, variant: LcmVariant) -> Lcm {
        let nodes = config.nodes;
        Lcm {
            inner: Stache::new(config),
            variant,
            policies: PolicyTable::new(),
            in_phase: false,
            privs: (0..nodes).map(|_| FastMap::default()).collect(),
            priv_order: (0..nodes).map(|_| Vec::new()).collect(),
            cow: FastMap::default(),
            conflicts: Vec::new(),
            stale: StaleState::new(nodes),
            tree_reconcile: false,
            strict_detection: false,
            nested: None,
            reconciled_words: vec![0; nodes],
            reduce_scratch: Vec::new(),
            block_scratch: Vec::new(),
            retain_scratch: Vec::new(),
        }
    }

    /// Enables tree-structured reconciliation of reduction blocks.
    ///
    /// The paper notes that "if reconciliation became a bottleneck on
    /// large systems, the process could be organized as a tree-structured
    /// reduction" (§5). When enabled, the contributions retained by the
    /// processors for a reduction block combine pairwise up a binary tree
    /// at `reconcile_copies` time, so the home handles one merged version
    /// instead of one per contributing processor. Keep-one blocks are
    /// unaffected (their arrival order is semantically visible).
    pub fn set_tree_reconcile(&mut self, enabled: bool) {
        self.tree_reconcile = enabled;
    }

    /// True when tree-structured reconciliation is enabled.
    pub fn tree_reconcile(&self) -> bool {
        self.tree_reconcile
    }

    /// Enables strict (actual-vs-potential-free) race detection.
    ///
    /// §7.2: "outstanding read-only copies need not be used during the
    /// parallel phase … To catch *actual* violations, all read-only cache
    /// blocks must be flushed from the caches at synchronization points."
    /// When enabled, `reconcile_copies` invalidates every read-only copy
    /// of every detecting region's blocks — even unwritten ones — so that
    /// each phase's reads re-fault and are observed. Costs extra misses,
    /// which is why the paper confines it to debugging runs.
    pub fn set_strict_detection(&mut self, enabled: bool) {
        self.strict_detection = enabled;
    }

    /// True when strict race detection is enabled.
    pub fn strict_detection(&self) -> bool {
        self.strict_detection
    }

    /// Combines all outstanding reduction-block contributions pairwise up
    /// a binary tree, leaving a single merged version at the tree root,
    /// which is then shipped home like an ordinary flush. Runs during
    /// `reconcile_copies`, before the per-node drain.
    fn tree_combine_reductions(&mut self) {
        // Gather (block, node, contribution) triples over all nodes, in
        // node order, into the reusable scratch; a stable sort by block
        // then yields blocks ascending with each block's contributions
        // still in node order — the exact iteration a per-call
        // `BTreeMap<BlockId, Vec<(NodeId, PrivCopy)>>` used to produce,
        // without rebuilding a tree and per-block vectors every
        // reconcile.
        let mut scratch = std::mem::take(&mut self.reduce_scratch);
        debug_assert!(scratch.is_empty());
        for n in 0..self.privs.len() {
            let node = NodeId(n as u16);
            let mut order = std::mem::take(&mut self.priv_order[n]);
            order.retain(|&block| {
                let policy = self.policies.get(block);
                if policy.merge.reduce_op().is_none() {
                    return true; // keep-one blocks stay for the normal drain
                }
                let p = self.privs[n]
                    .remove(&block)
                    .expect("ordered private copy exists");
                scratch.push((block, node, p));
                false
            });
            self.priv_order[n] = order;
        }
        scratch.sort_by_key(|(block, _, _)| *block);
        let mut i = 0;
        while i < scratch.len() {
            let block = scratch[i].0;
            let mut j = i + 1;
            while j < scratch.len() && scratch[j].0 == block {
                j += 1;
            }
            self.tree_combine_group(block, &mut scratch[i..j]);
            i = j;
        }
        scratch.clear();
        self.reduce_scratch = scratch;
    }

    /// Combines one block's contributions (in node order) pairwise up a
    /// binary tree and ships the root's merged version home. `group` is a
    /// slice of the reconcile scratch; stride-doubling in place produces
    /// the same pair sequence as the former round-rebuilding loop.
    fn tree_combine_group(&mut self, block: BlockId, group: &mut [(BlockId, NodeId, PrivCopy)]) {
        let policy = self.policies.get(block);
        let op = policy
            .merge
            .reduce_op()
            .expect("gathered blocks are reductions");
        // Pairwise combining rounds: the left element of each pair
        // receives and merges the right one.
        let m = group.len();
        let mut stride = 1;
        while stride < m {
            let mut k = 0;
            while k + stride < m {
                let (left, right) = group.split_at_mut(k + stride);
                let (_, ln, lp) = &mut left[k];
                let (_, rn, rp) = &right[0];
                let (ln, rn) = (*ln, *rn);
                let t = self.inner.tempest_mut();
                t.net.send(&mut t.machine, rn, ln, MsgKind::Flush, true);
                t.machine
                    .charge(ln, CycleCat::FlushReconcile, Knob::ReconcilePerVersion, 1);
                t.machine.stats_mut(ln).versions_reconciled += 1;
                t.machine.stats_mut(rn).flushes += 1;
                combine_into(op, lp, rp);
                k += 2 * stride;
            }
            stride *= 2;
        }
        // Ship the root's merged version home as one flush.
        let (_, root, p) = &group[0];
        let root = *root;
        let entry = Self::ensure_entry(&mut self.cow, &mut self.inner, block);
        let t = self.inner.tempest_mut();
        let home = t.home_of(block);
        t.machine.stats_mut(root).flushes += 1;
        t.machine
            .charge(root, CycleCat::FlushReconcile, Knob::BlockFlush, 1);
        t.net.send(&mut t.machine, root, home, MsgKind::Flush, true);
        t.machine
            .charge(home, CycleCat::FlushReconcile, Knob::ReconcilePerVersion, 1);
        t.machine.stats_mut(home).versions_reconciled += 1;
        entry.merge_version(root, &p.data, p.dirty, policy, block, &mut self.conflicts);
        // The contributors drop their (identity-initialized) copies.
        let has_local_clean = self.variant == LcmVariant::Mcc;
        let t = self.inner.tempest_mut();
        for n in 0..self.privs.len() {
            if t.tags[n].get(block) == Tag::ReadWrite {
                t.tags[n].set(
                    block,
                    if has_local_clean {
                        Tag::ReadOnly
                    } else {
                        Tag::Invalid
                    },
                );
            }
        }
    }

    /// The clean-copy variant in force.
    pub fn variant(&self) -> LcmVariant {
        self.variant
    }

    /// Registers `bytes` starting at `base` as a copy-on-write region with
    /// the given merge policy — the directive the C\*\* compiler emits for
    /// each aggregate (and for each reduction target, with a
    /// [`MergePolicy::Reduce`]).
    pub fn register_cow_region(&mut self, base: Addr, bytes: u64, merge: MergePolicy) {
        let first = base.block();
        let end = BlockId(base.offset(bytes - 1).block().0 + 1);
        self.policies
            .set(first, end, RegionPolicy::copy_on_write(merge));
    }

    /// Like [`Lcm::register_cow_region`] but with conflict detection
    /// enabled (paper §7.2/7.3).
    pub fn register_detecting_region(&mut self, base: Addr, bytes: u64, merge: MergePolicy) {
        let first = base.block();
        let end = BlockId(base.offset(bytes - 1).block().0 + 1);
        self.policies
            .set(first, end, RegionPolicy::copy_on_write(merge).detecting());
    }

    /// Registers `bytes` starting at `base` as a stale-data region
    /// (paper §7.5): readers keep aged snapshots until they
    /// [`MemoryProtocol::refresh_stale`].
    pub fn register_stale_region(&mut self, base: Addr, bytes: u64) {
        let first = base.block();
        let end = BlockId(base.offset(bytes - 1).block().0 + 1);
        self.policies.set(first, end, RegionPolicy::stale());
    }

    /// Number of copy-on-write entries live this phase (tests/inspection).
    pub fn live_cow_entries(&self) -> usize {
        self.cow.len()
    }

    /// Checks LCM's phase invariants, returning a description of the
    /// first violation found. Intended for tests (walks all phase state).
    ///
    /// Invariants:
    /// 1. outside a phase there is no private copy, no ordering log, and
    ///    no live copy-on-write entry;
    /// 2. every private copy belongs to a copy-on-write region, is listed
    ///    exactly once in its node's ordering log, is backed by a
    ///    ReadWrite tag, and is registered as a writer in the block's
    ///    phase entry;
    /// 3. a phase entry has a home clean copy iff the block has writers;
    /// 4. node-local clean copies only exist under the mcc variant, and
    ///    only at writers.
    pub fn verify_phase_invariants(&self) -> Result<(), String> {
        if !self.in_phase {
            if self.privs.iter().any(|m| !m.is_empty()) {
                return Err("private copies outlive the phase".into());
            }
            if self.priv_order.iter().any(|o| !o.is_empty()) {
                return Err("ordering log outlives the phase".into());
            }
            if !self.cow.is_empty() {
                return Err(format!(
                    "{} copy-on-write entries outlive the phase",
                    self.cow.len()
                ));
            }
            return Ok(());
        }
        for (n, privs) in self.privs.iter().enumerate() {
            let node = NodeId(n as u16);
            let order = &self.priv_order[n];
            if order.len() != privs.len() {
                return Err(format!(
                    "{node}: {} ordered vs {} private copies",
                    order.len(),
                    privs.len()
                ));
            }
            for block in order {
                if !privs.contains_key(block) {
                    return Err(format!("{node}: ordered {block:?} has no private copy"));
                }
            }
            for block in privs.keys() {
                let policy = self.policies.get(*block);
                if policy.coherence != CoherenceKind::CopyOnWrite {
                    return Err(format!(
                        "{node}: private copy of non-copy-on-write {block:?}"
                    ));
                }
                if self.inner.tempest().tag(node, *block) != Tag::ReadWrite {
                    return Err(format!(
                        "{node}: private copy of {block:?} without a writable tag"
                    ));
                }
                match self.cow.get(block) {
                    None => {
                        return Err(format!(
                            "{node}: private copy of {block:?} has no phase entry"
                        ))
                    }
                    Some(e) if !e.writers.contains(node) => {
                        return Err(format!("{node}: not registered as a writer of {block:?}"));
                    }
                    Some(_) => {}
                }
            }
        }
        for (block, entry) in &self.cow {
            if entry.home_clean == entry.writers.is_empty() {
                return Err(format!(
                    "{block:?}: home clean copy {} but writers {:?}",
                    entry.home_clean, entry.writers
                ));
            }
            if self.variant == LcmVariant::Scc && !entry.mcc_clean.is_empty() {
                return Err(format!("{block:?}: node-local clean copies under scc"));
            }
            if !entry.mcc_clean.difference(entry.writers).is_empty() {
                return Err(format!("{block:?}: clean copies at non-writers"));
            }
        }
        Ok(())
    }

    /// Ensures a phase entry exists for `block`, absorbing the block's
    /// pre-phase holders from the Stache directory on creation.
    fn ensure_entry<'a>(
        cow: &'a mut FastMap<BlockId, CowEntry>,
        inner: &mut Stache,
        block: BlockId,
    ) -> &'a mut CowEntry {
        cow.entry(block)
            .or_insert_with(|| CowEntry::new(inner.absorb_block(block)))
    }

    /// Creates `node`'s private copy of `block` if it does not already
    /// exist, together with clean-copy bookkeeping. This is the heart of
    /// `mark_modification` and of write faults on copy-on-write blocks.
    fn mark_block(&mut self, node: NodeId, block: BlockId, policy: RegionPolicy) {
        if self.privs[node.index()].contains_key(&block) {
            return; // already private this interval
        }
        let entry = Self::ensure_entry(&mut self.cow, &mut self.inner, block);
        entry.writers.add(node);
        let t = self.inner.tempest_mut();
        let home = t.home_of(block);
        t.machine.stats_mut(node).marks += 1;
        t.machine.record(Event::Mark { node, block });
        t.machine.record(Event::SpanBegin {
            node,
            what: "mark",
            block,
        });

        let init = match policy.merge.reduce_op() {
            Some(op) => {
                // Reduction accumulators start at the identity; no clean
                // data is needed, so marking is purely local.
                let mut buf = lcm_sim::BlockBuf::zeroed();
                match op.width() {
                    ValueWidth::W4 => {
                        for w in 0..WORDS_PER_BLOCK {
                            buf.set_word(w, op.identity_bits() as u32);
                        }
                    }
                    ValueWidth::W8 => {
                        for w in (0..WORDS_PER_BLOCK).step_by(2) {
                            let id = op.identity_bits();
                            buf.set_word(w, id as u32);
                            buf.set_word(w + 1, (id >> 32) as u32);
                        }
                    }
                }
                buf
            }
            None => {
                // Keep-one copies start from the clean value; fetch it if
                // the node has no readable copy (this is the scc refetch).
                if !t.tags[node.index()].get(block).readable() {
                    if node == home {
                        t.machine
                            .charge(node, CycleCat::WriteStallLocal, Knob::LocalFill, 1);
                        t.machine.stats_mut(node).write_miss_local += 1;
                        t.machine.record(Event::WriteMiss {
                            node,
                            block,
                            remote: false,
                        });
                    } else {
                        t.net
                            .request_reply(&mut t.machine, node, home, MsgKind::CleanFill, true);
                        t.machine.stats_mut(node).write_miss_remote += 1;
                        t.machine.record(Event::WriteMiss {
                            node,
                            block,
                            remote: true,
                        });
                    }
                }
                t.mem.read_block(block)
            }
        };

        // Home-side clean copy: established at the block's first mark.
        if !entry.home_clean {
            entry.home_clean = true;
            t.machine.stats_mut(home).clean_copies += 1;
            t.machine
                .charge(home, CycleCat::FlushReconcile, Knob::CleanCopyCreate, 1);
            t.machine.record(Event::CleanCopy { node: home, block });
        }
        // mcc: additionally keep a clean copy on the marking node.
        if self.variant == LcmVariant::Mcc && !entry.mcc_clean.contains(node) {
            entry.mcc_clean.add(node);
            t.machine.stats_mut(node).clean_copies += 1;
            t.machine
                .charge(node, CycleCat::FlushReconcile, Knob::CleanCopyCreate, 1);
            t.machine.record(Event::CleanCopy { node, block });
        }

        // The private copy itself: a block copy in the fault handler.
        t.machine
            .charge(node, CycleCat::FlushReconcile, Knob::CleanCopyCreate, 1);
        t.machine.record(Event::SpanEnd {
            node,
            what: "mark",
            block,
        });
        t.tags[node.index()].set(block, Tag::ReadWrite);
        self.privs[node.index()].insert(block, PrivCopy::new(init));
        self.priv_order[node.index()].push(block);
    }

    /// Load from a copy-on-write block during a phase.
    fn cow_read(&mut self, node: NodeId, addr: Addr, block: BlockId, detecting: bool) -> u32 {
        if let Some(p) = self.privs[node.index()].get(&block) {
            // An invocation sees its own modifications.
            let t = self.inner.tempest_mut();
            t.machine.hit(node);
            t.machine.stats_mut(node).read_hits += 1;
            return p.data.word(addr.word_in_block());
        }
        if self.inner.tempest().tags[node.index()]
            .get(block)
            .readable()
        {
            if detecting {
                // Record the reference so a read that hits a pre-phase
                // copy still counts as *actual* for §7.2 detection.
                if let Some(entry) = self.cow.get_mut(&block) {
                    entry.readers.add(node);
                }
            }
            let t = self.inner.tempest_mut();
            t.machine.hit(node);
            t.machine.stats_mut(node).read_hits += 1;
            return t.mem.read_word(addr);
        }
        // Clean-copy fetch.
        let entry = Self::ensure_entry(&mut self.cow, &mut self.inner, block);
        entry.readers.add(node);
        let t = self.inner.tempest_mut();
        let home = t.home_of(block);
        if node == home {
            t.machine
                .charge(node, CycleCat::ReadStallLocal, Knob::LocalFill, 1);
            t.machine.stats_mut(node).read_miss_local += 1;
            t.machine.record(Event::ReadMiss {
                node,
                block,
                remote: false,
            });
        } else {
            t.net
                .request_reply(&mut t.machine, node, home, MsgKind::CleanFill, true);
            t.machine.stats_mut(node).read_miss_remote += 1;
            t.machine.record(Event::ReadMiss {
                node,
                block,
                remote: true,
            });
        }
        t.tags[node.index()].set(block, Tag::ReadOnly);
        t.mem.read_word(addr)
    }

    /// Store to a copy-on-write block during a phase.
    fn cow_write(&mut self, node: NodeId, addr: Addr, bits: u32, policy: RegionPolicy) {
        assert!(
            policy.merge.reduce_op().is_none(),
            "plain store to a reduction region at {addr}; use MemoryProtocol::reduce"
        );
        if !self.privs[node.index()].contains_key(&block_of(addr)) {
            // The compiler marks possibly-conflicting stores; the memory
            // system itself catches the rest (copy *at the reference*).
            self.mark_block(node, block_of(addr), policy);
        }
        let p = self.privs[node.index()]
            .get_mut(&block_of(addr))
            .expect("just marked");
        let w = addr.word_in_block();
        p.data.set_word(w, bits);
        p.dirty.set(w);
        let t = self.inner.tempest_mut();
        t.machine.hit(node);
        t.machine.stats_mut(node).write_hits += 1;
    }

    /// Applies one reconciled entry to global state and invalidates the
    /// outstanding copies of the block.
    fn apply_entry(&mut self, block: BlockId, entry: CowEntry, policy: RegionPolicy) {
        if entry.is_unwritten() {
            if self.strict_detection && policy.detect_conflicts {
                // Strict mode: read-only copies do not survive the
                // synchronization point, so next-phase reads re-fault and
                // every reference is observed (§7.2).
                let home = self.inner.tempest().home_of(block);
                for p in entry.absorbed.union(entry.readers).iter() {
                    if self.inner.tempest().tag(p, block) != Tag::Invalid {
                        self.inner.invalidate_copy(home, p, block);
                    }
                }
                return;
            }
            // Nothing was modified: holders keep their (still clean)
            // copies and return to ordinary directory management.
            let holders = entry.absorbed.union(entry.readers);
            self.inner.restore_shared(block, holders);
            return;
        }

        let home = self.inner.tempest().home_of(block);

        // Install the merged value as the new global state.
        match policy.merge.reduce_op() {
            None => {
                let t = self.inner.tempest_mut();
                t.mem.merge_block(block, &entry.pending, entry.pending_mask);
            }
            Some(op) => {
                // Contributions combine with the location's initial value.
                let t = self.inner.tempest_mut();
                match op.width() {
                    ValueWidth::W4 => {
                        for w in entry.pending_mask.iter_set() {
                            let a = block.word_addr(w);
                            let cur = t.mem.read_word(a) as u64;
                            let contrib = entry.pending.word(w) as u64;
                            t.mem.write_word(a, op.combine_bits(cur, contrib) as u32);
                        }
                    }
                    ValueWidth::W8 => {
                        for w in (0..WORDS_PER_BLOCK).step_by(2) {
                            if !entry.pending_mask.get(w) {
                                continue;
                            }
                            let a = block.word_addr(w);
                            let cur = t.mem.read_f64(a).to_bits();
                            let contrib = entry.pending.word(w) as u64
                                | ((entry.pending.word(w + 1) as u64) << 32);
                            t.mem
                                .write_f64(a, f64::from_bits(op.combine_bits(cur, contrib)));
                        }
                    }
                }
            }
        }
        self.inner.tempest_mut().machine.record(Event::Reconcile {
            block,
            versions: entry.versions,
        });
        self.reconciled_words[home.index()] += entry.pending_mask.count() as u64;

        // Read-write conflict detection (§7.2/7.3): a block with writers
        // whose read-only copies were outstanding during the phase.
        if policy.detect_conflicts {
            // A written block always has a recorded writer: merge_version
            // adds the flushing node to `writers` before the entry can
            // reach here non-unwritten. An empty set means the directory
            // state was corrupted (e.g. by a mishandled re-delivery), so
            // fail loudly with a cycle-stamped diagnostic instead of
            // silently blaming the home node.
            let Some(writer) = entry.writers.iter().next() else {
                panic!(
                    "reconcile of {:?} at cycle {}: modified block has an empty writer set \
                     (versions={}, readers={:?}); directory state is corrupt",
                    block,
                    self.inner.tempest().machine.time(),
                    entry.versions,
                    entry.readers,
                );
            };
            let readers = entry
                .absorbed
                .union(entry.readers)
                .difference(entry.writers);
            for r in readers.iter() {
                let actual = entry.readers.contains(r);
                self.conflicts.push(ConflictRecord {
                    block,
                    word: None,
                    kind: ConflictKind::ReadWrite { actual },
                    winner: writer,
                    loser: r,
                });
                let t = self.inner.tempest_mut();
                t.machine.stats_mut(home).rw_conflicts += 1;
                t.machine.record(Event::RwConflict { block });
            }
        }

        // Invalidate every outstanding copy of the modified block.
        for p in entry.participants().iter() {
            if self.inner.tempest().tag(p, block) != Tag::Invalid {
                self.inner.invalidate_copy(home, p, block);
            }
        }
    }
}

impl Lcm {
    /// Charges `node`'s first touch of `block` in the nested phase (a
    /// fill from the layered pre-call state) or a hit thereafter.
    fn nested_touch_cost(&mut self, node: NodeId, block: BlockId, is_write: bool) {
        let np = self.nested.as_mut().expect("nested phase open");
        let first = np.touched[node.index()].insert(block);
        let t = self.inner.tempest_mut();
        if first {
            let home = t.home_of(block);
            if node == home {
                let cat = if is_write {
                    CycleCat::WriteStallLocal
                } else {
                    CycleCat::ReadStallLocal
                };
                t.machine.charge(node, cat, Knob::LocalFill, 1);
                if is_write {
                    t.machine.stats_mut(node).write_miss_local += 1;
                } else {
                    t.machine.stats_mut(node).read_miss_local += 1;
                }
            } else {
                t.net
                    .request_reply(&mut t.machine, node, home, MsgKind::CleanFill, true);
                if is_write {
                    t.machine.stats_mut(node).write_miss_remote += 1;
                } else {
                    t.machine.stats_mut(node).read_miss_remote += 1;
                }
            }
        } else {
            t.machine.hit(node);
            if is_write {
                t.machine.stats_mut(node).write_hits += 1;
            } else {
                t.machine.stats_mut(node).read_hits += 1;
            }
        }
    }

    /// The inner call's pre-call value of `block`: the parent
    /// invocation's private version if it has one, else the global clean
    /// value.
    fn nested_base(&self, block: BlockId) -> lcm_sim::BlockBuf {
        let parent = self.nested.as_ref().expect("nested phase open").parent;
        match self.privs[parent.index()].get(&block) {
            Some(pp) => pp.data,
            None => self.inner.tempest().mem.read_block(block),
        }
    }

    /// Load from a copy-on-write block during a nested phase.
    fn nested_read(&mut self, node: NodeId, addr: Addr, block: BlockId) -> u32 {
        let w = addr.word_in_block();
        if let Some(p) =
            self.nested.as_ref().expect("nested phase open").privs[node.index()].get(&block)
        {
            let word = p.data.word(w);
            let t = self.inner.tempest_mut();
            t.machine.hit(node);
            t.machine.stats_mut(node).read_hits += 1;
            return word;
        }
        self.nested_touch_cost(node, block, false);
        self.nested_base(block).word(w)
    }

    /// Ensures `node` has an inner private copy of `block`, initialized
    /// from the layered pre-call state (or the operator identity for
    /// reductions).
    fn nested_mark(&mut self, node: NodeId, block: BlockId, policy: RegionPolicy) {
        if self.nested.as_ref().expect("nested phase open").privs[node.index()].contains_key(&block)
        {
            return;
        }
        self.nested_touch_cost(node, block, true);
        let init = match policy.merge.reduce_op() {
            Some(op) => identity_block(op),
            None => self.nested_base(block),
        };
        let t = self.inner.tempest_mut();
        t.machine.stats_mut(node).marks += 1;
        t.machine
            .charge(node, CycleCat::FlushReconcile, Knob::CleanCopyCreate, 1);
        t.machine.record(Event::Mark { node, block });
        let np = self.nested.as_mut().expect("nested phase open");
        np.privs[node.index()].insert(block, PrivCopy::new(init));
        np.order[node.index()].push(block);
    }

    /// Store to a copy-on-write block during a nested phase.
    fn nested_write(&mut self, node: NodeId, addr: Addr, bits: u32, policy: RegionPolicy) {
        assert!(
            policy.merge.reduce_op().is_none(),
            "plain store to a reduction region at {addr}; use MemoryProtocol::reduce"
        );
        let block = addr.block();
        self.nested_mark(node, block, policy);
        let np = self.nested.as_mut().expect("nested phase open");
        let p = np.privs[node.index()].get_mut(&block).expect("just marked");
        let w = addr.word_in_block();
        p.data.set_word(w, bits);
        p.dirty.set(w);
        let t = self.inner.tempest_mut();
        t.machine.hit(node);
        t.machine.stats_mut(node).write_hits += 1;
    }

    /// A reduction assignment during a nested phase.
    fn nested_reduce(
        &mut self,
        node: NodeId,
        addr: Addr,
        op: ReduceOp,
        bits: u64,
        policy: RegionPolicy,
    ) {
        assert_eq!(
            policy.merge.reduce_op(),
            Some(op),
            "reduction operator mismatch at {addr}: region registered with {:?}",
            policy.merge
        );
        let block = addr.block();
        self.nested_mark(node, block, policy);
        let np = self.nested.as_mut().expect("nested phase open");
        let p = np.privs[node.index()].get_mut(&block).expect("just marked");
        let w = addr.word_in_block();
        match op.width() {
            ValueWidth::W4 => {
                let cur = p.data.word(w) as u64;
                p.data.set_word(w, op.combine_bits(cur, bits) as u32);
                p.dirty.set(w);
            }
            ValueWidth::W8 => {
                assert!(w.is_multiple_of(2), "unaligned f64 reduction at {addr}");
                let cur = p.data.word(w) as u64 | ((p.data.word(w + 1) as u64) << 32);
                let new = op.combine_bits(cur, bits);
                p.data.set_word(w, new as u32);
                p.data.set_word(w + 1, (new >> 32) as u32);
                p.dirty.set(w);
                p.dirty.set(w + 1);
            }
        }
        let t = self.inner.tempest_mut();
        t.machine.hit(node);
        t.machine.stats_mut(node).write_hits += 1;
    }

    /// Ships one inner version home and merges it into the nested entry.
    fn nested_merge_one(
        &mut self,
        node: NodeId,
        block: BlockId,
        p: PrivCopy,
        policy: RegionPolicy,
    ) {
        let np = self.nested.as_mut().expect("nested phase open");
        np.entries
            .entry(block)
            .or_insert_with(|| CowEntry::new(lcm_stache::SharerSet::empty()));
        let t = self.inner.tempest_mut();
        let home = t.home_of(block);
        t.machine
            .charge(node, CycleCat::FlushReconcile, Knob::BlockFlush, 1);
        t.machine.stats_mut(node).flushes += 1;
        t.net.send(&mut t.machine, node, home, MsgKind::Flush, true);
        t.machine
            .charge(home, CycleCat::FlushReconcile, Knob::ReconcilePerVersion, 1);
        t.machine.stats_mut(home).versions_reconciled += 1;
        let np = self.nested.as_mut().expect("nested phase open");
        let entry = np.entries.get_mut(&block).expect("just inserted");
        let ww = entry.merge_version(node, &p.data, p.dirty, policy, block, &mut self.conflicts);
        if ww > 0 {
            self.inner
                .tempest_mut()
                .machine
                .stats_mut(home)
                .ww_conflicts += ww;
        }
    }

    /// Returns `node`'s modified inner copies to their homes for merging
    /// into the nested entries (skipping retained reduction accumulators).
    fn nested_flush(&mut self, node: NodeId) {
        let np = self.nested.as_mut().expect("nested phase open");
        if np.order[node.index()].is_empty() {
            return;
        }
        let order = std::mem::take(&mut np.order[node.index()]);
        for block in order {
            let policy = self.policies.get(block);
            if policy.merge.reduce_op().is_some() {
                // As in the outer phase, accumulators stay until the
                // nested reconcile.
                self.nested.as_mut().expect("nested phase open").order[node.index()].push(block);
                continue;
            }
            let Some(p) =
                self.nested.as_mut().expect("nested phase open").privs[node.index()].remove(&block)
            else {
                continue;
            };
            self.nested_merge_one(node, block, p, policy);
            // The node may fetch the layered state again on its next touch.
            self.nested.as_mut().expect("nested phase open").touched[node.index()].remove(&block);
        }
    }
}

impl NestedProtocol for Lcm {
    fn begin_nested_phase(&mut self, parent: NodeId) {
        assert!(self.in_phase, "a nested phase needs an open outer phase");
        assert!(
            self.nested.is_none(),
            "only one level of nesting is supported"
        );
        let nodes = self.privs.len();
        self.nested = Some(NestedPhase::new(nodes, parent));
    }

    fn reconcile_nested(&mut self) {
        assert!(self.nested.is_some(), "no nested phase to reconcile");
        // Drain every node's remaining inner copies, including the
        // retained reduction accumulators.
        for n in 0..self.privs.len() {
            let node = NodeId(n as u16);
            let order =
                std::mem::take(&mut self.nested.as_mut().expect("nested phase open").order[n]);
            for block in order {
                let policy = self.policies.get(block);
                let Some(p) =
                    self.nested.as_mut().expect("nested phase open").privs[n].remove(&block)
                else {
                    continue;
                };
                self.nested_merge_one(node, block, p, policy);
            }
        }
        // Apply the merged inner state into the parent's private copies:
        // the parent invocation now (privately) owns these modifications.
        let np = self.nested.take().expect("nested phase open");
        let parent = np.parent;
        let mut blocks: Vec<BlockId> = np.entries.keys().copied().collect();
        blocks.sort_unstable();
        for block in blocks {
            let entry = &np.entries[&block];
            if entry.pending_mask.is_empty() {
                continue;
            }
            let policy = self.policies.get(block);
            self.mark_block(parent, block, policy);
            let pp = self.privs[parent.index()]
                .get_mut(&block)
                .expect("just marked");
            match policy.merge.reduce_op() {
                None => {
                    pp.data.merge_words(&entry.pending, entry.pending_mask);
                }
                Some(op) => match op.width() {
                    ValueWidth::W4 => {
                        for w in entry.pending_mask.iter_set() {
                            let cur = pp.data.word(w) as u64;
                            let contrib = entry.pending.word(w) as u64;
                            pp.data.set_word(w, op.combine_bits(cur, contrib) as u32);
                        }
                    }
                    ValueWidth::W8 => {
                        for w in (0..WORDS_PER_BLOCK).step_by(2) {
                            if !entry.pending_mask.get(w) {
                                continue;
                            }
                            let cur = pp.data.word(w) as u64 | ((pp.data.word(w + 1) as u64) << 32);
                            let contrib = entry.pending.word(w) as u64
                                | ((entry.pending.word(w + 1) as u64) << 32);
                            let new = op.combine_bits(cur, contrib);
                            pp.data.set_word(w, new as u32);
                            pp.data.set_word(w + 1, (new >> 32) as u32);
                        }
                    }
                },
            }
            pp.dirty = pp.dirty.union(entry.pending_mask);
        }
        self.inner.tempest_mut().machine.barrier();
    }

    fn in_nested_phase(&self) -> bool {
        self.nested.is_some()
    }
}

/// A block buffer filled with the operator's identity.
fn identity_block(op: ReduceOp) -> lcm_sim::BlockBuf {
    let mut buf = lcm_sim::BlockBuf::zeroed();
    match op.width() {
        ValueWidth::W4 => {
            for w in 0..WORDS_PER_BLOCK {
                buf.set_word(w, op.identity_bits() as u32);
            }
        }
        ValueWidth::W8 => {
            for w in (0..WORDS_PER_BLOCK).step_by(2) {
                let id = op.identity_bits();
                buf.set_word(w, id as u32);
                buf.set_word(w + 1, (id >> 32) as u32);
            }
        }
    }
    buf
}

#[inline]
fn block_of(addr: Addr) -> BlockId {
    addr.block()
}

/// Combines the dirty contributions of `right` into `left` under `op`
/// (tree-reconciliation inner step). Words dirty in only one side carry
/// over unchanged; words dirty in both combine.
fn combine_into(op: ReduceOp, left: &mut PrivCopy, right: &PrivCopy) {
    match op.width() {
        ValueWidth::W4 => {
            for w in right.dirty.iter_set() {
                let incoming = right.data.word(w) as u64;
                let merged = if left.dirty.get(w) {
                    op.combine_bits(left.data.word(w) as u64, incoming)
                } else {
                    incoming
                };
                left.data.set_word(w, merged as u32);
            }
        }
        ValueWidth::W8 => {
            for w in (0..WORDS_PER_BLOCK).step_by(2) {
                if !right.dirty.get(w) {
                    continue;
                }
                let incoming = right.data.word(w) as u64 | ((right.data.word(w + 1) as u64) << 32);
                let merged = if left.dirty.get(w) {
                    let cur = left.data.word(w) as u64 | ((left.data.word(w + 1) as u64) << 32);
                    op.combine_bits(cur, incoming)
                } else {
                    incoming
                };
                left.data.set_word(w, merged as u32);
                left.data.set_word(w + 1, (merged >> 32) as u32);
            }
        }
    }
    left.dirty = left.dirty.union(right.dirty);
}

impl MemoryProtocol for Lcm {
    fn name(&self) -> &'static str {
        match self.variant {
            LcmVariant::Scc => "lcm-scc",
            LcmVariant::Mcc => "lcm-mcc",
        }
    }

    fn tempest(&self) -> &Tempest {
        self.inner.tempest()
    }

    fn tempest_mut(&mut self) -> &mut Tempest {
        self.inner.tempest_mut()
    }

    fn sanity_check(&self) -> Result<(), String> {
        self.verify_phase_invariants()?;
        if !self.in_phase {
            // Outside a phase every block is back under ordinary
            // directory management, so the inner Stache invariants must
            // hold too. (Mid-phase, absorbed blocks are deliberately out
            // of the directory and would trip the walk.)
            self.inner.verify_coherence_invariants()?;
        }
        Ok(())
    }

    fn policies(&self) -> &PolicyTable {
        &self.policies
    }

    fn policies_mut(&mut self) -> &mut PolicyTable {
        &mut self.policies
    }

    fn read_word(&mut self, node: NodeId, addr: Addr) -> u32 {
        debug_assert!(addr.is_word_aligned(), "unaligned load at {addr}");
        let block = addr.block();
        let policy = self.policies.get(block);
        match policy.coherence {
            CoherenceKind::CopyOnWrite if self.nested.is_some() => {
                self.nested_read(node, addr, block)
            }
            CoherenceKind::CopyOnWrite if self.in_phase => {
                self.cow_read(node, addr, block, policy.detect_conflicts)
            }
            CoherenceKind::Stale => self.stale.read(self.inner.tempest_mut(), node, addr, block),
            _ => self.inner.read_word(node, addr),
        }
    }

    fn write_word(&mut self, node: NodeId, addr: Addr, bits: u32) {
        debug_assert!(addr.is_word_aligned(), "unaligned store at {addr}");
        let block = addr.block();
        let policy = self.policies.get(block);
        match policy.coherence {
            CoherenceKind::CopyOnWrite if self.nested.is_some() => {
                self.nested_write(node, addr, bits, policy)
            }
            CoherenceKind::CopyOnWrite if self.in_phase => self.cow_write(node, addr, bits, policy),
            CoherenceKind::Stale => {
                self.stale
                    .write(self.inner.tempest_mut(), node, addr, bits, block)
            }
            _ => self.inner.write_word(node, addr, bits),
        }
    }

    fn mark_modification(&mut self, node: NodeId, addr: Addr) {
        assert!(self.in_phase, "mark_modification outside a parallel phase");
        let block = addr.block();
        let policy = self.policies.get(block);
        assert_eq!(
            policy.coherence,
            CoherenceKind::CopyOnWrite,
            "mark_modification on a non-copy-on-write region at {addr}"
        );
        self.mark_block(node, block, policy);
    }

    fn flush_copies(&mut self, node: NodeId) {
        if self.nested.is_some() {
            self.nested_flush(node);
            return;
        }
        if self.priv_order[node.index()].is_empty() {
            return;
        }
        let mut order = std::mem::take(&mut self.priv_order[node.index()]);
        let mut retained = std::mem::take(&mut self.retain_scratch);
        debug_assert!(retained.is_empty());
        for &block in &order {
            let policy = self.policies.get(block);
            if policy.merge.reduce_op().is_some() && self.in_phase {
                // Reduction accumulators stay cached across invocations —
                // "the locally cached accumulators are reconciled into a
                // single value" when the parallel call completes (§7.1).
                // A new invocation seeing the accumulator is harmless:
                // contributions combine regardless of where they gather.
                retained.push(block);
                continue;
            }
            let Some(p) = self.privs[node.index()].remove(&block) else {
                continue; // duplicate order entry (defensive; not expected)
            };
            let entry = self
                .cow
                .get_mut(&block)
                .expect("private copy has a phase entry");
            let t = self.inner.tempest_mut();
            let home = t.home_of(block);

            // Ship the version home and merge it there.
            t.machine.record(Event::SpanBegin {
                node,
                what: "flush",
                block,
            });
            t.machine.stats_mut(node).flushes += 1;
            t.machine
                .charge(node, CycleCat::FlushReconcile, Knob::BlockFlush, 1);
            t.net.send(&mut t.machine, node, home, MsgKind::Flush, true);
            t.machine
                .charge(home, CycleCat::FlushReconcile, Knob::ReconcilePerVersion, 1);
            t.machine.stats_mut(home).versions_reconciled += 1;
            t.machine.record(Event::Flush { node, block });
            let ww =
                entry.merge_version(node, &p.data, p.dirty, policy, block, &mut self.conflicts);
            if ww > 0 {
                let t = self.inner.tempest_mut();
                t.machine.stats_mut(home).ww_conflicts += ww;
                t.machine.record(Event::WwConflict { block, word: 0 });
            }

            // Local transition: mcc reinitializes from the local clean
            // copy; scc drops the copy entirely.
            let has_local_clean = self.variant == LcmVariant::Mcc && entry.mcc_clean.contains(node);
            let t = self.inner.tempest_mut();
            if has_local_clean {
                t.machine
                    .charge(node, CycleCat::FlushReconcile, Knob::LocalRefill, 1);
                t.tags[node.index()].set(block, Tag::ReadOnly);
            } else {
                t.tags[node.index()].set(block, Tag::Invalid);
            }
            t.machine.record(Event::SpanEnd {
                node,
                what: "flush",
                block,
            });
        }
        order.clear();
        order.extend(&retained);
        retained.clear();
        self.retain_scratch = retained;
        self.priv_order[node.index()] = order;
    }

    fn begin_parallel_phase(&mut self) {
        assert!(!self.in_phase, "nested parallel phases are not supported");
        self.in_phase = true;
    }

    fn in_parallel_phase(&self) -> bool {
        self.in_phase
    }

    fn reconcile_copies(&mut self) {
        if !self.in_phase {
            self.inner.tempest_mut().machine.barrier();
            return;
        }
        if self.tree_reconcile {
            self.tree_combine_reductions();
        }
        // Close the phase first so the final flush drains everything,
        // including reduction accumulators retained between invocations.
        self.in_phase = false;
        // Every processor returns its modified copies home…
        for n in 0..self.privs.len() {
            self.flush_copies(NodeId(n as u16));
        }
        // …then the homes reconcile and the system-wide invalidations run.
        let mut blocks = std::mem::take(&mut self.block_scratch);
        debug_assert!(blocks.is_empty());
        blocks.extend(self.cow.keys().copied());
        blocks.sort_unstable();
        for &block in &blocks {
            let entry = self.cow.remove(&block).expect("collected key");
            let policy = self.policies.get(block);
            let home = self.inner.tempest().home_of(block);
            self.inner.tempest_mut().machine.record(Event::SpanBegin {
                node: home,
                what: "reconcile",
                block,
            });
            self.apply_entry(block, entry, policy);
            self.inner.tempest_mut().machine.record(Event::SpanEnd {
                node: home,
                what: "reconcile",
                block,
            });
        }
        blocks.clear();
        self.block_scratch = blocks;
        self.inner.tempest_mut().machine.barrier();
    }

    fn reduce(&mut self, node: NodeId, addr: Addr, op: ReduceOp, bits: u64) {
        let block = addr.block();
        let policy = self.policies.get(block);
        if self.nested.is_some() && policy.coherence == CoherenceKind::CopyOnWrite {
            self.nested_reduce(node, addr, op, bits, policy);
            return;
        }
        if !(self.in_phase && policy.coherence == CoherenceKind::CopyOnWrite) {
            // Outside a phase (or an unregistered location): fall back to
            // coherent read-modify-write, like any conventional system.
            match op.width() {
                ValueWidth::W4 => {
                    let cur = self.read_word(node, addr) as u64;
                    self.write_word(node, addr, op.combine_bits(cur, bits) as u32);
                }
                ValueWidth::W8 => {
                    let cur = self.read_f64(node, addr).to_bits();
                    let new = op.combine_bits(cur, bits);
                    self.write_f64(node, addr, f64::from_bits(new));
                }
            }
            return;
        }
        assert_eq!(
            policy.merge.reduce_op(),
            Some(op),
            "reduction operator mismatch at {addr}: region registered with {:?}",
            policy.merge
        );
        self.mark_block(node, block, policy);
        let p = self.privs[node.index()]
            .get_mut(&block)
            .expect("just marked");
        let w = addr.word_in_block();
        match op.width() {
            ValueWidth::W4 => {
                let cur = p.data.word(w) as u64;
                p.data.set_word(w, op.combine_bits(cur, bits) as u32);
                p.dirty.set(w);
            }
            ValueWidth::W8 => {
                assert!(w.is_multiple_of(2), "unaligned f64 reduction at {addr}");
                let cur = p.data.word(w) as u64 | ((p.data.word(w + 1) as u64) << 32);
                let new = op.combine_bits(cur, bits);
                p.data.set_word(w, new as u32);
                p.data.set_word(w + 1, (new >> 32) as u32);
                p.dirty.set(w);
                p.dirty.set(w + 1);
            }
        }
        let t = self.inner.tempest_mut();
        t.machine.hit(node);
        t.machine.stats_mut(node).write_hits += 1;
    }

    fn refresh_stale(&mut self, node: NodeId, addr: Addr) {
        self.stale
            .refresh(self.inner.tempest_mut(), node, addr.block());
    }

    /// LCM's checkpoint is *incremental*: the phase discipline already
    /// funnels every modification through the home at reconcile time, so
    /// the boundary only has to persist the words reconciled since the
    /// previous boundary (4 bytes each, at their homes) — there is no
    /// scattered dirty state to chase. The embedded Stache directory
    /// (blocks written *outside* phases, e.g. initialization) is flushed
    /// and downgraded once via
    /// [`Stache::checkpoint_writeback`](lcm_stache::Stache), after which
    /// it too contributes only its entry words until rewritten. This is
    /// the checkpoint-size asymmetry the recovery sweep measures against
    /// the non-incremental Stache capture.
    ///
    /// # Panics
    /// Panics if called inside an open parallel phase (checkpoints are a
    /// phase-boundary operation; mid-phase private copies are
    /// deliberately inconsistent and are never persisted).
    fn checkpoint(&mut self) -> CheckpointImage {
        assert!(
            !self.in_phase && self.nested.is_none(),
            "checkpoint inside a parallel phase"
        );
        let mut img = self.inner.checkpoint_writeback();
        for (n, counter) in self.reconciled_words.iter_mut().enumerate() {
            let words = std::mem::take(counter);
            img.words += words;
            img.per_node[n] += words * WORD_BYTES as u64;
        }
        img
    }

    fn take_conflicts(&mut self) -> Vec<ConflictRecord> {
        std::mem::take(&mut self.conflicts)
    }
}

//! Semantics tests for the tree-reconciliation gather rewrite.
//!
//! `Lcm::tree_combine_reductions` used to bucket contributions in a
//! per-call `BTreeMap<BlockId, Vec<(NodeId, PrivCopy)>>`; it now gathers
//! `(block, node, copy)` triples into a reusable stable-sorted scratch
//! buffer. The observable contract is unchanged: blocks combine in
//! ascending block order, each block's contributions in node order, and
//! the merged state is identical to direct (non-tree) reconciliation.
//! These tests pin that contract for empty, single-writer, multi-writer
//! and interleaved-block shapes.

use lcm_core::{Lcm, LcmVariant};
use lcm_rsm::{MemoryProtocol, MergePolicy, ReduceOp};
use lcm_sim::mem::Addr;
use lcm_sim::{MachineConfig, NodeId};
use lcm_tempest::Placement;

const NODES: usize = 8;
const BLOCK: u64 = 32;

/// An LCM-mcc system with one page registered as an i32-sum reduction
/// region, tree reconciliation on or off.
fn reduction_system(tree: bool) -> (Lcm, Addr) {
    let mut m = Lcm::new(MachineConfig::new(NODES), LcmVariant::Mcc);
    m.set_tree_reconcile(tree);
    let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "acc");
    m.register_cow_region(a, 4096, MergePolicy::Reduce(ReduceOp::SumI32));
    (m, a)
}

/// Runs `contribute` inside a phase on both a tree-reconciling and a
/// direct system, reconciles, and returns both for comparison.
fn run_both(contribute: impl Fn(&mut Lcm, Addr)) -> (Lcm, Lcm, Addr) {
    let (mut tree, a) = reduction_system(true);
    let (mut direct, a2) = reduction_system(false);
    assert_eq!(a, a2, "identical allocation layout");
    for m in [&mut tree, &mut direct] {
        m.begin_parallel_phase();
        contribute(m, a);
        m.reconcile_copies();
    }
    (tree, direct, a)
}

fn read_i32(m: &mut Lcm, addr: Addr) -> i32 {
    m.read_word(NodeId(0), addr) as i32
}

#[test]
fn empty_writer_set_is_a_no_op() {
    let (mut tree, mut direct, a) = run_both(|_, _| {});
    assert_eq!(read_i32(&mut tree, a), read_i32(&mut direct, a));
    for m in [&tree, &direct] {
        m.sanity_check().expect("phase state fully drained");
        assert_eq!(m.live_cow_entries(), 0);
        let home = m.tempest().home_of(a.block());
        assert_eq!(
            m.tempest().machine.stats(home).versions_reconciled,
            0,
            "nothing contributed, nothing merged"
        );
    }
}

#[test]
fn single_writer_matches_direct_reconciliation() {
    let (mut tree, mut direct, a) = run_both(|m, a| {
        m.reduce(NodeId(3), a, ReduceOp::SumI32, 41_i32 as u32 as u64);
    });
    let t = read_i32(&mut tree, a);
    let d = read_i32(&mut direct, a);
    assert_eq!(t, d, "one contribution: tree is just a direct flush");
    assert_eq!(t, 41);
    for m in [&tree, &direct] {
        m.sanity_check().expect("invariants hold");
        m.tempest()
            .machine
            .verify_ledger()
            .expect("cycles conserve");
        let home = m.tempest().home_of(a.block());
        assert_eq!(m.tempest().machine.stats(home).versions_reconciled, 1);
    }
}

#[test]
fn multi_writer_same_block_combines_all_contributions() {
    let (mut tree, mut direct, a) = run_both(|m, a| {
        for n in 0..NODES {
            m.reduce(NodeId(n as u16), a, ReduceOp::SumI32, (n as u32 + 1) as u64);
        }
    });
    let expected: i32 = (1..=NODES as i32).sum();
    let t = read_i32(&mut tree, a);
    assert_eq!(t, read_i32(&mut direct, a), "tree == direct merged value");
    assert_eq!(t, expected);
    // The tree ships the home a single pre-merged version (plus whatever
    // internal combines land on it as a contributor: log2(n) when it is
    // the tree root); direct reconciliation makes the home merge one
    // version per contributor. Total versions merged machine-wide is the
    // same either way: n-1 internal + 1 at the home vs n at the home.
    let home = tree.tempest().home_of(a.block());
    assert_eq!(
        direct.tempest().machine.stats(home).versions_reconciled,
        NODES as u64
    );
    assert!(
        tree.tempest().machine.stats(home).versions_reconciled
            < direct.tempest().machine.stats(home).versions_reconciled,
        "the tree relieves the home bottleneck"
    );
    for m in [&tree, &direct] {
        let total: u64 = m
            .tempest()
            .machine
            .node_ids()
            .map(|n| m.tempest().machine.stats(n).versions_reconciled)
            .sum();
        assert_eq!(total, NODES as u64);
        m.sanity_check().expect("invariants hold");
        m.tempest()
            .machine
            .verify_ledger()
            .expect("cycles conserve");
    }
}

#[test]
fn interleaved_blocks_merge_in_block_then_node_order() {
    // Contributions land on three blocks in deliberately scrambled
    // (node, block) order; the gather must still merge each block's
    // versions in node order, ascending by block — the BTreeMap
    // iteration the scratch sort reproduces.
    let offsets = [2 * BLOCK, 0, 5 * BLOCK];
    let (mut tree, mut direct, a) = run_both(|m, a| {
        for n in (0..NODES).rev() {
            for (i, &off) in offsets.iter().enumerate() {
                let v = (n as u32 * 10 + i as u32 + 1) as u64;
                m.reduce(NodeId(n as u16), a.offset(off), ReduceOp::SumI32, v);
            }
        }
    });
    for (i, &off) in offsets.iter().enumerate() {
        let expected: i32 = (0..NODES as i32).map(|n| n * 10 + i as i32 + 1).sum();
        let t = read_i32(&mut tree, a.offset(off));
        assert_eq!(
            t,
            read_i32(&mut direct, a.offset(off)),
            "block at +{off}: tree == direct"
        );
        assert_eq!(t, expected, "block at +{off}");
    }
    for m in [&tree, &direct] {
        m.sanity_check().expect("invariants hold");
        m.tempest()
            .machine
            .verify_ledger()
            .expect("cycles conserve");
        assert_eq!(m.live_cow_entries(), 0, "every entry reconciled away");
    }
}

#[test]
fn keep_one_blocks_are_left_for_the_normal_drain() {
    // A keep-one region interleaved with a reduction region: the gather
    // must skip keep-one private copies (their arrival order is
    // semantically visible) and both end up with identical global state.
    let (mut tree_m, ka) = reduction_system(true);
    let (mut direct_m, _) = reduction_system(false);
    let setup = |m: &mut Lcm| {
        let k = m.tempest_mut().alloc(4096, Placement::Interleaved, "keep");
        m.register_cow_region(k, 4096, MergePolicy::KeepOne);
        k
    };
    let kt = setup(&mut tree_m);
    let kd = setup(&mut direct_m);
    assert_eq!(kt, kd);
    for m in [&mut tree_m, &mut direct_m] {
        m.begin_parallel_phase();
        m.mark_modification(NodeId(2), kt);
        m.write_f32(NodeId(2), kt, 7.5);
        m.reduce(NodeId(1), ka, ReduceOp::SumI32, 5);
        m.reduce(NodeId(4), ka, ReduceOp::SumI32, 6);
        m.reconcile_copies();
    }
    for m in [&mut tree_m, &mut direct_m] {
        assert_eq!(m.read_f32(NodeId(0), kt), 7.5, "keep-one write survives");
        assert_eq!(m.read_word(NodeId(0), ka) as i32, 11, "reduction merged");
    }
    for m in [&tree_m, &direct_m] {
        m.sanity_check().expect("invariants hold");
    }
}

#[test]
fn repeated_phases_reuse_the_scratch_identically() {
    // Back-to-back phases through the same protocol instance: the scratch
    // buffer must come back empty each time and never leak state across
    // reconciles.
    let (mut m, a) = reduction_system(true);
    let mut expected = 0_i32;
    for round in 1..=4_i32 {
        m.begin_parallel_phase();
        for n in 0..NODES as i32 {
            m.reduce(
                NodeId(n as u16),
                a,
                ReduceOp::SumI32,
                (round * 100 + n) as u64,
            );
        }
        m.reconcile_copies();
        expected += (0..NODES as i32).map(|n| round * 100 + n).sum::<i32>();
        assert_eq!(m.read_word(NodeId(0), a) as i32, expected, "round {round}");
        m.sanity_check().expect("clean between phases");
    }
}

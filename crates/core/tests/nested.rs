//! Nested parallel phases: the C\*\* feature the paper defers, exercised
//! through the protocol API.

use lcm_core::{Lcm, LcmVariant};
use lcm_rsm::{MemoryProtocol, MergePolicy, NestedProtocol, ReduceOp};
use lcm_sim::mem::Addr;
use lcm_sim::{MachineConfig, NodeId};
use lcm_tempest::Placement;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);
const N3: NodeId = NodeId(3);

fn system() -> (Lcm, Addr) {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
    let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "data");
    m.register_cow_region(a, 4096, MergePolicy::KeepOne);
    (m, a)
}

#[test]
fn inner_invocations_see_the_parent_state() {
    let (mut m, a) = system();
    m.write_f32(N0, a, 1.0);
    m.begin_parallel_phase();
    // Parent invocation (on N1) privately writes 5.0…
    m.write_f32(N1, a, 5.0);
    // …then makes a nested call; an inner invocation on N2 reads it.
    m.begin_nested_phase(N1);
    assert_eq!(
        m.read_f32(N2, a),
        5.0,
        "inner sees the parent's private state"
    );
    m.reconcile_nested();
    m.reconcile_copies();
}

#[test]
fn inner_modifications_merge_into_the_parent_not_global() {
    let (mut m, a) = system();
    m.write_f32(N0, a, 1.0);
    m.begin_parallel_phase();
    m.begin_nested_phase(N1);
    m.write_f32(N2, a.offset(4), 42.0); // inner write on another node
    assert_eq!(
        m.read_f32(N3, a.offset(4)),
        0.0,
        "private to the inner invocation"
    );
    m.reconcile_nested();
    // Now part of the parent's private state:
    assert_eq!(
        m.read_f32(N1, a.offset(4)),
        42.0,
        "parent observes the merged inner state"
    );
    // …but still invisible globally:
    assert_eq!(
        m.read_f32(N3, a.offset(4)),
        0.0,
        "global state unchanged before outer reconcile"
    );
    m.reconcile_copies();
    assert_eq!(
        m.read_f32(N3, a.offset(4)),
        42.0,
        "outer reconcile publishes everything"
    );
}

#[test]
fn inner_isolation_between_inner_invocations() {
    let (mut m, a) = system();
    m.write_f32(N0, a, 7.0);
    m.begin_parallel_phase();
    m.begin_nested_phase(N0);
    m.write_f32(N1, a, 8.0);
    m.flush_copies(N1); // flush during the nested phase
    assert_eq!(
        m.read_f32(N1, a),
        7.0,
        "a new inner invocation sees the pre-call state"
    );
    assert_eq!(m.read_f32(N2, a), 7.0);
    m.reconcile_nested();
    assert_eq!(
        m.read_f32(N0, a),
        8.0,
        "kept-one inner value lands in the parent"
    );
    m.reconcile_copies();
    assert_eq!(m.read_f32(N2, a), 8.0);
}

#[test]
fn nested_reductions_combine_into_the_parent_accumulator() {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
    let a = m.tempest_mut().alloc(64, Placement::OnNode(N0), "total");
    m.register_cow_region(a, 64, MergePolicy::Reduce(ReduceOp::SumI32));
    m.write_i32(N0, a, 100);
    m.begin_parallel_phase();
    m.reduce_i32(N1, a, ReduceOp::SumI32, 1); // outer contribution
    m.begin_nested_phase(N1);
    for n in 0..4u16 {
        m.reduce_i32(NodeId(n), a, ReduceOp::SumI32, 10); // inner contributions
    }
    m.reconcile_nested();
    m.reconcile_copies();
    assert_eq!(m.read_i32(N2, a), 100 + 1 + 40);
}

#[test]
fn nested_keep_one_conflicts_resolve_to_one_value() {
    let (mut m, a) = system();
    m.begin_parallel_phase();
    m.begin_nested_phase(N0);
    m.write_f32(N1, a, 1.0);
    m.write_f32(N2, a, 2.0);
    m.reconcile_nested();
    m.reconcile_copies();
    let v = m.read_f32(N3, a);
    assert!(
        v == 1.0 || v == 2.0,
        "exactly one inner value survives, got {v}"
    );
}

#[test]
fn nested_phase_state_is_reclaimed() {
    let (mut m, a) = system();
    m.begin_parallel_phase();
    m.begin_nested_phase(N2);
    m.write_f32(N0, a, 3.0);
    assert!(m.in_nested_phase());
    m.reconcile_nested();
    assert!(!m.in_nested_phase());
    assert!(m.in_parallel_phase(), "the outer phase stays open");
    m.reconcile_copies();
    m.verify_phase_invariants()
        .expect("clean after both reconciles");
}

#[test]
fn two_sequential_nested_calls_in_one_outer_phase() {
    let (mut m, a) = system();
    m.begin_parallel_phase();
    m.begin_nested_phase(N0);
    m.write_i32(N1, a, 1);
    m.reconcile_nested();
    m.begin_nested_phase(N0);
    let seen = m.read_i32(N2, a);
    assert_eq!(
        seen, 1,
        "second nested call sees the first's merged result via the parent"
    );
    m.write_i32(N2, a, seen + 1);
    m.reconcile_nested();
    m.reconcile_copies();
    assert_eq!(m.read_i32(N3, a), 2);
}

#[test]
#[should_panic(expected = "needs an open outer phase")]
fn nested_without_outer_panics() {
    let (mut m, _a) = system();
    m.begin_nested_phase(N0);
}

#[test]
#[should_panic(expected = "one level of nesting")]
fn double_nesting_panics() {
    let (mut m, _a) = system();
    m.begin_parallel_phase();
    m.begin_nested_phase(N0);
    m.begin_nested_phase(N1);
}

#[test]
#[should_panic(expected = "no nested phase")]
fn reconcile_nested_without_phase_panics() {
    let (mut m, _a) = system();
    m.begin_parallel_phase();
    m.reconcile_nested();
}

//! Property tests for LCM's core semantic guarantees, driven by random
//! programs.

use lcm_core::{Lcm, LcmVariant};
use lcm_rsm::{MemoryProtocol, MergePolicy, ReduceOp};
use lcm_sim::mem::Addr;
use lcm_sim::{MachineConfig, NodeId};
use lcm_stache::Stache;
use lcm_tempest::Placement;
use proptest::prelude::*;
use std::collections::HashMap;

const NODES: usize = 4;
const WORDS: u64 = 64; // 8 blocks

/// A step of a random non-phase (coherent) program.
#[derive(Clone, Debug)]
enum Step {
    Read { node: u16, word: u64 },
    Write { node: u16, word: u64, value: u32 },
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..NODES as u16, 0u64..WORDS).prop_map(|(node, word)| Step::Read { node, word }),
            (0u16..NODES as u16, 0u64..WORDS, any::<u32>())
                .prop_map(|(node, word, value)| Step::Write { node, word, value }),
        ],
        0..80,
    )
}

/// A write of a random phase program: (node, word, value).
fn phase_writes() -> impl Strategy<Value = Vec<(u16, u64, u32)>> {
    proptest::collection::vec((0u16..NODES as u16, 0u64..WORDS, any::<u32>()), 0..60)
}

proptest! {
    /// Outside parallel phases, LCM *is* coherent memory: a random
    /// read/write program observes exactly the same values on Stache,
    /// LCM-scc, LCM-mcc, and a sequential reference model.
    #[test]
    fn coherent_mode_equals_sequential_reference(program in steps()) {
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut systems: Vec<Box<dyn MemoryProtocol>> = vec![
            Box::new(Stache::new(MachineConfig::new(NODES))),
            Box::new(Lcm::new(MachineConfig::new(NODES), LcmVariant::Scc)),
            Box::new(Lcm::new(MachineConfig::new(NODES), LcmVariant::Mcc)),
        ];
        let bases: Vec<Addr> = systems
            .iter_mut()
            .map(|s| s.tempest_mut().alloc(WORDS * 4, Placement::Interleaved, "w"))
            .collect();
        for step in &program {
            match *step {
                Step::Read { node, word } => {
                    let expect = reference.get(&word).copied().unwrap_or(0);
                    for (sys, base) in systems.iter_mut().zip(&bases) {
                        let got = sys.read_word(NodeId(node), base.offset(word * 4));
                        prop_assert_eq!(got, expect, "{} read of word {}", sys.name(), word);
                    }
                }
                Step::Write { node, word, value } => {
                    reference.insert(word, value);
                    for (sys, base) in systems.iter_mut().zip(&bases) {
                        sys.write_word(NodeId(node), base.offset(word * 4), value);
                    }
                }
            }
        }
    }

    /// The C** keep-one guarantee: after a phase of random writes, every
    /// word holds either one of the values written to it, or its original
    /// value if nobody wrote it — under both variants. During the phase,
    /// non-writers always observe the original value.
    #[test]
    fn keep_one_reconciliation_keeps_exactly_one_claim(
        writes in phase_writes(),
        variant_mcc in any::<bool>(),
    ) {
        let variant = if variant_mcc { LcmVariant::Mcc } else { LcmVariant::Scc };
        let mut mem = Lcm::new(MachineConfig::new(NODES), variant);
        let base = mem.tempest_mut().alloc(WORDS * 4, Placement::Interleaved, "w");
        mem.register_cow_region(base, WORDS * 4, MergePolicy::KeepOne);
        // Distinct initial values.
        for w in 0..WORDS {
            mem.write_word(NodeId(0), base.offset(w * 4), 0xAA00_0000 | w as u32);
        }
        let mut written: HashMap<u64, Vec<u32>> = HashMap::new();
        mem.begin_parallel_phase();
        for &(node, word, value) in &writes {
            mem.write_word(NodeId(node), base.offset(word * 4), value);
            written.entry(word).or_default().push(value);
            // A processor that did not write this word still sees the
            // original (its own private copy aside).
            let observer = NodeId((node + 1) % NODES as u16);
            if !writes.iter().any(|&(n, w2, _)| n == observer.0 && w2 == word) {
                let seen = mem.read_word(observer, base.offset(word * 4));
                prop_assert_eq!(seen, 0xAA00_0000 | word as u32, "mid-phase isolation");
            }
        }
        mem.reconcile_copies();
        for w in 0..WORDS {
            let got = mem.read_word(NodeId(1), base.offset(w * 4));
            match written.get(&w) {
                None => prop_assert_eq!(got, 0xAA00_0000 | w as u32, "unwritten word {} keeps its value", w),
                Some(values) => prop_assert!(
                    values.contains(&got),
                    "word {w} holds {got:#x}, not one of the written values {values:x?}"
                ),
            }
        }
    }

    /// Reduction reconciliation equals the sequential sum regardless of
    /// which nodes contribute in which order (integer op: exact).
    #[test]
    fn reduction_matches_sequential_sum(
        contributions in proptest::collection::vec((0u16..NODES as u16, -1000i32..1000), 0..50),
        initial in -1000i32..1000,
    ) {
        let mut mem = Lcm::new(MachineConfig::new(NODES), LcmVariant::Mcc);
        let base = mem.tempest_mut().alloc(64, Placement::OnNode(NodeId(0)), "t");
        mem.register_cow_region(base, 64, MergePolicy::Reduce(ReduceOp::SumI32));
        mem.write_i32(NodeId(0), base, initial);
        mem.begin_parallel_phase();
        for &(node, v) in &contributions {
            mem.reduce_i32(NodeId(node), base, ReduceOp::SumI32, v);
        }
        mem.reconcile_copies();
        let expect = contributions.iter().fold(initial, |acc, &(_, v)| acc.wrapping_add(v));
        prop_assert_eq!(mem.read_i32(NodeId(2), base), expect);
    }

    /// Nested phases: random inner writes end up in the parent's private
    /// state (exactly one claim per word), and only the outer reconcile
    /// publishes them; words untouched by the inner call keep the
    /// parent's (or global) value throughout.
    #[test]
    fn nested_writes_layer_correctly(
        inner_writes in phase_writes(),
        parent_writes in proptest::collection::vec((0u64..WORDS, any::<u32>()), 0..20),
    ) {
        use lcm_rsm::NestedProtocol;
        let parent = NodeId(1);
        let mut mem = Lcm::new(MachineConfig::new(NODES), LcmVariant::Mcc);
        let base = mem.tempest_mut().alloc(WORDS * 4, Placement::Interleaved, "w");
        mem.register_cow_region(base, WORDS * 4, MergePolicy::KeepOne);
        for w in 0..WORDS {
            mem.write_word(NodeId(0), base.offset(w * 4), 0xBB00_0000 | w as u32);
        }
        mem.begin_parallel_phase();
        let mut parent_map: HashMap<u64, u32> = HashMap::new();
        for &(word, value) in &parent_writes {
            mem.write_word(parent, base.offset(word * 4), value);
            parent_map.insert(word, value);
        }
        mem.begin_nested_phase(parent);
        let mut inner_map: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(node, word, value) in &inner_writes {
            // Inner invocations observe the parent's layer underneath.
            if !inner_map.contains_key(&word)
                && !inner_writes.iter().any(|&(n, w2, _)| n == node && w2 == word)
            {
                let expect = parent_map.get(&word).copied().unwrap_or(0xBB00_0000 | word as u32);
                prop_assert_eq!(mem.read_word(NodeId(node), base.offset(word * 4)), expect);
            }
            mem.write_word(NodeId(node), base.offset(word * 4), value);
            inner_map.entry(word).or_default().push(value);
        }
        mem.reconcile_nested();
        // The parent now sees: inner claims where the inner call wrote,
        // its own writes elsewhere, the original otherwise. Nothing is
        // global yet.
        for w in 0..WORDS {
            let seen = mem.read_word(parent, base.offset(w * 4));
            match (inner_map.get(&w), parent_map.get(&w)) {
                (Some(vals), _) => prop_assert!(vals.contains(&seen), "word {w}: {seen:#x} not in {vals:x?}"),
                (None, Some(&pv)) => prop_assert_eq!(seen, pv, "parent write survives at word {}", w),
                (None, None) => prop_assert_eq!(seen, 0xBB00_0000 | w as u32),
            }
            let global = mem.tempest().mem.read_word(base.offset(w * 4));
            prop_assert_eq!(global, 0xBB00_0000 | w as u32, "global untouched mid-phase");
        }
        mem.reconcile_copies();
        for w in 0..WORDS {
            let seen = mem.read_word(NodeId(3), base.offset(w * 4));
            match (inner_map.get(&w), parent_map.get(&w)) {
                (Some(vals), _) => prop_assert!(vals.contains(&seen)),
                (None, Some(&pv)) => prop_assert_eq!(seen, pv),
                (None, None) => prop_assert_eq!(seen, 0xBB00_0000 | w as u32),
            }
        }
        mem.verify_phase_invariants().expect("clean after reconcile");
    }

    /// Phases always clean up: no live copy-on-write entries, no open
    /// phase, and home memory equals what a fresh read sees. The phase
    /// invariants hold after every single operation.
    #[test]
    fn phases_reclaim_all_state(writes in phase_writes(), variant_mcc in any::<bool>()) {
        let variant = if variant_mcc { LcmVariant::Mcc } else { LcmVariant::Scc };
        let mut mem = Lcm::new(MachineConfig::new(NODES), variant);
        let base = mem.tempest_mut().alloc(WORDS * 4, Placement::Blocked, "w");
        mem.register_cow_region(base, WORDS * 4, MergePolicy::KeepOne);
        for round in 0..2 {
            mem.begin_parallel_phase();
            for (i, &(node, word, value)) in writes.iter().enumerate() {
                mem.write_word(NodeId(node), base.offset(word * 4), value ^ round);
                mem.verify_phase_invariants()
                    .unwrap_or_else(|e| panic!("round {round} step {i}: {e}"));
                if i % 5 == 4 {
                    mem.flush_copies(NodeId(node));
                    mem.verify_phase_invariants()
                        .unwrap_or_else(|e| panic!("round {round} flush {i}: {e}"));
                }
            }
            mem.reconcile_copies();
            mem.verify_phase_invariants().unwrap_or_else(|e| panic!("round {round} end: {e}"));
            prop_assert_eq!(mem.live_cow_entries(), 0);
            prop_assert!(!mem.in_parallel_phase());
        }
        for w in 0..WORDS {
            let via_protocol = mem.read_word(NodeId(3), base.offset(w * 4));
            let via_home = mem.tempest().mem.read_word(base.offset(w * 4));
            prop_assert_eq!(via_protocol, via_home);
        }
    }
}

//! Behavioral tests for the LCM protocol: C\*\* semantics, the scc/mcc
//! variants, reconciliation policies, conflict detection, and phase
//! hygiene.

use lcm_core::{Lcm, LcmVariant};
use lcm_rsm::{KeepOrder, MemoryProtocol, MergePolicy, ReduceOp};
use lcm_sim::mem::Addr;
use lcm_sim::{MachineConfig, NodeId};
use lcm_tempest::Placement;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);

/// A 4-node LCM system with one page of copy-on-write f32 data.
fn system(variant: LcmVariant) -> (Lcm, Addr) {
    let mut m = Lcm::new(MachineConfig::new(4), variant);
    let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "data");
    m.register_cow_region(a, 4096, MergePolicy::KeepOne);
    (m, a)
}

#[test]
fn modifications_are_private_until_reconcile() {
    let (mut m, a) = system(LcmVariant::Mcc);
    m.write_f32(N0, a, 10.0); // pre-phase initialization, ordinary coherence
    m.begin_parallel_phase();
    m.mark_modification(N1, a);
    m.write_f32(N1, a, 99.0);
    assert_eq!(m.read_f32(N1, a), 99.0, "an invocation sees its own writes");
    assert_eq!(m.read_f32(N2, a), 10.0, "others see the clean value");
    assert_eq!(m.read_f32(N0, a), 10.0);
    m.reconcile_copies();
    for n in [N0, N1, N2] {
        assert_eq!(m.read_f32(n, a), 99.0, "reconciled value is global");
    }
}

#[test]
fn flush_hides_own_modifications_between_invocations() {
    let (mut m, a) = system(LcmVariant::Mcc);
    m.write_f32(N1, a, 1.0);
    m.begin_parallel_phase();
    m.mark_modification(N1, a);
    m.write_f32(N1, a, 2.0);
    m.flush_copies(N1);
    // A new invocation on the same processor must see the original state.
    assert_eq!(m.read_f32(N1, a), 1.0);
    m.reconcile_copies();
    assert_eq!(m.read_f32(N1, a), 2.0);
}

#[test]
fn scc_pays_a_miss_after_flush_mcc_does_not() {
    for (variant, expect_miss_growth) in [(LcmVariant::Scc, true), (LcmVariant::Mcc, false)] {
        let (mut m, a) = system(variant);
        m.begin_parallel_phase();
        m.mark_modification(N1, a);
        m.write_f32(N1, a, 2.0);
        m.flush_copies(N1);
        let before = m.tempest().machine.stats(N1).misses();
        m.read_f32(N1, a);
        let after = m.tempest().machine.stats(N1).misses();
        if expect_miss_growth {
            assert_eq!(after - before, 1, "scc refetches after a flush");
        } else {
            assert_eq!(after - before, 0, "mcc refills from the local clean copy");
        }
        m.reconcile_copies();
    }
}

#[test]
fn clean_copy_accounting_differs_by_variant() {
    // scc: one clean copy at the home. mcc: one at home + one per marker.
    let (mut m, a) = system(LcmVariant::Scc);
    m.begin_parallel_phase();
    m.mark_modification(N1, a);
    m.write_f32(N1, a, 1.0);
    m.reconcile_copies();
    assert_eq!(m.tempest().machine.total_stats().clean_copies, 1);

    let (mut m, a) = system(LcmVariant::Mcc);
    m.begin_parallel_phase();
    m.mark_modification(N1, a);
    m.write_f32(N1, a, 1.0);
    m.mark_modification(N2, a.offset(4));
    m.write_f32(N2, a.offset(4), 2.0);
    m.reconcile_copies();
    // home (1) + node1 (1) + node2 (1)
    assert_eq!(m.tempest().machine.total_stats().clean_copies, 3);
}

#[test]
fn disjoint_words_from_different_nodes_both_survive() {
    let (mut m, a) = system(LcmVariant::Mcc);
    m.begin_parallel_phase();
    m.mark_modification(N1, a);
    m.write_f32(N1, a, 11.0); // word 0
    m.mark_modification(N2, a.offset(4));
    m.write_f32(N2, a.offset(4), 22.0); // word 1, same block
    m.reconcile_copies();
    assert_eq!(m.read_f32(N0, a), 11.0);
    assert_eq!(m.read_f32(N0, a.offset(4)), 22.0);
}

#[test]
fn conflicting_words_keep_exactly_one_value() {
    let (mut m, a) = system(LcmVariant::Scc);
    m.begin_parallel_phase();
    m.mark_modification(N1, a);
    m.write_f32(N1, a, 1.0);
    m.mark_modification(N2, a);
    m.write_f32(N2, a, 2.0);
    m.reconcile_copies();
    let v = m.read_f32(N0, a);
    assert!(
        v == 1.0 || v == 2.0,
        "one of the written values survives, got {v}"
    );
    assert_eq!(m.tempest().machine.total_stats().ww_conflicts, 1);
}

#[test]
fn keep_order_controls_which_value_survives() {
    for (order, expect) in [
        (KeepOrder::FirstWins, 1.0f32),
        (KeepOrder::LastWins, 2.0f32),
    ] {
        let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Scc);
        let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "d");
        m.register_cow_region(a, 4096, MergePolicy::KeepOneOrdered(order));
        m.begin_parallel_phase();
        m.mark_modification(N1, a);
        m.write_f32(N1, a, 1.0);
        m.flush_copies(N1); // arrives first
        m.mark_modification(N2, a);
        m.write_f32(N2, a, 2.0);
        m.reconcile_copies(); // N2's version arrives second
        assert_eq!(m.read_f32(N0, a), expect, "order {order:?}");
    }
}

#[test]
fn reduction_combines_contributions_with_initial_value() {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
    let a = m.tempest_mut().alloc(4096, Placement::OnNode(N0), "total");
    m.register_cow_region(a, 4096, MergePolicy::Reduce(ReduceOp::SumF64));
    m.write_f64(N0, a, 100.0); // initial value, pre-phase
    m.begin_parallel_phase();
    for n in [N0, N1, N2] {
        for i in 0..5 {
            m.reduce_f64(n, a, ReduceOp::SumF64, 1.0 + i as f64);
        }
        m.flush_copies(n);
    }
    m.reconcile_copies();
    // 100 + 3 nodes × (1+2+3+4+5)
    assert_eq!(m.read_f64(N1, a), 100.0 + 3.0 * 15.0);
    assert_eq!(m.tempest().machine.total_stats().ww_conflicts, 0);
}

#[test]
fn reduction_marks_do_not_fetch_data() {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Scc);
    let a = m.tempest_mut().alloc(4096, Placement::OnNode(N0), "total");
    m.register_cow_region(a, 4096, MergePolicy::Reduce(ReduceOp::SumI32));
    m.write_i32(N0, a, 7);
    let miss_before = m.tempest().machine.stats(N2).misses();
    m.begin_parallel_phase();
    m.reduce_i32(N2, a, ReduceOp::SumI32, 3); // remote node, but no fetch
    assert_eq!(m.tempest().machine.stats(N2).misses(), miss_before);
    m.reconcile_copies();
    assert_eq!(m.read_i32(N0, a), 10);
}

#[test]
fn reduce_outside_phase_is_read_modify_write() {
    let mut m = Lcm::new(MachineConfig::new(2), LcmVariant::Mcc);
    let a = m.tempest_mut().alloc(4096, Placement::OnNode(N0), "t");
    m.register_cow_region(a, 4096, MergePolicy::Reduce(ReduceOp::SumI32));
    m.write_i32(N0, a, 1);
    m.reduce_i32(N1, a, ReduceOp::SumI32, 2); // no phase open
    assert_eq!(m.read_i32(N0, a), 3);
}

#[test]
#[should_panic(expected = "plain store to a reduction region")]
fn plain_store_to_reduction_region_rejected_in_phase() {
    let mut m = Lcm::new(MachineConfig::new(2), LcmVariant::Mcc);
    let a = m.tempest_mut().alloc(4096, Placement::OnNode(N0), "t");
    m.register_cow_region(a, 4096, MergePolicy::Reduce(ReduceOp::SumI32));
    m.begin_parallel_phase();
    m.write_i32(N1, a, 5);
}

#[test]
fn unmarked_write_is_caught_by_the_memory_system() {
    // §5: "LCM and the C** compiler cooperate to detect the need for
    // shared data and to copy it" — a store without a preceding
    // mark_modification still gets a private copy at the reference.
    let (mut m, a) = system(LcmVariant::Mcc);
    m.write_f32(N0, a, 5.0);
    m.begin_parallel_phase();
    m.write_f32(N1, a, 6.0); // no explicit mark
    assert_eq!(m.read_f32(N2, a), 5.0, "copy-on-write still isolates");
    m.reconcile_copies();
    assert_eq!(m.read_f32(N2, a), 6.0);
    assert_eq!(
        m.tempest().machine.stats(N1).marks,
        1,
        "the implicit mark is counted"
    );
}

#[test]
fn read_only_blocks_stay_cached_across_phases() {
    // Threshold's key behavior: blocks that are only read during a phase
    // are not invalidated at reconcile, so the next phase hits.
    let (mut m, a) = system(LcmVariant::Mcc);
    m.write_f32(N0, a, 3.0);
    m.begin_parallel_phase();
    assert_eq!(m.read_f32(N1, a), 3.0); // N1 fetches a clean copy
    m.reconcile_copies();
    let misses_before = m.tempest().machine.stats(N1).misses();
    m.begin_parallel_phase();
    assert_eq!(m.read_f32(N1, a), 3.0);
    m.reconcile_copies();
    assert_eq!(
        m.tempest().machine.stats(N1).misses(),
        misses_before,
        "second-phase read hits"
    );
}

#[test]
fn modified_blocks_are_invalidated_everywhere_at_reconcile() {
    let (mut m, a) = system(LcmVariant::Mcc);
    m.write_f32(N0, a, 1.0);
    m.begin_parallel_phase();
    assert_eq!(m.read_f32(N2, a), 1.0); // N2 holds a clean copy
    m.write_f32(N1, a, 2.0);
    m.reconcile_copies();
    let misses_before = m.tempest().machine.stats(N2).misses();
    assert_eq!(m.read_f32(N2, a), 2.0);
    assert_eq!(
        m.tempest().machine.stats(N2).misses(),
        misses_before + 1,
        "N2's copy of a modified block was invalidated"
    );
}

#[test]
fn write_write_conflicts_are_reported_when_detecting() {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Scc);
    let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "d");
    m.register_detecting_region(a, 4096, MergePolicy::KeepOne);
    m.begin_parallel_phase();
    m.write_f32(N1, a, 1.0);
    m.write_f32(N2, a, 2.0);
    m.reconcile_copies();
    let conflicts = m.take_conflicts();
    assert_eq!(conflicts.len(), 1);
    assert_eq!(conflicts[0].word, Some(0));
    assert!(m.take_conflicts().is_empty(), "take drains");
}

#[test]
fn read_write_conflicts_distinguish_actual_from_potential() {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Scc);
    let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "d");
    m.register_detecting_region(a, 4096, MergePolicy::KeepOne);
    // N2 holds a copy from before the phase (potential reader).
    m.write_f32(N0, a, 1.0);
    assert_eq!(m.read_f32(N2, a), 1.0);
    m.begin_parallel_phase();
    assert_eq!(m.read_f32(N1, a), 1.0); // actual in-phase reader
    m.write_f32(N0, a, 2.0);
    m.reconcile_copies();
    let conflicts = m.take_conflicts();
    let actual: Vec<_> = conflicts
        .iter()
        .filter(|c| matches!(c.kind, lcm_rsm::ConflictKind::ReadWrite { actual: true }))
        .collect();
    let potential: Vec<_> = conflicts
        .iter()
        .filter(|c| matches!(c.kind, lcm_rsm::ConflictKind::ReadWrite { actual: false }))
        .collect();
    assert_eq!(actual.len(), 1, "N1 read during the phase");
    assert_eq!(actual[0].loser, N1);
    assert_eq!(potential.len(), 1, "N2 merely held a copy");
    assert_eq!(potential[0].loser, N2);
}

#[test]
fn race_free_program_reports_no_conflicts() {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
    let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "d");
    m.register_detecting_region(a, 4096, MergePolicy::KeepOne);
    m.begin_parallel_phase();
    // Each node writes its own word of its own block; nobody reads.
    for i in 0..4u16 {
        let addr = a.offset(i as u64 * 32);
        m.write_f32(NodeId(i), addr, i as f32);
    }
    m.reconcile_copies();
    assert!(m.take_conflicts().is_empty());
    assert_eq!(m.tempest().machine.total_stats().conflicts(), 0);
}

#[test]
fn non_cow_data_is_coherent_during_a_phase() {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
    let cow = m.tempest_mut().alloc(4096, Placement::Interleaved, "cow");
    let plain = m.tempest_mut().alloc(4096, Placement::Interleaved, "plain");
    m.register_cow_region(cow, 4096, MergePolicy::KeepOne);
    m.begin_parallel_phase();
    m.write_f32(N1, plain, 42.0);
    assert_eq!(
        m.read_f32(N2, plain),
        42.0,
        "unregistered data stays coherent"
    );
    m.reconcile_copies();
}

#[test]
fn stale_region_via_protocol_api() {
    let mut m = Lcm::new(MachineConfig::new(2), LcmVariant::Mcc);
    let a = m.tempest_mut().alloc(4096, Placement::OnNode(N0), "field");
    m.register_stale_region(a, 4096);
    m.write_f32(N0, a, 1.0);
    assert_eq!(m.read_f32(N1, a), 1.0);
    m.write_f32(N0, a, 2.0);
    assert_eq!(m.read_f32(N1, a), 1.0, "consumer reads stale by design");
    m.refresh_stale(N1, a);
    assert_eq!(m.read_f32(N1, a), 2.0);
    assert_eq!(m.tempest().machine.stats(N1).stale_refreshes, 1);
}

#[test]
fn phase_state_is_fully_reclaimed() {
    let (mut m, a) = system(LcmVariant::Mcc);
    for round in 0..3 {
        m.begin_parallel_phase();
        m.write_f32(N1, a, round as f32);
        m.reconcile_copies();
        assert_eq!(
            m.live_cow_entries(),
            0,
            "clean copies reclaimed at reconcile"
        );
        assert!(!m.in_parallel_phase());
    }
    assert_eq!(m.read_f32(N0, a), 2.0);
}

#[test]
fn reconcile_without_phase_is_a_barrier() {
    let (mut m, _a) = system(LcmVariant::Scc);
    let barriers = m.tempest().machine.barriers();
    m.reconcile_copies();
    assert_eq!(m.tempest().machine.barriers(), barriers + 1);
}

#[test]
#[should_panic(expected = "outside a parallel phase")]
fn mark_outside_phase_panics() {
    let (mut m, a) = system(LcmVariant::Scc);
    m.mark_modification(N0, a);
}

#[test]
#[should_panic(expected = "nested parallel phases")]
fn nested_phase_panics() {
    let (mut m, _a) = system(LcmVariant::Scc);
    m.begin_parallel_phase();
    m.begin_parallel_phase();
}

#[test]
#[should_panic(expected = "non-copy-on-write region")]
fn mark_on_unregistered_region_panics() {
    let mut m = Lcm::new(MachineConfig::new(2), LcmVariant::Scc);
    let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "plain");
    m.begin_parallel_phase();
    m.mark_modification(N0, a);
}

#[test]
fn identical_programs_are_deterministic() {
    let run = || {
        let (mut m, a) = system(LcmVariant::Mcc);
        m.begin_parallel_phase();
        for i in 0..64u64 {
            let n = NodeId((i % 4) as u16);
            m.write_f32(n, a.offset(i * 4), i as f32);
            m.flush_copies(n);
        }
        m.reconcile_copies();
        (
            m.tempest().machine.time(),
            m.tempest().machine.total_stats(),
        )
    };
    assert_eq!(run(), run());
}

/// Sums 1..=k from every node into one f64 location under the given
/// reconciliation topology, returning (value, home versions, home clock).
fn reduce_all_nodes(tree: bool) -> (f64, u64, u64) {
    let mut m = Lcm::new(MachineConfig::new(16), LcmVariant::Mcc);
    let a = m.tempest_mut().alloc(64, Placement::OnNode(N0), "total");
    m.register_cow_region(a, 64, MergePolicy::Reduce(ReduceOp::SumF64));
    m.set_tree_reconcile(tree);
    m.write_f64(N0, a, 5.0);
    m.begin_parallel_phase();
    for n in 0..16u16 {
        for i in 1..=4 {
            m.reduce_f64(NodeId(n), a, ReduceOp::SumF64, i as f64);
        }
    }
    m.reconcile_copies();
    let value = m.read_f64(N1, a);
    let home_stats = m.tempest().machine.stats(N0);
    (
        value,
        home_stats.versions_reconciled,
        m.tempest().machine.clock(N0),
    )
}

#[test]
fn tree_reconciliation_computes_the_same_sum() {
    let (direct, _, _) = reduce_all_nodes(false);
    let (tree, _, _) = reduce_all_nodes(true);
    assert_eq!(direct, 5.0 + 16.0 * 10.0);
    assert_eq!(tree, direct);
}

#[test]
fn tree_reconciliation_relieves_the_home_bottleneck() {
    let (_, direct_versions, _) = reduce_all_nodes(false);
    let (_, tree_versions, _) = reduce_all_nodes(true);
    // Direct: the home merges one version per contributing node.
    assert_eq!(direct_versions, 16);
    // Tree: the home merges exactly one (plus its own leaf combines).
    assert!(
        tree_versions < direct_versions,
        "home versions: tree {tree_versions} vs direct {direct_versions}"
    );
}

#[test]
fn tree_reconciliation_defaults_off() {
    let m = Lcm::new(MachineConfig::new(2), LcmVariant::Scc);
    assert!(!m.tree_reconcile());
}

#[test]
fn flushed_versions_reconcile_at_the_home_node() {
    let (mut m, a) = system(LcmVariant::Mcc);
    let home = m.tempest().home_of(a.block());
    m.begin_parallel_phase();
    m.write_f32(N1, a, 1.0);
    m.flush_copies(N1);
    assert_eq!(m.tempest().machine.stats(home).versions_reconciled, 1);
    assert_eq!(m.tempest().machine.stats(N1).flushes, 1);
    m.reconcile_copies();
}

#[test]
fn policies_are_respected_at_region_boundaries() {
    // Two page-adjacent allocations: one copy-on-write, one plain. Writes
    // straddling the boundary get the right treatment on each side.
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Mcc);
    let cow = m.tempest_mut().alloc(4096, Placement::Interleaved, "cow");
    let plain = m.tempest_mut().alloc(4096, Placement::Interleaved, "plain");
    m.register_cow_region(cow, 4096, MergePolicy::KeepOne);
    let last_cow = cow.offset(4096 - 4);
    let first_plain = plain;
    m.begin_parallel_phase();
    m.write_f32(N1, last_cow, 1.0);
    m.write_f32(N1, first_plain, 2.0);
    // The COW write is private; the plain write is immediately coherent.
    assert_eq!(m.read_f32(N2, last_cow), 0.0);
    assert_eq!(m.read_f32(N2, first_plain), 2.0);
    m.reconcile_copies();
    assert_eq!(m.read_f32(N2, last_cow), 1.0);
}

#[test]
fn scc_never_creates_node_local_clean_copies() {
    let mut m = Lcm::new(MachineConfig::new(4), LcmVariant::Scc);
    let a = m.tempest_mut().alloc(4096, Placement::Interleaved, "d");
    m.register_cow_region(a, 4096, MergePolicy::KeepOne);
    m.begin_parallel_phase();
    for n in 0..4u16 {
        m.write_f32(NodeId(n), a.offset(n as u64 * 4), n as f32);
        m.flush_copies(NodeId(n));
    }
    m.verify_phase_invariants().expect("scc invariants");
    m.reconcile_copies();
    // One home clean copy total, regardless of how many nodes marked.
    assert_eq!(m.tempest().machine.total_stats().clean_copies, 1);
}

#[test]
fn variant_accessor_reports_construction_choice() {
    assert_eq!(
        Lcm::new(MachineConfig::new(2), LcmVariant::Scc).variant(),
        LcmVariant::Scc
    );
    assert_eq!(
        Lcm::new(MachineConfig::new(2), LcmVariant::Mcc).variant(),
        LcmVariant::Mcc
    );
}

#[test]
fn checkpoint_is_incremental_over_reconciled_words() {
    let (mut m, a) = system(LcmVariant::Mcc);
    // Init write to a block the phase never marks: it stays under the
    // embedded Stache directory as a dirty exclusive line.
    m.write_f32(N0, a.offset(64), 1.0);
    m.begin_parallel_phase();
    m.mark_modification(N1, a);
    m.write_f32(N1, a, 2.0);
    m.write_f32(N1, a.offset(4), 3.0);
    m.reconcile_copies();

    // First boundary: two reconciled words (8 B at the home) plus the
    // one-time flush of the init write's exclusive line.
    let first = m.checkpoint();
    assert_eq!(first.words, 2);
    assert_eq!(first.dirty_blocks, 1, "init write flushed once");
    assert!(first.total_bytes() >= 8 + 32);
    m.sanity_check().expect("checkpoint preserves invariants");
    assert_eq!(m.read_f32(N2, a), 2.0, "values survive the capture");
    assert_eq!(m.read_f32(N0, a.offset(64)), 1.0);

    // A quiet boundary captures no data words and no dirty lines: only
    // the standing directory entries.
    let quiet = m.checkpoint();
    assert_eq!((quiet.words, quiet.dirty_blocks), (0, 0));
    assert!(quiet.total_bytes() < first.total_bytes());

    // Another phase re-arms exactly the newly reconciled words.
    m.begin_parallel_phase();
    m.mark_modification(N2, a);
    m.write_f32(N2, a, 9.0);
    m.reconcile_copies();
    assert_eq!(m.checkpoint().words, 1);
}

#[test]
#[should_panic(expected = "checkpoint inside a parallel phase")]
fn checkpoint_rejects_open_phases() {
    let (mut m, _a) = system(LcmVariant::Mcc);
    m.begin_parallel_phase();
    m.checkpoint();
}

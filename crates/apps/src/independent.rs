//! **Independent updates** (§5.1 ablation): the compiler's flush elision.
//!
//! When analysis proves that no two invocations of a parallel call touch
//! the same location, the compiler need not flush modified copies between
//! invocations on a processor — a new invocation cannot observe its
//! predecessors' writes because it never looks at them. This kernel (a
//! pure per-element map) is exactly that case: eliding the flush lets a
//! processor's private copy of a block absorb all eight of its elements'
//! writes before a single flush at reconcile time.

use crate::common::{RunResult, SystemKind, Workload};
use lcm_core::{Lcm, LcmVariant};
use lcm_cstar::{FlushPolicy, Partition, Runtime, RuntimeConfig, Strategy};
use lcm_rsm::MemoryProtocol;
use lcm_sim::MachineConfig;
use lcm_tempest::Placement;

/// A pure map: `a[i] = f(a[i])` repeated for several sweeps.
#[derive(Copy, Clone, Debug)]
pub struct IndependentMap {
    /// Elements.
    pub len: usize,
    /// Sweeps over the array.
    pub sweeps: usize,
}

impl IndependentMap {
    /// A representative configuration.
    pub fn default_size() -> IndependentMap {
        IndependentMap {
            len: 1 << 14,
            sweeps: 4,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> IndependentMap {
        IndependentMap {
            len: 256,
            sweeps: 2,
        }
    }
}

impl Workload for IndependentMap {
    /// Checksum of the final array.
    type Output = u64;

    fn run<P: MemoryProtocol>(&self, rt: &mut Runtime<P>) -> u64 {
        let a = rt.new_aggregate1::<i32>(self.len, Placement::Blocked, "a");
        rt.init1(a, |i| i as i32);
        for _ in 0..self.sweeps {
            rt.par_apply1(a, Partition::Static, |inv, i| {
                let v = inv.get(a.at(i));
                inv.set(a.at(i), v.wrapping_mul(3).wrapping_add(1));
            });
        }
        let mut checksum = 0u64;
        for i in 0..self.len {
            checksum = checksum
                .wrapping_mul(31)
                .wrapping_add(rt.peek1(a, i) as u32 as u64);
        }
        checksum
    }
}

/// Runs the map under LCM-mcc with the given flush policy.
pub fn run_with_flush(policy: FlushPolicy, nodes: usize, w: &IndependentMap) -> (u64, RunResult) {
    let cfg = RuntimeConfig {
        flush: policy,
        ..RuntimeConfig::default()
    };
    let mem = Lcm::new(MachineConfig::new(nodes), LcmVariant::Mcc);
    let mut rt = Runtime::with_config(mem, Strategy::LcmDirectives, cfg);
    let out = w.run(&mut rt);
    (out, RunResult::harvest(SystemKind::LcmMcc, rt.mem()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::execute_all;

    #[test]
    fn all_systems_agree() {
        execute_all(4, RuntimeConfig::default(), &IndependentMap::small());
    }

    #[test]
    fn flush_elision_preserves_the_result() {
        let w = IndependentMap::small();
        let (per_inv, _) = run_with_flush(FlushPolicy::PerInvocation, 4, &w);
        let (at_rec, _) = run_with_flush(FlushPolicy::AtReconcile, 4, &w);
        assert_eq!(per_inv, at_rec);
    }

    #[test]
    fn flush_elision_cuts_flushes_and_time() {
        let w = IndependentMap::default_size();
        let (_, per_inv) = run_with_flush(FlushPolicy::PerInvocation, 8, &w);
        let (_, at_rec) = run_with_flush(FlushPolicy::AtReconcile, 8, &w);
        // Eight elements per block: one flush per block instead of eight.
        assert!(
            per_inv.totals.flushes > 4 * at_rec.totals.flushes,
            "flushes {} vs {}",
            per_inv.totals.flushes,
            at_rec.totals.flushes
        );
        assert!(
            per_inv.time > at_rec.time,
            "eliding the flush should be faster: {} vs {}",
            per_inv.time,
            at_rec.time
        );
    }
}

//! **N-body with stale far-field data** (paper §7.5's motivating
//! application).
//!
//! "In some scientific applications, such as N-body simulations,
//! contributions from distant elements are less significant than those of
//! closer elements. Repeatedly using old information about distant
//! elements may not adversely affect the computation."
//!
//! This is a direct-summation 2-D gravitational simulation whose body
//! positions live in a stale-data region: every processor advances its
//! own bodies (writes that do *not* invalidate anyone), and reads other
//! processors' positions from snapshots it refreshes every `k`
//! iterations. `k = 1` on coherent memory is the exact baseline; growing
//! `k` trades a little trajectory accuracy for a proportional drop in
//! miss traffic — measured, not assumed: the workload returns both.

use crate::common::{RunResult, SystemKind};
use lcm_core::{Lcm, LcmVariant};
use lcm_rsm::MemoryProtocol;
use lcm_sim::mem::Addr;
use lcm_sim::{MachineConfig, NodeId, Pcg32};
use lcm_stache::Stache;
use lcm_tempest::Placement;

/// The N-body workload.
#[derive(Copy, Clone, Debug)]
pub struct NBody {
    /// Number of bodies (partitioned contiguously across processors).
    pub bodies: usize,
    /// Time steps.
    pub steps: usize,
    /// Position-snapshot refresh interval (1 = always fresh).
    pub refresh_every: usize,
    /// Initial-condition seed.
    pub seed: u64,
}

impl NBody {
    /// A representative configuration.
    pub fn default_size() -> NBody {
        NBody {
            bodies: 128,
            steps: 20,
            refresh_every: 4,
            seed: 7,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> NBody {
        NBody {
            bodies: 48,
            steps: 8,
            refresh_every: 2,
            seed: 7,
        }
    }
}

/// The memory discipline for the position arrays.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NBodySystem {
    /// Coherent positions (Stache): every write invalidates readers.
    Coherent,
    /// LCM stale-data region with the workload's refresh interval.
    StaleRegion,
}

struct Layout {
    px: Addr,
    py: Addr,
    mass: Addr,
}

fn body_addr(base: Addr, i: usize) -> Addr {
    base.offset(i as u64 * 4)
}

/// Runs the simulation, returning the final positions and measurements.
#[allow(clippy::needless_range_loop)] // vel[i] deliberately parallels the shared arrays' index space
fn simulate<P: MemoryProtocol>(
    mem: &mut P,
    w: &NBody,
    lay: &Layout,
    refresh: bool,
) -> Vec<(f32, f32)> {
    let nodes = mem.tempest().nodes();
    let n = w.bodies;
    // Host-private per-body velocities: each body's velocity is touched
    // only by its owner, so a real program would keep it in plain local
    // memory; modeling it there keeps the focus on the shared positions.
    let mut vel = vec![(0.0f32, 0.0f32); n];
    let chunk = |k: usize| (n * k / nodes, n * (k + 1) / nodes);

    for step in 0..w.steps {
        for k in 0..nodes {
            let node = NodeId(k as u16);
            let (lo, hi) = chunk(k);
            if refresh && step % w.refresh_every == 0 {
                for i in 0..n {
                    mem.refresh_stale(node, body_addr(lay.px, i));
                    mem.refresh_stale(node, body_addr(lay.py, i));
                }
            }
            for i in lo..hi {
                let xi = mem.read_f32(node, body_addr(lay.px, i));
                let yi = mem.read_f32(node, body_addr(lay.py, i));
                let (mut ax, mut ay) = (0.0f32, 0.0f32);
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let xj = mem.read_f32(node, body_addr(lay.px, j));
                    let yj = mem.read_f32(node, body_addr(lay.py, j));
                    let mj = mem.read_f32(node, body_addr(lay.mass, j));
                    let (dx, dy) = (xj - xi, yj - yi);
                    let d2 = dx * dx + dy * dy + 0.05;
                    let inv = 1.0 / (d2 * d2.sqrt());
                    ax += mj * dx * inv;
                    ay += mj * dy * inv;
                }
                let dt = 0.01;
                vel[i].0 += ax * dt;
                vel[i].1 += ay * dt;
            }
        }
        // Position update phase: owners write their bodies.
        for k in 0..nodes {
            let node = NodeId(k as u16);
            let (lo, hi) = chunk(k);
            for i in lo..hi {
                let xi = mem.read_f32(node, body_addr(lay.px, i));
                let yi = mem.read_f32(node, body_addr(lay.py, i));
                mem.write_f32(node, body_addr(lay.px, i), xi + vel[i].0 * 0.01);
                mem.write_f32(node, body_addr(lay.py, i), yi + vel[i].1 * 0.01);
            }
        }
        mem.barrier();
    }
    (0..n)
        .map(|i| {
            let t = mem.tempest();
            (
                t.mem.read_f32(body_addr(lay.px, i)),
                t.mem.read_f32(body_addr(lay.py, i)),
            )
        })
        .collect()
}

fn setup<P: MemoryProtocol>(mem: &mut P, w: &NBody) -> Layout {
    let bytes = (w.bodies * 4) as u64;
    let lay = Layout {
        px: mem.tempest_mut().alloc(bytes, Placement::Blocked, "px"),
        py: mem.tempest_mut().alloc(bytes, Placement::Blocked, "py"),
        mass: mem.tempest_mut().alloc(bytes, Placement::Blocked, "mass"),
    };
    let mut rng = Pcg32::new(w.seed, 13);
    for i in 0..w.bodies {
        // Initialization through home memory: the measured run starts at
        // the first force step, as the paper's programs do.
        let t = mem.tempest_mut();
        t.mem
            .write_f32(body_addr(lay.px, i), rng.next_f32() * 10.0 - 5.0);
        t.mem
            .write_f32(body_addr(lay.py, i), rng.next_f32() * 10.0 - 5.0);
        t.mem
            .write_f32(body_addr(lay.mass, i), 0.5 + rng.next_f32());
    }
    lay
}

/// Runs the workload under the given discipline on `nodes` processors.
/// Returns the final positions and the measurements.
pub fn run_nbody(system: NBodySystem, nodes: usize, w: &NBody) -> (Vec<(f32, f32)>, RunResult) {
    match system {
        NBodySystem::Coherent => {
            let mut mem = Stache::new(MachineConfig::new(nodes));
            let lay = setup(&mut mem, w);
            let pos = simulate(&mut mem, w, &lay, false);
            (pos, RunResult::harvest(SystemKind::Stache, &mem))
        }
        NBodySystem::StaleRegion => {
            let mut mem = Lcm::new(MachineConfig::new(nodes), LcmVariant::Mcc);
            let lay = setup(&mut mem, w);
            let bytes = (w.bodies * 4) as u64;
            mem.register_stale_region(lay.px, bytes);
            mem.register_stale_region(lay.py, bytes);
            mem.register_stale_region(lay.mass, bytes);
            let pos = simulate(&mut mem, w, &lay, true);
            (pos, RunResult::harvest(SystemKind::LcmMcc, &mem))
        }
    }
}

/// Root-mean-square distance between two position sets.
pub fn rms_error(a: &[(f32, f32)], b: &[(f32, f32)]) -> f64 {
    assert_eq!(a.len(), b.len(), "position sets must match");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(p, q)| {
            let (dx, dy) = ((p.0 - q.0) as f64, (p.1 - q.1) as f64);
            dx * dx + dy * dy
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// The typical body-to-body distance scale of the initial conditions
/// (bodies start uniform in a 10×10 box).
pub const POSITION_SCALE: f64 = 10.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_and_coherent_agree_at_refresh_one() {
        let w = NBody {
            refresh_every: 1,
            ..NBody::small()
        };
        let (fresh, _) = run_nbody(NBodySystem::Coherent, 4, &w);
        let (stale, _) = run_nbody(NBodySystem::StaleRegion, 4, &w);
        assert_eq!(fresh, stale, "refreshing every step is exact");
    }

    #[test]
    fn staleness_trades_bounded_error_for_fewer_misses() {
        let reference = run_nbody(NBodySystem::Coherent, 4, &NBody::small()).0;
        let mut last_misses = u64::MAX;
        for k in [2usize, 4, 8] {
            let w = NBody {
                refresh_every: k,
                ..NBody::small()
            };
            let (pos, run) = run_nbody(NBodySystem::StaleRegion, 4, &w);
            let err = rms_error(&reference, &pos);
            assert!(
                err < POSITION_SCALE * 0.05,
                "k={k}: stale far-field data should not derail the simulation (rms {err})"
            );
            assert!(
                run.misses() < last_misses,
                "k={k}: misses should keep falling"
            );
            last_misses = run.misses();
        }
    }

    #[test]
    fn stale_is_faster_than_coherent() {
        let w = NBody::default_size();
        let (_, coherent) = run_nbody(NBodySystem::Coherent, 8, &w);
        let (_, stale) = run_nbody(NBodySystem::StaleRegion, 8, &w);
        assert!(
            coherent.time > stale.time,
            "coherent {} vs stale {}",
            coherent.time,
            stale.time
        );
        assert!(coherent.misses() > stale.misses());
    }

    #[test]
    fn rms_error_basics() {
        let a = vec![(0.0, 0.0), (1.0, 1.0)];
        assert_eq!(rms_error(&a, &a), 0.0);
        let b = vec![(3.0, 4.0), (1.0, 1.0)];
        let e = rms_error(&a, &b);
        assert!((e - (25.0f64 / 2.0).sqrt()).abs() < 1e-9);
    }
}

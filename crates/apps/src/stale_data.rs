//! **Stale data** (paper §7.5): consumers tolerating aged values.
//!
//! In N-body-style applications, contributions from distant elements
//! change slowly, so consumers can reuse old copies of a producer's data
//! for many iterations. On coherent memory every producer update
//! invalidates the consumers' copies and the next read misses; with an
//! RSM stale-data region the consumers keep snapshots and refetch only at
//! explicit refresh points, dividing the miss traffic by the refresh
//! interval.
//!
//! This is not a C\*\* program: it drives the protocols directly through
//! [`MemoryProtocol`].

use crate::common::{RunResult, SystemKind};
use lcm_core::{Lcm, LcmVariant};
use lcm_rsm::MemoryProtocol;
use lcm_sim::{MachineConfig, NodeId};
use lcm_stache::Stache;
use lcm_tempest::Placement;

/// The producer/consumer far-field workload.
#[derive(Copy, Clone, Debug)]
pub struct StaleData {
    /// Field size in words (producer-owned).
    pub field_words: usize,
    /// Producer update / consumer read iterations.
    pub iters: usize,
    /// Consumers refresh their snapshots every `refresh_every` iterations
    /// (1 = always fresh; the coherent baseline is effectively 1).
    pub refresh_every: usize,
}

impl StaleData {
    /// A representative configuration.
    pub fn default_size() -> StaleData {
        StaleData {
            field_words: 512,
            iters: 40,
            refresh_every: 8,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> StaleData {
        StaleData {
            field_words: 64,
            iters: 10,
            refresh_every: 4,
        }
    }
}

/// Which memory discipline the consumers run under.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StaleSystem {
    /// Ordinary coherent memory: every producer write invalidates the
    /// consumers' copies.
    Coherent,
    /// An LCM stale-data region with explicit refreshes.
    StaleRegion,
}

impl StaleSystem {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            StaleSystem::Coherent => "coherent",
            StaleSystem::StaleRegion => "stale-region",
        }
    }
}

fn drive<P: MemoryProtocol>(mem: &mut P, base: lcm_sim::Addr, w: &StaleData, refresh: bool) -> f64 {
    let nodes = mem.tempest().nodes();
    let producer = NodeId(0);
    let mut staleness = 0.0f64;
    for iter in 0..w.iters {
        // Producer updates the whole field.
        for i in 0..w.field_words {
            mem.write_f32(
                producer,
                base.offset(i as u64 * 4),
                (iter * w.field_words + i) as f32,
            );
        }
        mem.barrier();
        // Consumers sweep the field.
        for n in 1..nodes {
            let node = NodeId(n as u16);
            if refresh && iter % w.refresh_every == 0 {
                for i in 0..w.field_words {
                    mem.refresh_stale(node, base.offset(i as u64 * 4));
                }
            }
            for i in 0..w.field_words {
                let current = (iter * w.field_words + i) as f32;
                let seen = mem.read_f32(node, base.offset(i as u64 * 4));
                staleness += (current - seen) as f64;
            }
        }
        mem.barrier();
    }
    staleness
}

/// Runs the workload under the given discipline on `nodes` processors.
/// Returns the accumulated staleness (how far behind the consumers read;
/// 0 under coherence) and the measurements.
pub fn run_stale(system: StaleSystem, nodes: usize, w: &StaleData) -> (f64, RunResult) {
    let mc = MachineConfig::new(nodes);
    match system {
        StaleSystem::Coherent => {
            let mut mem = Stache::new(mc);
            let base = mem.tempest_mut().alloc(
                (w.field_words * 4) as u64,
                Placement::OnNode(NodeId(0)),
                "field",
            );
            let staleness = drive(&mut mem, base, w, false);
            (staleness, RunResult::harvest(SystemKind::Stache, &mem))
        }
        StaleSystem::StaleRegion => {
            let mut mem = Lcm::new(mc, LcmVariant::Mcc);
            let base = mem.tempest_mut().alloc(
                (w.field_words * 4) as u64,
                Placement::OnNode(NodeId(0)),
                "field",
            );
            mem.register_stale_region(base, (w.field_words * 4) as u64);
            let staleness = drive(&mut mem, base, w, true);
            (staleness, RunResult::harvest(SystemKind::LcmMcc, &mem))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coherent_consumers_always_read_fresh_values() {
        let (staleness, _) = run_stale(StaleSystem::Coherent, 4, &StaleData::small());
        assert_eq!(staleness, 0.0);
    }

    #[test]
    fn stale_consumers_lag_but_miss_less() {
        let w = StaleData::small();
        let (stale_lag, stale_run) = run_stale(StaleSystem::StaleRegion, 4, &w);
        let (_, coherent_run) = run_stale(StaleSystem::Coherent, 4, &w);
        assert!(stale_lag > 0.0, "snapshots age by design");
        assert!(
            coherent_run.misses() > 2 * stale_run.misses(),
            "refresh interval should divide the miss traffic: {} vs {}",
            coherent_run.misses(),
            stale_run.misses()
        );
        assert!(coherent_run.time > stale_run.time);
    }

    #[test]
    fn shorter_refresh_interval_means_fresher_data_and_more_misses() {
        let every2 = StaleData {
            refresh_every: 2,
            ..StaleData::small()
        };
        let every5 = StaleData {
            refresh_every: 5,
            ..StaleData::small()
        };
        let (lag2, run2) = run_stale(StaleSystem::StaleRegion, 4, &every2);
        let (lag5, run5) = run_stale(StaleSystem::StaleRegion, 4, &every5);
        assert!(lag2 < lag5, "refreshing more often reads fresher data");
        assert!(run2.misses() > run5.misses(), "and costs more misses");
    }

    #[test]
    fn refreshes_are_counted() {
        let w = StaleData::small();
        let (_, run) = run_stale(StaleSystem::StaleRegion, 4, &w);
        assert!(run.totals.stale_refreshes > 0);
    }
}

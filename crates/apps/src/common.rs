//! Workload harness: build a memory system, run a program, harvest results.
//!
//! The paper evaluates each benchmark on three memory systems. A
//! [`Workload`] is written once, generically over [`MemoryProtocol`]; a
//! [`SystemKind`] picks the protocol and matching compilation strategy
//! (explicit copying for Stache, LCM directives for LCM) and
//! [`execute`] returns the measured [`RunResult`].

use lcm_core::{Lcm, LcmVariant};
use lcm_cstar::{Runtime, RuntimeConfig, Strategy};
use lcm_rsm::MemoryProtocol;
use lcm_sim::{
    CrashPlan, CycleLedger, FaultConfig, MachineConfig, NodeStats, PhaseSnapshot, Stamped,
};
use lcm_stache::Stache;
use lcm_tempest::MsgKind;
use std::fmt;

/// The three memory systems of the paper's evaluation (§6.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// The unmodified Stache protocol with compiler-generated explicit
    /// copying (the baseline).
    Stache,
    /// LCM keeping a single clean copy at each block's home node.
    LcmScc,
    /// LCM keeping a clean copy on every node that obtains a marked block.
    LcmMcc,
}

impl SystemKind {
    /// All systems, in the paper's presentation order.
    pub fn all() -> [SystemKind; 3] {
        [SystemKind::LcmScc, SystemKind::LcmMcc, SystemKind::Stache]
    }

    /// The short name used in tables ("LCM-scc", "LCM-mcc", "Stache").
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Stache => "Stache",
            SystemKind::LcmScc => "LCM-scc",
            SystemKind::LcmMcc => "LCM-mcc",
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A C\*\* program, written once and runnable on any memory system.
pub trait Workload {
    /// Application-level output (checksums, counts) used for validation.
    type Output;

    /// Runs the program to completion on the given runtime.
    fn run<P: MemoryProtocol>(&self, rt: &mut Runtime<P>) -> Self::Output;
}

/// The measurements of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which system ran.
    pub system: SystemKind,
    /// Execution time in simulated cycles (max node clock at completion).
    pub time: u64,
    /// Sum of all nodes' protocol counters.
    pub totals: NodeStats,
    /// Delivered protocol messages by kind, in [`MsgKind::all`] order.
    pub msg_kinds: Vec<(MsgKind, u64)>,
    /// Message attempts lost to fault injection (zero on a reliable run).
    pub net_dropped: u64,
    /// Duplicate deliveries detected under fault injection.
    pub net_duplicated: u64,
    /// Per-node cycle attribution (conservation-checked at harvest: on
    /// every node the category sums equal the final clock).
    pub ledger: CycleLedger,
    /// Final per-node logical clocks, indexed by node.
    pub clocks: Vec<u64>,
    /// Cumulative per-phase snapshots stamped by the runtime at each
    /// parallel step / barrier epoch (empty when no phases were marked).
    pub phases: Vec<PhaseSnapshot>,
    /// Wire bytes delivered per message kind, in [`MsgKind::all`] order.
    pub msg_bytes: Vec<(MsgKind, u64)>,
    /// Events captured by the bounded trace (zero when tracing is off).
    pub trace_events: usize,
    /// Events lost when the bounded trace buffer wrapped.
    pub trace_dropped: u64,
    /// Per-link fabric utilization, for links that carried traffic.
    /// Empty unless the cost model set a finite link bandwidth (the
    /// contention-aware network model is off by default).
    pub links: Vec<lcm_sim::LinkUtil>,
}

impl RunResult {
    /// The paper's "cache misses" metric.
    pub fn misses(&self) -> u64 {
        self.totals.misses()
    }

    /// The paper's "clean copies" metric.
    pub fn clean_copies(&self) -> u64 {
        self.totals.clean_copies
    }

    /// Total messages delivered (the per-kind sum).
    pub fn msgs_total(&self) -> u64 {
        self.msg_kinds.iter().map(|(_, n)| n).sum()
    }

    /// Delivered messages of one kind.
    pub fn msgs_of(&self, kind: MsgKind) -> u64 {
        self.msg_kinds
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// A deterministic fingerprint of every measured field (FNV-1a over
    /// the full `Debug` rendering). Two runs of the same configuration
    /// must produce equal digests regardless of what else ran on the
    /// process — the determinism tests compare these across `--jobs`
    /// settings.
    pub fn digest(&self) -> u64 {
        let repr = format!("{self:?}");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in repr.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Harvests a finished run from a protocol: time, counters, per-kind
    /// message counts, and the cycle-attribution ledger. Runs the
    /// coherence-invariant sanitizer first — which includes the ledger
    /// conservation check — and panics with its cycle-stamped diagnostic
    /// on violation.
    pub fn harvest<P: MemoryProtocol>(system: SystemKind, mem: &P) -> RunResult {
        lcm_rsm::sanitizer::enforce(mem);
        let t = mem.tempest();
        let machine = &t.machine;
        RunResult {
            system,
            time: machine.time(),
            totals: machine.total_stats(),
            msg_kinds: t.net.per_kind().collect(),
            net_dropped: t.net.dropped(),
            net_duplicated: t.net.duplicated(),
            ledger: machine.ledger().clone(),
            clocks: machine.node_ids().map(|n| machine.clock(n)).collect(),
            phases: machine.phases().to_vec(),
            msg_bytes: MsgKind::all()
                .into_iter()
                .map(|k| (k, t.net.bytes_of(k)))
                .collect(),
            trace_events: machine.trace().events().len(),
            trace_dropped: machine.trace().dropped(),
            links: machine.link_utilization(),
        }
    }
}

/// Runs `workload` on `system` with `nodes` processors, returning the
/// program output and the measurements.
pub fn execute<W: Workload>(
    system: SystemKind,
    nodes: usize,
    config: RuntimeConfig,
    workload: &W,
) -> (W::Output, RunResult) {
    execute_with_cost(
        system,
        nodes,
        lcm_sim::CostModel::default(),
        config,
        workload,
    )
}

/// [`execute`] under an explicit [`lcm_sim::CostModel`] — for sensitivity
/// sweeps over the machine parameters.
pub fn execute_with_cost<W: Workload>(
    system: SystemKind,
    nodes: usize,
    cost: lcm_sim::CostModel,
    config: RuntimeConfig,
    workload: &W,
) -> (W::Output, RunResult) {
    execute_with_machine(
        system,
        MachineConfig::new(nodes).with_cost(cost),
        config,
        workload,
    )
}

/// [`execute`] over an unreliable network: the [`FaultConfig`] schedules
/// deterministic message drops, duplicates, delays and barrier stalls —
/// and, when `crash_rate > 0`, fail-stop node crashes with checkpoint
/// rollback (wired into the runtime's [`RuntimeConfig::crash`] plan
/// unless the caller already supplied one). Faults change costs and
/// statistics only — the output is bit-identical to the fault-free run
/// (the fault and recovery property tests assert this).
pub fn execute_with_faults<W: Workload>(
    system: SystemKind,
    nodes: usize,
    faults: FaultConfig,
    config: RuntimeConfig,
    workload: &W,
) -> (W::Output, RunResult) {
    let mut config = config;
    if faults.crashes_active() && !config.crash.is_active() {
        config.crash = CrashPlan::from_config(&faults);
    }
    let mc = MachineConfig::new(nodes)
        .with_cost(lcm_sim::CostModel::default())
        .with_faults(faults);
    execute_with_machine(system, mc, config, workload)
}

/// [`execute`] under a fully-specified [`MachineConfig`].
///
/// Every run ends with a coherence-invariant sanitizer pass
/// ([`lcm_rsm::sanitizer`]); a violation — e.g. protocol state corrupted
/// by mishandled fault injection — panics with a cycle-stamped
/// diagnostic.
pub fn execute_with_machine<W: Workload>(
    system: SystemKind,
    mc: MachineConfig,
    config: RuntimeConfig,
    workload: &W,
) -> (W::Output, RunResult) {
    match system {
        SystemKind::Stache => {
            let mut rt = Runtime::with_config(Stache::new(mc), Strategy::ExplicitCopy, config);
            let out = workload.run(&mut rt);
            let result = harvest(system, rt.mem());
            (out, result)
        }
        SystemKind::LcmScc => {
            let mut rt = Runtime::with_config(
                Lcm::new(mc, LcmVariant::Scc),
                Strategy::LcmDirectives,
                config,
            );
            let out = workload.run(&mut rt);
            let result = harvest(system, rt.mem());
            (out, result)
        }
        SystemKind::LcmMcc => {
            let mut rt = Runtime::with_config(
                Lcm::new(mc, LcmVariant::Mcc),
                Strategy::LcmDirectives,
                config,
            );
            let out = workload.run(&mut rt);
            let result = harvest(system, rt.mem());
            (out, result)
        }
    }
}

/// [`execute_with_machine`], additionally returning the captured protocol
/// event trace. Enable capture with [`MachineConfig::with_trace`]; with
/// tracing off the returned stream is empty.
pub fn execute_traced<W: Workload>(
    system: SystemKind,
    mc: MachineConfig,
    config: RuntimeConfig,
    workload: &W,
) -> (W::Output, RunResult, Vec<Stamped>) {
    fn go<P: MemoryProtocol, W: Workload>(
        system: SystemKind,
        mut rt: Runtime<P>,
        workload: &W,
    ) -> (W::Output, RunResult, Vec<Stamped>) {
        let out = workload.run(&mut rt);
        let result = RunResult::harvest(system, rt.mem());
        let events = rt.mem().tempest().machine.trace().to_vec();
        (out, result, events)
    }
    match system {
        SystemKind::Stache => go(
            system,
            Runtime::with_config(Stache::new(mc), Strategy::ExplicitCopy, config),
            workload,
        ),
        SystemKind::LcmScc => go(
            system,
            Runtime::with_config(
                Lcm::new(mc, LcmVariant::Scc),
                Strategy::LcmDirectives,
                config,
            ),
            workload,
        ),
        SystemKind::LcmMcc => go(
            system,
            Runtime::with_config(
                Lcm::new(mc, LcmVariant::Mcc),
                Strategy::LcmDirectives,
                config,
            ),
            workload,
        ),
    }
}

/// [`execute_with_machine`] in *capture* mode: the machine records the
/// complete, re-priceable charge stream (see
/// [`MachineConfig::with_capture`]) and the pending coalesced work
/// records are flushed before harvest, so the returned events account
/// for every charged cycle. The `lcm-replay` crate serializes this
/// stream to a `.lcmtrace` file and re-prices it under arbitrary cost
/// models without re-executing the program.
///
/// `capacity` bounds the capture buffer; a capture that overflows it is
/// unusable for replay (the writer rejects traces with drops), so size
/// it generously — captures are one-shot, not steady-state.
pub fn execute_captured<W: Workload>(
    system: SystemKind,
    mut mc: MachineConfig,
    capacity: usize,
    config: RuntimeConfig,
    workload: &W,
) -> (W::Output, RunResult, Vec<Stamped>) {
    fn go<P: MemoryProtocol, W: Workload>(
        system: SystemKind,
        mut rt: Runtime<P>,
        workload: &W,
    ) -> (W::Output, RunResult, Vec<Stamped>) {
        let out = workload.run(&mut rt);
        rt.mem_mut().tempest_mut().machine.finish_capture();
        let result = RunResult::harvest(system, rt.mem());
        let events = rt.mem().tempest().machine.trace().to_vec();
        (out, result, events)
    }
    mc = mc.with_capture(capacity);
    match system {
        SystemKind::Stache => go(
            system,
            Runtime::with_config(Stache::new(mc), Strategy::ExplicitCopy, config),
            workload,
        ),
        SystemKind::LcmScc => go(
            system,
            Runtime::with_config(
                Lcm::new(mc, LcmVariant::Scc),
                Strategy::LcmDirectives,
                config,
            ),
            workload,
        ),
        SystemKind::LcmMcc => go(
            system,
            Runtime::with_config(
                Lcm::new(mc, LcmVariant::Mcc),
                Strategy::LcmDirectives,
                config,
            ),
            workload,
        ),
    }
}

/// Runs `workload` on all three systems, asserting the outputs agree, and
/// returns the results in [`SystemKind::all`] order.
pub fn execute_all<W: Workload>(nodes: usize, config: RuntimeConfig, workload: &W) -> Vec<RunResult>
where
    W::Output: PartialEq + fmt::Debug,
{
    let mut results = Vec::new();
    let mut reference: Option<W::Output> = None;
    for system in SystemKind::all() {
        let (out, result) = execute(system, nodes, config, workload);
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(r, &out, "{system} computed a different result"),
        }
        results.push(result);
    }
    results
}

fn harvest<P: MemoryProtocol>(system: SystemKind, mem: &P) -> RunResult {
    RunResult::harvest(system, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_cstar::Partition;
    use lcm_tempest::Placement;

    /// A trivial workload: every element incremented once.
    struct Increment {
        len: usize,
    }

    impl Workload for Increment {
        type Output = Vec<i32>;

        fn run<P: MemoryProtocol>(&self, rt: &mut Runtime<P>) -> Vec<i32> {
            let a = rt.new_aggregate1::<i32>(self.len, Placement::Blocked, "v");
            rt.init1(a, |i| i as i32);
            rt.apply1(a, Partition::Static, |inv, i| {
                let v = inv.get(a.at(i));
                inv.set(a.at(i), v + 1);
            });
            (0..self.len).map(|i| rt.peek1(a, i)).collect()
        }
    }

    #[test]
    fn all_systems_compute_the_same_answer() {
        let results = execute_all(4, RuntimeConfig::default(), &Increment { len: 64 });
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.time > 0);
            assert!(r.totals.accesses() > 0);
        }
    }

    #[test]
    fn lcm_runs_report_clean_copies_stache_does_not() {
        let results = execute_all(4, RuntimeConfig::default(), &Increment { len: 64 });
        let by = |k: SystemKind| results.iter().find(|r| r.system == k).unwrap();
        assert!(by(SystemKind::LcmScc).clean_copies() > 0);
        assert!(by(SystemKind::LcmMcc).clean_copies() >= by(SystemKind::LcmScc).clean_copies());
        assert_eq!(by(SystemKind::Stache).clean_copies(), 0);
    }

    #[test]
    fn faulty_runs_compute_identical_answers_at_higher_cost() {
        let w = Increment { len: 64 };
        for system in SystemKind::all() {
            let (clean_out, clean) = execute(system, 4, RuntimeConfig::default(), &w);
            let faults = FaultConfig {
                drop_rate: 0.05,
                dup_rate: 0.02,
                seed: 11,
                ..FaultConfig::default()
            };
            let (faulty_out, faulty) =
                execute_with_faults(system, 4, faults, RuntimeConfig::default(), &w);
            assert_eq!(clean_out, faulty_out, "{system}: faults changed the answer");
            assert!(
                faulty.time >= clean.time,
                "{system}: faults cannot speed a run up"
            );
            assert_eq!(clean.net_dropped, 0);
            assert_eq!(clean.totals.fault_events(), 0);
            assert_eq!(faulty.net_dropped, faulty.totals.msgs_dropped);
            assert_eq!(faulty.net_duplicated, faulty.totals.msgs_duplicated);
        }
    }

    #[test]
    fn message_conservation_holds_per_run() {
        // Satellite invariant: every delivered message is counted at both
        // ends, and the network's total equals the per-kind sum.
        let w = Increment { len: 64 };
        for system in SystemKind::all() {
            for faults in [
                FaultConfig::default(),
                FaultConfig {
                    drop_rate: 0.03,
                    dup_rate: 0.03,
                    delay_rate: 0.03,
                    seed: 5,
                    ..FaultConfig::default()
                },
            ] {
                let (_, r) = execute_with_faults(system, 4, faults, RuntimeConfig::default(), &w);
                assert_eq!(
                    r.totals.msgs_sent, r.totals.msgs_recv,
                    "{system}: conservation"
                );
                assert_eq!(
                    r.msgs_total(),
                    r.totals.msgs_sent,
                    "{system}: network vs node counts"
                );
            }
        }
    }

    #[test]
    fn harvest_captures_ledger_phases_and_bytes() {
        let (_, r) = execute(
            SystemKind::LcmMcc,
            4,
            RuntimeConfig::default(),
            &Increment { len: 64 },
        );
        assert_eq!(r.clocks.len(), 4);
        for (n, &clock) in r.clocks.iter().enumerate() {
            assert_eq!(
                r.ledger.node_total(lcm_sim::NodeId(n as u16)),
                clock,
                "node {n}: ledger total vs clock"
            );
        }
        assert!(!r.phases.is_empty(), "init + apply phases stamped");
        let last = r.phases.last().unwrap();
        assert_eq!(last.label, "apply");
        assert!(last.at <= r.time);
        let bytes: u64 = r.msg_bytes.iter().map(|(_, b)| b).sum();
        assert_eq!(bytes, r.totals.bytes_sent, "per-kind bytes vs node bytes");
        assert_eq!(r.totals.bytes_sent, r.totals.bytes_recv);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SystemKind::Stache.to_string(), "Stache");
        assert_eq!(SystemKind::LcmScc.label(), "LCM-scc");
        assert_eq!(SystemKind::all().len(), 3);
    }
}

//! Workload harness: build a memory system, run a program, harvest results.
//!
//! The paper evaluates each benchmark on three memory systems. A
//! [`Workload`] is written once, generically over [`MemoryProtocol`]; a
//! [`SystemKind`] picks the protocol and matching compilation strategy
//! (explicit copying for Stache, LCM directives for LCM) and
//! [`execute`] returns the measured [`RunResult`].

use lcm_core::{Lcm, LcmVariant};
use lcm_cstar::{Runtime, RuntimeConfig, Strategy};
use lcm_rsm::MemoryProtocol;
use lcm_sim::{MachineConfig, NodeStats};
use lcm_stache::Stache;
use std::fmt;

/// The three memory systems of the paper's evaluation (§6.3).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// The unmodified Stache protocol with compiler-generated explicit
    /// copying (the baseline).
    Stache,
    /// LCM keeping a single clean copy at each block's home node.
    LcmScc,
    /// LCM keeping a clean copy on every node that obtains a marked block.
    LcmMcc,
}

impl SystemKind {
    /// All systems, in the paper's presentation order.
    pub fn all() -> [SystemKind; 3] {
        [SystemKind::LcmScc, SystemKind::LcmMcc, SystemKind::Stache]
    }

    /// The short name used in tables ("LCM-scc", "LCM-mcc", "Stache").
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Stache => "Stache",
            SystemKind::LcmScc => "LCM-scc",
            SystemKind::LcmMcc => "LCM-mcc",
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A C\*\* program, written once and runnable on any memory system.
pub trait Workload {
    /// Application-level output (checksums, counts) used for validation.
    type Output;

    /// Runs the program to completion on the given runtime.
    fn run<P: MemoryProtocol>(&self, rt: &mut Runtime<P>) -> Self::Output;
}

/// The measurements of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which system ran.
    pub system: SystemKind,
    /// Execution time in simulated cycles (max node clock at completion).
    pub time: u64,
    /// Sum of all nodes' protocol counters.
    pub totals: NodeStats,
}

impl RunResult {
    /// The paper's "cache misses" metric.
    pub fn misses(&self) -> u64 {
        self.totals.misses()
    }

    /// The paper's "clean copies" metric.
    pub fn clean_copies(&self) -> u64 {
        self.totals.clean_copies
    }
}

/// Runs `workload` on `system` with `nodes` processors, returning the
/// program output and the measurements.
pub fn execute<W: Workload>(
    system: SystemKind,
    nodes: usize,
    config: RuntimeConfig,
    workload: &W,
) -> (W::Output, RunResult) {
    execute_with_cost(system, nodes, lcm_sim::CostModel::default(), config, workload)
}

/// [`execute`] under an explicit [`lcm_sim::CostModel`] — for sensitivity
/// sweeps over the machine parameters.
pub fn execute_with_cost<W: Workload>(
    system: SystemKind,
    nodes: usize,
    cost: lcm_sim::CostModel,
    config: RuntimeConfig,
    workload: &W,
) -> (W::Output, RunResult) {
    let mc = MachineConfig::new(nodes).with_cost(cost);
    match system {
        SystemKind::Stache => {
            let mut rt = Runtime::with_config(Stache::new(mc), Strategy::ExplicitCopy, config);
            let out = workload.run(&mut rt);
            let result = harvest(system, rt.mem());
            (out, result)
        }
        SystemKind::LcmScc => {
            let mut rt =
                Runtime::with_config(Lcm::new(mc, LcmVariant::Scc), Strategy::LcmDirectives, config);
            let out = workload.run(&mut rt);
            let result = harvest(system, rt.mem());
            (out, result)
        }
        SystemKind::LcmMcc => {
            let mut rt =
                Runtime::with_config(Lcm::new(mc, LcmVariant::Mcc), Strategy::LcmDirectives, config);
            let out = workload.run(&mut rt);
            let result = harvest(system, rt.mem());
            (out, result)
        }
    }
}

/// Runs `workload` on all three systems, asserting the outputs agree, and
/// returns the results in [`SystemKind::all`] order.
pub fn execute_all<W: Workload>(nodes: usize, config: RuntimeConfig, workload: &W) -> Vec<RunResult>
where
    W::Output: PartialEq + fmt::Debug,
{
    let mut results = Vec::new();
    let mut reference: Option<W::Output> = None;
    for system in SystemKind::all() {
        let (out, result) = execute(system, nodes, config, workload);
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(r, &out, "{system} computed a different result"),
        }
        results.push(result);
    }
    results
}

fn harvest<P: MemoryProtocol>(system: SystemKind, mem: &P) -> RunResult {
    let machine = &mem.tempest().machine;
    RunResult { system, time: machine.time(), totals: machine.total_stats() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_cstar::Partition;
    use lcm_tempest::Placement;

    /// A trivial workload: every element incremented once.
    struct Increment {
        len: usize,
    }

    impl Workload for Increment {
        type Output = Vec<i32>;

        fn run<P: MemoryProtocol>(&self, rt: &mut Runtime<P>) -> Vec<i32> {
            let a = rt.new_aggregate1::<i32>(self.len, Placement::Blocked, "v");
            rt.init1(a, |i| i as i32);
            rt.apply1(a, Partition::Static, |inv, i| {
                let v = inv.get(a.at(i));
                inv.set(a.at(i), v + 1);
            });
            (0..self.len).map(|i| rt.peek1(a, i)).collect()
        }
    }

    #[test]
    fn all_systems_compute_the_same_answer() {
        let results = execute_all(4, RuntimeConfig::default(), &Increment { len: 64 });
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.time > 0);
            assert!(r.totals.accesses() > 0);
        }
    }

    #[test]
    fn lcm_runs_report_clean_copies_stache_does_not() {
        let results = execute_all(4, RuntimeConfig::default(), &Increment { len: 64 });
        let by = |k: SystemKind| results.iter().find(|r| r.system == k).unwrap();
        assert!(by(SystemKind::LcmScc).clean_copies() > 0);
        assert!(by(SystemKind::LcmMcc).clean_copies() >= by(SystemKind::LcmScc).clean_copies());
        assert_eq!(by(SystemKind::Stache).clean_copies(), 0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SystemKind::Stache.to_string(), "Stache");
        assert_eq!(SystemKind::LcmScc.label(), "LCM-scc");
        assert_eq!(SystemKind::all().len(), 3);
    }
}

//! **Threshold** (paper §6.3): a stencil that modifies few mesh elements.
//!
//! Each point reads its neighbors and updates itself only when the value
//! would change by more than a threshold. The mesh is initially zero
//! except for a few fixed sources, so only cells near a source change in
//! the early iterations (the paper reports a 2.1% modified ratio).
//! Without LCM, the whole mesh must still be carried into the new version
//! each iteration — the program itself copies the values it does not
//! update. With LCM only the modified values are copied, which is why the
//! paper measures LCM 97%/74% faster than Stache here.

use crate::common::Workload;
use lcm_cstar::{Partition, Runtime};
use lcm_rsm::MemoryProtocol;
use lcm_tempest::Placement;

/// The Threshold benchmark.
#[derive(Copy, Clone, Debug)]
pub struct Threshold {
    /// Mesh side (paper: 512).
    pub size: usize,
    /// Iterations (paper: 50).
    pub iters: usize,
    /// Update threshold: a cell changes only when `|avg - v|` exceeds it.
    pub threshold: f32,
    /// Number of fixed hot sources scattered on the mesh.
    pub sources: usize,
}

impl Threshold {
    /// The paper's configuration.
    pub fn paper() -> Threshold {
        Threshold {
            size: 512,
            iters: 50,
            threshold: 1.0,
            sources: 6,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> Threshold {
        Threshold {
            size: 48,
            iters: 6,
            threshold: 1.0,
            sources: 3,
        }
    }

    /// Deterministic source positions, spread over the mesh.
    fn source_cells(&self) -> Vec<(usize, usize)> {
        let mut cells = Vec::with_capacity(self.sources);
        for k in 0..self.sources {
            let r = (k * 7919 + 13) % self.size;
            let c = (k * 104729 + 41) % self.size;
            cells.push((r, c));
        }
        cells
    }
}

impl Workload for Threshold {
    /// (checksum of the final mesh, total cell updates performed).
    type Output = (u64, u64);

    fn run<P: MemoryProtocol>(&self, rt: &mut Runtime<P>) -> (u64, u64) {
        let n = self.size;
        let m = rt.new_aggregate2::<f32>(n, n, Placement::Blocked, "mesh");
        let sources = self.source_cells();
        rt.init2(m, |r, c| {
            if sources.contains(&(r, c)) {
                100.0
            } else {
                0.0
            }
        });

        let mut updates = 0u64;
        let thresh = self.threshold;
        for _ in 0..self.iters {
            // Stays on the classic sequential apply: the closure counts
            // its updates through captured `&mut` state, which the
            // epoch-parallel engine's `Fn` closures cannot hold.
            rt.apply2(m, Partition::Static, |inv, r, c| {
                let v = inv.get(m.at(r, c));
                if sources.contains(&(r, c)) {
                    // Fixed sources never change.
                    inv.copy_through(m.at(r, c), v);
                    return;
                }
                let mut sum = 0.0;
                let mut cnt = 0.0;
                if r > 0 {
                    sum += inv.get(m.at(r - 1, c));
                    cnt += 1.0;
                }
                if r + 1 < n {
                    sum += inv.get(m.at(r + 1, c));
                    cnt += 1.0;
                }
                if c > 0 {
                    sum += inv.get(m.at(r, c - 1));
                    cnt += 1.0;
                }
                if c + 1 < n {
                    sum += inv.get(m.at(r, c + 1));
                    cnt += 1.0;
                }
                let avg = sum / cnt;
                if (avg - v).abs() > thresh {
                    inv.set(m.at(r, c), avg);
                    updates += 1;
                } else {
                    // The explicit-copying compilation writes the old
                    // value through; LCM leaves the location untouched.
                    inv.copy_through(m.at(r, c), v);
                }
            });
        }

        let mut checksum = 0u64;
        for r in 0..n {
            for c in 0..n {
                checksum = checksum
                    .wrapping_mul(31)
                    .wrapping_add(rt.peek2(m, r, c).to_bits() as u64);
            }
        }
        (checksum, updates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{execute, execute_all, SystemKind};
    use lcm_cstar::RuntimeConfig;

    #[test]
    fn all_systems_agree() {
        execute_all(4, RuntimeConfig::default(), &Threshold::small());
    }

    #[test]
    fn update_ratio_is_small() {
        let w = Threshold::small();
        let ((_, updates), _) = execute(SystemKind::LcmMcc, 4, RuntimeConfig::default(), &w);
        let total = (w.size * w.size * w.iters) as u64;
        assert!(updates > 0, "some cells must update");
        assert!(
            updates * 5 < total,
            "most cells should stay unmodified: {updates} of {total}"
        );
    }

    #[test]
    fn lcm_beats_stache_decisively() {
        // Table 1 / Figure 3: LCM copies far fewer locations. This needs
        // a mesh large enough that the sparse update front (not protocol
        // fixed costs) dominates, as in the paper's 512x512 runs.
        let cfg = RuntimeConfig::default();
        let w = Threshold {
            size: 128,
            iters: 6,
            threshold: 1.0,
            sources: 4,
        };
        let mcc = execute(SystemKind::LcmMcc, 8, cfg, &w).1;
        let scc = execute(SystemKind::LcmScc, 8, cfg, &w).1;
        let stache = execute(SystemKind::Stache, 8, cfg, &w).1;
        assert!(
            stache.time > mcc.time,
            "Stache {} vs LCM-mcc {}",
            stache.time,
            mcc.time
        );
        assert!(
            stache.time > scc.time,
            "Stache {} vs LCM-scc {}",
            stache.time,
            scc.time
        );
        assert!(stache.misses() > mcc.misses());
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Threshold::small();
        let once = execute(SystemKind::LcmMcc, 4, RuntimeConfig::default(), &w);
        let twice = execute(SystemKind::LcmMcc, 4, RuntimeConfig::default(), &w);
        assert_eq!(once.0, twice.0, "identical outputs");
        assert_eq!(once.1.time, twice.1.time, "identical timing");
        assert_eq!(once.1.totals, twice.1.totals, "identical counters");
    }
}
